//! # MoC-System
//!
//! Facade crate for the MoC-System reproduction. See the member crates:
//! [`moc_core`], [`moc_moe`], [`moc_store`], [`moc_ckpt`], [`moc_cluster`],
//! [`moc_train`], [`moc_runtime`], [`moc_elastic`], [`moc_obs`].
pub use moc_ckpt as ckpt;
pub use moc_cluster as cluster;
pub use moc_core as core;
pub use moc_elastic as elastic;
pub use moc_moe as moe;
pub use moc_obs as obs;
pub use moc_runtime as runtime;
pub use moc_store as store;
pub use moc_train as train;
