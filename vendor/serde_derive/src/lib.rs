//! Workspace-local stand-in for `serde_derive`.
//!
//! The workspace uses `#[derive(Serialize, Deserialize)]` (plus `#[serde(...)]`
//! field attributes) as declarations of serializability, but nothing in the
//! build actually drives serde serialization — there is no `serde_json` or
//! similar in the dependency graph. These derives therefore only need to
//! accept the syntax: they register the `serde` helper attribute and emit
//! no code, leaving the marker traits in the companion `serde` stand-in
//! unimplemented (which is fine, as no bound ever requires them).

use proc_macro::TokenStream;

/// Accepts `#[derive(Serialize)]` and `#[serde(...)]` attributes; emits nothing.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Accepts `#[derive(Deserialize)]` and `#[serde(...)]` attributes; emits nothing.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
