//! Workspace-local stand-in for `proptest`.
//!
//! A compact property-testing harness implementing the subset of the
//! proptest API this workspace uses: the [`proptest!`] macro,
//! `prop_assert!` / `prop_assert_eq!`, [`any`], numeric range strategies,
//! tuple strategies, `collection::vec` / `collection::btree_set`, and
//! character-class string strategies of the form `"[chars]{lo,hi}"`.
//!
//! Cases are generated from a deterministic per-test seed (derived from
//! the test name), so failures are reproducible run-to-run. There is no
//! shrinking: the failing inputs are printed verbatim.

use std::ops::{Range, RangeInclusive};

/// Commonly used items, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, ProptestConfig, Strategy,
        TestCaseError,
    };
}

/// Error type carried by failed `prop_assert!` macros.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TestCaseError(pub String);

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// Harness configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

impl ProptestConfig {
    /// A configuration running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

/// Deterministic generator driving case generation.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds the generator from a test name (FNV-1a) so every property has
    /// a stable, independent stream.
    pub fn from_name(name: &str) -> Self {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        Self { state: h | 1 }
    }

    /// Next 64 pseudo-random bits (SplitMix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "empty sampling domain");
        self.next_u64() % n
    }
}

/// Produces values of an output type from a [`TestRng`].
pub trait Strategy {
    /// The generated value type.
    type Value;
    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_int_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = self.end.abs_diff(self.start) as u64;
                self.start.wrapping_add(rng.below(span) as $t)
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = hi.abs_diff(lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(rng.below(span + 1) as $t)
            }
        }
    )*};
}

impl_int_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

impl Strategy for Range<f32> {
    type Value = f32;
    fn generate(&self, rng: &mut TestRng) -> f32 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + (rng.next_f64() as f32) * (self.end - self.start)
    }
}

/// Character-class string strategy: `"[a-z0-9.]{1,32}"` draws a string of
/// 1..=32 characters uniformly from the class. Only this `[class]{lo,hi}`
/// shape is supported (the one shape the workspace uses).
impl Strategy for &str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let (class, lo, hi) = parse_char_class(self)
            .unwrap_or_else(|| panic!("unsupported string strategy pattern: {self:?}"));
        let len = lo + rng.below((hi - lo + 1) as u64) as usize;
        (0..len)
            .map(|_| class[rng.below(class.len() as u64) as usize])
            .collect()
    }
}

fn parse_char_class(pattern: &str) -> Option<(Vec<char>, usize, usize)> {
    let rest = pattern.strip_prefix('[')?;
    let (class_str, rest) = rest.split_once(']')?;
    let counts = rest.strip_prefix('{')?.strip_suffix('}')?;
    let (lo, hi) = match counts.split_once(',') {
        Some((a, b)) => (a.parse().ok()?, b.parse().ok()?),
        None => {
            let n = counts.parse().ok()?;
            (n, n)
        }
    };
    if lo > hi {
        return None;
    }
    let chars: Vec<char> = class_str.chars().collect();
    let mut class = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        if i + 2 < chars.len() && chars[i + 1] == '-' {
            let (a, b) = (chars[i], chars[i + 2]);
            for c in a..=b {
                class.push(c);
            }
            i += 3;
        } else {
            class.push(chars[i]);
            i += 1;
        }
    }
    if class.is_empty() {
        return None;
    }
    Some((class, lo, hi))
}

macro_rules! impl_tuple_strategy {
    ($(($($name:ident / $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A/0, B/1)
    (A/0, B/1, C/2)
    (A/0, B/1, C/2, D/3)
    (A/0, B/1, C/2, D/3, E/4)
    (A/0, B/1, C/2, D/3, E/4, F/5)
}

/// Types generatable over their whole domain via [`any`].
pub trait Arbitrary {
    /// Generates an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy over a type's whole domain.
#[derive(Debug, Clone, Copy)]
pub struct AnyStrategy<T> {
    _marker: std::marker::PhantomData<T>,
}

/// The `any::<T>()` strategy.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy {
        _marker: std::marker::PhantomData,
    }
}

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::collections::BTreeSet;
    use std::ops::Range;

    /// Strategy producing `Vec`s with lengths drawn from a range.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// `vec(element, lo..hi)` — vectors of `lo..hi` elements.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        assert!(len.start < len.end, "empty length range");
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.len.end - self.len.start) as u64;
            let n = self.len.start + rng.below(span) as usize;
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Strategy producing `BTreeSet`s with target sizes drawn from a range.
    #[derive(Debug, Clone)]
    pub struct BTreeSetStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// `btree_set(element, lo..hi)` — sets of roughly `lo..hi` distinct
    /// elements (bounded retries when the element domain is small).
    pub fn btree_set<S>(element: S, len: Range<usize>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        assert!(len.start < len.end, "empty length range");
        BTreeSetStrategy { element, len }
    }

    impl<S> Strategy for BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
            let span = (self.len.end - self.len.start) as u64;
            let target = self.len.start + rng.below(span) as usize;
            let mut set = BTreeSet::new();
            let mut attempts = 0usize;
            while set.len() < target && attempts < target * 20 + 20 {
                set.insert(self.element.generate(rng));
                attempts += 1;
            }
            set
        }
    }
}

// Re-exported so `proptest::collection::vec` resolves both through the
// crate root path used in tests and through the prelude.
pub use collection as collections;

/// Asserts a condition inside a `proptest!` body, failing the case (not
/// panicking) so the harness can report the generated inputs.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return Err($crate::TestCaseError(format!($($fmt)*)));
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, "assertion failed: {:?} == {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, $($fmt)*);
    }};
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l != *r, "assertion failed: {:?} != {:?}", l, r);
    }};
}

/// Defines property tests: each function runs its body over many generated
/// cases, panicking with the offending inputs on the first failure.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($config); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($config:expr); ) => {};
    (($config:expr);
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            let mut rng = $crate::TestRng::from_name(concat!(module_path!(), "::", stringify!($name)));
            for case in 0..config.cases {
                $(let $arg = $crate::Strategy::generate(&($strategy), &mut rng);)+
                // Render inputs before the body, which may consume them.
                let mut inputs = ::std::string::String::new();
                $(inputs.push_str(&format!("\n  {} = {:?}", stringify!($arg), &$arg));)+
                let result: ::std::result::Result<(), $crate::TestCaseError> = (|| {
                    $body
                    #[allow(unreachable_code)]
                    Ok(())
                })();
                if let Err(e) = result {
                    panic!(
                        "property `{}` failed at case {}/{}: {}\ninputs:{}",
                        stringify!($name),
                        case + 1,
                        config.cases,
                        e,
                        inputs,
                    );
                }
            }
        }
        $crate::__proptest_impl! { ($config); $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn char_class_parses() {
        let (class, lo, hi) = super::parse_char_class("[a-c9.]{1,4}").unwrap();
        assert_eq!(class, vec!['a', 'b', 'c', '9', '.']);
        assert_eq!((lo, hi), (1, 4));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_respected(x in 3u64..10, y in -5i32..=5) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((-5..=5).contains(&y));
        }

        #[test]
        fn vec_lengths_respected(v in super::collection::vec(super::any::<u8>(), 2..6)) {
            prop_assert!((2..6).contains(&v.len()), "len {}", v.len());
        }

        #[test]
        fn btree_sets_are_sets(s in super::collection::btree_set(0u64..50, 1..10)) {
            prop_assert!(!s.is_empty());
            prop_assert!(s.iter().all(|&x| x < 50));
        }

        #[test]
        fn string_strategy_matches_class(s in "[a-f0-9]{1,8}") {
            prop_assert!(!s.is_empty() && s.len() <= 8);
            prop_assert!(s.chars().all(|c| c.is_ascii_hexdigit() && !c.is_uppercase()));
        }

        #[test]
        fn tuples_generate(pair in (0u8..4, 10usize..20)) {
            prop_assert!(pair.0 < 4 && (10..20).contains(&pair.1));
        }

        #[test]
        fn floats_in_range(x in -2.5f64..2.5) {
            prop_assert!((-2.5..2.5).contains(&x));
        }
    }

    #[test]
    #[should_panic(expected = "property `failing` failed")]
    fn failures_report_inputs() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(8))]
            fn failing(x in 0u8..200) {
                prop_assert!(x > 250, "x was {}", x);
            }
        }
        failing();
    }
}
