//! Workspace-local stand-in for `criterion`.
//!
//! Implements the `criterion_group!` / `criterion_main!` / `bench_function`
//! surface as a plain timing loop: warm up, run `sample_size` samples,
//! report min / mean / max wall time per iteration. No statistics engine,
//! no HTML reports — just enough to keep the workspace's benches runnable
//! offline with stable output.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Benchmark driver configuration.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { sample_size: 30 }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one named benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            sample_size: self.sample_size,
            samples: Vec::new(),
        };
        f(&mut bencher);
        bencher.report(name);
        self
    }
}

/// Collects timing samples for one benchmark.
pub struct Bencher {
    sample_size: usize,
    samples: Vec<Duration>,
}

/// How batched inputs are sized (accepted for API compatibility).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per iteration.
    PerIteration,
}

impl Bencher {
    /// Times repeated calls of `routine`.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warmup.
        for _ in 0..3.min(self.sample_size) {
            black_box(routine());
        }
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
        }
    }

    /// Times `routine` over fresh inputs from `setup`, excluding setup time.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let input = setup();
        black_box(routine(input));
        for _ in 0..self.sample_size {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.samples.push(start.elapsed());
        }
    }

    fn report(&self, name: &str) {
        if self.samples.is_empty() {
            println!("{name:<40} (no samples)");
            return;
        }
        let total: Duration = self.samples.iter().sum();
        let mean = total / self.samples.len() as u32;
        let min = self.samples.iter().min().expect("non-empty");
        let max = self.samples.iter().max().expect("non-empty");
        println!(
            "{name:<40} {:>12} .. {:>12} .. {:>12}  ({} samples)",
            fmt_duration(*min),
            fmt_duration(mean),
            fmt_duration(*max),
            self.samples.len()
        );
    }
}

fn fmt_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.2} µs", nanos as f64 / 1e3)
    } else if nanos < 1_000_000_000 {
        format!("{:.2} ms", nanos as f64 / 1e6)
    } else {
        format!("{:.2} s", nanos as f64 / 1e9)
    }
}

/// Declares a benchmark group as a function running each target.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            $(
                let mut criterion: $crate::Criterion = $config;
                $target(&mut criterion);
            )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares `main` running the given benchmark groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_collects_samples() {
        let mut c = Criterion::default().sample_size(5);
        let mut runs = 0usize;
        c.bench_function("noop", |b| {
            b.iter(|| {
                runs += 1;
            })
        });
        assert!(runs >= 5);
    }

    #[test]
    fn iter_batched_runs_setup_per_sample() {
        let mut c = Criterion::default().sample_size(4);
        let mut setups = 0usize;
        c.bench_function("batched", |b| {
            b.iter_batched(
                || {
                    setups += 1;
                    vec![1u8; 8]
                },
                |v| v.len(),
                BatchSize::SmallInput,
            )
        });
        assert!(setups >= 4);
    }

    #[test]
    fn duration_formatting() {
        assert_eq!(fmt_duration(Duration::from_nanos(10)), "10 ns");
        assert_eq!(fmt_duration(Duration::from_micros(2)), "2.00 µs");
        assert_eq!(fmt_duration(Duration::from_millis(3)), "3.00 ms");
        assert_eq!(fmt_duration(Duration::from_secs(4)), "4.00 s");
    }
}
