//! Workspace-local stand-in for `parking_lot`.
//!
//! Wraps `std::sync` primitives behind the `parking_lot` API surface that
//! moc-system uses: guard-returning `lock()`/`read()`/`write()` without
//! poisoning (a poisoned std lock is recovered transparently, matching
//! parking_lot's no-poisoning semantics), and a [`Condvar`] whose `wait`
//! takes `&mut MutexGuard`.

use std::sync::PoisonError;
use std::time::Duration;

/// A mutual-exclusion lock without poisoning.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

/// RAII guard of a [`Mutex`].
pub struct MutexGuard<'a, T: ?Sized> {
    // `Option` so a Condvar can temporarily take the std guard during waits.
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    /// Creates a mutex.
    pub fn new(value: T) -> Self {
        Self {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: Some(self.inner.lock().unwrap_or_else(PoisonError::into_inner)),
        }
    }
}

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard present")
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard present")
    }
}

/// Result of a timed condition-variable wait.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult {
    timed_out: bool,
}

impl WaitTimeoutResult {
    /// Whether the wait ended because the timeout elapsed.
    pub fn timed_out(&self) -> bool {
        self.timed_out
    }
}

/// A condition variable pairing with [`Mutex`].
#[derive(Debug, Default)]
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    /// Creates a condition variable.
    pub fn new() -> Self {
        Self::default()
    }

    /// Blocks until notified, releasing the guard's lock while waiting.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.inner.take().expect("guard present");
        let inner = self
            .inner
            .wait(inner)
            .unwrap_or_else(PoisonError::into_inner);
        guard.inner = Some(inner);
    }

    /// Blocks until notified or `timeout` elapses.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let inner = guard.inner.take().expect("guard present");
        let (inner, result) = match self.inner.wait_timeout(inner, timeout) {
            Ok((g, r)) => (g, r),
            Err(poisoned) => {
                let (g, r) = poisoned.into_inner();
                (g, r)
            }
        };
        guard.inner = Some(inner);
        WaitTimeoutResult {
            timed_out: result.timed_out(),
        }
    }

    /// Wakes one waiting thread.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wakes all waiting threads.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

/// A reader-writer lock without poisoning.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

/// Shared read guard of a [`RwLock`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockReadGuard<'a, T>,
}

/// Exclusive write guard of a [`RwLock`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockWriteGuard<'a, T>,
}

impl<T> RwLock<T> {
    /// Creates a reader-writer lock.
    pub fn new(value: T) -> Self {
        Self {
            inner: std::sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard {
            inner: self.inner.read().unwrap_or_else(PoisonError::into_inner),
        }
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard {
            inner: self.inner.write().unwrap_or_else(PoisonError::into_inner),
        }
    }
}

impl<T: ?Sized> std::ops::Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> std::ops::Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> std::ops::DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_and_condvar_roundtrip() {
        let pair = Arc::new((Mutex::new(0u32), Condvar::new()));
        let p2 = pair.clone();
        let h = std::thread::spawn(move || {
            let (m, cv) = &*p2;
            let mut g = m.lock();
            *g = 7;
            cv.notify_all();
        });
        let (m, cv) = &*pair;
        let mut g = m.lock();
        while *g != 7 {
            cv.wait(&mut g);
        }
        drop(g);
        h.join().unwrap();
    }

    #[test]
    fn wait_for_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        let r = cv.wait_for(&mut g, Duration::from_millis(5));
        assert!(r.timed_out());
    }

    #[test]
    fn rwlock_reads_and_writes() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }
}
