//! Workspace-local stand-in for `rand`.
//!
//! Deterministic seeded pseudo-randomness for the simulation and training
//! lab: [`rngs::StdRng`] is a xoshiro256++ generator seeded through
//! SplitMix64, and [`RngExt`] provides the `random` / `random_range`
//! sampling surface the rest of the workspace uses. Everything here is
//! reproducible from the seed alone — there is no entropy source.

/// A source of random 64-bit words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Construction of a generator from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Creates a generator whose entire stream is determined by `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// Uniform sampling of a value of type `Self` from an RNG.
pub trait StandardValue {
    /// Samples one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardValue for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl StandardValue for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl StandardValue for u8 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 56) as u8
    }
}

impl StandardValue for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl StandardValue for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardValue for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// A range that can produce a uniform sample.
pub trait SampleRange {
    /// The sampled value type.
    type Output;
    /// Draws one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange for std::ops::Range<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }

        impl SampleRange for std::ops::RangeInclusive<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + (rng.next_u64() % (span + 1)) as $t
            }
        }
    )*};
}

impl_sample_range!(usize, u64, u32, u16, u8);

/// Convenience sampling methods available on every [`RngCore`].
pub trait RngExt: RngCore {
    /// Samples a value of type `T` from its standard distribution
    /// (uniform over the type's domain; `[0, 1)` for floats).
    fn random<T: StandardValue>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Samples uniformly from a range.
    fn random_range<Rg: SampleRange>(&mut self, range: Rg) -> Rg::Output
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.random::<f64>() < p
    }
}

impl<R: RngCore> RngExt for R {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++ seeded via
    /// SplitMix64. Fast, decent statistical quality, fully deterministic.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            Self { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn deterministic_from_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn floats_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: f64 = rng.random();
            assert!((0.0..1.0).contains(&x));
            let y: f32 = rng.random();
            assert!((0.0..1.0).contains(&y));
        }
    }

    #[test]
    fn f64_mean_is_near_half() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| rng.random::<f64>()).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [false; 5];
        for _ in 0..1000 {
            let v = rng.random_range(10usize..15);
            assert!((10..15).contains(&v));
            seen[v - 10] = true;
            let w = rng.random_range(0usize..=4);
            assert!(w <= 4);
        }
        assert!(seen.iter().all(|&s| s), "all range values hit");
    }

    #[test]
    fn random_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(5);
        let hits = (0..10_000).filter(|_| rng.random_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "got {hits}");
    }
}
