//! Workspace-local stand-in for `serde`.
//!
//! The workspace annotates types with `#[derive(Serialize, Deserialize)]`
//! to declare serializability, but no code path performs actual serde
//! serialization (there is no format crate in the graph). This stand-in
//! provides same-named marker traits and re-exports the no-op derives from
//! the companion `serde_derive` crate so the annotations compile
//! unchanged offline.

/// Marker trait standing in for `serde::Serialize`.
pub trait Serialize {}

/// Marker trait standing in for `serde::Deserialize`.
pub trait Deserialize<'de> {}

pub use serde_derive::{Deserialize, Serialize};
