//! Workspace-local stand-in for the `bytes` crate.
//!
//! The build environment has no access to crates.io, so this crate
//! provides the subset of the `bytes` API that moc-system uses:
//! cheaply-cloneable immutable [`Bytes`], a growable [`BytesMut`], and the
//! little-endian cursor traits [`Buf`] / [`BufMut`]. Semantics match the
//! upstream crate for that subset (shared-buffer clones, zero-copy
//! `slice`, advancing reads).

use std::ops::{Bound, Deref, RangeBounds};
use std::sync::Arc;

/// A cheaply cloneable, immutable, contiguous slice of memory.
#[derive(Clone)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// Creates an empty `Bytes`.
    pub fn new() -> Self {
        Self::from(Vec::new())
    }

    /// Creates `Bytes` from a static slice (copied once into shared storage).
    pub fn from_static(bytes: &'static [u8]) -> Self {
        Self::from(bytes.to_vec())
    }

    /// Copies a slice into new shared storage.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Self::from(data.to_vec())
    }

    /// Number of bytes.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// Returns a slice of self for the provided range, sharing the
    /// underlying storage.
    ///
    /// # Panics
    ///
    /// Panics when the range is out of bounds.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Self {
        let len = self.len();
        let begin = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let end = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => len,
        };
        assert!(begin <= end && end <= len, "slice out of bounds");
        Self {
            data: self.data.clone(),
            start: self.start + begin,
            end: self.start + end,
        }
    }

    /// Copies the bytes into a fresh `Vec`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }

    fn as_slice(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Self::new()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let end = v.len();
        Self {
            data: Arc::from(v),
            start: 0,
            end,
        }
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(s: &'static [u8]) -> Self {
        Self::from_static(s)
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl std::hash::Hash for Bytes {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state)
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_slice().iter().take(64) {
            for c in std::ascii::escape_default(b) {
                write!(f, "{}", c as char)?;
            }
        }
        if self.len() > 64 {
            write!(f, "..")?;
        }
        write!(f, "\"")
    }
}

/// A growable byte buffer that freezes into [`Bytes`].
#[derive(Debug, Default, Clone)]
pub struct BytesMut {
    buf: Vec<u8>,
}

impl BytesMut {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a buffer with the given capacity.
    pub fn with_capacity(cap: usize) -> Self {
        Self {
            buf: Vec::with_capacity(cap),
        }
    }

    /// Reserves space for at least `additional` more bytes.
    pub fn reserve(&mut self, additional: usize) {
        self.buf.reserve(additional);
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Converts into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.buf)
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.buf
    }
}

/// Read access to a byte cursor, advancing as integers are consumed.
pub trait Buf {
    /// Bytes remaining to read.
    fn remaining(&self) -> usize;

    /// The unread bytes.
    fn chunk(&self) -> &[u8];

    /// Advances the cursor by `cnt` bytes.
    ///
    /// # Panics
    ///
    /// Panics if fewer than `cnt` bytes remain.
    fn advance(&mut self, cnt: usize);

    /// Reads one byte.
    fn get_u8(&mut self) -> u8 {
        let b = self.chunk()[0];
        self.advance(1);
        b
    }

    /// Reads a little-endian `u16`.
    fn get_u16_le(&mut self) -> u16 {
        let mut raw = [0u8; 2];
        raw.copy_from_slice(&self.chunk()[..2]);
        self.advance(2);
        u16::from_le_bytes(raw)
    }

    /// Reads a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        let mut raw = [0u8; 4];
        raw.copy_from_slice(&self.chunk()[..4]);
        self.advance(4);
        u32::from_le_bytes(raw)
    }

    /// Reads a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        let mut raw = [0u8; 8];
        raw.copy_from_slice(&self.chunk()[..8]);
        self.advance(8);
        u64::from_le_bytes(raw)
    }

    /// Reads a little-endian `f32`.
    fn get_f32_le(&mut self) -> f32 {
        f32::from_bits(self.get_u32_le())
    }

    /// Reads a little-endian `f64`.
    fn get_f64_le(&mut self) -> f64 {
        f64::from_bits(self.get_u64_le())
    }

    /// Consumes `len` bytes into a new [`Bytes`].
    fn copy_to_bytes(&mut self, len: usize) -> Bytes;
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self.as_slice()
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance past end of buffer");
        self.start += cnt;
    }

    fn copy_to_bytes(&mut self, len: usize) -> Bytes {
        assert!(len <= self.len(), "copy_to_bytes past end of buffer");
        let out = self.slice(0..len);
        self.advance(len);
        out
    }
}

/// Write access to a growable byte sink.
pub trait BufMut {
    /// Appends a slice.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a little-endian `u16`.
    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `f32`.
    fn put_f32_le(&mut self, v: f32) {
        self.put_u32_le(v.to_bits());
    }

    /// Appends a little-endian `f64`.
    fn put_f64_le(&mut self, v: f64) {
        self.put_u64_le(v.to_bits());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.buf.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_ints() {
        let mut m = BytesMut::with_capacity(32);
        m.put_u32_le(0xDEAD_BEEF);
        m.put_u16_le(7);
        m.put_u8(3);
        m.put_u64_le(u64::MAX - 1);
        m.put_f32_le(1.5);
        let mut b = m.freeze();
        assert_eq!(b.remaining(), 4 + 2 + 1 + 8 + 4);
        assert_eq!(b.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(b.get_u16_le(), 7);
        assert_eq!(b.get_u8(), 3);
        assert_eq!(b.get_u64_le(), u64::MAX - 1);
        assert_eq!(b.get_f32_le(), 1.5);
        assert_eq!(b.remaining(), 0);
    }

    #[test]
    fn slice_shares_storage() {
        let b = Bytes::from(vec![1, 2, 3, 4, 5]);
        let s = b.slice(1..4);
        assert_eq!(&s[..], &[2, 3, 4]);
        assert_eq!(b.len(), 5);
        let tail = s.slice(2..);
        assert_eq!(&tail[..], &[4]);
    }

    #[test]
    fn copy_to_bytes_advances() {
        let mut b = Bytes::from(vec![9, 8, 7, 6]);
        let head = b.copy_to_bytes(2);
        assert_eq!(&head[..], &[9, 8]);
        assert_eq!(&b[..], &[7, 6]);
    }

    #[test]
    fn equality_and_debug() {
        let a = Bytes::from_static(b"abc");
        assert_eq!(a, Bytes::from(vec![b'a', b'b', b'c']));
        assert_eq!(format!("{a:?}"), "b\"abc\"");
    }
}
