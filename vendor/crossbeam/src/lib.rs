//! Workspace-local stand-in for `crossbeam`.
//!
//! Provides the multi-producer multi-consumer [`channel`] subset the
//! moc-system runtime and checkpoint agents use. Built on a mutex-guarded
//! deque plus a condition variable; disconnect semantics mirror upstream:
//! `recv` fails once every sender is gone and the queue is drained, `send`
//! fails once every receiver is gone.

pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::{Arc, Condvar, Mutex, PoisonError};
    use std::time::{Duration, Instant};

    struct State<T> {
        queue: VecDeque<T>,
        senders: usize,
        receivers: usize,
    }

    struct Shared<T> {
        state: Mutex<State<T>>,
        ready: Condvar,
    }

    impl<T> Shared<T> {
        fn lock(&self) -> std::sync::MutexGuard<'_, State<T>> {
            self.state.lock().unwrap_or_else(PoisonError::into_inner)
        }
    }

    /// Error returned by `send` when every receiver has been dropped.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("sending on a disconnected channel")
        }
    }

    /// Error returned by `recv` when the channel is empty and disconnected.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("receiving on an empty, disconnected channel")
        }
    }

    impl std::error::Error for RecvError {}

    /// Error returned by `try_recv`.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// The channel is currently empty.
        Empty,
        /// The channel is empty and every sender is gone.
        Disconnected,
    }

    /// Error returned by `recv_timeout`.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// No message arrived before the timeout elapsed.
        Timeout,
        /// The channel is empty and every sender is gone.
        Disconnected,
    }

    /// The sending half of an unbounded mpmc channel.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// The receiving half of an unbounded mpmc channel.
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    /// Creates an unbounded mpmc channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                queue: VecDeque::new(),
                senders: 1,
                receivers: 1,
            }),
            ready: Condvar::new(),
        });
        (
            Sender {
                shared: shared.clone(),
            },
            Receiver { shared },
        )
    }

    impl<T> Sender<T> {
        /// Enqueues a message.
        ///
        /// # Errors
        ///
        /// Returns the message back if every receiver has been dropped.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut state = self.shared.lock();
            if state.receivers == 0 {
                return Err(SendError(value));
            }
            state.queue.push_back(value);
            drop(state);
            self.shared.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared.lock().senders += 1;
            Self {
                shared: self.shared.clone(),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut state = self.shared.lock();
            state.senders -= 1;
            let disconnected = state.senders == 0;
            drop(state);
            if disconnected {
                self.shared.ready.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Blocks until a message arrives.
        ///
        /// # Errors
        ///
        /// Fails once the channel is empty and every sender is gone.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut state = self.shared.lock();
            loop {
                if let Some(v) = state.queue.pop_front() {
                    return Ok(v);
                }
                if state.senders == 0 {
                    return Err(RecvError);
                }
                state = self
                    .shared
                    .ready
                    .wait(state)
                    .unwrap_or_else(PoisonError::into_inner);
            }
        }

        /// Non-blocking receive.
        ///
        /// # Errors
        ///
        /// [`TryRecvError::Empty`] when no message is queued,
        /// [`TryRecvError::Disconnected`] when additionally every sender is
        /// gone.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut state = self.shared.lock();
            if let Some(v) = state.queue.pop_front() {
                return Ok(v);
            }
            if state.senders == 0 {
                Err(TryRecvError::Disconnected)
            } else {
                Err(TryRecvError::Empty)
            }
        }

        /// Blocks until a message arrives or `timeout` elapses.
        ///
        /// # Errors
        ///
        /// [`RecvTimeoutError::Timeout`] when the deadline passes,
        /// [`RecvTimeoutError::Disconnected`] when the channel is drained
        /// and every sender is gone.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut state = self.shared.lock();
            loop {
                if let Some(v) = state.queue.pop_front() {
                    return Ok(v);
                }
                if state.senders == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (guard, _result) = self
                    .shared
                    .ready
                    .wait_timeout(state, deadline - now)
                    .unwrap_or_else(PoisonError::into_inner);
                state = guard;
            }
        }

        /// Number of messages currently queued.
        pub fn len(&self) -> usize {
            self.shared.lock().queue.len()
        }

        /// Whether the queue is currently empty.
        pub fn is_empty(&self) -> bool {
            self.shared.lock().queue.is_empty()
        }

        /// A blocking iterator draining the channel until disconnect.
        pub fn iter(&self) -> Iter<'_, T> {
            Iter { receiver: self }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.shared.lock().receivers += 1;
            Self {
                shared: self.shared.clone(),
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.shared.lock().receivers -= 1;
        }
    }

    /// Blocking iterator over received messages.
    pub struct Iter<'a, T> {
        receiver: &'a Receiver<T>,
    }

    impl<T> Iterator for Iter<'_, T> {
        type Item = T;
        fn next(&mut self) -> Option<T> {
            self.receiver.recv().ok()
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn send_recv_in_order() {
            let (tx, rx) = unbounded();
            tx.send(1).unwrap();
            tx.send(2).unwrap();
            assert_eq!(rx.recv(), Ok(1));
            assert_eq!(rx.recv(), Ok(2));
            assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
        }

        #[test]
        fn disconnect_on_sender_drop() {
            let (tx, rx) = unbounded::<u8>();
            tx.send(9).unwrap();
            drop(tx);
            assert_eq!(rx.recv(), Ok(9));
            assert_eq!(rx.recv(), Err(RecvError));
            assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
        }

        #[test]
        fn send_fails_without_receivers() {
            let (tx, rx) = unbounded::<u8>();
            drop(rx);
            assert_eq!(tx.send(1), Err(SendError(1)));
        }

        #[test]
        fn recv_timeout_expires() {
            let (_tx, rx) = unbounded::<u8>();
            let r = rx.recv_timeout(Duration::from_millis(10));
            assert_eq!(r, Err(RecvTimeoutError::Timeout));
        }

        #[test]
        fn cross_thread_delivery() {
            let (tx, rx) = unbounded();
            let h = std::thread::spawn(move || {
                for i in 0..100 {
                    tx.send(i).unwrap();
                }
            });
            let got: Vec<i32> = rx.iter().collect();
            h.join().unwrap();
            assert_eq!(got, (0..100).collect::<Vec<_>>());
        }
    }
}
