//! Integration test: the discrete-event checkpoint simulator agrees with
//! the analytic timeline model on stall behaviour, closing the loop
//! between Fig. 9's buffer mechanics and Fig. 11/12's closed forms.

use moc_system::cluster::events::{simulate, EventSimConfig};
use moc_system::cluster::timeline::{MethodSpec, TimelineModel};
use moc_system::cluster::{ClusterSpec, IterationWorkload};
use moc_system::core::ParallelTopology;
use moc_system::moe::presets;

#[test]
fn event_sim_matches_analytic_stall_model() {
    let tm = TimelineModel::new(
        presets::gpt_350m_16e(),
        ParallelTopology::case1(),
        ClusterSpec::a800(),
        IterationWorkload::default_case(),
    );
    for method in [
        MethodSpec::base_async(),
        MethodSpec::moc_async(4, 1),
        MethodSpec::fully_sharded_k(16),
    ] {
        let t = tm.timeline(&method);
        let report = simulate(&EventSimConfig {
            fb_sec: t.fb_sec,
            update_sec: t.update_sec,
            snapshot_sec: t.snapshot_sec,
            persist_sec: t.persist_sec,
            i_ckpt: 8,
            iterations: 128,
        });
        let checkpoints = report.requested_checkpoints as f64;
        // The final checkpoint's snapshot drains in the tail without a
        // following update to stall, so (n-1) stall windows apply.
        let analytic_stall = (t.snapshot_sec - t.fb_sec).max(0.0) * (checkpoints - 1.0);
        // The event simulation may add storage-backpressure stalls on top
        // of the snapshot-overrun stalls the closed form captures.
        assert!(
            report.stall_sec + 1e-6 >= analytic_stall,
            "{}: event stall {} < analytic {}",
            method.label,
            report.stall_sec,
            analytic_stall
        );
        let slack = 0.15 * checkpoints * (t.snapshot_sec + t.persist_sec) + 1e-6;
        assert!(
            report.stall_sec <= analytic_stall + checkpoints * t.persist_sec + slack,
            "{}: event stall {} far above analytic {}",
            method.label,
            report.stall_sec,
            analytic_stall
        );
    }
}

#[test]
fn event_sim_effective_interval_obeys_persist_bound() {
    let tm = TimelineModel::new(
        presets::gpt_350m_16e(),
        ParallelTopology::case2(),
        ClusterSpec::a800(),
        IterationWorkload::default_case(),
    );
    let t = tm.timeline(&MethodSpec::base_async());
    let report = simulate(&EventSimConfig {
        fb_sec: t.fb_sec,
        update_sec: t.update_sec,
        snapshot_sec: t.snapshot_sec,
        persist_sec: t.persist_sec,
        i_ckpt: 1, // request every iteration: storage becomes the bottleneck
        iterations: 64,
    });
    assert!(
        report.effective_interval_sec + 1e-6 >= t.min_interval_sec,
        "interval {} below persist bound {}",
        report.effective_interval_sec,
        t.min_interval_sec
    );
}
