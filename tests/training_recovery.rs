//! Integration tests of the real-training fault path: checkpoint state
//! really round-trips, PEC really loses updates, and accuracy effects
//! follow the paper's direction.

use moc_system::store::FaultEvent;
use moc_system::train::harness::{
    run_experiment, run_experiment_with_model, FaultToleranceConfig, TrainConfig,
};
use moc_system::train::{downstream_suite, MarkovCorpus, PecMode};

fn quick() -> TrainConfig {
    TrainConfig {
        batch: 4,
        seq_len: 16,
        total_iterations: 80,
        eval_every: 40,
        ..TrainConfig::tiny_8e()
    }
}

#[test]
fn identical_seeds_reproduce_runs_exactly() {
    let train = quick();
    let ft = FaultToleranceConfig::pec(
        &train.model,
        2,
        1,
        PecMode::WO,
        true,
        10,
        vec![FaultEvent {
            iteration: 45,
            node: 0,
        }],
    );
    let a = run_experiment(&train, &ft);
    let b = run_experiment(&train, &ft);
    assert_eq!(a, b, "whole runs must be bit-deterministic");
}

#[test]
fn plt_ordering_matches_paper_fig5() {
    // Smaller K and larger I_ckpt => more PLT.
    let train = quick();
    let fault = vec![FaultEvent {
        iteration: 45,
        node: 0,
    }];
    let plt_of = |k: usize, ickpt: u64| {
        run_experiment(
            &train,
            &FaultToleranceConfig::pec(
                &train.model,
                k,
                k,
                PecMode::WO,
                false,
                ickpt,
                fault.clone(),
            ),
        )
        .plt
    };
    let k1 = plt_of(1, 10);
    let k4 = plt_of(4, 10);
    assert!(k1 > k4, "K=1 {k1} vs K=4 {k4}");
    let i5 = plt_of(2, 5);
    let i20 = plt_of(2, 20);
    assert!(i20 > i5, "I=20 {i20} vs I=5 {i5}");
}

#[test]
fn lossy_recovery_keeps_accuracy_in_family() {
    // Fig. 14(a): W/O/WO loss curves remain comparable to the baseline.
    let train = TrainConfig {
        total_iterations: 120,
        eval_every: 120,
        ..quick()
    };
    let faults = vec![FaultEvent {
        iteration: 65,
        node: 0,
    }];
    let base = run_experiment(
        &train,
        &FaultToleranceConfig::baseline(&train.model, 10, faults.clone()),
    )
    .final_val_loss;
    for mode in [PecMode::W, PecMode::O, PecMode::WO] {
        let lossy = run_experiment(
            &train,
            &FaultToleranceConfig::pec(&train.model, 2, 1, mode, true, 10, faults.clone()),
        )
        .final_val_loss;
        let gap = (lossy - base).abs() / base;
        assert!(
            gap < 0.15,
            "mode {mode:?}: loss {lossy} vs baseline {base} (gap {gap})"
        );
    }
}

#[test]
fn downstream_probes_improve_with_training() {
    let train = TrainConfig {
        total_iterations: 160,
        eval_every: 160,
        ..TrainConfig::tiny_8e()
    };
    let corpus = MarkovCorpus::new(train.model.vocab_size(), train.topics, train.seed);
    let (_, mut trained) = run_experiment_with_model(
        &train,
        &FaultToleranceConfig::baseline(&train.model, 40, vec![]),
    );
    let mut untrained = moc_system::train::TinyMoeLm::new(train.model.clone(), train.seed);
    let acc_trained: f64 = downstream_suite(&mut trained, &corpus, 2, 12).iter().sum();
    let acc_untrained: f64 = downstream_suite(&mut untrained, &corpus, 2, 12)
        .iter()
        .sum();
    assert!(
        acc_trained > acc_untrained,
        "training must beat init: {acc_trained} vs {acc_untrained}"
    );
}
