//! Integration tests of the moc-obs tracing subsystem against the live
//! runtime: a fault-injection run produces a Perfetto-loadable
//! `trace.json` whose flow arrows connect the injected fault to the
//! recovery spans and a flight-recorder dump holding the dead node's
//! final spans; the flight recorder survives elastic shrink; and a
//! disabled-obs run records nothing and stays on the enabled run's
//! bitwise trajectory.

use moc_system::core::ParallelTopology;
use moc_system::obs::{BlameCategory, Counter, IncidentKind, Json};
use moc_system::runtime::{
    CollectiveKind, Coordinator, ElasticConfig, ObsConfig, RunSummary, RuntimeConfig,
};
use moc_system::store::{FaultEvent, FaultPlan, MemoryObjectStore};
use moc_system::train::PecMode;
use std::sync::Arc;
use std::time::Duration;

fn topo() -> ParallelTopology {
    // 2 nodes × 2 GPUs, DP = EP = 4: ranks 0-1 on node 0, 2-3 on node 1.
    ParallelTopology::dp_ep(2, 2, 4, 4).unwrap()
}

fn base_config() -> RuntimeConfig {
    RuntimeConfig {
        total_iterations: 12,
        i_ckpt: 4,
        eval_every: 6,
        seq_len: 16,
        heartbeat_timeout: Duration::from_millis(800),
        ..RuntimeConfig::tiny(topo())
    }
}

fn run(config: RuntimeConfig) -> RunSummary {
    Coordinator::new(config, Arc::new(MemoryObjectStore::new()))
        .unwrap()
        .run()
        .unwrap()
}

/// One "X" slice pulled out of the rendered trace document.
struct Slice {
    pid: u64,
    tid: u64,
    name: String,
    ts: f64,
    dur: f64,
}

fn slices(doc: &Json) -> Vec<Slice> {
    doc.get("traceEvents")
        .and_then(Json::as_array)
        .expect("traceEvents array")
        .iter()
        .filter(|e| e.get("ph").and_then(Json::as_str) == Some("X"))
        .map(|e| Slice {
            pid: e.get("pid").and_then(Json::as_u64).expect("pid"),
            tid: e.get("tid").and_then(Json::as_u64).expect("tid"),
            name: e.get("name").and_then(Json::as_str).expect("name").into(),
            ts: e.get("ts").and_then(Json::as_f64).expect("ts"),
            dur: e.get("dur").and_then(Json::as_f64).expect("dur"),
        })
        .collect()
}

/// The acceptance scenario: a node kill mid-run produces a valid
/// Chrome-trace document whose fault flow arrows connect
/// `fault-injected` → `fault-detected` → `recovery`, whose per-thread
/// timestamps are monotonic with properly nested spans, and whose
/// checkpoint-submit flows land on engine persist spans; the flight
/// recorder dumps at suspicion and at declaration, the latter holding
/// the dead ranks' final compute spans.
#[test]
fn fault_trace_links_injection_to_recovery() {
    let dir = std::env::temp_dir().join(format!("moc-obs-live-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let trace_path = dir.join("trace.json");
    let summary = run(RuntimeConfig {
        faults: FaultPlan::At(vec![FaultEvent {
            iteration: 7,
            node: 1,
        }]),
        obs: ObsConfig::with_trace(trace_path.clone()),
        ..base_config()
    });
    assert_eq!(summary.recoveries, 1);
    assert!(summary.obs.enabled);
    assert!(summary.obs.spans_recorded > 0);
    assert_eq!(
        summary.obs.trace_path.as_deref(),
        Some(trace_path.as_path())
    );

    let text = std::fs::read_to_string(&trace_path).expect("trace.json written");
    let doc = Json::parse(&text).expect("trace.json is valid JSON");
    let slices = slices(&doc);
    assert!(!slices.is_empty());

    // Per-thread timestamps are monotonic and spans nest properly: a
    // span starting inside an open span must also end inside it.
    let mut threads: std::collections::BTreeMap<(u64, u64), Vec<&Slice>> = Default::default();
    for s in &slices {
        threads.entry((s.pid, s.tid)).or_default().push(s);
    }
    for ((pid, tid), spans) in &threads {
        let mut open: Vec<&Slice> = Vec::new();
        for pair in spans.windows(2) {
            assert!(
                pair[1].ts >= pair[0].ts,
                "thread ({pid},{tid}): timestamps must be monotonic"
            );
        }
        for s in spans {
            while let Some(top) = open.last() {
                if s.ts >= top.ts + top.dur {
                    open.pop();
                } else {
                    break;
                }
            }
            if let Some(top) = open.last() {
                // 1 µs slack: ts/dur are serialized at ns resolution.
                assert!(
                    s.ts + s.dur <= top.ts + top.dur + 1.0,
                    "thread ({pid},{tid}): '{}' must nest inside '{}'",
                    s.name,
                    top.name
                );
            }
            open.push(s);
        }
    }

    // Flow arrows: collect (phase, id, ts) triples from the flow events.
    let events = doc.get("traceEvents").and_then(Json::as_array).unwrap();
    let flows: Vec<(&str, u64, f64)> = events
        .iter()
        .filter(|e| e.get("cat").and_then(Json::as_str) == Some("flow"))
        .map(|e| {
            (
                e.get("ph").and_then(Json::as_str).unwrap(),
                e.get("id").and_then(Json::as_u64).unwrap(),
                e.get("ts").and_then(Json::as_f64).unwrap(),
            )
        })
        .collect();

    // The fault flow (small ids): one start at the injection, a step at
    // detection, and a finish binding inside the recovery slice.
    let fault_ids: Vec<u64> = flows
        .iter()
        .filter(|(ph, id, _)| *ph == "s" && *id < 1_000_000_000)
        .map(|(_, id, _)| *id)
        .collect();
    assert_eq!(fault_ids.len(), 1, "one fault flow start");
    let fid = fault_ids[0];
    assert!(
        flows.iter().any(|(ph, id, _)| *ph == "t" && *id == fid),
        "fault-detected step on the fault flow"
    );
    let (_, _, finish_ts) = *flows
        .iter()
        .find(|(ph, id, _)| *ph == "f" && *id == fid)
        .expect("recovery finish on the fault flow");
    let recovery = slices
        .iter()
        .find(|s| s.name == "recovery")
        .expect("recovery slice");
    assert!(
        finish_ts >= recovery.ts && finish_ts <= recovery.ts + recovery.dur,
        "fault flow must terminate inside the recovery slice"
    );

    // Checkpoint flows (large ids): every submit start reaches an engine
    // persist finish.
    for (ph, id, _) in flows.iter().filter(|(_, id, _)| *id >= 1_000_000_000) {
        if *ph == "s" {
            assert!(
                flows.iter().any(|(p, i, _)| *p == "f" && i == id),
                "ckpt-submit flow {id} must end at a persist span"
            );
        }
    }

    // The flight recorder fired twice — once when the silent ranks were
    // first *suspected* (evidence captured while still fresh) and once
    // at declaration — and the declaration dump captured the dead
    // node's ranks (node 1 hosts ranks 2 and 3) with their final
    // compute span at the kill iteration.
    assert_eq!(summary.obs.flight_dumps.len(), 2);
    assert!(
        summary.obs.flight_dumps[0].reason.contains("suspected"),
        "{}",
        summary.obs.flight_dumps[0].reason
    );
    let dump = &summary.obs.flight_dumps[1];
    assert!(dump.reason.contains("iteration 7"), "{}", dump.reason);
    for dead_rank in [2u32, 3u32] {
        let thread = dump
            .threads
            .iter()
            .find(|t| t.pid == 1 && t.tid == dead_rank)
            .unwrap_or_else(|| panic!("dead rank {dead_rank} missing from flight dump"));
        let last_compute = thread
            .events
            .iter()
            .rev()
            .find(|e| e.name == "compute")
            .expect("dead rank's final compute span survived in the ring");
        assert_eq!(last_compute.iteration, 7, "killed mid-iteration 7");
    }
    for path in [dump.json_path.as_ref(), dump.text_path.as_ref()] {
        let path = path.expect("dump written next to trace.json");
        assert!(path.exists(), "{} missing", path.display());
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// Elastic runs keep dumping: a shrink (node 1 dies at 5) and a later
/// total-loss respawn (node 0 dies at 9) each produce exactly one
/// flight dump, and the rings survive the retirement and respawn of
/// rank threads in between.
#[test]
fn flight_recorder_survives_elastic_shrink() {
    let summary = run(RuntimeConfig {
        eval_every: 0,
        k_snapshot: 4,
        k_persist: 4,
        pec_mode: PecMode::NONE,
        collective: CollectiveKind::Ring,
        elastic: ElasticConfig::shrink(1),
        faults: FaultPlan::At(vec![
            FaultEvent {
                iteration: 5,
                node: 1,
            },
            FaultEvent {
                iteration: 9,
                node: 0,
            },
        ]),
        obs: ObsConfig::enabled(),
        ..base_config()
    });
    assert_eq!(summary.elastic_shrinks, 1);
    assert_eq!(summary.recoveries, 2);
    assert_eq!(
        summary.obs.flight_dumps.len(),
        2 * summary.recoveries as usize,
        "one suspicion dump plus one declaration dump per detected fault"
    );
    let mut seqs: Vec<u64> = summary.obs.flight_dumps.iter().map(|d| d.seq).collect();
    seqs.dedup();
    assert_eq!(seqs.len(), 4, "dump sequence numbers are unique");
    for dump in &summary.obs.flight_dumps {
        assert!(
            dump.threads.iter().any(|t| !t.events.is_empty()),
            "each dump snapshots recorded spans"
        );
        assert!(dump.json_path.is_none(), "no trace path, no files");
    }
}

/// The disabled hot path: an obs-off run records zero spans, takes no
/// dumps, stays bitwise on the enabled run's trajectory, and its mean
/// iteration time is within noise of the enabled run's.
#[test]
fn disabled_obs_records_nothing_and_preserves_the_run() {
    let enabled = run(RuntimeConfig {
        obs: ObsConfig::enabled(),
        ..base_config()
    });
    let disabled = run(base_config());

    assert!(!disabled.obs.enabled);
    assert_eq!(disabled.obs.spans_recorded, 0);
    assert!(disabled.obs.flight_dumps.is_empty());
    assert!(disabled.obs.trace_path.is_none());
    assert!(enabled.obs.spans_recorded > 0);

    let enabled_bits: Vec<u32> = enabled.final_params.iter().map(|x| x.to_bits()).collect();
    let disabled_bits: Vec<u32> = disabled.final_params.iter().map(|x| x.to_bits()).collect();
    assert_eq!(
        enabled_bits, disabled_bits,
        "observability must not perturb the numerics"
    );

    // Within noise: generous bound so a loaded CI host cannot flake —
    // the real claim (one branch on the hot path) is the bitwise check
    // plus this sanity ceiling.
    let e = enabled.mean_iteration_secs();
    let d = disabled.mean_iteration_secs();
    assert!(
        d < 10.0 * e + 0.05 && e < 10.0 * d + 0.05,
        "mean iteration enabled {e:.6}s vs disabled {d:.6}s out of range"
    );
}

/// The live telemetry plane: a telemetry-enabled run streams samples
/// whose totals agree with the run's own counters, lands
/// `telemetry.prom` + `telemetry.json` in the trace dir, stays bitwise
/// identical to a telemetry-off run (sampling is read-only), and its
/// mean iteration time stays within noise of the disabled run's.
#[test]
fn telemetry_streams_counters_without_perturbing_the_run() {
    let dir = std::env::temp_dir().join(format!("moc-obs-telemetry-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let live = run(RuntimeConfig {
        obs: ObsConfig::with_trace(dir.join("trace.json")).with_telemetry(Duration::from_millis(5)),
        ..base_config()
    });
    let off = run(base_config());

    let telemetry = live.obs.telemetry.as_ref().expect("telemetry report");
    assert!(
        !telemetry.samples.is_empty(),
        "sampler must have taken at least the final snapshot"
    );
    let totals = telemetry.totals();
    assert_eq!(
        totals.value(Counter::Iterations),
        live.iterations_executed,
        "telemetry iteration count matches the run"
    );
    assert!(totals.value(Counter::CkptBytes) > 0, "checkpoints counted");
    assert!(
        totals.value(Counter::PersistedBytes) > 0,
        "engine persisted-bytes probe sampled"
    );
    assert!(
        totals.scaled(Counter::ComputeNanos) > 0.0,
        "rank compute time accumulated"
    );
    assert_eq!(totals.value(Counter::Recoveries), 0, "fault-free run");

    // Artifacts land next to the trace.
    let prom_path = telemetry.prom_path.as_ref().expect("prom snapshot path");
    let prom = std::fs::read_to_string(prom_path).expect("telemetry.prom written");
    assert!(prom.contains("# TYPE moc_iterations_total counter"));
    assert!(prom.contains(&format!(
        "moc_iterations_total {}",
        live.iterations_executed
    )));
    let json_path = telemetry.json_path.as_ref().expect("series path");
    let series = Json::parse(&std::fs::read_to_string(json_path).expect("telemetry.json written"))
        .expect("valid JSON");
    let samples = series
        .get("samples")
        .and_then(Json::as_array)
        .expect("samples array");
    assert_eq!(samples.len(), telemetry.samples.len());

    // Read-only sampling: the trajectory is bitwise that of a run with
    // the whole plane off, and the overhead stays within noise.
    let live_bits: Vec<u32> = live.final_params.iter().map(|x| x.to_bits()).collect();
    let off_bits: Vec<u32> = off.final_params.iter().map(|x| x.to_bits()).collect();
    assert_eq!(live_bits, off_bits, "telemetry must not perturb numerics");
    let e = live.mean_iteration_secs();
    let d = off.mean_iteration_secs();
    assert!(
        e < 10.0 * d + 0.05 && d < 10.0 * e + 0.05,
        "mean iteration telemetry-on {e:.6}s vs off {d:.6}s out of range"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// The critical-path analyzer's core accounting invariant, pinned
/// against a live fault-free run: every iteration window's attributed
/// time sums to its measured wall time within 5 %, the windows tile the
/// measured training loop within 5 %, and compute dominates a clean
/// run's aggregate blame.
#[test]
fn blame_attribution_sums_to_measured_wall_time() {
    let summary = run(RuntimeConfig {
        total_iterations: 16,
        obs: ObsConfig::enabled(),
        ..base_config()
    });
    let blame = summary.obs.blame.as_ref().expect("blame report");

    for window in &blame.iterations {
        let attributed = window.attributed_total_secs();
        assert!(
            (attributed - window.wall_secs).abs() <= 0.05 * window.wall_secs.max(1e-9),
            "window ({}, {}): attributed {attributed:.6}s vs wall {:.6}s",
            window.epoch,
            window.iteration,
            window.wall_secs
        );
    }

    // Windows at iteration >= 1 tile the measured training loop: the
    // only uncovered time is the channel handoff between iterations.
    let covered: f64 = blame
        .iterations
        .iter()
        .filter(|w| w.iteration >= 1)
        .map(|w| w.wall_secs)
        .sum();
    assert!(
        (covered - summary.loop_secs).abs() <= 0.05 * summary.loop_secs,
        "blame windows cover {covered:.6}s of a {:.6}s loop",
        summary.loop_secs
    );

    assert!(blame.incidents.is_empty(), "no chaos, no incidents");
    let compute = blame.aggregate_secs(BlameCategory::Compute);
    for waity in [
        BlameCategory::RingWait,
        BlameCategory::TpSync,
        BlameCategory::PpWait,
        BlameCategory::Recovery,
    ] {
        assert!(
            compute > blame.aggregate_secs(waity),
            "clean run: compute must dominate {waity:?}"
        );
    }
    assert!(blame.clean_median_secs > 0.0);

    // The per-rank breakdown covers every rank lane plus the
    // coordinator, with compute time on every rank.
    assert_eq!(summary.obs.per_rank.len(), 5, "4 ranks + control plane");
    for lane in summary.obs.per_rank.iter().filter(|l| l.tid < 1_000_000) {
        if lane.label.contains("rank") {
            assert!(lane.compute_secs > 0.0, "{} computed", lane.label);
        }
    }
}

/// Incident correlation: a node kill shows up in the blame report as a
/// recovery incident whose measured disruption and excess latency are
/// positive, and the recovery epoch splits the re-executed iterations
/// into separate windows rather than smearing them together.
#[test]
fn incidents_attribute_fault_latency() {
    let dir = std::env::temp_dir().join(format!("moc-obs-incident-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let summary = run(RuntimeConfig {
        faults: FaultPlan::At(vec![FaultEvent {
            iteration: 7,
            node: 1,
        }]),
        obs: ObsConfig::with_trace(dir.join("trace.json")).with_telemetry(Duration::from_millis(5)),
        ..base_config()
    });
    assert_eq!(summary.recoveries, 1);
    let blame = summary.obs.blame.as_ref().expect("blame report");

    let recovery_incident = blame
        .incidents
        .iter()
        .find(|i| i.kind == IncidentKind::Recovery)
        .expect("the kill must surface as a recovery incident");
    assert!(recovery_incident.disruption_secs > 0.0);
    assert!(
        blame.aggregate_secs(BlameCategory::Recovery) > 0.0,
        "recovery time attributed in the aggregate"
    );

    // Epoch splitting: the re-executed iterations appear in both epoch
    // 0 (pre-fault) and epoch 1 (post-recovery) without double counting
    // inside one window.
    assert!(
        blame.iterations.iter().any(|w| w.epoch == 1),
        "post-recovery windows carry the next epoch"
    );
    let blame_path = summary.obs.blame_path.as_ref().expect("blame.json path");
    let doc = Json::parse(&std::fs::read_to_string(blame_path).expect("blame.json written"))
        .expect("valid JSON");
    assert!(doc.get("categories").is_some());
    assert!(doc.get("incidents").is_some());
    let _ = std::fs::remove_dir_all(&dir);
}
