//! Integration tests of the moc-obs tracing subsystem against the live
//! runtime: a fault-injection run produces a Perfetto-loadable
//! `trace.json` whose flow arrows connect the injected fault to the
//! recovery spans and a flight-recorder dump holding the dead node's
//! final spans; the flight recorder survives elastic shrink; and a
//! disabled-obs run records nothing and stays on the enabled run's
//! bitwise trajectory.

use moc_system::core::ParallelTopology;
use moc_system::obs::Json;
use moc_system::runtime::{
    CollectiveKind, Coordinator, ElasticConfig, ObsConfig, RunSummary, RuntimeConfig,
};
use moc_system::store::{FaultEvent, FaultPlan, MemoryObjectStore};
use moc_system::train::PecMode;
use std::sync::Arc;
use std::time::Duration;

fn topo() -> ParallelTopology {
    // 2 nodes × 2 GPUs, DP = EP = 4: ranks 0-1 on node 0, 2-3 on node 1.
    ParallelTopology::dp_ep(2, 2, 4, 4).unwrap()
}

fn base_config() -> RuntimeConfig {
    RuntimeConfig {
        total_iterations: 12,
        i_ckpt: 4,
        eval_every: 6,
        seq_len: 16,
        heartbeat_timeout: Duration::from_millis(800),
        ..RuntimeConfig::tiny(topo())
    }
}

fn run(config: RuntimeConfig) -> RunSummary {
    Coordinator::new(config, Arc::new(MemoryObjectStore::new()))
        .unwrap()
        .run()
        .unwrap()
}

/// One "X" slice pulled out of the rendered trace document.
struct Slice {
    pid: u64,
    tid: u64,
    name: String,
    ts: f64,
    dur: f64,
}

fn slices(doc: &Json) -> Vec<Slice> {
    doc.get("traceEvents")
        .and_then(Json::as_array)
        .expect("traceEvents array")
        .iter()
        .filter(|e| e.get("ph").and_then(Json::as_str) == Some("X"))
        .map(|e| Slice {
            pid: e.get("pid").and_then(Json::as_u64).expect("pid"),
            tid: e.get("tid").and_then(Json::as_u64).expect("tid"),
            name: e.get("name").and_then(Json::as_str).expect("name").into(),
            ts: e.get("ts").and_then(Json::as_f64).expect("ts"),
            dur: e.get("dur").and_then(Json::as_f64).expect("dur"),
        })
        .collect()
}

/// The acceptance scenario: a node kill mid-run produces a valid
/// Chrome-trace document whose fault flow arrows connect
/// `fault-injected` → `fault-detected` → `recovery`, whose per-thread
/// timestamps are monotonic with properly nested spans, and whose
/// checkpoint-submit flows land on engine persist spans; the flight
/// recorder dumps at suspicion and at declaration, the latter holding
/// the dead ranks' final compute spans.
#[test]
fn fault_trace_links_injection_to_recovery() {
    let dir = std::env::temp_dir().join(format!("moc-obs-live-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let trace_path = dir.join("trace.json");
    let summary = run(RuntimeConfig {
        faults: FaultPlan::At(vec![FaultEvent {
            iteration: 7,
            node: 1,
        }]),
        obs: ObsConfig::with_trace(trace_path.clone()),
        ..base_config()
    });
    assert_eq!(summary.recoveries, 1);
    assert!(summary.obs.enabled);
    assert!(summary.obs.spans_recorded > 0);
    assert_eq!(
        summary.obs.trace_path.as_deref(),
        Some(trace_path.as_path())
    );

    let text = std::fs::read_to_string(&trace_path).expect("trace.json written");
    let doc = Json::parse(&text).expect("trace.json is valid JSON");
    let slices = slices(&doc);
    assert!(!slices.is_empty());

    // Per-thread timestamps are monotonic and spans nest properly: a
    // span starting inside an open span must also end inside it.
    let mut threads: std::collections::BTreeMap<(u64, u64), Vec<&Slice>> = Default::default();
    for s in &slices {
        threads.entry((s.pid, s.tid)).or_default().push(s);
    }
    for ((pid, tid), spans) in &threads {
        let mut open: Vec<&Slice> = Vec::new();
        for pair in spans.windows(2) {
            assert!(
                pair[1].ts >= pair[0].ts,
                "thread ({pid},{tid}): timestamps must be monotonic"
            );
        }
        for s in spans {
            while let Some(top) = open.last() {
                if s.ts >= top.ts + top.dur {
                    open.pop();
                } else {
                    break;
                }
            }
            if let Some(top) = open.last() {
                // 1 µs slack: ts/dur are serialized at ns resolution.
                assert!(
                    s.ts + s.dur <= top.ts + top.dur + 1.0,
                    "thread ({pid},{tid}): '{}' must nest inside '{}'",
                    s.name,
                    top.name
                );
            }
            open.push(s);
        }
    }

    // Flow arrows: collect (phase, id, ts) triples from the flow events.
    let events = doc.get("traceEvents").and_then(Json::as_array).unwrap();
    let flows: Vec<(&str, u64, f64)> = events
        .iter()
        .filter(|e| e.get("cat").and_then(Json::as_str) == Some("flow"))
        .map(|e| {
            (
                e.get("ph").and_then(Json::as_str).unwrap(),
                e.get("id").and_then(Json::as_u64).unwrap(),
                e.get("ts").and_then(Json::as_f64).unwrap(),
            )
        })
        .collect();

    // The fault flow (small ids): one start at the injection, a step at
    // detection, and a finish binding inside the recovery slice.
    let fault_ids: Vec<u64> = flows
        .iter()
        .filter(|(ph, id, _)| *ph == "s" && *id < 1_000_000_000)
        .map(|(_, id, _)| *id)
        .collect();
    assert_eq!(fault_ids.len(), 1, "one fault flow start");
    let fid = fault_ids[0];
    assert!(
        flows.iter().any(|(ph, id, _)| *ph == "t" && *id == fid),
        "fault-detected step on the fault flow"
    );
    let (_, _, finish_ts) = *flows
        .iter()
        .find(|(ph, id, _)| *ph == "f" && *id == fid)
        .expect("recovery finish on the fault flow");
    let recovery = slices
        .iter()
        .find(|s| s.name == "recovery")
        .expect("recovery slice");
    assert!(
        finish_ts >= recovery.ts && finish_ts <= recovery.ts + recovery.dur,
        "fault flow must terminate inside the recovery slice"
    );

    // Checkpoint flows (large ids): every submit start reaches an engine
    // persist finish.
    for (ph, id, _) in flows.iter().filter(|(_, id, _)| *id >= 1_000_000_000) {
        if *ph == "s" {
            assert!(
                flows.iter().any(|(p, i, _)| *p == "f" && i == id),
                "ckpt-submit flow {id} must end at a persist span"
            );
        }
    }

    // The flight recorder fired twice — once when the silent ranks were
    // first *suspected* (evidence captured while still fresh) and once
    // at declaration — and the declaration dump captured the dead
    // node's ranks (node 1 hosts ranks 2 and 3) with their final
    // compute span at the kill iteration.
    assert_eq!(summary.obs.flight_dumps.len(), 2);
    assert!(
        summary.obs.flight_dumps[0].reason.contains("suspected"),
        "{}",
        summary.obs.flight_dumps[0].reason
    );
    let dump = &summary.obs.flight_dumps[1];
    assert!(dump.reason.contains("iteration 7"), "{}", dump.reason);
    for dead_rank in [2u32, 3u32] {
        let thread = dump
            .threads
            .iter()
            .find(|t| t.pid == 1 && t.tid == dead_rank)
            .unwrap_or_else(|| panic!("dead rank {dead_rank} missing from flight dump"));
        let last_compute = thread
            .events
            .iter()
            .rev()
            .find(|e| e.name == "compute")
            .expect("dead rank's final compute span survived in the ring");
        assert_eq!(last_compute.iteration, 7, "killed mid-iteration 7");
    }
    for path in [dump.json_path.as_ref(), dump.text_path.as_ref()] {
        let path = path.expect("dump written next to trace.json");
        assert!(path.exists(), "{} missing", path.display());
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// Elastic runs keep dumping: a shrink (node 1 dies at 5) and a later
/// total-loss respawn (node 0 dies at 9) each produce exactly one
/// flight dump, and the rings survive the retirement and respawn of
/// rank threads in between.
#[test]
fn flight_recorder_survives_elastic_shrink() {
    let summary = run(RuntimeConfig {
        eval_every: 0,
        k_snapshot: 4,
        k_persist: 4,
        pec_mode: PecMode::NONE,
        collective: CollectiveKind::Ring,
        elastic: ElasticConfig::shrink(1),
        faults: FaultPlan::At(vec![
            FaultEvent {
                iteration: 5,
                node: 1,
            },
            FaultEvent {
                iteration: 9,
                node: 0,
            },
        ]),
        obs: ObsConfig::enabled(),
        ..base_config()
    });
    assert_eq!(summary.elastic_shrinks, 1);
    assert_eq!(summary.recoveries, 2);
    assert_eq!(
        summary.obs.flight_dumps.len(),
        2 * summary.recoveries as usize,
        "one suspicion dump plus one declaration dump per detected fault"
    );
    let mut seqs: Vec<u64> = summary.obs.flight_dumps.iter().map(|d| d.seq).collect();
    seqs.dedup();
    assert_eq!(seqs.len(), 4, "dump sequence numbers are unique");
    for dump in &summary.obs.flight_dumps {
        assert!(
            dump.threads.iter().any(|t| !t.events.is_empty()),
            "each dump snapshots recorded spans"
        );
        assert!(dump.json_path.is_none(), "no trace path, no files");
    }
}

/// The disabled hot path: an obs-off run records zero spans, takes no
/// dumps, stays bitwise on the enabled run's trajectory, and its mean
/// iteration time is within noise of the enabled run's.
#[test]
fn disabled_obs_records_nothing_and_preserves_the_run() {
    let enabled = run(RuntimeConfig {
        obs: ObsConfig::enabled(),
        ..base_config()
    });
    let disabled = run(base_config());

    assert!(!disabled.obs.enabled);
    assert_eq!(disabled.obs.spans_recorded, 0);
    assert!(disabled.obs.flight_dumps.is_empty());
    assert!(disabled.obs.trace_path.is_none());
    assert!(enabled.obs.spans_recorded > 0);

    let enabled_bits: Vec<u32> = enabled.final_params.iter().map(|x| x.to_bits()).collect();
    let disabled_bits: Vec<u32> = disabled.final_params.iter().map(|x| x.to_bits()).collect();
    assert_eq!(
        enabled_bits, disabled_bits,
        "observability must not perturb the numerics"
    );

    // Within noise: generous bound so a loaded CI host cannot flake —
    // the real claim (one branch on the hot path) is the bitwise check
    // plus this sanity ceiling.
    let e = enabled.mean_iteration_secs();
    let d = disabled.mean_iteration_secs();
    assert!(
        d < 10.0 * e + 0.05 && e < 10.0 * d + 0.05,
        "mean iteration enabled {e:.6}s vs disabled {d:.6}s out of range"
    );
}
