//! Cross-crate integration tests: the full MoC pipeline from model
//! description through sharding, asynchronous saving, fault injection and
//! recovery, on both the synthetic engine and the real training lab.

use moc_system::cluster::timeline::fig12_row;
use moc_system::cluster::ClusterSpec;
use moc_system::core::plt::{analytic_plt, PltSimulation};
use moc_system::core::selection::PecConfig;
use moc_system::core::sharding::{ShardingPlanner, ShardingStrategy};
use moc_system::core::twolevel::{CheckpointEngine, EngineConfig, SyntheticState};
use moc_system::core::ParallelTopology;
use moc_system::moe::presets;
use moc_system::moe::{LoadModel, LoadProfile};
use moc_system::store::{FaultEvent, FileObjectStore, MemoryObjectStore, ObjectStore};
use moc_system::train::harness::{run_experiment, FaultToleranceConfig, TrainConfig};
use moc_system::train::PecMode;
use std::sync::Arc;

#[test]
fn sharded_engine_checkpoints_and_recovers_on_disk() {
    let root = std::env::temp_dir().join(format!("moc-e2e-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    let store = Arc::new(FileObjectStore::open(&root).unwrap());
    let tiny = presets::tiny_lm_16e();
    let mut engine = CheckpointEngine::new(
        tiny.clone(),
        ParallelTopology::case3(),
        store.clone(),
        EngineConfig {
            strategy: ShardingStrategy::FullyShardedAdaptive,
            snapshot_pec: PecConfig::sequential(4, 16, tiny.num_moe_layers()),
            k_persist: 2,
            two_level_recovery: true,
        },
    )
    .unwrap();
    let state = SyntheticState::full();
    engine.bootstrap(0, &state);
    for it in [10u64, 20, 30] {
        engine.checkpoint(it, &state);
    }
    engine.wait_idle();
    assert!(store.total_bytes().unwrap() > 0, "real files written");

    engine.fault(1);
    let plan = engine.recover(35).unwrap();
    assert_eq!(plan.resume_iteration, 30);
    // Every action fetchable and version-consistent.
    for action in &plan.actions {
        let bytes =
            moc_system::core::recovery::fetch_action(action, engine.memory(), store.as_ref())
                .unwrap();
        let v = u64::from_le_bytes(bytes[..8].try_into().unwrap());
        assert_eq!(v, action.version);
    }
    std::fs::remove_dir_all(&root).unwrap();
}

#[test]
fn plt_simulator_tracks_real_training_plt() {
    // The event-accurate PLT simulator and the real training lab should
    // agree on the order of magnitude of update loss for the same
    // (K, I_ckpt, fault) configuration.
    let train = TrainConfig {
        total_iterations: 96,
        eval_every: 96,
        batch: 4,
        seq_len: 16,
        ..TrainConfig::tiny_8e()
    };
    let faults = vec![FaultEvent {
        iteration: 48,
        node: 0,
    }];
    let ft = FaultToleranceConfig::pec(&train.model, 1, 1, PecMode::WO, false, 8, faults.clone());
    let real = run_experiment(&train, &ft).plt;

    let sim = PltSimulation {
        load: LoadModel::new(2, 8, 64, 1, LoadProfile::Balanced, 0),
        snapshot_pec: PecConfig::sequential(1, 8, 2),
        k_persist: 1,
        i_ckpt: 8,
        total_iterations: 96,
        faults,
        two_level_recovery: false,
        topology: ParallelTopology::case1(),
    }
    .run()
    .plt;

    let analytic = analytic_plt(1, 8, 8, 96, 1);
    assert!(real > 0.0 && sim > 0.0);
    assert!(
        (real / sim) > 0.3 && (real / sim) < 3.0,
        "real {real} vs simulated {sim}"
    );
    assert!(
        (sim / analytic) > 0.5 && (sim / analytic) < 2.0,
        "sim {sim} vs analytic {analytic}"
    );
}

#[test]
fn paper_claim_pec_checkpoint_shrinks_majorly() {
    // Headline: "PEC achieves a 57.7% reduction in total checkpoint size"
    // (K=1 on GPT-350M-16E). Eq. 6 with the Fig. 2 composition gives an
    // even larger reduction; assert at least the paper's.
    let model = presets::gpt_350m_16e();
    assert!(model.pec_size_ratio(1) < 0.423 + 1e-9);
}

#[test]
fn paper_claim_fig12_bands_hold() {
    let model = presets::gpt_350m_16e();
    for topo in [
        ParallelTopology::case1(),
        ParallelTopology::case2(),
        ParallelTopology::case3(),
    ] {
        let row = fig12_row("case", model.clone(), topo, ClusterSpec::a800(), 4, 1);
        assert!(
            row.o_save_reduction() > 0.95,
            "o_save cut {}",
            row.o_save_reduction()
        );
        assert!(row.speedup() > 2.0, "speedup {}", row.speedup());
    }
}

#[test]
fn engine_with_memory_store_handles_many_checkpoints() {
    let tiny = presets::tiny_lm_8e();
    let mut engine = CheckpointEngine::new(
        tiny.clone(),
        ParallelTopology::case1(),
        Arc::new(MemoryObjectStore::new()),
        EngineConfig {
            strategy: ShardingStrategy::FullySharded,
            snapshot_pec: PecConfig::sequential(1, 8, tiny.num_moe_layers()),
            k_persist: 1,
            two_level_recovery: true,
        },
    )
    .unwrap();
    let state = SyntheticState::scaled(64);
    engine.bootstrap(0, &state);
    for it in 1..=40u64 {
        engine.checkpoint(it * 10, &state);
    }
    engine.wait_idle();
    assert_eq!(engine.checkpoints_taken(), 40);
    let plan = engine.recover(1000).unwrap();
    assert_eq!(plan.resume_iteration, 400);
}

#[test]
fn sharding_plans_are_deterministic() {
    let planner = ShardingPlanner::new(presets::gpt_350m_16e(), ParallelTopology::case3()).unwrap();
    let pec = PecConfig::sequential(2, 16, 12);
    let a = planner.plan_pec(ShardingStrategy::FullyShardedAdaptive, &pec, 5);
    let b = planner.plan_pec(ShardingStrategy::FullyShardedAdaptive, &pec, 5);
    assert_eq!(a, b);
}
