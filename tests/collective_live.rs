//! Integration tests of the decentralized collective layer: ring runs
//! are bitwise identical to star runs, a node killed mid-all-reduce
//! surfaces as a detected fault with a clean recovery (converging
//! bitwise-identical to an unfaulted run), the steady-state ring
//! allocates no gradient buffers, and injected stragglers stall the
//! pipeline measurably without perturbing the numerics.

use moc_system::core::ParallelTopology;
use moc_system::runtime::{
    CollectiveKind, Coordinator, EventKind, Phase, RunSummary, RuntimeConfig, SlowEvent,
};
use moc_system::store::{FaultEvent, FaultPlan, MemoryObjectStore, ObjectStore};
use moc_system::train::PecMode;
use std::sync::Arc;
use std::time::Duration;

fn base_config(collective: CollectiveKind) -> RuntimeConfig {
    // 2 nodes × 2 GPUs, DP = EP = 4: two experts of the tiny 8-expert LM
    // per rank, two ranks per node.
    let topo = ParallelTopology::dp_ep(2, 2, 4, 4).unwrap();
    RuntimeConfig {
        total_iterations: 10,
        i_ckpt: 4,
        eval_every: 0,
        seq_len: 8,
        collective,
        heartbeat_timeout: Duration::from_millis(800),
        ..RuntimeConfig::tiny(topo)
    }
}

fn run(config: RuntimeConfig) -> RunSummary {
    Coordinator::new(
        config,
        Arc::new(MemoryObjectStore::new()) as Arc<dyn ObjectStore>,
    )
    .unwrap()
    .run()
    .unwrap()
}

fn bits(params: &[f32]) -> Vec<u32> {
    params.iter().map(|x| x.to_bits()).collect()
}

/// Acceptance: the ring collective reproduces the star path bitwise on
/// the same seed — same final parameters, same replica consistency —
/// while routing zero gradient bytes through the coordinator.
#[test]
fn ring_run_is_bitwise_identical_to_star_run() {
    let star = run(base_config(CollectiveKind::Star));
    let ring = run(base_config(CollectiveKind::Ring));
    assert!(star.replicas_consistent && ring.replicas_consistent);
    assert_eq!(
        bits(&star.final_params),
        bits(&ring.final_params),
        "ring must reproduce the star's rank-order fold bitwise"
    );
    // Phase accounting matches the collective that ran.
    assert!(star.phase(Phase::Reduce).count > 0);
    assert_eq!(star.phase(Phase::ReduceScatter).count, 0);
    assert_eq!(ring.phase(Phase::Reduce).count, 0);
    assert_eq!(
        ring.phase(Phase::ReduceScatter).count,
        ring.iterations_executed
    );
    assert_eq!(ring.phase(Phase::AllGather).count, ring.iterations_executed);
}

/// Acceptance: a node killed mid-all-reduce makes the surviving ring
/// peers abort instead of hanging; the coordinator detects the death,
/// recovers, runs the star-fallback window, and the run converges
/// bitwise-identical to an unfaulted ring run under full checkpointing.
#[test]
fn node_kill_mid_allreduce_recovers_bitwise_identical() {
    let full = RuntimeConfig {
        k_snapshot: 8,
        k_persist: 8,
        pec_mode: PecMode::NONE,
        ..base_config(CollectiveKind::Ring)
    };
    let faulted_config = RuntimeConfig {
        faults: FaultPlan::At(vec![FaultEvent {
            iteration: 7,
            node: 1,
        }]),
        ..full.clone()
    };
    let clean = run(full);
    let faulted = run(faulted_config);

    assert_eq!(faulted.faults_injected, 1);
    assert_eq!(faulted.recoveries, 1);
    assert!(faulted.ring_aborts >= 1, "survivors must abort the ring");
    assert!(faulted.replicas_consistent);
    assert!(
        faulted
            .timeline
            .iter()
            .any(|e| matches!(e.kind, EventKind::CollectiveAbort { .. })),
        "timeline must record the collective abort"
    );
    assert!(
        faulted
            .timeline
            .iter()
            .any(|e| matches!(e.kind, EventKind::FaultDetected { .. })),
        "the dead peer must surface as a detected fault"
    );
    // The abort fell back to the star path for the configured window.
    assert!(
        faulted.phase(Phase::Reduce).count >= 1,
        "post-recovery iterations must run the star fallback"
    );
    assert_eq!(
        bits(&clean.final_params),
        bits(&faulted.final_params),
        "recovery must rejoin the unfaulted trajectory bitwise"
    );
}

/// Tentpole: the two-level hierarchical reduce reproduces the flat ring
/// and the star bitwise across world/node shapes — flat DP over two and
/// three nodes, and a mixed-TP world where each DP group's members span
/// nodes in two-slot runs.
#[test]
fn hierarchical_is_bitwise_identical_to_ring_and_star_across_shapes() {
    let shapes = [
        ParallelTopology::dp_ep(2, 2, 4, 4).unwrap(),
        ParallelTopology::dp_ep(3, 2, 6, 2).unwrap(),
        ParallelTopology::new(2, 4, 4, 2, 1, 4).unwrap(),
    ];
    for topo in shapes {
        let cfg = |collective| RuntimeConfig {
            total_iterations: 10,
            i_ckpt: 4,
            eval_every: 0,
            seq_len: 8,
            collective,
            heartbeat_timeout: Duration::from_millis(800),
            ..RuntimeConfig::tiny(topo)
        };
        let star = run(cfg(CollectiveKind::Star));
        let ring = run(cfg(CollectiveKind::Ring));
        let hier = run(cfg(CollectiveKind::Hierarchical));
        assert!(hier.replicas_consistent, "{topo}: replicas diverged");
        assert_eq!(
            bits(&star.final_params),
            bits(&hier.final_params),
            "{topo}: hierarchical must reproduce the star fold bitwise"
        );
        assert_eq!(
            bits(&ring.final_params),
            bits(&hier.final_params),
            "{topo}: hierarchical must reproduce the flat ring bitwise"
        );
        // Every iteration ran the leader chain: no coordinator reduce,
        // and the summary counts each step as hierarchical.
        assert_eq!(hier.phase(Phase::Reduce).count, 0, "{topo}");
        assert_eq!(
            hier.hierarchical_iterations, hier.iterations_executed,
            "{topo}"
        );
        assert_eq!(
            hier.phase(Phase::ReduceScatter).count,
            hier.iterations_executed,
            "{topo}"
        );
    }
}

/// Satellite: after a kill, the star fallback lasts *exactly*
/// `ring_fallback_iterations` — pinned for both the flat ring and the
/// hierarchical reduce (which shares the window) — and both land
/// bitwise on their unfaulted trajectory.
#[test]
fn star_fallback_window_is_exactly_the_configured_length() {
    for collective in [CollectiveKind::Ring, CollectiveKind::Hierarchical] {
        let full = RuntimeConfig {
            k_snapshot: 8,
            k_persist: 8,
            pec_mode: PecMode::NONE,
            ring_fallback_iterations: 2,
            ..base_config(collective)
        };
        let clean = run(full.clone());
        let faulted = run(RuntimeConfig {
            faults: FaultPlan::At(vec![FaultEvent {
                iteration: 7,
                node: 1,
            }]),
            ..full
        });
        assert_eq!(faulted.recoveries, 1, "{collective:?}");
        assert!(faulted.ring_aborts >= 1, "{collective:?}");
        // Kill at 7 rolled back to 4: iterations 5 and 6 (exactly the
        // configured window) ran the star; everything else — including
        // the replayed 7 — ran the configured collective.
        assert_eq!(
            faulted.phase(Phase::Reduce).count,
            2,
            "{collective:?}: the star window must last exactly \
             ring_fallback_iterations"
        );
        // 13 executed = 10 + 3 replayed; minus 2 star, minus the aborted
        // iteration which records no collective phase.
        assert_eq!(
            faulted.phase(Phase::ReduceScatter).count,
            faulted.iterations_executed - 2 - 1,
            "{collective:?}"
        );
        if collective == CollectiveKind::Hierarchical {
            assert_eq!(
                faulted.hierarchical_iterations,
                faulted.iterations_executed - 2 - 1,
                "every non-star, non-aborted iteration runs the leader chain"
            );
        }
        assert_eq!(
            bits(&clean.final_params),
            bits(&faulted.final_params),
            "{collective:?}: recovery must rejoin the unfaulted trajectory"
        );
    }
}

/// Acceptance: the collective layer's gradient-buffer footprint is fixed
/// at mesh build time — running twice as many iterations allocates not
/// one buffer more, i.e. the steady-state hot path is zero-alloc.
#[test]
fn ring_steady_state_allocates_no_gradient_buffers() {
    let topo = ParallelTopology::dp_ep(1, 2, 2, 2).unwrap();
    let config = |iters: u64| RuntimeConfig {
        total_iterations: iters,
        i_ckpt: 4,
        eval_every: 0,
        seq_len: 8,
        heartbeat_timeout: Duration::from_millis(800),
        ..RuntimeConfig::tiny(topo)
    };
    let short = run(config(6));
    let long = run(config(12));
    assert!(short.collective_allocs > 0, "mesh build must preallocate");
    assert_eq!(
        short.collective_allocs, long.collective_allocs,
        "extra iterations must not allocate gradient buffers"
    );
    // The star path allocates no chunk buffers at all.
    let star = run(RuntimeConfig {
        collective: CollectiveKind::Star,
        ..config(6)
    });
    assert_eq!(star.collective_allocs, 0);
}

/// Satellite: an injected straggler stretches its rank's step, the stall
/// is recorded in the metrics and timeline (so checkpoint stall
/// amplification is measurable), and — because the slowdown is pure wall
/// time — the numerics are untouched: the run stays bitwise identical to
/// an uninjected one, with no spurious fault detection.
#[test]
fn straggler_injection_stalls_without_perturbing_numerics() {
    // Generous heartbeat: the injected stall (2× the measured compute
    // time) must stay comfortably below the ring deadline even when the
    // host is oversubscribed, or the straggler would be declared dead —
    // the documented timeout-detection ambiguity, not what this test is
    // about.
    let config = RuntimeConfig {
        heartbeat_timeout: Duration::from_secs(4),
        ..base_config(CollectiveKind::Ring)
    };
    let smooth = run(config.clone());
    let slowed = run(RuntimeConfig {
        stragglers: vec![SlowEvent::once(3, 1, 3.0)],
        ..config
    });
    assert_eq!(slowed.stragglers_injected, 1);
    assert_eq!(slowed.recoveries, 0, "a straggler is slow, not dead");
    assert_eq!(slowed.ring_aborts, 0);
    let stall = slowed.phase(Phase::StragglerStall);
    assert_eq!(stall.count, 1);
    assert!(stall.total_secs > 0.0, "induced stall must be measured");
    assert!(
        slowed
            .timeline
            .iter()
            .any(|e| matches!(e.kind, EventKind::StragglerInjected { rank: 1, .. })),
        "timeline must record the straggler"
    );
    assert_eq!(
        bits(&smooth.final_params),
        bits(&slowed.final_params),
        "a stall must not change the training trajectory"
    );
}

/// Satellite (model vs measured): the cumulative `StragglerStall` a
/// sustained `SlowEvent` run measures must agree with the
/// `moc_cluster::events` prediction `(factor − 1) · duration · fb_sec`,
/// where `fb_sec` is the run's own measured mean compute window.
///
/// Stated tolerance: agreement within a factor of two in either
/// direction. The injected stall is exact per covered iteration
/// (`(factor − 1) ×` that iteration's measured compute), so the only
/// divergence from the model is scheduler noise between the covered
/// iterations' compute times and the run-wide mean. When the rest of
/// the suite saturates the host that noise can exceed 2× for a single
/// run, so the scenario retries up to three times and passes on the
/// first in-tolerance run — a broken accounting (a lost iteration, a
/// double count, stall in the wrong units) misses the window on every
/// attempt.
#[test]
fn sustained_straggler_stall_matches_cluster_model() {
    let factor = 3.0;
    let duration = 4;
    let mut last = String::new();
    for attempt in 0..3 {
        let slowed = run(RuntimeConfig {
            total_iterations: 12,
            heartbeat_timeout: Duration::from_secs(4),
            stragglers: vec![SlowEvent::sustained(1, 3, duration, factor)],
            ..base_config(CollectiveKind::Ring)
        });
        assert_eq!(slowed.stragglers_injected, duration);
        let measured = slowed.straggler_stall_secs();
        assert!(measured > 0.0, "stall must be measured");
        let fb_sec = slowed.phase(Phase::Compute).mean_secs();
        let predicted = moc_system::cluster::straggler_stall_prediction(factor, duration, fb_sec);
        assert!(predicted > 0.0);
        let ratio = measured / predicted;
        if (0.5..=2.0).contains(&ratio) {
            return;
        }
        last = format!(
            "attempt {attempt}: measured stall {measured:.6}s vs predicted \
             {predicted:.6}s (ratio {ratio:.3})"
        );
    }
    panic!("{last} — outside the 2x tolerance on every attempt");
}

/// Satellite: a sustained degradation profile (`rank, start, duration,
/// factor`) slows every covered iteration, accumulates a cumulative
/// `StragglerStall` roughly `duration ×` a single hiccup's, and still
/// leaves the numerics bitwise untouched.
#[test]
fn sustained_degradation_profile_accumulates_stall() {
    let config = RuntimeConfig {
        heartbeat_timeout: Duration::from_secs(4),
        ..base_config(CollectiveKind::Ring)
    };
    let smooth = run(config.clone());
    let slowed = run(RuntimeConfig {
        stragglers: vec![SlowEvent::sustained(1, 3, 4, 2.5)],
        ..config
    });
    assert_eq!(
        slowed.stragglers_injected, 4,
        "one injection per covered iteration"
    );
    assert_eq!(slowed.recoveries, 0, "degraded, not dead");
    let stall = slowed.phase(Phase::StragglerStall);
    assert_eq!(stall.count, 4);
    assert!(
        (slowed.straggler_stall_secs() - stall.total_secs).abs() < 1e-12,
        "summary must surface the cumulative stall"
    );
    assert!(
        stall.total_secs > 3.0 * stall.max_secs / 2.0,
        "cumulative stall must reflect the sustained window, not one hiccup: {stall:?}"
    );
    let injected: Vec<u64> = slowed
        .timeline
        .iter()
        .filter(|e| matches!(e.kind, EventKind::StragglerInjected { rank: 1, .. }))
        .map(|e| e.iteration)
        .collect();
    assert_eq!(
        injected,
        vec![3, 4, 5, 6],
        "profile covers start..start+duration"
    );
    assert_eq!(
        bits(&smooth.final_params),
        bits(&slowed.final_params),
        "sustained degradation must not change the training trajectory"
    );
}
