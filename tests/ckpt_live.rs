//! Integration tests of the `moc-ckpt` checkpoint engine inside the live
//! runtime: steady-state checkpoints never block the training thread on
//! store I/O, delta + partial-expert checkpoints persist strictly fewer
//! bytes than full-module checkpoints at equal fidelity, and a node kill
//! at any persist boundary (torn persist) recovers bitwise-identical
//! parameters from the last complete manifest.

use moc_system::ckpt::testing::FlakyStore;
use moc_system::ckpt::{ChainStore, EngineConfig};
use moc_system::core::ParallelTopology;
use moc_system::runtime::{CheckpointMode, Coordinator, Phase, RunSummary, RuntimeConfig};
use moc_system::store::{
    FaultEvent, FaultPlan, FileObjectStore, MemoryObjectStore, ObjectStore, ShardKey, StatePart,
};
use moc_system::train::PecMode;
use std::sync::Arc;
use std::time::Duration;

fn topo() -> ParallelTopology {
    ParallelTopology::dp_ep(2, 4, 8, 8).unwrap()
}

fn base_config() -> RuntimeConfig {
    RuntimeConfig {
        total_iterations: 18,
        i_ckpt: 6,
        eval_every: 0,
        seq_len: 16,
        heartbeat_timeout: Duration::from_millis(800),
        ..RuntimeConfig::tiny(topo())
    }
}

/// Full-module checkpointing (PEC disabled) with a given delta policy.
fn full_config(delta: bool) -> RuntimeConfig {
    RuntimeConfig {
        k_snapshot: 8,
        k_persist: 8,
        pec_mode: PecMode::NONE,
        ckpt: EngineConfig {
            delta,
            ..EngineConfig::default()
        },
        ..base_config()
    }
}

fn run(config: RuntimeConfig, store: Arc<dyn ObjectStore>) -> RunSummary {
    Coordinator::new(config, store).unwrap().run().unwrap()
}

fn bits(params: &[f32]) -> Vec<u32> {
    params.iter().map(|x| x.to_bits()).collect()
}

/// Acceptance: steady-state checkpoint iterations perform no blocking
/// store I/O on the training thread. In async mode the `CkptWrite`
/// (blocking-write) phase never fires and no submission stalls; all
/// persistence happens on the engines' background writers, whose measured
/// persist time shows up only in the engine stats.
#[test]
fn async_checkpoints_do_no_blocking_store_io_on_training_thread() {
    let root = std::env::temp_dir().join(format!("moc-ckpt-noblock-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    let store = Arc::new(FileObjectStore::open(&root).unwrap());
    let summary = run(
        RuntimeConfig {
            checkpoint_mode: CheckpointMode::Async,
            ..base_config()
        },
        store,
    );
    assert_eq!(summary.checkpoints_taken, 3);
    assert_eq!(
        summary.phase(Phase::CkptWrite).count,
        0,
        "async mode must never block on the write phase"
    );
    assert_eq!(
        summary.stall_count, 0,
        "double buffering must absorb all batches"
    );
    assert!(
        summary.ckpt_engine.writer.persist_secs > 0.0,
        "the background writers did the actual I/O: {:?}",
        summary.ckpt_engine
    );
    // 2 nodes × (bootstrap + 3 checkpoints) manifests committed.
    assert_eq!(summary.ckpt_engine.writer.checkpoints, 8);
    assert!(summary.ckpt_engine.errors.is_empty());
    std::fs::remove_dir_all(&root).unwrap();
}

/// Acceptance: delta encoding is lossless end-to-end (equal fidelity —
/// the faulted run still recovers to the bitwise trajectory of the clean
/// run) while persisting strictly fewer bytes than full payloads, and
/// partial-expert selection cuts the bytes further below any full-module
/// configuration.
#[test]
fn delta_and_partial_persist_strictly_fewer_bytes_at_equal_fidelity() {
    let fault = FaultPlan::At(vec![FaultEvent {
        iteration: 10,
        node: 0,
    }]);

    // Clean reference trajectory (full checkpointing, delta off).
    let clean = run(full_config(false), Arc::new(MemoryObjectStore::new()));

    // Full-module checkpoints, no delta, with a kill.
    let full_raw = run(
        RuntimeConfig {
            faults: fault.clone(),
            ..full_config(false)
        },
        Arc::new(MemoryObjectStore::new()),
    );
    // Full-module checkpoints, delta on, same kill.
    let full_delta = run(
        RuntimeConfig {
            faults: fault.clone(),
            ..full_config(true)
        },
        Arc::new(MemoryObjectStore::new()),
    );
    // Partial-expert + delta, same kill (PEC trades fidelity knowingly —
    // compared only on bytes).
    let partial_delta = run(
        RuntimeConfig {
            k_snapshot: 4,
            k_persist: 2,
            pec_mode: PecMode::WO,
            faults: fault,
            ..full_config(true)
        },
        Arc::new(MemoryObjectStore::new()),
    );

    // Equal fidelity: both full runs recover onto the clean trajectory.
    assert_eq!(full_raw.recoveries, 1);
    assert_eq!(full_delta.recoveries, 1);
    assert_eq!(
        bits(&clean.final_params),
        bits(&full_raw.final_params),
        "raw full checkpointing must recover bitwise"
    );
    assert_eq!(
        bits(&clean.final_params),
        bits(&full_delta.final_params),
        "delta shards must change nothing about the recovered trajectory"
    );

    // Fewer bytes: delta alone beats raw at identical selection...
    assert!(full_delta.ckpt_engine.writer.delta_shards > 0);
    assert!(
        full_delta.persisted_bytes < full_raw.persisted_bytes,
        "delta {} must beat raw {}",
        full_delta.persisted_bytes,
        full_raw.persisted_bytes
    );
    // ...and partial selection cuts strictly further.
    assert!(
        partial_delta.persisted_bytes < full_delta.persisted_bytes,
        "partial+delta {} must beat full+delta {}",
        partial_delta.persisted_bytes,
        full_delta.persisted_bytes
    );
    assert!(partial_delta.replicas_consistent);
}

/// Satellite: node-agent death mid-persist (torn persist). The store
/// starts failing writes partway through a checkpoint batch, so the
/// manifest for that version is never committed; when a node kill then
/// forces storage-only recovery, the run reconstructs from the last
/// complete manifest and finishes on the bitwise trajectory of a clean
/// run.
#[test]
fn torn_persist_recovers_bitwise_from_last_complete_manifest() {
    // Count the puts of a clean faulted-free run, then cut the budget
    // mid-way through the second checkpoint's writes.
    let counting_store = Arc::new(moc_system::ckpt::testing::RecordingStore::new());
    run(full_config(true), counting_store.clone());
    let log = counting_store.log();
    let second_ckpt_start = log
        .iter()
        .position(|(k, _)| k.version == 12)
        .expect("checkpoint at iteration 12 persisted");
    let budget = second_ckpt_start + 3; // die between shard writes of v12

    let inner: Arc<dyn ObjectStore> = Arc::new(MemoryObjectStore::new());
    let flaky: Arc<dyn ObjectStore> = Arc::new(FlakyStore::new(inner.clone(), budget as i64));
    let summary = run(
        RuntimeConfig {
            // Storage-only recovery: the torn persistent state is all
            // recovery has.
            two_level: false,
            faults: FaultPlan::At(vec![FaultEvent {
                iteration: 14,
                node: 0,
            }]),
            ..full_config(true)
        },
        flaky,
    );
    let clean = run(full_config(true), Arc::new(MemoryObjectStore::new()));

    assert_eq!(summary.recoveries, 1);
    assert!(
        !summary.ckpt_engine.errors.is_empty(),
        "the injected mid-batch crash must be observed"
    );
    // The torn checkpoint at 12 was never committed: recovery resumed
    // from 6, so at least 14 - 6 = 8 iterations were redone.
    assert!(
        summary.iterations_executed >= 18 + 8,
        "resume must fall back past the torn checkpoint: {} iterations",
        summary.iterations_executed
    );
    assert!(summary.replicas_consistent);
    assert_eq!(
        bits(&clean.final_params),
        bits(&summary.final_params),
        "torn-persist recovery must land on the clean bitwise trajectory"
    );
    // The chain view confirms version 12 was rejected as incomplete.
    let chain = ChainStore::load_expecting(inner, Some(2)).unwrap();
    assert!(!chain.committed_versions().contains(&12));
}

/// Satellite (crash-safe rename path): on the file-backed store, garbage
/// left by a torn rename plus orphaned shards of an uncommitted version
/// are both invisible to the chain, and the last committed version still
/// reconstructs bitwise after reopening the directory.
#[test]
fn file_store_chain_survives_torn_writes_and_reopen() {
    use moc_system::ckpt::ShardWriter;
    let root = std::env::temp_dir().join(format!("moc-ckpt-torn-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    let payload_v1: Vec<u8> = (0..256u32).flat_map(|i| (i as f32).to_le_bytes()).collect();
    let payload_v2: Vec<u8> = (0..256u32)
        .flat_map(|i| (i as f32 + 1e-3).to_le_bytes())
        .collect();
    let key_v1 = ShardKey::new("layer1.expert0", StatePart::Weights, 10);
    let key_v2 = ShardKey::new("layer1.expert0", StatePart::Weights, 20);
    {
        let store: Arc<dyn ObjectStore> = Arc::new(FileObjectStore::open(&root).unwrap());
        let mut writer = ShardWriter::new(0, store.clone(), EngineConfig::default());
        writer.persist(10, [(&key_v1, &payload_v1[..])]).unwrap();
        // Version 20: the shard lands but the writer "dies" before its
        // manifest (budget = 1 put).
        let flaky: Arc<dyn ObjectStore> = Arc::new(FlakyStore::new(store, 1));
        let mut torn_writer = ShardWriter::new(0, flaky, EngineConfig::full_only());
        assert!(torn_writer
            .persist(20, [(&key_v2, &payload_v2[..])])
            .is_err());
    }
    // Simulate a torn rename: garbage that never became a valid frame.
    std::fs::write(root.join("torn.w.000000000099.shard"), b"garbage").unwrap();

    let reopened: Arc<dyn ObjectStore> = Arc::new(FileObjectStore::open(&root).unwrap());
    let chain = ChainStore::load_expecting(reopened, Some(1)).unwrap();
    assert_eq!(chain.newest_committed(), Some(10));
    assert_eq!(
        chain
            .latest_version("layer1.expert0", StatePart::Weights, u64::MAX)
            .unwrap(),
        Some(10),
        "the orphaned v20 shard must be invisible"
    );
    let got = chain.get(&key_v1).unwrap().unwrap();
    assert_eq!(&got[..], &payload_v1[..], "bitwise after reopen");
    std::fs::remove_dir_all(&root).unwrap();
}
