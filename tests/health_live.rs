//! The streaming health plane against the live runtime: a gray
//! straggler schedule drives the slowed ranks into the degraded state
//! *before* any suspicion opens, the degradation lands in the run
//! summary, the timeline, and `health.json`, and when the degraded
//! node later dies the detector's corroboration hook declares it one
//! lease window sooner than an identical run without the health plane
//! — all without perturbing the numerics (the health-on run stays
//! bitwise on the dark run's trajectory).

use moc_system::core::ParallelTopology;
use moc_system::obs::{HealthState, Json};
use moc_system::runtime::{
    Coordinator, DetectorConfig, EventKind, ObsConfig, RunSummary, RuntimeConfig, SlowEvent,
};
use moc_system::store::{FaultEvent, FaultPlan, MemoryObjectStore};
use std::sync::Arc;
use std::time::Duration;

const LEASE: Duration = Duration::from_millis(700);

fn topo() -> ParallelTopology {
    // 2 nodes × 2 GPUs, DP = EP = 4: ranks 0-1 on node 0, 2-3 on node 1.
    ParallelTopology::dp_ep(2, 2, 4, 4).unwrap()
}

/// The acceptance schedule: ranks 2 and 3 (all of node 1) straggle at
/// 3× from iteration 3 through 6 (past the scorer's two-sample
/// baseline warmup), then node 1 is killed at iteration 7. A
/// `k_misses = 3` detector gives corroboration a full lease window to
/// shave off.
fn gray_then_dead() -> RuntimeConfig {
    RuntimeConfig {
        total_iterations: 12,
        i_ckpt: 4,
        eval_every: 6,
        seq_len: 16,
        // The tiny model computes ~300 ms per iteration, so a 3×
        // straggler stalls its peers ~600 ms per step: the window must
        // dwarf that or the gray rank trips the ring's abort path
        // (collective_live's straggler tests pick the same margin).
        heartbeat_timeout: Duration::from_secs(4),
        detector: DetectorConfig {
            k_misses: 3,
            lease: Some(LEASE),
        },
        stragglers: vec![
            SlowEvent::sustained(2, 3, 4, 3.0),
            SlowEvent::sustained(3, 3, 4, 3.0),
        ],
        faults: FaultPlan::At(vec![FaultEvent {
            iteration: 7,
            node: 1,
        }]),
        ..RuntimeConfig::tiny(topo())
    }
}

fn run(config: RuntimeConfig) -> RunSummary {
    Coordinator::new(config, Arc::new(MemoryObjectStore::new()))
        .unwrap()
        .run()
        .unwrap()
}

fn detect_secs(summary: &RunSummary) -> f64 {
    summary
        .timeline
        .iter()
        .find_map(|e| match &e.kind {
            EventKind::FaultDetected { detect_secs, .. } => Some(*detect_secs),
            _ => None,
        })
        .expect("the kill must be detected")
}

/// Sustained stragglers walk both of node 1's ranks out of the healthy
/// state before the kill, the degradations surface as timeline events
/// preceding the fault, and the per-rank table lands in `health.json`.
#[test]
fn gray_stragglers_degrade_before_suspicion_declares() {
    let dir = std::env::temp_dir().join(format!("moc-health-live-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let summary = run(RuntimeConfig {
        obs: ObsConfig::with_trace(dir.join("trace.json")).with_health(),
        ..gray_then_dead()
    });
    assert_eq!(summary.recoveries, 1, "{}", summary.render_text());
    assert_eq!(summary.stragglers_injected, 8, "2 ranks × 4 iterations");

    // Both slowed ranks walked out of the healthy state while they
    // straggled (they may have recovered after the respawn — the
    // post-recovery iterations are not re-slowed, so a few calm samples
    // walk them back).
    let health = summary.health.as_ref().expect("health report");
    for rank in [2usize, 3] {
        let row = health
            .rows
            .iter()
            .find(|r| r.rank == rank)
            .unwrap_or_else(|| panic!("rank {rank} missing from health table"));
        assert!(row.transitions >= 1, "rank {rank} must have transitioned");
        assert!(
            row.worst_z >= 6.0,
            "rank {rank} must have scored a degraded-grade outlier, worst z {:.2}",
            row.worst_z
        );
        assert!(
            health.transitions.iter().any(|t| t.rank == rank
                && t.from == HealthState::Healthy
                && t.to == HealthState::Degraded
                && t.iteration < 7),
            "rank {rank} must have degraded before the kill iteration"
        );
    }
    // The healthy node's ranks are untouched by the straggle next door.
    for rank in [0usize, 1] {
        let row = health.rows.iter().find(|r| r.rank == rank).unwrap();
        assert!(
            matches!(row.state, HealthState::Healthy),
            "rank {rank} must stay healthy"
        );
        assert_eq!(row.transitions, 0, "rank {rank} never transitioned");
    }

    // Degradation precedes the fault on the timeline: the health plane
    // flagged the gray ranks while they were still alive.
    let fault_at = summary
        .timeline
        .iter()
        .find(|e| matches!(e.kind, EventKind::FaultInjected { .. }))
        .expect("fault event")
        .at_secs;
    let degraded: Vec<&moc_system::runtime::TimelineEvent> = summary
        .timeline
        .iter()
        .filter(|e| matches!(e.kind, EventKind::HealthDegraded { .. }))
        .collect();
    let degraded_ranks: Vec<usize> = degraded
        .iter()
        .filter_map(|e| match e.kind {
            EventKind::HealthDegraded { rank, .. } => Some(rank),
            _ => None,
        })
        .collect();
    assert!(degraded_ranks.contains(&2) && degraded_ranks.contains(&3));
    for event in &degraded {
        assert!(
            event.at_secs < fault_at,
            "degradation at {:.3}s must precede the kill at {fault_at:.3}s",
            event.at_secs
        );
        assert!(event.iteration < 7, "degraded while the rank was alive");
    }

    // health.json landed next to the trace with the same table.
    let doc = Json::parse(
        &std::fs::read_to_string(dir.join("health.json")).expect("health.json written"),
    )
    .expect("health.json is valid JSON");
    let rows = doc
        .get("ranks")
        .and_then(Json::as_array)
        .expect("ranks array");
    assert_eq!(rows.len(), health.rows.len());

    // The trace of a straggled, killed, recovered run still audits
    // clean — gray failure is a performance anomaly, not a causal one.
    let audit = summary.obs.audit.as_ref().expect("audit report");
    assert!(audit.passed(), "{}", audit.render_text());
    let _ = std::fs::remove_dir_all(&dir);
}

/// The corroboration hook: on the same schedule, the health-on run
/// declares the silent (already-degraded) ranks dead about one lease
/// window sooner than the health-off run, and the earlier declaration
/// changes nothing about the numerics — the health-on run is bitwise
/// identical to a dark (obs fully off) run.
#[test]
fn corroboration_shortens_live_detection_by_one_lease() {
    let with_health = run(RuntimeConfig {
        obs: ObsConfig::enabled().with_health(),
        ..gray_then_dead()
    });
    let without_health = run(RuntimeConfig {
        obs: ObsConfig::enabled(),
        ..gray_then_dead()
    });
    let dark = run(gray_then_dead());
    assert_eq!(with_health.recoveries, 1);
    assert_eq!(without_health.recoveries, 1);

    let fast = detect_secs(&with_health);
    let slow = detect_secs(&without_health);
    let lease = LEASE.as_secs_f64();
    assert!(
        fast < slow,
        "corroborated detection ({fast:.3}s) must beat uncorroborated ({slow:.3}s)"
    );
    let saved = slow - fast;
    assert!(
        saved > 0.3 * lease && saved < 3.0 * lease,
        "saving ({saved:.3}s) must be about one lease window ({lease:.3}s)"
    );

    // Observability-only: the corroborated run's trajectory is bitwise
    // the dark run's.
    let on_bits: Vec<u32> = with_health
        .final_params
        .iter()
        .map(|x| x.to_bits())
        .collect();
    let dark_bits: Vec<u32> = dark.final_params.iter().map(|x| x.to_bits()).collect();
    assert_eq!(
        on_bits, dark_bits,
        "the health plane must not perturb the numerics"
    );
    assert!(dark.health.is_none(), "dark run carries no health plane");
}
