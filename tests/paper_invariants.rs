//! Property-based tests of the core invariants, with proptest.

use moc_system::core::selection::PecConfig;
use moc_system::core::sharding::{ShardingPlanner, ShardingStrategy};
use moc_system::core::twolevel::TripleBuffer;
use moc_system::core::ParallelTopology;
use moc_system::moe::MoeModelConfig;
use moc_system::store::{frame, ShardKey, StatePart};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Sequential selection always returns K experts per layer, all in
    /// range, and covers every expert within one rotation period.
    #[test]
    fn sequential_selection_invariants(
        k in 1usize..=8,
        extra in 0usize..=8,
        layers in 1usize..=6,
        start in 0u64..100,
    ) {
        let n = k + extra;
        let pec = PecConfig::sequential(k, n, layers);
        let sel = pec.select(start);
        prop_assert_eq!(sel.len(), k * layers);
        for id in &sel {
            prop_assert!(id.layer < layers && id.expert < n);
        }
        let mut covered = vec![vec![false; n]; layers];
        for t in 0..pec.rotation_period() as u64 {
            for id in pec.select(start + t) {
                covered[id.layer][id.expert] = true;
            }
        }
        prop_assert!(covered.iter().flatten().all(|&c| c));
    }

    /// Frame encode/decode round-trips arbitrary payloads and keys.
    #[test]
    fn frame_roundtrip(
        module in "[a-z0-9.]{1,32}",
        version in 0u64..u64::MAX,
        payload in proptest::collection::vec(any::<u8>(), 0..4096),
        part_idx in 0usize..3,
    ) {
        let key = ShardKey::new(module, StatePart::ALL[part_idx], version);
        let framed = frame::encode(&key, &bytes::Bytes::from(payload.clone()));
        let (decoded, out) = frame::decode(&framed).unwrap();
        prop_assert_eq!(decoded, key);
        prop_assert_eq!(&out[..], &payload[..]);
    }

    /// Any single-bit corruption of the payload region is detected.
    #[test]
    fn frame_detects_payload_corruption(
        payload in proptest::collection::vec(any::<u8>(), 1..512),
        flip in any::<u8>(),
    ) {
        let key = ShardKey::new("m", StatePart::Weights, 1);
        let framed = frame::encode(&key, &bytes::Bytes::from(payload.clone()));
        let mut bytes = framed.to_vec();
        let idx = bytes.len() - 1 - (flip as usize % payload.len());
        bytes[idx] ^= 1 << (flip % 8);
        let result = frame::decode(&bytes::Bytes::from(bytes));
        prop_assert!(result.is_err());
    }

    /// Workload plans conserve total bytes across strategies (modulo
    /// integer-division slack) and the bottleneck never exceeds the total.
    #[test]
    fn sharding_conserves_bytes(
        strategy_idx in 0usize..4,
        k in 1usize..=16,
    ) {
        let model = moc_system::moe::presets::gpt_350m_16e();
        let planner = ShardingPlanner::new(model.clone(), ParallelTopology::case3()).unwrap();
        let strategy = ShardingStrategy::ALL[strategy_idx];
        let pec = PecConfig::sequential(k, 16, 12);
        let plan = planner.plan_pec(strategy, &pec, 0);
        let expected = model.pec_checkpoint_bytes(k);
        let total = plan.total_bytes();
        prop_assert!(expected >= total && expected - total < 8192,
            "strategy {:?} total {} vs expected {}", strategy, total, expected);
        prop_assert!(plan.bottleneck().1 <= total);
        for rank in &plan.per_rank {
            let items: u64 = rank.items.iter().map(|i| i.bytes).sum();
            prop_assert_eq!(items, rank.total());
        }
    }

    /// The triple buffer never admits two persisting buffers or two
    /// recovery buffers, under arbitrary interleavings of operations.
    #[test]
    fn triple_buffer_invariants(ops in proptest::collection::vec(0u8..3, 1..64)) {
        let mut tb = TripleBuffer::new();
        let mut version = 0u64;
        let mut snapshotting: Vec<moc_system::core::twolevel::BufferId> = Vec::new();
        let mut persisting: Vec<moc_system::core::twolevel::BufferId> = Vec::new();
        for op in ops {
            match op {
                0 => {
                    version += 1;
                    if let Ok(id) = tb.begin_snapshot(version) {
                        snapshotting.push(id);
                    }
                }
                1 => {
                    if let Some(id) = snapshotting.pop() {
                        match tb.finish_snapshot(id).unwrap() {
                            moc_system::core::twolevel::SnapshotOutcome::StartPersist(p) => {
                                persisting.push(p)
                            }
                            moc_system::core::twolevel::SnapshotOutcome::Queued(_) => {}
                        }
                    }
                }
                _ => {
                    if let Some(id) = persisting.pop() {
                        if let Ok(Some(next)) = tb.finish_persist(id) {
                            persisting.push(next);
                        }
                    }
                }
            }
            prop_assert!(tb.check_invariants().is_ok());
        }
    }

    /// PEC checkpoint bytes are monotone in K and bounded by the full
    /// checkpoint, for arbitrary small architectures.
    #[test]
    fn pec_bytes_monotone(
        layers in 2usize..=8,
        hidden_units in 1usize..=8,
        experts in 2usize..=16,
    ) {
        let hidden = hidden_units * 64;
        let model = MoeModelConfig::builder("prop")
            .num_layers(layers)
            .hidden_size(hidden)
            .num_heads(hidden / 64)
            .vocab_size(1000)
            .max_seq_len(128)
            .moe_every_other_layer()
            .num_experts(experts)
            .top_k(1)
            .build()
            .unwrap();
        let full = model.full_checkpoint_bytes();
        let mut prev = 0;
        for k in 1..=experts {
            let b = model.pec_checkpoint_bytes(k);
            prop_assert!(b > prev);
            prop_assert!(b <= full);
            prev = b;
        }
        prop_assert_eq!(prev, full);
    }
}
