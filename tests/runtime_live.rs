//! Integration tests of the live multi-rank runtime: a node kill at a
//! known iteration recovers to bitwise-identical parameters versus an
//! unfaulted run, async two-level checkpointing beats the synchronous
//! baseline on per-iteration overhead, and Dynamic-K bounds measured PLT.

use moc_system::core::ParallelTopology;
use moc_system::runtime::{CheckpointMode, Coordinator, RunSummary, RuntimeConfig};
use moc_system::store::{FaultEvent, FaultPlan, FileObjectStore, MemoryObjectStore, ObjectStore};
use moc_system::train::PecMode;
use std::sync::Arc;
use std::time::Duration;

fn topo() -> ParallelTopology {
    // 2 nodes × 4 GPUs, DP = EP = 8: one expert of the tiny 8-expert LM
    // per rank, four ranks per node.
    ParallelTopology::dp_ep(2, 4, 8, 8).unwrap()
}

fn base_config() -> RuntimeConfig {
    RuntimeConfig {
        total_iterations: 18,
        i_ckpt: 6,
        eval_every: 0,
        seq_len: 16,
        heartbeat_timeout: Duration::from_millis(800),
        ..RuntimeConfig::tiny(topo())
    }
}

fn run(config: RuntimeConfig, store: Arc<dyn ObjectStore>) -> RunSummary {
    Coordinator::new(config, store).unwrap().run().unwrap()
}

/// The headline recovery guarantee: with full checkpointing (PEC
/// disabled), killing a node mid-run rolls every replica back to exactly
/// the state the unfaulted run passed through, so both runs finish with
/// bitwise-identical parameters.
#[test]
fn node_kill_recovers_bitwise_identical_to_unfaulted_run() {
    let full = RuntimeConfig {
        k_snapshot: 8,
        k_persist: 8,
        pec_mode: PecMode::NONE,
        ..base_config()
    };
    let faulted = RuntimeConfig {
        faults: FaultPlan::At(vec![FaultEvent {
            iteration: 10,
            node: 0,
        }]),
        ..full.clone()
    };

    let clean = run(full, Arc::new(MemoryObjectStore::new()));
    let recovered = run(faulted, Arc::new(MemoryObjectStore::new()));

    assert!(clean.replicas_consistent && recovered.replicas_consistent);
    assert_eq!(recovered.faults_injected, 1);
    assert_eq!(recovered.recoveries, 1);
    // Kill at 10 rolls back to the checkpoint at 6: four redone iterations.
    assert_eq!(recovered.iterations_executed, 18 + 4);
    assert_eq!(recovered.plt, 0.0, "full checkpointing loses no updates");
    let clean_bits: Vec<u32> = clean.final_params.iter().map(|x| x.to_bits()).collect();
    let recovered_bits: Vec<u32> = recovered.final_params.iter().map(|x| x.to_bits()).collect();
    assert_eq!(
        clean_bits, recovered_bits,
        "recovery must reproduce the unfaulted trajectory bitwise"
    );
}

/// PEC recovery loses expert updates (PLT > 0) but two-level recovery
/// pulls fresher expert state from surviving nodes' memory than storage
/// alone would.
#[test]
fn pec_recovery_reports_plt_and_uses_memory_tier() {
    let config = RuntimeConfig {
        k_snapshot: 4,
        k_persist: 1,
        pec_mode: PecMode::WO,
        two_level: true,
        faults: FaultPlan::At(vec![FaultEvent {
            iteration: 14,
            node: 1,
        }]),
        ..base_config()
    };
    let summary = run(config, Arc::new(MemoryObjectStore::new()));
    assert!(summary.replicas_consistent);
    assert!(summary.plt > 0.0, "PEC recovery must lose expert updates");
    assert!(
        summary.memory_hits > 0,
        "two-level recovery must hit surviving CPU memory: {summary:?}"
    );
    assert!(
        summary.storage_hits > 0,
        "dead node slots come from storage"
    );
}

/// Acceptance (a): asynchronous two-level checkpointing overlaps persists
/// with compute, so the measured per-checkpoint overhead is lower than
/// the synchronous baseline writing the same shards to the same store.
#[test]
fn async_checkpointing_beats_sync_overhead() {
    let root = std::env::temp_dir().join(format!("moc-runtime-bench-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);

    let sync_cfg = RuntimeConfig {
        checkpoint_mode: CheckpointMode::Sync,
        ..base_config()
    };
    let async_cfg = RuntimeConfig {
        checkpoint_mode: CheckpointMode::Async,
        ..base_config()
    };
    let sync_store = Arc::new(FileObjectStore::open(root.join("sync")).unwrap());
    let async_store = Arc::new(FileObjectStore::open(root.join("async")).unwrap());
    let sync_run = run(sync_cfg, sync_store.clone());
    let async_run = run(async_cfg, async_store.clone());

    // Same policy, same store: both persist the same shard volume.
    assert_eq!(sync_run.checkpoints_taken, async_run.checkpoints_taken);
    assert_eq!(
        sync_store.keys().unwrap(),
        async_store.keys().unwrap(),
        "modes must persist identical shard sets"
    );
    let sync_overhead = sync_run.checkpoint_overhead_secs();
    let async_overhead = async_run.checkpoint_overhead_secs();
    assert!(
        async_overhead < sync_overhead,
        "async {async_overhead:.6}s per checkpoint must beat sync {sync_overhead:.6}s"
    );
    std::fs::remove_dir_all(&root).unwrap();
}

/// Acceptance (b): under a late-run fault burst, the Dynamic-K controller
/// raises K so that measured PLT stays bounded by the configured budget.
#[test]
fn dynamic_k_bounds_measured_plt_under_fault_burst() {
    let budget = 0.12;
    let config = RuntimeConfig {
        total_iterations: 120,
        i_ckpt: 2,
        k_snapshot: 2,
        k_persist: 2,
        pec_mode: PecMode::WO,
        two_level: true,
        dynamic_k_budget: Some(budget),
        faults: FaultPlan::At(vec![
            FaultEvent {
                iteration: 60,
                node: 0,
            },
            FaultEvent {
                iteration: 90,
                node: 1,
            },
            FaultEvent {
                iteration: 110,
                node: 0,
            },
        ]),
        ..base_config()
    };
    let summary = run(config, Arc::new(MemoryObjectStore::new()));
    assert_eq!(summary.recoveries, 3);
    assert!(summary.replicas_consistent);
    assert_eq!(summary.k_trace.len(), 3);
    assert!(
        summary.k_trace.windows(2).all(|w| w[0] <= w[1]),
        "K must be non-decreasing: {:?}",
        summary.k_trace
    );
    assert!(
        summary.plt <= budget,
        "measured PLT {} must stay within the Dynamic-K budget {budget}",
        summary.plt
    );
}

/// The cluster-model validation hook: projecting measured phase means
/// through the analytic event simulator yields a finite, comparable
/// timeline.
#[test]
fn analytic_projection_accepts_measured_phases() {
    let summary = run(base_config(), Arc::new(MemoryObjectStore::new()));
    let projection = summary.analytic_projection();
    assert_eq!(projection.requested_checkpoints, 3);
    assert!(projection.total_sec.is_finite() && projection.total_sec > 0.0);
}
