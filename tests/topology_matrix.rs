//! The topology scenario matrix: live runs over (dp, tp, pp, ep) grids
//! × fault kind (kill, straggle, torn persist) × collective kind.
//!
//! The contract pinned here is the one every later refactor must keep:
//!
//! * **Baseline equivalence** — the `tp · pp` members of a shard group
//!   step the same DP slice with the same gate noise, so a grid run is
//!   bitwise identical (final parameters *and* loss trajectory) to the
//!   `tp = pp = 1` baseline with the same `dp` and seed.
//! * **Group-aware recovery** — a mid-run rank kill on any shape is
//!   detected through the group collectives, recovers exactly the dead
//!   ranks' shard groups from the committed chain view, and lands back
//!   on the uninterrupted run's bitwise trajectory under full
//!   checkpointing.
//! * **Perturbation isolation** — stragglers and torn persists never
//!   change the numerics, only the measured timeline.
//!
//! The default tier sweeps a capped grid (7 shapes × kill + straggle,
//! plus one torn-persist scenario) to bound tier-1 wall time; the
//! exhaustive shapes × faults × collectives cross-product runs under
//! `cargo test -- --ignored` in its own CI step.

use moc_system::core::ParallelTopology;
use moc_system::runtime::{
    CollectiveKind, Coordinator, EventKind, Phase, RunSummary, RuntimeConfig, SlowEvent,
};
use moc_system::store::{FaultEvent, FaultPlan, MemoryObjectStore, ObjectStore};
use moc_system::train::PecMode;
use std::sync::Arc;
use std::time::Duration;

/// One grid shape of the matrix: `(nodes, gpus/node, dp, tp, pp, ep)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct Shape(usize, usize, usize, usize, usize, usize);

impl Shape {
    fn topology(self) -> ParallelTopology {
        let Shape(nodes, gpn, dp, tp, pp, ep) = self;
        ParallelTopology::new(nodes, gpn, dp, tp, pp, ep)
            .unwrap_or_else(|e| panic!("shape {self:?} invalid: {e}"))
    }

    /// The `tp = pp = 1` baseline with the same data parallelism.
    fn flat(self) -> ParallelTopology {
        let Shape(_, _, dp, _, _, ep) = self;
        ParallelTopology::dp_ep(1, dp, dp, ep).unwrap()
    }
}

/// The default-tier shape grid (capped for wall time: worlds ≤ 8). The
/// tiny 8-expert model has 4 layers, so `pp ≤ 4`; `ep` divides `dp`.
const SHAPES: &[Shape] = &[
    Shape(1, 4, 2, 2, 1, 2), // TP pairs
    Shape(1, 4, 2, 1, 2, 2), // PP stages
    Shape(2, 4, 2, 2, 2, 2), // full grid, shard group per node
    Shape(2, 4, 4, 2, 1, 2), // wider DP under TP, 2 EP groups
    Shape(2, 4, 4, 1, 2, 4), // wider DP under PP
    Shape(1, 8, 2, 4, 1, 2), // wide TP ring
    Shape(1, 8, 2, 1, 4, 2), // deep pipeline (one stage per layer)
];

fn config(topo: ParallelTopology, collective: CollectiveKind) -> RuntimeConfig {
    // Full checkpointing: recovery is lossless, so faulted runs must land
    // bitwise on the clean trajectory.
    RuntimeConfig {
        total_iterations: 10,
        i_ckpt: 4,
        eval_every: 5,
        seq_len: 8,
        k_snapshot: 8,
        k_persist: 8,
        pec_mode: PecMode::NONE,
        collective,
        heartbeat_timeout: Duration::from_millis(800),
        ..RuntimeConfig::tiny(topo)
    }
}

fn run(config: RuntimeConfig) -> RunSummary {
    run_on(config, Arc::new(MemoryObjectStore::new()))
}

/// The clean ring-collective run of a shape, computed once and shared
/// across tests (the baseline-equivalence and kill tests both compare
/// against it; runs are deterministic, so caching loses nothing and
/// keeps the default tier's wall time bounded).
fn clean_ring_run(shape: Shape) -> RunSummary {
    use std::collections::HashMap;
    use std::sync::{LazyLock, Mutex};
    static CACHE: LazyLock<Mutex<HashMap<Shape, RunSummary>>> =
        LazyLock::new(|| Mutex::new(HashMap::new()));
    CACHE
        .lock()
        .unwrap()
        .entry(shape)
        .or_insert_with(|| run(config(shape.topology(), CollectiveKind::Ring)))
        .clone()
}

fn run_on(config: RuntimeConfig, store: Arc<dyn ObjectStore>) -> RunSummary {
    Coordinator::new(config, store).unwrap().run().unwrap()
}

fn bits(params: &[f32]) -> Vec<u32> {
    params.iter().map(|x| x.to_bits()).collect()
}

fn mid_run_kill(topo: &ParallelTopology) -> FaultPlan {
    // Kill the last node: on multi-node shapes a strict subset of shard
    // groups dies; on single-node shapes the whole cluster blacks out
    // and recovery is storage-only.
    FaultPlan::At(vec![FaultEvent {
        iteration: 7,
        node: topo.nodes() - 1,
    }])
}

/// Asserts a faulted grid run recovered onto the clean run's bitwise
/// trajectory and that the recovery was group-aware.
fn assert_recovered_bitwise(shape: Shape, clean: &RunSummary, faulted: &RunSummary) {
    let topo = shape.topology();
    assert_eq!(faulted.faults_injected, 1, "{shape:?}");
    assert!(faulted.recoveries >= 1, "{shape:?}");
    assert!(faulted.replicas_consistent, "{shape:?}");
    assert!(faulted.tp_groups_consistent, "{shape:?}");
    assert_eq!(
        bits(&clean.final_params),
        bits(&faulted.final_params),
        "{shape:?}: recovery must rejoin the unfaulted trajectory bitwise"
    );
    // The kill took out whole shard groups: every rank of the dead node
    // maps into the groups the recovery reports.
    let dead_node = topo.nodes() - 1;
    let expected_groups: std::collections::BTreeSet<usize> = topo
        .global_ranks_on_node(dead_node)
        .into_iter()
        .map(|r| topo.coords_of(r).dp)
        .collect();
    assert!(
        faulted.shard_groups_recovered >= expected_groups.len() as u64,
        "{shape:?}: {} groups recovered, expected at least {expected_groups:?}",
        faulted.shard_groups_recovered
    );
    let recovery_groups: Vec<Vec<usize>> = faulted
        .timeline
        .iter()
        .filter_map(|e| match &e.kind {
            EventKind::Recovery { shard_groups, .. } => Some(shard_groups.clone()),
            _ => None,
        })
        .collect();
    assert!(
        recovery_groups
            .iter()
            .any(|g| expected_groups.iter().all(|d| g.contains(d))),
        "{shape:?}: recovery events {recovery_groups:?} must cover the dead node's \
         shard groups {expected_groups:?}"
    );
}

/// Matrix axis 1 (clean runs): every grid shape reproduces its
/// `tp = pp = 1` baseline bitwise — final parameters and the full loss
/// trajectory — on the ring collective, and star ≡ ring on the full
/// grid shape.
#[test]
fn grid_runs_match_flat_baseline_bitwise() {
    let mut baselines: std::collections::HashMap<(usize, usize), RunSummary> =
        std::collections::HashMap::new();
    for &shape in SHAPES {
        let Shape(_, _, dp, _, _, ep) = shape;
        let flat = baselines
            .entry((dp, ep))
            .or_insert_with(|| run(config(shape.flat(), CollectiveKind::Ring)));
        let grid = clean_ring_run(shape);
        assert!(grid.replicas_consistent, "{shape:?}");
        assert!(grid.tp_groups_consistent, "{shape:?}");
        assert_eq!(
            bits(&flat.final_params),
            bits(&grid.final_params),
            "{shape:?}: grid must reproduce the flat baseline bitwise"
        );
        assert_eq!(
            flat.val_curve, grid.val_curve,
            "{shape:?}: loss trajectory must match the flat baseline"
        );
        assert_eq!(flat.plt, grid.plt, "{shape:?}: PLT bookkeeping must match");
    }
    // Collective-kind axis: the per-group star reduce reproduces the
    // per-group ring fold bitwise on the full grid shape.
    let full_grid = Shape(2, 4, 2, 2, 2, 2);
    let ring = clean_ring_run(full_grid);
    let star = run(config(full_grid.topology(), CollectiveKind::Star));
    assert_eq!(
        bits(&ring.final_params),
        bits(&star.final_params),
        "star and ring must agree bitwise on the grid"
    );
    // The group phases only exist in mixed-parallelism worlds.
    assert!(star.phase(Phase::TpSync).count > 0);
    assert!(star.phase(Phase::PpBubble).count > 0);
}

/// Matrix axis 2 (kill): a mid-run node kill on every shape is detected
/// through the group collectives and recovers bitwise-identically on
/// the ring collective. Covers the acceptance scenario
/// `dp ≥ 2, tp ≥ 2, pp ≥ 2` via the full grid shape.
#[test]
fn node_kill_recovers_bitwise_on_every_shape() {
    for &shape in SHAPES {
        let topo = shape.topology();
        let clean = clean_ring_run(shape);
        let faulted = run(RuntimeConfig {
            faults: mid_run_kill(&topo),
            ..config(topo, CollectiveKind::Ring)
        });
        assert_recovered_bitwise(shape, &clean, &faulted);
    }
}

/// Matrix axis 3 (straggle): a sustained straggler on the highest
/// global rank (the last TP slice of the last stage of the last DP
/// group) stalls the measured timeline on every shape without
/// perturbing the numerics, under the star collective.
#[test]
fn straggler_is_numerically_invisible_on_every_shape() {
    for &shape in SHAPES {
        let topo = shape.topology();
        let cfg = RuntimeConfig {
            heartbeat_timeout: Duration::from_secs(4),
            ..config(topo, CollectiveKind::Star)
        };
        let smooth = run(cfg.clone());
        let slowed = run(RuntimeConfig {
            stragglers: vec![SlowEvent::sustained(topo.world_size() - 1, 3, 2, 2.5)],
            ..cfg
        });
        assert_eq!(slowed.stragglers_injected, 2, "{shape:?}");
        assert_eq!(slowed.recoveries, 0, "{shape:?}: slow is not dead");
        assert!(
            slowed.straggler_stall_secs() > 0.0,
            "{shape:?}: stall must be measured"
        );
        assert_eq!(
            bits(&smooth.final_params),
            bits(&slowed.final_params),
            "{shape:?}: a straggler must not change the trajectory"
        );
    }
}

/// Matrix axis 4 (torn persist): on the full grid shape, the store dies
/// between shard writes of a checkpoint, a later kill forces
/// storage-only recovery, and the run reconstructs from the last
/// complete manifest onto the clean bitwise trajectory.
#[test]
fn torn_persist_recovers_bitwise_on_the_grid() {
    use moc_system::ckpt::testing::{FlakyStore, RecordingStore};
    let shape = Shape(2, 4, 2, 2, 2, 2);
    let topo = shape.topology();
    let cfg = || config(topo, CollectiveKind::Ring);

    // Record a clean run's put order, then cut the write budget midway
    // through the checkpoint at iteration 8.
    let recording = Arc::new(RecordingStore::new());
    let clean = run_on(cfg(), recording.clone());
    let ckpt8_start = recording
        .log()
        .iter()
        .position(|(k, _)| k.version == 8)
        .expect("checkpoint at iteration 8 persisted");
    let budget = ckpt8_start + 3;

    let flaky: Arc<dyn ObjectStore> = Arc::new(FlakyStore::new(
        Arc::new(MemoryObjectStore::new()),
        budget as i64,
    ));
    let faulted = run_on(
        RuntimeConfig {
            two_level: false,
            faults: FaultPlan::At(vec![FaultEvent {
                iteration: 9,
                node: 1,
            }]),
            ..cfg()
        },
        flaky,
    );
    assert_eq!(faulted.recoveries, 1);
    assert!(
        !faulted.ckpt_engine.errors.is_empty(),
        "the injected mid-batch crash must be observed"
    );
    // The torn checkpoint at 8 never committed: the kill at 9 resumed
    // from 4, redoing at least 5 iterations.
    assert!(
        faulted.iterations_executed >= 10 + 5,
        "resume must fall back past the torn checkpoint: {}",
        faulted.iterations_executed
    );
    assert!(faulted.replicas_consistent);
    assert_eq!(
        bits(&clean.final_params),
        bits(&faulted.final_params),
        "torn-persist recovery must land on the clean trajectory"
    );
}

/// The exhaustive sweep: shapes × collectives × faults cross-product.
/// Excluded from the default tier for wall time; CI runs it in a
/// dedicated `cargo test -- --ignored` step.
#[test]
#[ignore = "exhaustive sweep: run via cargo test -- --ignored"]
fn exhaustive_shape_fault_collective_sweep() {
    for &shape in SHAPES {
        let topo = shape.topology();
        for collective in [CollectiveKind::Ring, CollectiveKind::Star] {
            // The clean run doubles as the put-order probe for the
            // torn-persist leg.
            let recording = Arc::new(moc_system::ckpt::testing::RecordingStore::new());
            let clean = run_on(config(topo, collective), recording.clone());
            // Kill.
            let killed = run(RuntimeConfig {
                faults: mid_run_kill(&topo),
                ..config(topo, collective)
            });
            assert_recovered_bitwise(shape, &clean, &killed);
            // Straggle.
            let slowed = run(RuntimeConfig {
                stragglers: vec![SlowEvent::sustained(topo.world_size() - 1, 3, 2, 2.0)],
                heartbeat_timeout: Duration::from_secs(4),
                ..config(topo, collective)
            });
            assert_eq!(
                bits(&clean.final_params),
                bits(&slowed.final_params),
                "{shape:?}/{collective}: straggler must be invisible"
            );
            // Torn persist + kill, storage-only: cut the write budget
            // three puts into the first checkpoint (iteration 4), so
            // the bootstrap commits but v4 tears and recovery falls
            // back to iteration 0.
            let budget = recording
                .log()
                .iter()
                .position(|(k, _)| k.version == 4)
                .expect("checkpoint at iteration 4 persisted")
                + 3;
            let flaky: Arc<dyn ObjectStore> = Arc::new(moc_system::ckpt::testing::FlakyStore::new(
                Arc::new(MemoryObjectStore::new()),
                budget as i64,
            ));
            let torn = run_on(
                RuntimeConfig {
                    two_level: false,
                    faults: mid_run_kill(&topo),
                    ..config(topo, collective)
                },
                flaky,
            );
            assert!(torn.replicas_consistent, "{shape:?}/{collective}");
            assert_eq!(
                bits(&clean.final_params),
                bits(&torn.final_params),
                "{shape:?}/{collective}: torn persist must recover bitwise"
            );
        }
    }
}
