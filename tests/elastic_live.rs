//! The elastic recovery scenario matrix: node deaths recovered by
//! *shrinking* onto the surviving ranks — no respawn — with the bitwise
//! determinism contract pinned against the fixed-shape baseline:
//!
//! * **Shrink parity** — a run that loses a node and continues degraded
//!   (surviving shard groups adopt the dead groups' batch slices and
//!   experts) produces the same loss trajectory and final parameters,
//!   bitwise, as the unfaulted fixed-shape run — because slice and gate
//!   noise are pure functions of `(iteration, dp)` and the DP-order
//!   gradient fold splices adopted slices in at the dead positions.
//! * **Expand parity** — replacement ranks rejoining mid-run (seeded
//!   bitwise from a survivor) are numerically invisible.
//! * **Composition** — a second kill while degraded (the adopters
//!   themselves can die), and a torn persist during the degraded
//!   window followed by total loss (storage-only full restart), all
//!   land back on the clean trajectory.
//!
//! The default tier runs the capped matrix below; the full sweep across
//! replication factors and collectives runs under `--ignored` in the
//! scheduled exhaustive CI job.

use moc_system::ckpt::testing::{FlakyStore, RecordingStore};
use moc_system::core::ParallelTopology;
use moc_system::runtime::{
    CollectiveKind, Coordinator, ElasticConfig, EventKind, Phase, RunSummary, RuntimeConfig,
};
use moc_system::store::{FaultEvent, FaultPlan, MemoryObjectStore, ObjectStore};
use moc_system::train::PecMode;
use std::sync::Arc;
use std::time::Duration;

/// Two nodes × two GPUs, four shard groups — the smallest world where a
/// node death leaves half the groups alive.
fn two_node_topo() -> ParallelTopology {
    ParallelTopology::dp_ep(2, 2, 4, 4).unwrap()
}

/// Three nodes × two GPUs — room for two successive node deaths with
/// survivors left.
fn three_node_topo() -> ParallelTopology {
    ParallelTopology::dp_ep(3, 2, 6, 2).unwrap()
}

/// Full checkpointing: recovery is lossless, so every faulted run must
/// land bitwise on the clean trajectory.
fn config(topo: ParallelTopology) -> RuntimeConfig {
    RuntimeConfig {
        total_iterations: 12,
        i_ckpt: 4,
        eval_every: 6,
        seq_len: 8,
        k_snapshot: 8,
        k_persist: 8,
        pec_mode: PecMode::NONE,
        collective: CollectiveKind::Ring,
        heartbeat_timeout: Duration::from_millis(800),
        ..RuntimeConfig::tiny(topo)
    }
}

fn run(config: RuntimeConfig) -> RunSummary {
    run_on(config, Arc::new(MemoryObjectStore::new()))
}

fn run_on(config: RuntimeConfig, store: Arc<dyn ObjectStore>) -> RunSummary {
    Coordinator::new(config, store).unwrap().run().unwrap()
}

fn bits(params: &[f32]) -> Vec<u32> {
    params.iter().map(|x| x.to_bits()).collect()
}

fn kill(iteration: u64, node: usize) -> FaultPlan {
    FaultPlan::At(vec![FaultEvent { iteration, node }])
}

fn assert_bitwise_parity(clean: &RunSummary, elastic: &RunSummary, what: &str) {
    assert!(elastic.replicas_consistent, "{what}: replicas diverged");
    assert_eq!(
        bits(&clean.final_params),
        bits(&elastic.final_params),
        "{what}: must land on the clean trajectory bitwise"
    );
    // A rollback re-evaluates replayed iterations, so the faulted curve
    // may carry duplicates — every re-evaluation must be bitwise the
    // clean value (keep-last dedup by iteration).
    let dedup = |curve: &[(u64, f32)]| -> Vec<(u64, u32)> {
        curve
            .iter()
            .map(|&(it, loss)| (it, loss.to_bits()))
            .collect::<std::collections::BTreeMap<u64, u32>>()
            .into_iter()
            .collect()
    };
    assert_eq!(
        dedup(&clean.val_curve),
        dedup(&elastic.val_curve),
        "{what}: loss trajectory must match the fixed-shape run"
    );
    for window in elastic.val_curve.windows(2) {
        if window[0].0 == window[1].0 {
            assert_eq!(
                window[0].1.to_bits(),
                window[1].1.to_bits(),
                "{what}: a replayed eval must reproduce its loss bitwise"
            );
        }
    }
}

/// Scenario 1 (kill-then-shrink): one node dies, the run completes on
/// the survivors — no respawn — bitwise on the clean trajectory, and
/// the summary reports the migration and the degraded-step count.
#[test]
fn kill_then_shrink_matches_fixed_shape_bitwise() {
    let topo = two_node_topo();
    let clean = run(config(topo));
    for replication in [1usize, 2] {
        let shrunk = run(RuntimeConfig {
            faults: kill(7, 1),
            elastic: ElasticConfig::shrink(replication),
            ..config(topo)
        });
        assert_eq!(shrunk.faults_injected, 1, "r={replication}");
        assert_eq!(shrunk.recoveries, 1, "r={replication}");
        assert_eq!(
            shrunk.elastic_shrinks, 1,
            "r={replication}: the recovery must shrink, not respawn"
        );
        assert_eq!(shrunk.elastic_expands, 0, "r={replication}");
        assert!(
            shrunk.experts_migrated > 0,
            "r={replication}: the dead groups' experts must migrate"
        );
        // Kill at 7 rolled back to the checkpoint at 4: iterations 5..=12
        // all ran on the shrunk world.
        assert_eq!(shrunk.degraded_iterations, 8, "r={replication}");
        assert!(shrunk.phase(Phase::ShrinkRebalance).count > 0);
        let shrink_events: Vec<_> = shrunk
            .timeline
            .iter()
            .filter_map(|e| match &e.kind {
                EventKind::ElasticShrink {
                    dead_groups,
                    adoptions,
                    experts_migrated,
                    ..
                } => Some((dead_groups.clone(), adoptions.clone(), *experts_migrated)),
                _ => None,
            })
            .collect();
        assert_eq!(shrink_events.len(), 1, "r={replication}");
        let (dead_groups, adoptions, migrated) = &shrink_events[0];
        // Node 1 hosted shard groups 2 and 3.
        assert_eq!(dead_groups, &vec![2, 3], "r={replication}");
        assert_eq!(adoptions.len(), 2, "every dead slice is adopted");
        for &(dead, adopter) in adoptions {
            assert!(dead >= 2 && adopter < 2, "r={replication}: {adoptions:?}");
        }
        assert_eq!(*migrated as u64, shrunk.experts_migrated);
        assert_bitwise_parity(&clean, &shrunk, &format!("shrink r={replication}"));
    }
}

/// Scenario 2 (shrink-then-expand): replacement ranks rejoin after the
/// configured horizon, seeded bitwise from a survivor; the expanded run
/// finishes with every rank consistent on the clean trajectory.
#[test]
fn shrink_then_expand_matches_fixed_shape_bitwise() {
    let topo = two_node_topo();
    let clean = run(config(topo));
    let elastic = run(RuntimeConfig {
        faults: kill(5, 1),
        elastic: ElasticConfig {
            shrink: true,
            replication: 1,
            rejoin_after: Some(3),
        },
        ..config(topo)
    });
    assert_eq!(elastic.elastic_shrinks, 1);
    assert_eq!(elastic.elastic_expands, 1);
    // Kill at 5 resumed from 4; the expand fired at iteration 7, so 5
    // and 6 ran degraded.
    assert_eq!(elastic.degraded_iterations, 2);
    assert!(elastic.phase(Phase::ExpandRestore).count > 0);
    let expand: Vec<_> = elastic
        .timeline
        .iter()
        .filter_map(|e| match &e.kind {
            EventKind::ElasticExpand {
                returning_groups,
                experts_returned,
                degraded_iterations,
                ..
            } => Some((
                returning_groups.clone(),
                *experts_returned,
                *degraded_iterations,
            )),
            _ => None,
        })
        .collect();
    assert_eq!(expand.len(), 1);
    assert_eq!(expand[0].0, vec![2, 3], "node 1's groups return");
    assert_eq!(
        expand[0].1 as u64, elastic.experts_migrated,
        "every migrated expert returns home"
    );
    assert_eq!(expand[0].2, 2);
    // `replicas_consistent` spans the rejoined ranks too: the expand
    // seeding was bitwise.
    assert_bitwise_parity(&clean, &elastic, "shrink-then-expand");
}

/// Scenario 3 (kill during migration): a second node dies while the
/// world is already shrunk — adopters included — and the run composes a
/// second shrink, still bitwise on the clean trajectory.
#[test]
fn second_kill_while_degraded_composes_shrinks() {
    let topo = three_node_topo();
    let clean = run(config(topo));
    let elastic = run(RuntimeConfig {
        faults: FaultPlan::At(vec![
            FaultEvent {
                iteration: 5,
                node: 2,
            },
            FaultEvent {
                iteration: 8,
                node: 1,
            },
        ]),
        elastic: ElasticConfig::shrink(1),
        ..config(topo)
    });
    assert_eq!(elastic.faults_injected, 2);
    assert_eq!(elastic.recoveries, 2);
    assert_eq!(elastic.elastic_shrinks, 2);
    assert!(
        elastic.experts_migrated > 0,
        "both shrinks migrated ownership"
    );
    assert_bitwise_parity(&clean, &elastic, "second kill while degraded");
}

/// Tentpole: the degraded window runs the *ring over the survivors* —
/// the star is only the bounded post-recovery fallback window, never
/// the steady state of a shrunk run — and the adopter-driven survivor
/// fold still lands bitwise on the fixed-shape trajectory.
#[test]
fn degraded_window_runs_survivor_ring_not_star() {
    let topo = two_node_topo();
    let clean = run(config(topo));
    let shrunk = run(RuntimeConfig {
        faults: kill(7, 1),
        elastic: ElasticConfig::shrink(1),
        ..config(topo)
    });
    assert_eq!(shrunk.elastic_shrinks, 1);
    // Kill at 7 rolled back to 4: iteration 5 is the single configured
    // fallback-window star iteration; 6..=12 run the survivor ring.
    assert_eq!(shrunk.degraded_iterations, 8);
    assert_eq!(
        shrunk.survivor_ring_iterations, 7,
        "the degraded steady state is the survivor ring, not the star"
    );
    assert_eq!(
        shrunk.phase(Phase::Reduce).count,
        1,
        "the star runs only during the bounded fallback window"
    );
    // 15 executed = 12 + 3 replayed; minus the one star iteration and
    // the aborted iteration 7, every step ran a ring.
    assert_eq!(
        shrunk.phase(Phase::ReduceScatter).count,
        shrunk.iterations_executed - 1 - 1
    );
    assert_bitwise_parity(&clean, &shrunk, "survivor ring");
}

/// Tentpole: a second kill while *on the survivor ring* — the kill at 8
/// strikes degraded ring iterations, adopters included — aborts the
/// survivor ring cleanly, composes a second shrink, reopens the star
/// window, and returns the doubly-shrunk world to the survivor ring.
#[test]
fn second_kill_on_survivor_ring_aborts_and_recovers() {
    let topo = three_node_topo();
    let clean = run(config(topo));
    let elastic = run(RuntimeConfig {
        faults: FaultPlan::At(vec![
            FaultEvent {
                iteration: 5,
                node: 2,
            },
            FaultEvent {
                iteration: 8,
                node: 1,
            },
        ]),
        elastic: ElasticConfig::shrink(1),
        ..config(topo)
    });
    assert_eq!(elastic.recoveries, 2);
    assert_eq!(elastic.elastic_shrinks, 2);
    assert!(
        elastic.ring_aborts >= 2,
        "the second abort must come from the survivor ring itself"
    );
    assert_eq!(
        elastic.phase(Phase::Reduce).count,
        2,
        "one bounded star window per recovery"
    );
    // Window 1: star at 5, survivor ring 6..7 (the kill at 8 strikes the
    // survivor ring and is not counted). Window 2: star at 5, survivor
    // ring 6..=12.
    assert_eq!(elastic.survivor_ring_iterations, 2 + 7);
    assert_eq!(elastic.degraded_iterations, 3 + 8);
    assert_bitwise_parity(&clean, &elastic, "second kill on the survivor ring");
}

/// Satellite regression: the expand event's degraded-iteration count is
/// the *executed* counter delta, not iteration arithmetic. A second
/// kill inside the degraded window rolls training back without closing
/// the window; deriving the count from `it - degraded_since` would drop
/// the replayed degraded iterations.
#[test]
fn expand_after_second_kill_reports_executed_degraded_count() {
    let topo = three_node_topo();
    let clean = run(config(topo));
    let elastic = run(RuntimeConfig {
        faults: FaultPlan::At(vec![
            FaultEvent {
                iteration: 5,
                node: 2,
            },
            FaultEvent {
                iteration: 8,
                node: 1,
            },
        ]),
        elastic: ElasticConfig {
            shrink: true,
            replication: 1,
            rejoin_after: Some(7),
        },
        ..config(topo)
    });
    assert_eq!(elastic.elastic_shrinks, 2);
    assert_eq!(elastic.elastic_expands, 1);
    // First window executes 5..=7 degraded (the kill at 8 aborts), the
    // rollback resumes at 4 *inside* the still-open window, and 5..=10
    // execute degraded before the expand fires at iteration 11
    // (degraded_since 4 + rejoin_after 7): 3 + 6 = 9 executed degraded
    // iterations. The naive `(it - 1) - degraded_since` says 6.
    let expand_counts: Vec<u64> = elastic
        .timeline
        .iter()
        .filter_map(|e| match &e.kind {
            EventKind::ElasticExpand {
                degraded_iterations,
                ..
            } => Some(*degraded_iterations),
            _ => None,
        })
        .collect();
    assert_eq!(expand_counts, vec![9]);
    assert_eq!(
        elastic.degraded_iterations, 9,
        "the summary counter and the expand event must agree"
    );
    assert_bitwise_parity(&clean, &elastic, "expand after second kill");
}

/// Tentpole: an elastic run configured for the *hierarchical* collective
/// falls back to the survivor ring while degraded (leader-chain
/// placement assumes the full shape) and returns to the leader chain
/// after the expand — bitwise throughout.
#[test]
fn hierarchical_elastic_falls_back_to_survivor_ring() {
    let topo = two_node_topo();
    let cfg = || RuntimeConfig {
        collective: CollectiveKind::Hierarchical,
        ..config(topo)
    };
    let clean = run(cfg());
    let elastic = run(RuntimeConfig {
        faults: kill(7, 1),
        elastic: ElasticConfig {
            shrink: true,
            replication: 1,
            rejoin_after: Some(3),
        },
        ..cfg()
    });
    assert_eq!(elastic.elastic_shrinks, 1);
    assert_eq!(elastic.elastic_expands, 1);
    assert!(
        elastic.survivor_ring_iterations > 0,
        "the degraded window must run the survivor ring"
    );
    assert!(
        elastic.hierarchical_iterations > 0,
        "the full-shape iterations run the leader chain"
    );
    assert_eq!(
        elastic.hierarchical_iterations
            + elastic.survivor_ring_iterations
            + elastic.phase(Phase::Reduce).count,
        elastic.iterations_executed - 1,
        "every non-aborted iteration ran exactly one collective"
    );
    assert_bitwise_parity(&clean, &elastic, "hierarchical elastic fallback");
}

/// Scenario 4 (torn persist during shrink + total loss): the store dies
/// mid-checkpoint while the world is shrunk, then the last surviving
/// node is killed. With nobody to shrink onto, the elastic run falls
/// back to a full-shape restart from the last committed pre-tear
/// checkpoint — storage-only — and still lands bitwise.
#[test]
fn torn_persist_during_shrink_recovers_storage_only() {
    let topo = two_node_topo();
    let cfg = || RuntimeConfig {
        two_level: false,
        faults: kill(5, 1),
        elastic: ElasticConfig::shrink(1),
        ..config(topo)
    };
    let clean = run(config(topo));

    // Probe the put order of the shrunk run; cut the write budget three
    // puts into the post-shrink checkpoint at iteration 8.
    let recording = Arc::new(RecordingStore::new());
    let probe = run_on(cfg(), recording.clone());
    assert_eq!(probe.elastic_shrinks, 1);
    let ckpt8_start = recording
        .log()
        .iter()
        .position(|(k, _)| k.version == 8)
        .expect("post-shrink checkpoint persisted");
    let budget = ckpt8_start + 3;

    let flaky: Arc<dyn ObjectStore> = Arc::new(FlakyStore::new(
        Arc::new(MemoryObjectStore::new()),
        budget as i64,
    ));
    let torn = run_on(
        RuntimeConfig {
            faults: FaultPlan::At(vec![
                FaultEvent {
                    iteration: 5,
                    node: 1,
                },
                FaultEvent {
                    iteration: 9,
                    node: 0,
                },
            ]),
            ..cfg()
        },
        flaky,
    );
    assert_eq!(torn.elastic_shrinks, 1, "first kill shrinks");
    assert_eq!(torn.recoveries, 2);
    assert!(
        !torn.ckpt_engine.errors.is_empty(),
        "the injected mid-batch store death must be observed"
    );
    // The torn checkpoint at 8 never committed: the total loss at 9
    // restarted from 4 — iterations 1..5, replay 5..9, replay 5..12.
    assert_eq!(torn.iterations_executed, 18);
    assert_bitwise_parity(&clean, &torn, "torn persist during shrink");
}

/// Chain-aware GC riding a live elastic run: superseded checkpoint
/// groups are dropped from the store while a late kill still recovers
/// bitwise from what remains.
#[test]
fn gc_reclaims_store_bytes_without_breaking_recovery() {
    let topo = two_node_topo();
    let base = RuntimeConfig {
        total_iterations: 16,
        i_ckpt: 2,
        ..config(topo)
    };
    let plain = run(base.clone());
    let gc_cfg = RuntimeConfig {
        ckpt: moc_system::ckpt::EngineConfig {
            rebase_interval: 2,
            gc_interval: 1,
            gc_keep_last: 2,
            ..moc_system::ckpt::EngineConfig::default()
        },
        ..base.clone()
    };
    let gc_clean = run(gc_cfg.clone());
    assert!(gc_clean.ckpt_engine.writer.gc_runs > 0, "GC must run");
    assert!(
        gc_clean.persisted_bytes < plain.persisted_bytes,
        "GC must reclaim store bytes: {} vs {}",
        gc_clean.persisted_bytes,
        plain.persisted_bytes
    );
    assert_eq!(
        bits(&plain.final_params),
        bits(&gc_clean.final_params),
        "GC must not touch the trajectory"
    );
    // A kill after many GC passes recovers bitwise from the pruned
    // store.
    let gc_faulted = run(RuntimeConfig {
        faults: kill(13, 1),
        elastic: ElasticConfig::shrink(1),
        ..gc_cfg
    });
    assert_eq!(gc_faulted.elastic_shrinks, 1);
    assert_bitwise_parity(&plain, &gc_faulted, "kill after GC");
}

/// The GC × expand regression: while the world is shrunk the survivor
/// GCs away every version it once shared with the dead node's frozen
/// chain; a kill striking the very iteration the replacement ranks
/// rejoin must still recover — the rejoin-barrier checkpoint re-commits
/// the current state across all writers, storage-only.
#[test]
fn kill_right_after_expand_recovers_despite_gc() {
    let topo = two_node_topo();
    let cfg = RuntimeConfig {
        two_level: false,
        ckpt: moc_system::ckpt::EngineConfig {
            rebase_interval: 2,
            gc_interval: 1,
            gc_keep_last: 2,
            ..moc_system::ckpt::EngineConfig::default()
        },
        i_ckpt: 2,
        ..config(topo)
    };
    let clean = run(cfg.clone());
    let elastic = run(RuntimeConfig {
        faults: FaultPlan::At(vec![
            FaultEvent {
                iteration: 5,
                node: 1,
            },
            // The expand fires at the top of iteration 9 (resume 4 +
            // rejoin_after 5); the kill strikes the same iteration.
            FaultEvent {
                iteration: 9,
                node: 0,
            },
        ]),
        elastic: ElasticConfig {
            shrink: true,
            replication: 1,
            rejoin_after: Some(5),
        },
        ..cfg
    });
    assert_eq!(
        elastic.elastic_shrinks, 2,
        "kill after expand shrinks again"
    );
    assert_eq!(elastic.elastic_expands, 1);
    assert!(elastic.ckpt_engine.writer.gc_runs > 0, "GC must have run");
    assert_bitwise_parity(&clean, &elastic, "kill right after expand with GC");
}

/// Calibration samples: every checkpoint contributes a snapshot-tier
/// `(bytes, secs)` sample, sync mode contributes persist samples, and
/// the fitted spec feeds back into the analytic projection.
#[test]
fn calibration_samples_feed_the_analytic_loop() {
    use moc_system::cluster::ClusterSpec;
    let topo = two_node_topo();
    // PEC rotation varies the per-checkpoint byte volume, giving the
    // least-squares fit distinct sample sizes.
    let summary = run(RuntimeConfig {
        total_iterations: 16,
        i_ckpt: 2,
        k_snapshot: 2,
        k_persist: 1,
        pec_mode: PecMode::WO,
        checkpoint_mode: moc_system::runtime::CheckpointMode::Sync,
        ..config(topo)
    });
    assert_eq!(
        summary.snapshot_samples.len() as u64,
        summary.checkpoints_taken
    );
    assert_eq!(
        summary.persist_samples.len() as u64,
        summary.checkpoints_taken,
        "sync mode must sample the persist tier"
    );
    assert!(summary
        .snapshot_samples
        .iter()
        .all(|&(b, s)| b > 0 && s >= 0.0));
    let distinct: std::collections::BTreeSet<u64> =
        summary.snapshot_samples.iter().map(|&(b, _)| b).collect();
    assert!(
        distinct.len() >= 2,
        "PEC rotation must vary checkpoint volume: {distinct:?}"
    );
    // Calibration is total: it either adopts a fit or keeps the base
    // constants, and the projection consumes the result.
    let base = ClusterSpec::a800();
    let calibrated = summary.calibrated_cluster(&base);
    assert!(calibrated.gpu.storage.snapshot.bandwidth_bytes_per_sec > 0.0);
    let projected = summary.analytic_projection_with(&calibrated);
    assert!(projected.total_sec > 0.0);
    assert_eq!(
        projected.requested_checkpoints,
        summary.checkpoints_taken.max(1)
    );
}

/// The exhaustive elastic sweep: scenarios × replication × collective.
/// Excluded from the default tier for wall time; CI runs it in the
/// scheduled exhaustive job.
#[test]
#[ignore = "exhaustive sweep: run via cargo test -- --ignored"]
fn exhaustive_elastic_sweep() {
    for topo in [two_node_topo(), three_node_topo()] {
        for collective in [CollectiveKind::Ring, CollectiveKind::Star] {
            let clean = run(RuntimeConfig {
                collective,
                ..config(topo)
            });
            for replication in [1usize, 2] {
                for rejoin_after in [None, Some(2)] {
                    let elastic = run(RuntimeConfig {
                        faults: kill(7, topo.nodes() - 1),
                        collective,
                        elastic: ElasticConfig {
                            shrink: true,
                            replication,
                            rejoin_after,
                        },
                        ..config(topo)
                    });
                    assert_eq!(elastic.elastic_shrinks, 1);
                    assert_eq!(elastic.elastic_expands, u64::from(rejoin_after.is_some()));
                    assert_bitwise_parity(
                        &clean,
                        &elastic,
                        &format!("{topo}/{collective}/r={replication}/rejoin={rejoin_after:?}"),
                    );
                }
            }
        }
    }
}
