//! The chaos soak: seeded mixed-fault schedules against the live
//! runtime, every one required to either complete bitwise-identical to
//! the fault-free run or fail with a typed [`RuntimeError`] — no hangs
//! (a per-schedule watchdog converts them into failures), no panics, no
//! silent divergence.
//!
//! Three pins ride on top of the generic invariant:
//!
//! * **Zero false positives** — schedules containing only gray
//!   heartbeat losses (delays below the detector's `k_misses`) must
//!   finish with *zero* recoveries: every suspected rank is re-admitted
//!   within its lease.
//! * **Zero lost checkpoints** — schedules containing only transient
//!   store outages (within the retry budget) must absorb every injected
//!   failure in the backoff wrapper: no exhaustions, no engine errors,
//!   all checkpoints taken.
//! * **Second faults** — a node kill landing while a suspected rank is
//!   being re-admitted recovers exactly once; a store outage outlasting
//!   the retry budget during recovery surfaces as a typed error.
//!
//! The default tier runs a 20-seed smoke plus the pins; the ≥200-seed
//! soak runs under `--ignored` in the scheduled chaos CI job. Every
//! failure message carries the seed, so any schedule is re-runnable in
//! isolation.

use moc_system::core::recovery::RecoveryError;
use moc_system::core::ParallelTopology;
use moc_system::runtime::{
    generate_schedule, ChaosEvent, ChaosPlan, ChaosProfile, CollectiveKind, Coordinator,
    ElasticConfig, FaultKind, RunSummary, RuntimeConfig, RuntimeError,
};
use moc_system::store::{MemoryObjectStore, OutagePath, StoreError, StoreFaultPlan, StoreOutage};
use moc_system::train::PecMode;
use std::sync::{mpsc, Arc, OnceLock};
use std::time::Duration;

/// Iterations per schedule — long enough for two checkpoints, an
/// injected fault, and post-recovery progress.
const HORIZON: u64 = 8;

/// Wall-clock bound per schedule: a healthy run takes a couple of
/// seconds even with a kill (detection is two ~300 ms windows plus a
/// lease); anything near the watchdog is a hang, not a slow pass.
const WATCHDOG: Duration = Duration::from_secs(120);

fn topo() -> ParallelTopology {
    // 2 nodes × 2 GPUs, DP = EP = 4: the smallest world where a node
    // death leaves survivors to shrink onto.
    ParallelTopology::dp_ep(2, 2, 4, 4).unwrap()
}

/// Full checkpointing (recovery is lossless, so every tolerated
/// schedule must land bitwise on the clean trajectory) and an elastic
/// config (flap schedules need a rejoin path).
fn config(chaos: ChaosPlan, collective: CollectiveKind) -> RuntimeConfig {
    RuntimeConfig {
        total_iterations: HORIZON,
        i_ckpt: 3,
        eval_every: 0,
        seq_len: 8,
        k_snapshot: 8,
        k_persist: 8,
        pec_mode: PecMode::NONE,
        collective,
        heartbeat_timeout: Duration::from_millis(300),
        elastic: ElasticConfig {
            shrink: true,
            replication: 2,
            rejoin_after: Some(2),
        },
        chaos,
        ..RuntimeConfig::tiny(topo())
    }
}

/// Runs one schedule on its own thread under the watchdog. A hang
/// trips the deadline; a panic anywhere in the runtime drops the
/// sender and is converted into a failure — both carry `label`.
fn run_with_watchdog(config: RuntimeConfig, label: &str) -> Result<RunSummary, RuntimeError> {
    let (tx, rx) = mpsc::channel();
    let _worker = std::thread::spawn(move || {
        let result =
            Coordinator::new(config, Arc::new(MemoryObjectStore::new())).and_then(Coordinator::run);
        let _ = tx.send(result);
    });
    match rx.recv_timeout(WATCHDOG) {
        Ok(result) => result,
        Err(mpsc::RecvTimeoutError::Timeout) => {
            panic!("{label}: hung past the {WATCHDOG:?} watchdog")
        }
        Err(mpsc::RecvTimeoutError::Disconnected) => {
            panic!("{label}: runtime panicked instead of returning a typed error")
        }
    }
}

/// The fault-free trajectory per collective, computed once: the bitwise
/// reference every tolerated schedule must land on.
fn clean_bits(collective: CollectiveKind) -> &'static Vec<u32> {
    static STAR: OnceLock<Vec<u32>> = OnceLock::new();
    static RING: OnceLock<Vec<u32>> = OnceLock::new();
    static HIER: OnceLock<Vec<u32>> = OnceLock::new();
    let cell = match collective {
        CollectiveKind::Star => &STAR,
        CollectiveKind::Ring => &RING,
        CollectiveKind::Hierarchical => &HIER,
    };
    cell.get_or_init(|| {
        let summary = run_with_watchdog(config(ChaosPlan::none(), collective), "clean run")
            .expect("fault-free run succeeds");
        summary.final_params.iter().map(|x| x.to_bits()).collect()
    })
}

fn collective_for(seed: u64) -> CollectiveKind {
    if seed.is_multiple_of(2) {
        CollectiveKind::Star
    } else {
        CollectiveKind::Ring
    }
}

/// The generic soak invariant: the schedule either completes bitwise on
/// the clean trajectory with consistent replicas, or fails typed (which
/// `run_with_watchdog` already guarantees by returning `Err`).
fn assert_schedule_tolerated(seed: u64, profile: ChaosProfile) {
    let collective = collective_for(seed);
    let base = config(ChaosPlan::none(), collective);
    let plan = generate_schedule(seed, HORIZON, 2, 4, base.detector.k_misses, profile);
    let label = format!("seed {seed} ({collective:?}, {plan:?})");
    match run_with_watchdog(config(plan, collective), &label) {
        Ok(summary) => {
            assert!(summary.replicas_consistent, "{label}: replicas diverged");
            let bits: Vec<u32> = summary.final_params.iter().map(|x| x.to_bits()).collect();
            assert_eq!(
                &bits,
                clean_bits(collective),
                "{label}: silent divergence from the fault-free trajectory"
            );
        }
        Err(e) => {
            // Typed failure is a legal outcome of chaos — but the
            // generator stays within the tolerated envelope, so record
            // it loudly if it ever starts happening.
            panic!("{label}: in-envelope schedule failed: {e}");
        }
    }
}

#[test]
fn twenty_seed_smoke_soak() {
    for seed in 0..20 {
        assert_schedule_tolerated(seed, ChaosProfile::all());
    }
}

/// The full soak: ≥200 mixed-fault schedules plus profile-restricted
/// sweeps. Runs in the scheduled `chaos` CI job (`--ignored`).
#[test]
#[ignore = "multi-minute soak; run explicitly or in the scheduled chaos job"]
fn two_hundred_seed_soak() {
    for seed in 0..200 {
        assert_schedule_tolerated(seed, ChaosProfile::all());
    }
    for seed in 200..240 {
        assert_schedule_tolerated(seed, ChaosProfile::gray_only());
    }
}

/// Gray heartbeat losses below `k_misses` must never trigger recovery:
/// the rank is suspected, holds its lease, replies, and is re-admitted.
/// False-positive recoveries here would mean the detector declares on
/// gray failures — the exact bug the suspicion protocol exists to fix.
#[test]
fn heartbeat_loss_only_schedules_trigger_zero_recoveries() {
    let mut cleared_total = 0u64;
    for seed in 0..15 {
        let collective = collective_for(seed);
        let base = config(ChaosPlan::none(), collective);
        let plan = generate_schedule(
            seed,
            HORIZON,
            2,
            4,
            base.detector.k_misses,
            ChaosProfile::heartbeat_only(),
        );
        let label = format!("seed {seed} ({collective:?}, {plan:?})");
        let summary = run_with_watchdog(config(plan, collective), &label)
            .unwrap_or_else(|e| panic!("{label}: {e}"));
        assert_eq!(summary.recoveries, 0, "{label}: false-positive recovery");
        assert_eq!(summary.faults_injected, 0, "{label}");
        assert!(
            summary.suspicions_cleared >= 1,
            "{label}: the loss must actually trip the detector"
        );
        assert_eq!(
            summary.suspicions_cleared, summary.suspicions,
            "{label}: every suspicion must clear"
        );
        cleared_total += summary.suspicions_cleared;
        let bits: Vec<u32> = summary.final_params.iter().map(|x| x.to_bits()).collect();
        assert_eq!(&bits, clean_bits(collective), "{label}");
    }
    assert!(cleared_total >= 15, "suspicions were barely exercised");
}

/// Transient store outages within the retry budget must be absorbed
/// completely: no retry exhaustion, no checkpoint-engine errors, every
/// checkpoint taken, and the trajectory untouched.
#[test]
fn transient_store_only_schedules_lose_zero_checkpoints() {
    let mut retries_total = 0u64;
    for seed in 0..12 {
        let collective = collective_for(seed);
        let base = config(ChaosPlan::none(), collective);
        let plan = generate_schedule(
            seed,
            HORIZON,
            2,
            4,
            base.detector.k_misses,
            ChaosProfile::store_only(),
        );
        let label = format!("seed {seed} ({collective:?}, {plan:?})");
        let summary = run_with_watchdog(config(plan, collective), &label)
            .unwrap_or_else(|e| panic!("{label}: {e}"));
        assert_eq!(summary.store_retry_exhaustions, 0, "{label}");
        assert!(
            summary.ckpt_engine.errors.is_empty(),
            "{label}: engine errors {:?}",
            summary.ckpt_engine.errors
        );
        assert_eq!(summary.recoveries, 0, "{label}");
        assert_eq!(
            summary.checkpoints_taken,
            HORIZON / 3,
            "{label}: a checkpoint was lost"
        );
        retries_total += summary.store_retries;
        let bits: Vec<u32> = summary.final_params.iter().map(|x| x.to_bits()).collect();
        assert_eq!(&bits, clean_bits(collective), "{label}");
    }
    // Read-path outages never fire in a recovery-free run, so not every
    // seed retries — but across the sweep the wrapper must have worked.
    assert!(retries_total > 0, "no store retry was ever exercised");
}

/// A second fault mid-gray-tolerance: node 1 is killed in the same
/// iteration a rank on node 0 loses a heartbeat window. The suspected
/// rank must be re-admitted (cleared, not declared) while the genuinely
/// dead node is declared and recovered — one recovery, clean bitwise
/// finish.
#[test]
fn kill_during_suspected_readmission_recovers_once() {
    let collective = CollectiveKind::Star;
    let plan = ChaosPlan {
        events: vec![
            ChaosEvent {
                iteration: 5,
                kind: FaultKind::HeartbeatLoss { rank: 0, misses: 1 },
            },
            ChaosEvent {
                iteration: 5,
                kind: FaultKind::Kill { node: 1 },
            },
        ],
        store: StoreFaultPlan::none(),
    };
    let summary = run_with_watchdog(config(plan, collective), "kill during re-admission")
        .expect("tolerated composition");
    assert_eq!(summary.faults_injected, 1);
    assert_eq!(summary.recoveries, 1, "exactly one recovery for the kill");
    assert!(
        summary.suspicions_cleared >= 1,
        "the gray rank must be re-admitted, not declared"
    );
    let bits: Vec<u32> = summary.final_params.iter().map(|x| x.to_bits()).collect();
    assert_eq!(&bits, clean_bits(collective));
}

/// A store outage outlasting the retry budget while a recovery is in
/// flight: the recovery's chain fetch exhausts its retries and the run
/// fails with the typed store error — no hang, no panic.
#[test]
fn store_exhaustion_during_recovery_fails_typed() {
    let plan = ChaosPlan {
        events: vec![ChaosEvent {
            iteration: 5,
            kind: FaultKind::Kill { node: 1 },
        }],
        store: StoreFaultPlan {
            outages: vec![StoreOutage {
                path: OutagePath::Reads,
                start_op: 0,
                failures: u64::MAX,
            }],
        },
    };
    // Fixed-shape respawn recovery: reads only happen once the kill
    // forces a recovery, so the permanent read outage is invisible
    // until then.
    let cfg = RuntimeConfig {
        elastic: ElasticConfig::default(),
        ..config(plan, CollectiveKind::Star)
    };
    let err = run_with_watchdog(cfg, "store exhaustion during recovery")
        .expect_err("recovery cannot fetch through a dead read path");
    match err {
        RuntimeError::Recovery(RecoveryError::Store(StoreError::RetriesExhausted {
            attempts,
            ..
        })) => {
            assert_eq!(attempts, 4, "default retry budget");
        }
        other => panic!("expected a typed retry-exhaustion error, got: {other}"),
    }
}
