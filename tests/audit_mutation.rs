//! Seeded trace-mutation tests of the causal auditor: a live faulted
//! run's exported `trace.json` re-ingests into a causal graph that
//! passes every structural invariant, and surgically corrupting the
//! trace — dropping the persist span a checkpoint flow lands on, or
//! reordering the detection edge past the recovery — trips *exactly*
//! the targeted invariant with a causal witness path naming the
//! offending spans. The auditor must be precise in both directions:
//! zero false positives on a healthy trace, and the right violation
//! (not a pile of collateral ones) on a corrupted one.

use moc_system::core::ParallelTopology;
use moc_system::obs::audit::audit;
use moc_system::obs::{
    parse_chrome_trace, AuditConfig, CausalEvent, CausalGraph, Flow, Json, SpanKind,
};
use moc_system::runtime::{Coordinator, ObsConfig, RunSummary, RuntimeConfig};
use moc_system::store::{FaultEvent, FaultPlan, MemoryObjectStore};
use std::sync::Arc;
use std::time::Duration;

/// Checkpoint flows live above this id; fault flows below (mirrors
/// `moc_obs::ckpt_flow_id`).
const CKPT_FLOW_BASE: u64 = 1_000_000_000;

fn run(config: RuntimeConfig) -> RunSummary {
    Coordinator::new(config, Arc::new(MemoryObjectStore::new()))
        .unwrap()
        .run()
        .unwrap()
}

/// One faulted live run exporting a trace, re-ingested offline.
fn live_trace(tag: &str) -> (Vec<CausalEvent>, RunSummary, std::path::PathBuf) {
    let dir = std::env::temp_dir().join(format!("moc-audit-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let trace_path = dir.join("trace.json");
    let topo = ParallelTopology::dp_ep(2, 2, 4, 4).unwrap();
    let summary = run(RuntimeConfig {
        total_iterations: 12,
        i_ckpt: 4,
        eval_every: 6,
        seq_len: 16,
        heartbeat_timeout: Duration::from_millis(800),
        faults: FaultPlan::At(vec![FaultEvent {
            iteration: 7,
            node: 1,
        }]),
        obs: ObsConfig::with_trace(trace_path.clone()),
        ..RuntimeConfig::tiny(topo)
    });
    assert_eq!(summary.recoveries, 1);
    let text = std::fs::read_to_string(&trace_path).expect("trace.json written");
    let events = parse_chrome_trace(&text).expect("trace re-ingests");
    (events, summary, dir)
}

/// The healthy baseline: the live trace passes every invariant — both
/// through the in-run auditor (`summary.obs.audit`, written to
/// `audit.json`) and through a from-scratch offline re-ingestion, which
/// is exactly what the `moc-audit` binary runs.
#[test]
fn live_faulted_trace_passes_the_audit() {
    let (events, summary, dir) = live_trace("clean");
    assert!(!events.is_empty());

    // In-run audit: attached to the summary and persisted as audit.json.
    let in_run = summary.obs.audit.as_ref().expect("in-run audit report");
    assert!(
        in_run.passed(),
        "live trace must audit clean:\n{}",
        in_run.render_text()
    );
    assert!(in_run.fault_flows >= 1, "the kill opened a fault flow");
    assert!(in_run.ckpt_flows >= 1, "checkpoints opened submit flows");
    let audit_path = summary.obs.audit_path.as_ref().expect("audit.json path");
    let doc = Json::parse(&std::fs::read_to_string(audit_path).expect("audit.json written"))
        .expect("audit.json is valid JSON");
    assert_eq!(doc.get("passed").and_then(Json::as_bool), Some(true));

    // Offline audit over the re-ingested trace (the moc-audit path).
    let graph = CausalGraph::from_causal(events);
    let report = audit(&graph, None, &AuditConfig::default());
    assert!(
        report.passed(),
        "offline re-audit must agree:\n{}",
        report.render_text()
    );
    assert!(report.events_checked > 0);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Mutation 1 — drop the persist span a checkpoint-submit flow lands
/// on. The audit must report *exactly* one `ckpt-persist` violation
/// (no collateral damage to the other invariants), and its witness
/// must hold the orphaned submit span on the broken flow.
#[test]
fn dropping_a_persist_span_trips_exactly_ckpt_persist() {
    let (mut events, _, dir) = live_trace("drop-persist");
    // The victim must be a *complete* submit→persist flow: flows whose
    // submit never made it into the trace (a bootstrap persist, a dead
    // lane's dump) are deliberately skipped by the auditor.
    let victim = events
        .iter()
        .find_map(|e| match e.flow {
            Flow::Start(id)
                if id >= CKPT_FLOW_BASE && events.iter().any(|p| p.flow == Flow::End(id)) =>
            {
                Some(id)
            }
            _ => None,
        })
        .expect("the run persisted at least one complete checkpoint flow");
    events.retain(|e| e.flow != Flow::End(victim));

    let graph = CausalGraph::from_causal(events);
    let report = audit(&graph, None, &AuditConfig::default());
    let slugs: Vec<&str> = report.violations.iter().map(|v| v.invariant).collect();
    assert_eq!(
        slugs,
        vec!["ckpt-persist"],
        "exactly the targeted invariant must fire:\n{}",
        report.render_text()
    );
    let witness = &report.violations[0].witness;
    assert!(!witness.is_empty(), "violation carries a causal witness");
    assert!(
        witness
            .iter()
            .any(|e| matches!(e.flow, Flow::Start(id) if id == victim)),
        "witness names the orphaned submit span on flow {victim}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// Mutation 2 — reorder the detection edge: swapping the Lamport
/// stamps of `fault-detected` and `recovery` claims the recovery ran
/// before the coordinator detected the fault. Exactly
/// `recovery-causality` must fire, with a witness walking
/// injection → detection → recovery.
#[test]
fn reordering_detection_past_recovery_trips_exactly_recovery_causality() {
    let (mut events, _, dir) = live_trace("reorder");
    let detected = events
        .iter()
        .position(|e| e.name == "fault-detected" && matches!(e.flow, Flow::Step(_)))
        .expect("detection span on the fault flow");
    let recovery = events
        .iter()
        .position(|e| e.kind == SpanKind::Fault && e.name == "recovery")
        .expect("recovery span");
    let (a, b) = (events[detected].lamport, events[recovery].lamport);
    assert!(a < b, "sanity: the live trace detects before it recovers");
    events[detected].lamport = b;
    events[recovery].lamport = a;

    let graph = CausalGraph::from_causal(events);
    let report = audit(&graph, None, &AuditConfig::default());
    let slugs: Vec<&str> = report.violations.iter().map(|v| v.invariant).collect();
    assert_eq!(
        slugs,
        vec!["recovery-causality"],
        "exactly the targeted invariant must fire:\n{}",
        report.render_text()
    );
    let witness = &report.violations[0].witness;
    let names: Vec<&str> = witness.iter().map(|e| e.name.as_str()).collect();
    assert!(
        names.contains(&"fault-detected") && names.contains(&"recovery"),
        "witness walks the inverted edge, got {names:?}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
