//! Checkpoint shard keys.
//!
//! The two-level checkpointing management of the paper (Section 5.1)
//! "utilizes key-value pairs for efficient retrieval from both memory and
//! distributed storage". A [`ShardKey`] names one saved unit of model
//! state: a module (expert or non-expert layer), which state category it
//! carries, and the training iteration it was captured at.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Which category of state a shard carries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum StatePart {
    /// Learnable weights (`B_w` bytes per parameter).
    Weights,
    /// Optimizer states (`B_o` bytes per parameter).
    Optimizer,
    /// Other crucial states: iteration counters, RNG states, … (<1% of a
    /// checkpoint, Fig. 2).
    Extra,
}

impl StatePart {
    /// Short stable tag used in file names and display output.
    pub fn tag(&self) -> &'static str {
        match self {
            StatePart::Weights => "w",
            StatePart::Optimizer => "o",
            StatePart::Extra => "x",
        }
    }

    /// All parts in serialization order.
    pub const ALL: [StatePart; 3] = [StatePart::Weights, StatePart::Optimizer, StatePart::Extra];
}

impl fmt::Display for StatePart {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.tag())
    }
}

/// Identity of one checkpoint shard.
///
/// # Examples
///
/// ```
/// use moc_store::{ShardKey, StatePart};
/// let key = ShardKey::new("layer3.expert5", StatePart::Optimizer, 2000);
/// assert_eq!(key.to_string(), "layer3.expert5@o:2000");
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ShardKey {
    /// Module name (see `moc_moe::ModuleDesc::name`), e.g. `"layer3.expert5"`.
    pub module: String,
    /// State category.
    pub part: StatePart,
    /// Training iteration the state was captured at.
    pub version: u64,
}

impl ShardKey {
    /// Creates a shard key.
    pub fn new(module: impl Into<String>, part: StatePart, version: u64) -> Self {
        Self {
            module: module.into(),
            part,
            version,
        }
    }

    /// The `(module, part)` pair ignoring the version — the identity a
    /// store indexes by when looking up "latest".
    pub fn slot(&self) -> (&str, StatePart) {
        (&self.module, self.part)
    }

    /// A filesystem-safe encoding of the key.
    pub fn file_name(&self) -> String {
        let safe: String = self
            .module
            .chars()
            .map(|c| {
                if c.is_ascii_alphanumeric() || c == '.' || c == '-' {
                    c
                } else {
                    '_'
                }
            })
            .collect();
        format!("{safe}.{}.{:012}.shard", self.part.tag(), self.version)
    }
}

impl fmt::Display for ShardKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}@{}:{}", self.module, self.part, self.version)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_tags() {
        let k = ShardKey::new("embedding", StatePart::Weights, 7);
        assert_eq!(k.to_string(), "embedding@w:7");
        assert_eq!(StatePart::Extra.tag(), "x");
    }

    #[test]
    fn file_name_sanitizes() {
        let k = ShardKey::new("layer0/weird name", StatePart::Optimizer, 12);
        let f = k.file_name();
        assert!(!f.contains('/'));
        assert!(!f.contains(' '));
        assert!(f.ends_with(".shard"));
        assert!(f.contains(".o."));
    }

    #[test]
    fn slot_ignores_version() {
        let a = ShardKey::new("m", StatePart::Weights, 1);
        let b = ShardKey::new("m", StatePart::Weights, 2);
        assert_eq!(a.slot(), b.slot());
    }

    #[test]
    fn ordering_is_module_part_version() {
        let mut keys = [
            ShardKey::new("b", StatePart::Weights, 0),
            ShardKey::new("a", StatePart::Optimizer, 5),
            ShardKey::new("a", StatePart::Weights, 9),
        ];
        keys.sort();
        assert_eq!(keys[0].module, "a");
        assert_eq!(keys[0].part, StatePart::Weights);
    }
}
