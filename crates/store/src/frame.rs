//! Binary shard framing: the on-disk / on-wire format of a checkpoint shard.
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! magic   u32   0x4D4F4353 ("MOCS")
//! format  u16   1
//! key     u16 module-name length | bytes | u8 part tag | u64 version
//! crc32   u32   checksum of the payload
//! len     u64   payload length
//! payload bytes
//! ```
//!
//! The checksum guards recovery: a torn persist (e.g. a node dying
//! mid-write) is detected instead of silently restoring corrupt state.

use crate::key::{ShardKey, StatePart};
use bytes::{BufMut, Bytes, BytesMut};
use std::fmt;

const MAGIC: u32 = 0x4D4F_4353;
const FORMAT: u16 = 1;

/// Error decoding a framed shard.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameError {
    /// Buffer too short to contain a frame at the expected offset.
    Truncated,
    /// Magic number mismatch: not a shard frame.
    BadMagic(u32),
    /// Unsupported format version.
    BadFormat(u16),
    /// Unknown state-part tag byte.
    BadPartTag(u8),
    /// Module name was not valid UTF-8.
    BadModuleName,
    /// Payload checksum mismatch (torn or corrupted write).
    ChecksumMismatch {
        /// Checksum recorded in the frame header.
        expected: u32,
        /// Checksum computed over the payload read back.
        actual: u32,
    },
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::Truncated => write!(f, "truncated shard frame"),
            FrameError::BadMagic(m) => write!(f, "bad magic {m:#x}"),
            FrameError::BadFormat(v) => write!(f, "unsupported frame format {v}"),
            FrameError::BadPartTag(t) => write!(f, "unknown state-part tag {t}"),
            FrameError::BadModuleName => write!(f, "module name is not valid utf-8"),
            FrameError::ChecksumMismatch { expected, actual } => {
                write!(
                    f,
                    "payload checksum mismatch: header {expected:#x}, computed {actual:#x}"
                )
            }
        }
    }
}

impl std::error::Error for FrameError {}

/// Encodes a shard into a framed byte buffer.
///
/// # Examples
///
/// ```
/// use moc_store::{frame, ShardKey, StatePart};
/// use bytes::Bytes;
/// let key = ShardKey::new("layer1.expert0", StatePart::Weights, 10);
/// let framed = frame::encode(&key, &Bytes::from_static(b"payload"));
/// let (decoded, payload) = frame::decode(&framed)?;
/// assert_eq!(decoded, key);
/// assert_eq!(&payload[..], b"payload");
/// # Ok::<(), moc_store::frame::FrameError>(())
/// ```
pub fn encode(key: &ShardKey, payload: &Bytes) -> Bytes {
    let mut buf = BytesMut::with_capacity(32 + key.module.len() + payload.len());
    buf.put_u32_le(MAGIC);
    buf.put_u16_le(FORMAT);
    buf.put_u16_le(key.module.len() as u16);
    buf.put_slice(key.module.as_bytes());
    buf.put_u8(part_tag(key.part));
    buf.put_u64_le(key.version);
    buf.put_u32_le(crc32(payload));
    buf.put_u64_le(payload.len() as u64);
    buf.put_slice(payload);
    buf.freeze()
}

/// Fixed header bytes around the variable-length module name: magic,
/// format, name length, part tag, version, payload CRC, payload length.
const HEADER_FIXED: usize = 4 + 2 + 2 + 1 + 8 + 4 + 8;

/// The largest possible frame header (a `u16::MAX`-byte module name).
/// Reading this many bytes from the front of a shard file always
/// suffices to decode its header.
pub const HEADER_MAX: usize = HEADER_FIXED + u16::MAX as usize;

/// A decoded frame header: everything known about a shard without
/// touching its payload bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FrameHeader {
    /// The shard's key.
    pub key: ShardKey,
    /// Checksum recorded for the payload.
    pub payload_crc: u32,
    /// Payload length in bytes.
    pub payload_len: u64,
    /// Bytes the header itself occupies; the payload starts here.
    pub header_len: usize,
}

/// Decodes a frame header from the leading bytes of a framed shard,
/// without requiring (or validating) the payload. Key listings scan
/// headers only, so their cost is independent of stored payload bytes;
/// payload integrity stays enforced on the read path ([`decode`]).
///
/// # Errors
///
/// Returns a [`FrameError`] describing the first malformed field.
pub fn decode_header(bytes: &[u8]) -> Result<FrameHeader, FrameError> {
    fn take<const N: usize>(buf: &mut &[u8]) -> Result<[u8; N], FrameError> {
        if buf.len() < N {
            return Err(FrameError::Truncated);
        }
        let (head, rest) = buf.split_at(N);
        *buf = rest;
        Ok(head.try_into().expect("split_at guarantees length"))
    }
    let mut buf = bytes;
    let magic = u32::from_le_bytes(take(&mut buf)?);
    if magic != MAGIC {
        return Err(FrameError::BadMagic(magic));
    }
    let format = u16::from_le_bytes(take(&mut buf)?);
    if format != FORMAT {
        return Err(FrameError::BadFormat(format));
    }
    let name_len = u16::from_le_bytes(take(&mut buf)?) as usize;
    if buf.len() < name_len + 1 + 8 + 4 + 8 {
        return Err(FrameError::Truncated);
    }
    let module =
        String::from_utf8(buf[..name_len].to_vec()).map_err(|_| FrameError::BadModuleName)?;
    buf = &buf[name_len..];
    let part = decode_part(take::<1>(&mut buf)?[0])?;
    let version = u64::from_le_bytes(take(&mut buf)?);
    let payload_crc = u32::from_le_bytes(take(&mut buf)?);
    let payload_len = u64::from_le_bytes(take(&mut buf)?);
    Ok(FrameHeader {
        key: ShardKey {
            module,
            part,
            version,
        },
        payload_crc,
        payload_len,
        header_len: HEADER_FIXED + name_len,
    })
}

/// Decodes a framed shard, verifying magic, format and payload checksum.
///
/// # Errors
///
/// Returns a [`FrameError`] describing the first malformed field.
pub fn decode(framed: &Bytes) -> Result<(ShardKey, Bytes), FrameError> {
    let header = decode_header(framed)?;
    let len = header.payload_len as usize;
    if framed.len() < header.header_len + len {
        return Err(FrameError::Truncated);
    }
    let payload = framed.slice(header.header_len..header.header_len + len);
    let actual = crc32(&payload);
    if actual != header.payload_crc {
        return Err(FrameError::ChecksumMismatch {
            expected: header.payload_crc,
            actual,
        });
    }
    Ok((header.key, payload))
}

fn part_tag(p: StatePart) -> u8 {
    match p {
        StatePart::Weights => 0,
        StatePart::Optimizer => 1,
        StatePart::Extra => 2,
    }
}

fn decode_part(t: u8) -> Result<StatePart, FrameError> {
    match t {
        0 => Ok(StatePart::Weights),
        1 => Ok(StatePart::Optimizer),
        2 => Ok(StatePart::Extra),
        other => Err(FrameError::BadPartTag(other)),
    }
}

/// CRC-32 (IEEE 802.3 polynomial), table-driven.
pub fn crc32(data: &[u8]) -> u32 {
    static TABLE: std::sync::OnceLock<[u32; 256]> = std::sync::OnceLock::new();
    let table = TABLE.get_or_init(|| {
        let mut t = [0u32; 256];
        for (i, slot) in t.iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 {
                    0xEDB8_8320 ^ (c >> 1)
                } else {
                    c >> 1
                };
            }
            *slot = c;
        }
        t
    });
    let mut crc = 0xFFFF_FFFFu32;
    for &b in data {
        crc = table[((crc ^ b as u32) & 0xFF) as usize] ^ (crc >> 8);
    }
    crc ^ 0xFFFF_FFFF
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key() -> ShardKey {
        ShardKey::new("layer0.attention", StatePart::Optimizer, 123)
    }

    #[test]
    fn roundtrip() {
        let payload = Bytes::from(vec![7u8; 1024]);
        let framed = encode(&key(), &payload);
        let (k, p) = decode(&framed).unwrap();
        assert_eq!(k, key());
        assert_eq!(p, payload);
    }

    #[test]
    fn roundtrip_empty_payload() {
        let framed = encode(&key(), &Bytes::new());
        let (k, p) = decode(&framed).unwrap();
        assert_eq!(k, key());
        assert!(p.is_empty());
    }

    #[test]
    fn detects_bad_magic() {
        let mut bytes = encode(&key(), &Bytes::from_static(b"x")).to_vec();
        bytes[0] ^= 0xFF;
        assert!(matches!(
            decode(&Bytes::from(bytes)),
            Err(FrameError::BadMagic(_))
        ));
    }

    #[test]
    fn detects_corrupt_payload() {
        let mut bytes = encode(&key(), &Bytes::from(vec![1u8; 64])).to_vec();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xFF;
        assert!(matches!(
            decode(&Bytes::from(bytes)),
            Err(FrameError::ChecksumMismatch { .. })
        ));
    }

    #[test]
    fn detects_truncation() {
        let bytes = encode(&key(), &Bytes::from(vec![1u8; 64]));
        let cut = bytes.slice(0..bytes.len() - 10);
        assert_eq!(decode(&cut), Err(FrameError::Truncated));
        assert_eq!(decode(&bytes.slice(0..4)), Err(FrameError::Truncated));
    }

    #[test]
    fn header_decodes_without_payload() {
        let payload = Bytes::from(vec![9u8; 512]);
        let framed = encode(&key(), &payload);
        // The header alone — no payload bytes at all — suffices.
        let h = decode_header(&framed[..framed.len() - 512]).unwrap();
        assert_eq!(h.key, key());
        assert_eq!(h.payload_len, 512);
        assert_eq!(h.payload_crc, crc32(&payload));
        assert_eq!(h.header_len + 512, framed.len());
        assert!(h.header_len <= HEADER_MAX);
        // A corrupt payload is invisible to the header decode (the whole
        // point: listings must not pay for payload validation)...
        let mut corrupt = framed.to_vec();
        let last = corrupt.len() - 1;
        corrupt[last] ^= 0xFF;
        assert_eq!(decode_header(&corrupt).unwrap(), h);
        // ...but not to the full decode.
        assert!(matches!(
            decode(&Bytes::from(corrupt)),
            Err(FrameError::ChecksumMismatch { .. })
        ));
    }

    #[test]
    fn header_truncation_and_bad_fields_detected() {
        let framed = encode(&key(), &Bytes::from_static(b"x"));
        assert_eq!(decode_header(&framed[..5]), Err(FrameError::Truncated));
        let mut bad = framed.to_vec();
        bad[0] ^= 0xFF;
        assert!(matches!(decode_header(&bad), Err(FrameError::BadMagic(_))));
    }

    #[test]
    fn crc32_known_vector() {
        // Standard test vector: crc32("123456789") = 0xCBF43926.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn bad_part_tag_rejected() {
        let framed = encode(&key(), &Bytes::from_static(b"x"));
        let mut bytes = framed.to_vec();
        // part tag sits right after the module name.
        let tag_pos = 4 + 2 + 2 + key().module.len();
        bytes[tag_pos] = 9;
        assert_eq!(decode(&Bytes::from(bytes)), Err(FrameError::BadPartTag(9)));
    }
}
