//! # moc-store — storage substrate for the MoC-System reproduction
//!
//! The checkpoint data paths of the paper (Fig. 3, Fig. 8), built from
//! scratch:
//!
//! * [`key`] — versioned shard keys, the key-value naming scheme of the
//!   two-level checkpointing management;
//! * [`frame`] — crash-safe binary framing with checksums;
//! * [`object`] — the persistent tier: an [`ObjectStore`] trait with
//!   in-memory and real file-backed implementations;
//! * [`memory`] — the CPU-memory tier: per-node snapshot stores that a
//!   node fault wipes;
//! * [`failure`] — deterministic fault schedules (explicit, periodic,
//!   Poisson with rate λ);
//! * [`retry`] — [`RetryStore`]: capped exponential backoff around every
//!   store operation, with typed exhaustion errors, so transient blips
//!   don't abort checkpoints or recovery;
//! * [`chaos`] — [`ChaosStore`]: deterministic operation-indexed fault
//!   injection (the storage leg of the runtime's FaultPlan v2);
//! * [`tier`] — bandwidth specifications of the transfer paths
//!   (1 GB/s A800 / 2 GB/s H100 snapshot bandwidths from the paper).
//!
//! # Examples
//!
//! ```
//! use moc_store::{MemoryObjectStore, ObjectStore, ShardKey, StatePart};
//! use bytes::Bytes;
//!
//! let store = MemoryObjectStore::new();
//! let key = ShardKey::new("layer1.expert0", StatePart::Weights, 100);
//! store.put(&key, Bytes::from_static(b"expert weights"))?;
//! assert_eq!(store.latest_version("layer1.expert0", StatePart::Weights, 100)?, Some(100));
//! # Ok::<(), moc_store::StoreError>(())
//! ```

#![warn(missing_docs)]

pub mod chaos;
pub mod failure;
pub mod frame;
pub mod key;
pub mod memory;
pub mod object;
pub mod retry;
pub mod tier;

pub use chaos::{ChaosStore, OutagePath, StoreFaultPlan, StoreOutage};
pub use failure::{FaultEvent, FaultPlan};
pub use key::{ShardKey, StatePart};
pub use memory::{ClusterMemory, NodeId, NodeMemoryStore};
pub use object::{FileObjectStore, MemoryObjectStore, ObjectStore, StoreError};
pub use retry::{RetryPolicy, RetryStore};
pub use tier::{StorageHierarchy, TierLink, GB, GIB};
