//! Storage-tier bandwidth specifications.
//!
//! Transfer durations across the checkpoint hierarchy (GPU→CPU snapshot
//! over PCIe, CPU→storage persist over the network) are pure functions of
//! data volume and tier bandwidth. These specs carry the paper's measured
//! constants (Section 6.2.4: 1 GB/s snapshot bandwidth on A800 nodes,
//! 2 GB/s on H100 nodes) and feed both the analytic overhead model in
//! `moc-core` and the timeline simulator in `moc-cluster`.

use serde::{Deserialize, Serialize};
use std::time::Duration;

/// One gibibyte in bytes.
pub const GIB: u64 = 1 << 30;
/// One gigabyte (10^9) in bytes — the unit the paper's bandwidths use.
pub const GB: u64 = 1_000_000_000;

/// Bandwidth/latency description of a transfer path between tiers.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TierLink {
    /// Sustained bandwidth in bytes per second.
    pub bandwidth_bytes_per_sec: f64,
    /// Fixed per-transfer latency in seconds (setup, serialization
    /// book-keeping). Small relative to checkpoint volumes.
    pub latency_sec: f64,
}

impl TierLink {
    /// Creates a link from a bandwidth in GB/s (decimal) and latency.
    pub fn from_gbps(gb_per_sec: f64, latency_sec: f64) -> Self {
        Self {
            bandwidth_bytes_per_sec: gb_per_sec * GB as f64,
            latency_sec,
        }
    }

    /// Time to move `bytes` across this link.
    pub fn transfer_time(&self, bytes: u64) -> Duration {
        let secs = self.latency_sec + bytes as f64 / self.bandwidth_bytes_per_sec;
        Duration::from_secs_f64(secs)
    }

    /// Time to move `bytes`, as fractional seconds.
    pub fn transfer_secs(&self, bytes: u64) -> f64 {
        self.latency_sec + bytes as f64 / self.bandwidth_bytes_per_sec
    }

    /// Least-squares fit of a link from measured `(bytes, seconds)`
    /// transfer samples: the model `secs = latency + bytes / bandwidth`
    /// is linear in `(latency, 1 / bandwidth)`, so an ordinary
    /// least-squares line through the samples calibrates both constants
    /// from live runs. The fitted latency is clamped at 0 (a negative
    /// intercept is measurement noise, not physics).
    ///
    /// Returns `None` when fewer than two distinct byte counts are
    /// available or the fitted slope is not positive — an unfittable or
    /// degenerate sample set must not silently produce a bogus link.
    pub fn fit(samples: &[(u64, f64)]) -> Option<Self> {
        let distinct: std::collections::BTreeSet<u64> = samples.iter().map(|&(b, _)| b).collect();
        if distinct.len() < 2 {
            return None;
        }
        let n = samples.len() as f64;
        let mean_x = samples.iter().map(|&(b, _)| b as f64).sum::<f64>() / n;
        let mean_y = samples.iter().map(|&(_, s)| s).sum::<f64>() / n;
        let mut sxx = 0.0;
        let mut sxy = 0.0;
        for &(b, s) in samples {
            let dx = b as f64 - mean_x;
            sxx += dx * dx;
            sxy += dx * (s - mean_y);
        }
        let slope = sxy / sxx; // seconds per byte = 1 / bandwidth
        if !(slope > 0.0 && slope.is_finite()) {
            return None;
        }
        Some(Self {
            bandwidth_bytes_per_sec: 1.0 / slope,
            latency_sec: (mean_y - slope * mean_x).max(0.0),
        })
    }
}

/// Bandwidths of the full two-level hierarchy for one node class.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StorageHierarchy {
    /// GPU→CPU snapshot path (PCIe; per GPU).
    pub snapshot: TierLink,
    /// CPU→persistent-storage path (network filesystem; per node).
    pub persist: TierLink,
    /// Persistent-storage→CPU restore path (reads are typically faster
    /// than writes on distributed filesystems).
    pub restore: TierLink,
}

impl StorageHierarchy {
    /// The A800-node hierarchy used in the paper's measurements:
    /// 1 GB/s GPU→CPU snapshot bandwidth; persist to the cluster
    /// filesystem at 0.8 GB/s per node; restore reads at 1.6 GB/s.
    pub fn a800() -> Self {
        Self {
            snapshot: TierLink::from_gbps(1.0, 0.005),
            persist: TierLink::from_gbps(0.8, 0.020),
            restore: TierLink::from_gbps(1.6, 0.020),
        }
    }

    /// The H100-node hierarchy of the scaling simulations: 2 GB/s
    /// snapshot bandwidth; storage paths matching newer clusters.
    pub fn h100() -> Self {
        Self {
            snapshot: TierLink::from_gbps(2.0, 0.005),
            persist: TierLink::from_gbps(1.6, 0.020),
            restore: TierLink::from_gbps(3.2, 0.020),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transfer_time_scales_linearly() {
        let link = TierLink::from_gbps(1.0, 0.0);
        let t1 = link.transfer_secs(GB);
        let t2 = link.transfer_secs(2 * GB);
        assert!((t1 - 1.0).abs() < 1e-9);
        assert!((t2 - 2.0).abs() < 1e-9);
    }

    #[test]
    fn latency_adds_constant() {
        let link = TierLink::from_gbps(1.0, 0.5);
        assert!((link.transfer_secs(0) - 0.5).abs() < 1e-12);
        let d = link.transfer_time(GB);
        assert!((d.as_secs_f64() - 1.5).abs() < 1e-9);
    }

    #[test]
    fn h100_snapshot_twice_a800() {
        let a = StorageHierarchy::a800();
        let h = StorageHierarchy::h100();
        let ratio = h.snapshot.bandwidth_bytes_per_sec / a.snapshot.bandwidth_bytes_per_sec;
        assert!((ratio - 2.0).abs() < 1e-9);
    }

    #[test]
    fn fit_recovers_exact_constants() {
        let truth = TierLink::from_gbps(1.5, 0.02);
        let samples: Vec<(u64, f64)> = [GB / 4, GB / 2, GB, 2 * GB]
            .iter()
            .map(|&b| (b, truth.transfer_secs(b)))
            .collect();
        let fitted = TierLink::fit(&samples).unwrap();
        assert!(
            (fitted.bandwidth_bytes_per_sec - truth.bandwidth_bytes_per_sec).abs()
                / truth.bandwidth_bytes_per_sec
                < 1e-9
        );
        assert!((fitted.latency_sec - truth.latency_sec).abs() < 1e-9);
    }

    #[test]
    fn fit_rejects_degenerate_samples() {
        assert!(TierLink::fit(&[]).is_none());
        assert!(TierLink::fit(&[(GB, 1.0)]).is_none());
        assert!(
            TierLink::fit(&[(GB, 1.0), (GB, 1.2)]).is_none(),
            "one distinct byte count cannot pin a slope"
        );
        assert!(
            TierLink::fit(&[(GB, 2.0), (2 * GB, 1.0)]).is_none(),
            "negative slope is not a link"
        );
    }

    #[test]
    fn fit_clamps_negative_latency() {
        // Noise-free samples through the origin minus a constant would
        // fit a negative intercept; the clamp keeps latency physical.
        let fitted = TierLink::fit(&[(GB, 0.9), (2 * GB, 1.9)]).unwrap();
        assert!(fitted.latency_sec >= 0.0);
    }

    #[test]
    fn restore_faster_than_persist() {
        for h in [StorageHierarchy::a800(), StorageHierarchy::h100()] {
            assert!(h.restore.bandwidth_bytes_per_sec > h.persist.bandwidth_bytes_per_sec);
        }
    }
}
