//! Fault schedules and injection.
//!
//! The overhead model (Eq. 3–4, 11) and the accuracy experiments all need a
//! stream of fault events. [`FaultPlan`] produces deterministic fault
//! iteration lists — fixed points (Fig. 14), fixed intervals, or a seeded
//! Poisson process with rate `λ` (Eq. 11's constant failure rate).

use crate::memory::NodeId;
use rand::{RngExt, SeedableRng};
use serde::{Deserialize, Serialize};

/// A single fault event: at the end of iteration `iteration`, node
/// `node` crashes, losing its GPU and CPU memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultEvent {
    /// Iteration after which the fault strikes.
    pub iteration: u64,
    /// Which node dies (index into the cluster).
    pub node: usize,
}

impl FaultEvent {
    /// The failing node's id.
    pub fn node_id(&self) -> NodeId {
        NodeId(self.node)
    }
}

/// Declarative description of when faults occur during a training run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum FaultPlan {
    /// Fault-free training.
    None,
    /// Faults at explicit iterations, each killing the given node.
    At(Vec<FaultEvent>),
    /// A fault every `interval` iterations (at `interval`, `2·interval`, …),
    /// cycling the victim node round-robin over `num_nodes`.
    Every {
        /// Iterations between consecutive faults.
        interval: u64,
        /// Number of nodes to cycle victims over.
        num_nodes: usize,
    },
    /// Memoryless faults with per-iteration probability `rate`
    /// (the constant failure rate λ of Eq. 11), seeded for determinism;
    /// victims drawn uniformly over `num_nodes`.
    Poisson {
        /// Per-iteration fault probability λ.
        rate: f64,
        /// Number of nodes to draw victims from.
        num_nodes: usize,
        /// RNG seed.
        seed: u64,
    },
}

impl FaultPlan {
    /// Materialises the fault events occurring in `0..total_iterations`,
    /// sorted by iteration.
    pub fn events(&self, total_iterations: u64) -> Vec<FaultEvent> {
        match self {
            FaultPlan::None => Vec::new(),
            FaultPlan::At(list) => {
                let mut v: Vec<FaultEvent> = list
                    .iter()
                    .copied()
                    .filter(|e| e.iteration < total_iterations)
                    .collect();
                v.sort_by_key(|e| e.iteration);
                v
            }
            FaultPlan::Every {
                interval,
                num_nodes,
            } => {
                assert!(*interval > 0, "fault interval must be positive");
                assert!(*num_nodes > 0, "need at least one node");
                (1..)
                    .map(|i| i * interval)
                    .take_while(|&it| it < total_iterations)
                    .enumerate()
                    .map(|(i, it)| FaultEvent {
                        iteration: it,
                        node: i % num_nodes,
                    })
                    .collect()
            }
            FaultPlan::Poisson {
                rate,
                num_nodes,
                seed,
            } => {
                assert!(*num_nodes > 0, "need at least one node");
                assert!((0.0..=1.0).contains(rate), "rate must be a probability");
                let mut rng = rand::rngs::StdRng::seed_from_u64(*seed);
                let mut events = Vec::new();
                for it in 0..total_iterations {
                    if rng.random::<f64>() < *rate {
                        events.push(FaultEvent {
                            iteration: it,
                            node: rng.random_range(0..*num_nodes),
                        });
                    }
                }
                events
            }
        }
    }

    /// Number of faults expected in `0..total_iterations`
    /// (`N_fault ≈ λ · I_total` for the Poisson plan, Eq. 11).
    pub fn expected_faults(&self, total_iterations: u64) -> f64 {
        match self {
            FaultPlan::None => 0.0,
            FaultPlan::At(list) => list
                .iter()
                .filter(|e| e.iteration < total_iterations)
                .count() as f64,
            FaultPlan::Every { interval, .. } => {
                if *interval == 0 {
                    0.0
                } else {
                    ((total_iterations.saturating_sub(1)) / interval) as f64
                }
            }
            FaultPlan::Poisson { rate, .. } => rate * total_iterations as f64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_has_no_events() {
        assert!(FaultPlan::None.events(1000).is_empty());
        assert_eq!(FaultPlan::None.expected_faults(1000), 0.0);
    }

    #[test]
    fn explicit_events_filtered_and_sorted() {
        let plan = FaultPlan::At(vec![
            FaultEvent {
                iteration: 500,
                node: 1,
            },
            FaultEvent {
                iteration: 100,
                node: 0,
            },
            FaultEvent {
                iteration: 9999,
                node: 0,
            },
        ]);
        let ev = plan.events(1000);
        assert_eq!(ev.len(), 2);
        assert_eq!(ev[0].iteration, 100);
        assert_eq!(ev[1].iteration, 500);
    }

    #[test]
    fn every_interval_round_robins_nodes() {
        let plan = FaultPlan::Every {
            interval: 100,
            num_nodes: 2,
        };
        let ev = plan.events(450);
        assert_eq!(
            ev,
            vec![
                FaultEvent {
                    iteration: 100,
                    node: 0
                },
                FaultEvent {
                    iteration: 200,
                    node: 1
                },
                FaultEvent {
                    iteration: 300,
                    node: 0
                },
                FaultEvent {
                    iteration: 400,
                    node: 1
                },
            ]
        );
    }

    #[test]
    fn every_interval_excludes_endpoint() {
        let plan = FaultPlan::Every {
            interval: 100,
            num_nodes: 1,
        };
        assert_eq!(plan.events(100).len(), 0);
        assert_eq!(plan.events(101).len(), 1);
    }

    #[test]
    fn poisson_is_deterministic_and_near_rate() {
        let plan = FaultPlan::Poisson {
            rate: 0.01,
            num_nodes: 4,
            seed: 7,
        };
        let a = plan.events(10_000);
        let b = plan.events(10_000);
        assert_eq!(a, b);
        let n = a.len() as f64;
        assert!((60.0..140.0).contains(&n), "got {n} faults, expected ~100");
        assert!(a.iter().all(|e| e.node < 4));
    }

    #[test]
    fn expected_faults_formulas() {
        let every = FaultPlan::Every {
            interval: 100,
            num_nodes: 1,
        };
        assert_eq!(every.expected_faults(1000), 9.0);
        let poisson = FaultPlan::Poisson {
            rate: 0.001,
            num_nodes: 1,
            seed: 0,
        };
        assert!((poisson.expected_faults(5000) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn fault_event_node_id() {
        let e = FaultEvent {
            iteration: 1,
            node: 3,
        };
        assert_eq!(e.node_id(), NodeId(3));
    }

    #[test]
    #[should_panic(expected = "fault interval must be positive")]
    fn zero_interval_panics() {
        FaultPlan::Every {
            interval: 0,
            num_nodes: 1,
        }
        .events(10);
    }
}
