//! Retry/backoff wrapper: tolerance for transient object-store faults.
//!
//! Real object stores blip — a request times out, a connection resets —
//! and a training run that aborts a checkpoint (or worse, a recovery) on
//! the first transient error converts a milliseconds-long gray failure
//! into minutes of lost work. [`RetryStore`] wraps any [`ObjectStore`]
//! and retries every operation under a [`RetryPolicy`]: deterministic
//! capped exponential backoff, with a typed
//! [`StoreError::RetriesExhausted`] error once the budget is spent so
//! callers can tell "the store is really down" from "the store blipped".
//!
//! The backoff sequence is a pure function of the policy (no jitter, no
//! clock reads), so runs stay deterministic in *outcome*: a fault window
//! shorter than the retry budget is fully absorbed, a longer one
//! surfaces the same typed error every time.

use crate::object::{ObjectStore, StoreError};
use crate::{ShardKey, StatePart};
use bytes::Bytes;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Capped exponential backoff parameters for [`RetryStore`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts per operation (the first try included). Must be
    /// at least 1; 1 means "no retries".
    pub max_attempts: u32,
    /// Sleep before the first retry.
    pub base_delay: Duration,
    /// Ceiling on the per-retry sleep: attempt `k` (0-based retry
    /// index) sleeps `min(base_delay * 2^k, max_delay)`.
    pub max_delay: Duration,
}

impl Default for RetryPolicy {
    /// 4 attempts with 2 ms base delay capped at 20 ms: absorbs
    /// multi-operation transient windows while keeping the worst-case
    /// added latency per operation under ~50 ms.
    fn default() -> Self {
        Self {
            max_attempts: 4,
            base_delay: Duration::from_millis(2),
            max_delay: Duration::from_millis(20),
        }
    }
}

impl RetryPolicy {
    /// A policy that never retries (pass-through with typed errors).
    pub fn none() -> Self {
        Self {
            max_attempts: 1,
            base_delay: Duration::ZERO,
            max_delay: Duration::ZERO,
        }
    }

    /// Backoff before retry `k` (0-based): `min(base * 2^k, max)`.
    pub fn backoff(&self, retry: u32) -> Duration {
        let exp = self
            .base_delay
            .saturating_mul(1u32.checked_shl(retry).unwrap_or(u32::MAX));
        exp.min(self.max_delay)
    }

    /// Worst-case total sleep an operation can accumulate before the
    /// typed exhaustion error surfaces.
    pub fn worst_case_sleep(&self) -> Duration {
        (0..self.max_attempts.saturating_sub(1))
            .map(|k| self.backoff(k))
            .sum()
    }
}

/// An [`ObjectStore`] wrapper retrying every operation per a
/// [`RetryPolicy`].
///
/// Wraps the store *once* at run start so every consumer — checkpoint
/// engine writers, recovery fetch through `ChainStore`, garbage
/// collection — inherits the same tolerance.
pub struct RetryStore {
    inner: Arc<dyn ObjectStore>,
    policy: RetryPolicy,
    /// `Arc` so a telemetry sampler can hold a read-only probe on the
    /// live count without going through the store wrapper.
    retries: Arc<AtomicU64>,
    exhaustions: AtomicU64,
}

impl RetryStore {
    /// Wraps `inner` with `policy`. Panics if `policy.max_attempts == 0`.
    pub fn new(inner: Arc<dyn ObjectStore>, policy: RetryPolicy) -> Self {
        assert!(policy.max_attempts >= 1, "retry policy needs >= 1 attempt");
        Self {
            inner,
            policy,
            retries: Arc::new(AtomicU64::new(0)),
            exhaustions: AtomicU64::new(0),
        }
    }

    /// Retries performed so far (excluding first attempts).
    pub fn retries(&self) -> u64 {
        self.retries.load(Ordering::Relaxed)
    }

    /// A shared handle on the live retry counter, for read-only
    /// sampling (e.g. a telemetry plane) while operations run.
    pub fn retries_probe(&self) -> Arc<AtomicU64> {
        self.retries.clone()
    }

    /// Operations that failed even after the full retry budget.
    pub fn exhaustions(&self) -> u64 {
        self.exhaustions.load(Ordering::Relaxed)
    }

    fn run<T>(
        &self,
        op: &'static str,
        mut f: impl FnMut() -> Result<T, StoreError>,
    ) -> Result<T, StoreError> {
        let mut last = None;
        for attempt in 0..self.policy.max_attempts {
            if attempt > 0 {
                self.retries.fetch_add(1, Ordering::Relaxed);
                let delay = self.policy.backoff(attempt - 1);
                if !delay.is_zero() {
                    std::thread::sleep(delay);
                }
            }
            match f() {
                Ok(v) => return Ok(v),
                Err(e) => last = Some(e),
            }
        }
        self.exhaustions.fetch_add(1, Ordering::Relaxed);
        Err(StoreError::RetriesExhausted {
            op,
            attempts: self.policy.max_attempts,
            last: Box::new(last.expect("max_attempts >= 1 ran at least once")),
        })
    }
}

impl ObjectStore for RetryStore {
    fn put(&self, key: &ShardKey, payload: Bytes) -> Result<(), StoreError> {
        self.run("put", || self.inner.put(key, payload.clone()))
    }

    fn get(&self, key: &ShardKey) -> Result<Option<Bytes>, StoreError> {
        self.run("get", || self.inner.get(key))
    }

    fn latest_version(
        &self,
        module: &str,
        part: StatePart,
        at_or_before: u64,
    ) -> Result<Option<u64>, StoreError> {
        self.run("latest_version", || {
            self.inner.latest_version(module, part, at_or_before)
        })
    }

    fn keys(&self) -> Result<Vec<ShardKey>, StoreError> {
        self.run("keys", || self.inner.keys())
    }

    fn total_bytes(&self) -> Result<u64, StoreError> {
        self.run("total_bytes", || self.inner.total_bytes())
    }

    fn prune(
        &self,
        module: &str,
        part: StatePart,
        before_version: u64,
    ) -> Result<usize, StoreError> {
        self.run("prune", || self.inner.prune(module, part, before_version))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chaos::{ChaosStore, OutagePath, StoreFaultPlan, StoreOutage};
    use crate::MemoryObjectStore;

    fn key(v: u64) -> ShardKey {
        ShardKey::new("m.e0", StatePart::Weights, v)
    }

    fn policy(attempts: u32) -> RetryPolicy {
        RetryPolicy {
            max_attempts: attempts,
            base_delay: Duration::from_micros(10),
            max_delay: Duration::from_micros(40),
        }
    }

    #[test]
    fn backoff_is_capped_and_deterministic() {
        let p = RetryPolicy {
            max_attempts: 5,
            base_delay: Duration::from_millis(2),
            max_delay: Duration::from_millis(5),
        };
        let seq: Vec<u128> = (0..4).map(|k| p.backoff(k).as_millis()).collect();
        assert_eq!(seq, vec![2, 4, 5, 5]);
        assert_eq!(p.worst_case_sleep(), Duration::from_millis(16));
    }

    #[test]
    fn transient_window_shorter_than_budget_is_absorbed() {
        let inner = Arc::new(MemoryObjectStore::new());
        let plan = StoreFaultPlan {
            outages: vec![StoreOutage {
                path: OutagePath::Writes,
                start_op: 0,
                failures: 2,
            }],
        };
        let chaos = Arc::new(ChaosStore::new(inner.clone(), plan));
        let store = RetryStore::new(chaos.clone(), policy(4));
        store.put(&key(1), Bytes::from_static(b"x")).unwrap();
        assert_eq!(store.retries(), 2, "two faulted attempts were retried");
        assert_eq!(store.exhaustions(), 0);
        assert_eq!(inner.len(), 1, "the payload landed despite the blip");
    }

    #[test]
    fn exhaustion_is_typed_and_carries_the_last_error() {
        let inner = Arc::new(MemoryObjectStore::new());
        let chaos = Arc::new(ChaosStore::new(
            inner,
            StoreFaultPlan::permanent_write_outage(0),
        ));
        let store = RetryStore::new(chaos, policy(3));
        let err = store.put(&key(1), Bytes::from_static(b"x")).unwrap_err();
        match err {
            StoreError::RetriesExhausted { op, attempts, last } => {
                assert_eq!(op, "put");
                assert_eq!(attempts, 3);
                assert!(matches!(*last, StoreError::Injected { .. }));
            }
            other => panic!("expected RetriesExhausted, got {other:?}"),
        }
        assert_eq!(store.exhaustions(), 1);
    }

    #[test]
    fn reads_are_retried_too() {
        let inner = Arc::new(MemoryObjectStore::new());
        inner.put(&key(7), Bytes::from_static(b"v")).unwrap();
        let plan = StoreFaultPlan {
            outages: vec![StoreOutage {
                path: OutagePath::Reads,
                start_op: 0,
                failures: 1,
            }],
        };
        let chaos = Arc::new(ChaosStore::new(inner, plan));
        let store = RetryStore::new(chaos, policy(2));
        assert_eq!(store.get(&key(7)).unwrap(), Some(Bytes::from_static(b"v")));
        assert_eq!(store.retries(), 1);
    }
}
