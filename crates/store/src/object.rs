//! Object stores: the persistent level of the two-level hierarchy.
//!
//! [`ObjectStore`] abstracts the distributed persistent storage of Fig. 3.
//! Two implementations are provided: [`MemoryObjectStore`] (fast,
//! process-local, used by simulations and tests) and [`FileObjectStore`]
//! (real filesystem I/O with framed shards, used by persistence benches and
//! crash-consistency tests). Both are thread-safe: persist agents on
//! different "nodes" write concurrently.

use crate::frame;
use crate::key::{ShardKey, StatePart};
use bytes::Bytes;
use parking_lot::RwLock;
use std::collections::BTreeMap;
use std::fmt;
use std::io::Write;
use std::path::{Path, PathBuf};

/// Error from an object store operation.
#[derive(Debug)]
pub enum StoreError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// A shard existed but failed frame validation.
    Frame(frame::FrameError),
    /// The store root is not usable.
    BadRoot(PathBuf),
    /// A shard file decoded cleanly but carries a different key than the
    /// one requested (e.g. a file renamed or restored to the wrong name).
    KeyMismatch {
        /// The key that was requested.
        requested: ShardKey,
        /// The key recorded inside the frame.
        found: ShardKey,
    },
    /// An injected fault from a chaos wrapper ([`crate::ChaosStore`]).
    Injected {
        /// The operation that was faulted (`"put"`, `"get"`, ...).
        op: &'static str,
    },
    /// Every retry attempt failed ([`crate::RetryStore`] gave up).
    RetriesExhausted {
        /// The operation that kept failing (`"put"`, `"get"`, ...).
        op: &'static str,
        /// How many attempts were made before giving up.
        attempts: u32,
        /// The error of the final attempt.
        last: Box<StoreError>,
    },
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "object store i/o error: {e}"),
            StoreError::Frame(e) => write!(f, "object store frame error: {e}"),
            StoreError::BadRoot(p) => write!(f, "object store root unusable: {}", p.display()),
            StoreError::KeyMismatch { requested, found } => {
                write!(
                    f,
                    "shard key mismatch: requested {requested}, found {found}"
                )
            }
            StoreError::Injected { op } => write!(f, "injected store fault on {op}"),
            StoreError::RetriesExhausted { op, attempts, last } => {
                write!(f, "store {op} failed after {attempts} attempts: {last}")
            }
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io(e) => Some(e),
            StoreError::Frame(e) => Some(e),
            StoreError::RetriesExhausted { last, .. } => Some(last.as_ref()),
            StoreError::BadRoot(_)
            | StoreError::KeyMismatch { .. }
            | StoreError::Injected { .. } => None,
        }
    }
}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> Self {
        StoreError::Io(e)
    }
}

impl From<frame::FrameError> for StoreError {
    fn from(e: frame::FrameError) -> Self {
        StoreError::Frame(e)
    }
}

/// A versioned key-value store of checkpoint shards.
///
/// Shards are immutable once written; "latest" queries drive recovery.
pub trait ObjectStore: Send + Sync {
    /// Stores a shard. Overwrites any shard with the identical key.
    fn put(&self, key: &ShardKey, payload: Bytes) -> Result<(), StoreError>;

    /// Fetches a shard by exact key.
    fn get(&self, key: &ShardKey) -> Result<Option<Bytes>, StoreError>;

    /// Newest version of `(module, part)` no newer than `at_or_before`.
    fn latest_version(
        &self,
        module: &str,
        part: StatePart,
        at_or_before: u64,
    ) -> Result<Option<u64>, StoreError>;

    /// All keys currently stored, sorted.
    fn keys(&self) -> Result<Vec<ShardKey>, StoreError>;

    /// Total payload bytes stored.
    fn total_bytes(&self) -> Result<u64, StoreError>;

    /// Deletes all shards of `(module, part)` strictly older than
    /// `before_version`, returning the number removed (garbage collection
    /// of superseded checkpoints).
    fn prune(
        &self,
        module: &str,
        part: StatePart,
        before_version: u64,
    ) -> Result<usize, StoreError>;
}

/// In-memory, thread-safe object store.
#[derive(Debug, Default)]
pub struct MemoryObjectStore {
    shards: RwLock<BTreeMap<ShardKey, Bytes>>,
}

impl MemoryObjectStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of shards stored.
    pub fn len(&self) -> usize {
        self.shards.read().len()
    }

    /// Whether the store holds no shards.
    pub fn is_empty(&self) -> bool {
        self.shards.read().is_empty()
    }
}

impl ObjectStore for MemoryObjectStore {
    fn put(&self, key: &ShardKey, payload: Bytes) -> Result<(), StoreError> {
        self.shards.write().insert(key.clone(), payload);
        Ok(())
    }

    fn get(&self, key: &ShardKey) -> Result<Option<Bytes>, StoreError> {
        Ok(self.shards.read().get(key).cloned())
    }

    fn latest_version(
        &self,
        module: &str,
        part: StatePart,
        at_or_before: u64,
    ) -> Result<Option<u64>, StoreError> {
        let guard = self.shards.read();
        let lo = ShardKey::new(module, part, 0);
        let hi = ShardKey::new(module, part, at_or_before);
        Ok(guard.range(lo..=hi).next_back().map(|(k, _)| k.version))
    }

    fn keys(&self) -> Result<Vec<ShardKey>, StoreError> {
        Ok(self.shards.read().keys().cloned().collect())
    }

    fn total_bytes(&self) -> Result<u64, StoreError> {
        Ok(self.shards.read().values().map(|b| b.len() as u64).sum())
    }

    fn prune(
        &self,
        module: &str,
        part: StatePart,
        before_version: u64,
    ) -> Result<usize, StoreError> {
        let mut guard = self.shards.write();
        let doomed: Vec<ShardKey> = guard
            .range(ShardKey::new(module, part, 0)..ShardKey::new(module, part, before_version))
            .map(|(k, _)| k.clone())
            .collect();
        for k in &doomed {
            guard.remove(k);
        }
        Ok(doomed.len())
    }
}

/// File-backed object store writing framed shards under a root directory.
///
/// Writes are crash-consistent: shards are written to a temporary file and
/// atomically renamed into place, and every read validates the frame
/// checksum.
#[derive(Debug)]
pub struct FileObjectStore {
    root: PathBuf,
}

impl FileObjectStore {
    /// Opens (creating if necessary) a store rooted at `root`.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::BadRoot`] if `root` exists but is not a
    /// directory, or an I/O error if it cannot be created.
    pub fn open(root: impl AsRef<Path>) -> Result<Self, StoreError> {
        let root = root.as_ref().to_path_buf();
        if root.exists() && !root.is_dir() {
            return Err(StoreError::BadRoot(root));
        }
        std::fs::create_dir_all(&root)?;
        Ok(Self { root })
    }

    /// The root directory of the store.
    pub fn root(&self) -> &Path {
        &self.root
    }

    fn path_for(&self, key: &ShardKey) -> PathBuf {
        self.root.join(key.file_name())
    }

    /// Lists the store's shards by reading *frame headers only*: the
    /// per-file cost is one bounded read of at most
    /// [`frame::HEADER_MAX`] bytes, so key listing (and everything built
    /// on it — `keys`, `latest_version`, `total_bytes`, recovery
    /// planning over large stores) does not scale with stored payload
    /// bytes. A header whose recorded payload length disagrees with the
    /// file size is a torn write and is skipped; payload *content*
    /// integrity stays enforced by the CRC + key checks on `get`.
    fn scan(&self) -> Result<Vec<(ShardKey, PathBuf, u64)>, StoreError> {
        use std::io::Read;
        let mut out = Vec::new();
        let mut buf = vec![0u8; frame::HEADER_MAX];
        for entry in std::fs::read_dir(&self.root)? {
            let entry = entry?;
            let path = entry.path();
            if path.extension().and_then(|e| e.to_str()) != Some("shard") {
                continue;
            }
            let file_len = entry.metadata()?.len();
            let prefix = frame::HEADER_MAX.min(file_len as usize);
            std::fs::File::open(&path)?.read_exact(&mut buf[..prefix])?;
            match frame::decode_header(&buf[..prefix]) {
                Ok(h) if h.header_len as u64 + h.payload_len == file_len => {
                    out.push((h.key, path, h.payload_len));
                }
                _ => continue, // torn write left behind; ignore
            }
        }
        out.sort_by(|a, b| a.0.cmp(&b.0));
        Ok(out)
    }
}

impl ObjectStore for FileObjectStore {
    fn put(&self, key: &ShardKey, payload: Bytes) -> Result<(), StoreError> {
        // Crash-safe write protocol: frame into a uniquely named temp file
        // (concurrent writers of the same key — e.g. persist agents on two
        // nodes — must never interleave into one temp file), fsync the
        // data, atomically rename over the final name, then fsync the
        // directory so the rename itself survives a crash. A reader can
        // therefore only ever observe no shard or a complete frame, and
        // the frame checksum stays a second line of defence rather than
        // the only one.
        static TMP_COUNTER: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
        let framed = frame::encode(key, &payload);
        let final_path = self.path_for(key);
        let unique = TMP_COUNTER.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let tmp_path = final_path.with_extension(format!("tmp.{}.{unique}", std::process::id()));
        {
            let mut f = std::fs::File::create(&tmp_path)?;
            f.write_all(&framed)?;
            f.sync_all()?;
        }
        if let Err(e) = std::fs::rename(&tmp_path, &final_path) {
            let _ = std::fs::remove_file(&tmp_path);
            return Err(e.into());
        }
        // Persist the directory entry; without this a crash after rename
        // can still lose the shard even though the data blocks are synced.
        // A failure here means the shard is NOT durably named yet, so it
        // must surface to the caller rather than be swallowed.
        std::fs::File::open(&self.root)?.sync_all()?;
        Ok(())
    }

    fn get(&self, key: &ShardKey) -> Result<Option<Bytes>, StoreError> {
        let path = self.path_for(key);
        if !path.exists() {
            return Ok(None);
        }
        // The read path re-validates everything the write path framed:
        // `frame::decode` verifies magic, lengths and the payload CRC
        // (surfacing on-disk corruption as an error instead of returning
        // corrupt state), and the decoded key must match the requested
        // one — `file_name()` sanitizes module names, so two distinct
        // keys can collide on a path, and a mis-renamed file must not
        // silently serve the wrong shard.
        let bytes = Bytes::from(std::fs::read(&path)?);
        let (decoded, payload) = frame::decode(&bytes)?;
        if &decoded != key {
            return Err(StoreError::KeyMismatch {
                requested: key.clone(),
                found: decoded,
            });
        }
        Ok(Some(payload))
    }

    fn latest_version(
        &self,
        module: &str,
        part: StatePart,
        at_or_before: u64,
    ) -> Result<Option<u64>, StoreError> {
        Ok(self
            .scan()?
            .into_iter()
            .filter(|(k, _, _)| k.module == module && k.part == part && k.version <= at_or_before)
            .map(|(k, _, _)| k.version)
            .max())
    }

    fn keys(&self) -> Result<Vec<ShardKey>, StoreError> {
        Ok(self.scan()?.into_iter().map(|(k, _, _)| k).collect())
    }

    fn total_bytes(&self) -> Result<u64, StoreError> {
        Ok(self.scan()?.into_iter().map(|(_, _, n)| n).sum())
    }

    fn prune(
        &self,
        module: &str,
        part: StatePart,
        before_version: u64,
    ) -> Result<usize, StoreError> {
        let mut removed = 0;
        for (k, path, _) in self.scan()? {
            if k.module == module && k.part == part && k.version < before_version {
                std::fs::remove_file(path)?;
                removed += 1;
            }
        }
        Ok(removed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exercise(store: &dyn ObjectStore) {
        let k1 = ShardKey::new("m", StatePart::Weights, 10);
        let k2 = ShardKey::new("m", StatePart::Weights, 20);
        let k3 = ShardKey::new("m", StatePart::Optimizer, 20);
        store.put(&k1, Bytes::from_static(b"v10")).unwrap();
        store.put(&k2, Bytes::from_static(b"v20")).unwrap();
        store.put(&k3, Bytes::from_static(b"opt")).unwrap();

        assert_eq!(store.get(&k1).unwrap().unwrap(), Bytes::from_static(b"v10"));
        assert_eq!(
            store.latest_version("m", StatePart::Weights, 15).unwrap(),
            Some(10)
        );
        assert_eq!(
            store.latest_version("m", StatePart::Weights, 99).unwrap(),
            Some(20)
        );
        assert_eq!(
            store.latest_version("m", StatePart::Weights, 5).unwrap(),
            None
        );
        assert_eq!(store.keys().unwrap().len(), 3);
        assert_eq!(store.total_bytes().unwrap(), 9);

        assert_eq!(store.prune("m", StatePart::Weights, 20).unwrap(), 1);
        assert!(store.get(&k1).unwrap().is_none());
        assert!(store.get(&k2).unwrap().is_some());
    }

    #[test]
    fn memory_store_semantics() {
        let store = MemoryObjectStore::new();
        assert!(store.is_empty());
        exercise(&store);
        assert_eq!(store.len(), 2);
    }

    #[test]
    fn file_store_semantics() {
        let dir = std::env::temp_dir().join(format!("moc-store-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let store = FileObjectStore::open(&dir).unwrap();
        exercise(&store);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn file_store_survives_reopen() {
        let dir = std::env::temp_dir().join(format!("moc-store-reopen-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let key = ShardKey::new("e", StatePart::Extra, 3);
        {
            let store = FileObjectStore::open(&dir).unwrap();
            store.put(&key, Bytes::from_static(b"state")).unwrap();
        }
        let store = FileObjectStore::open(&dir).unwrap();
        assert_eq!(
            store.get(&key).unwrap().unwrap(),
            Bytes::from_static(b"state")
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn file_store_ignores_torn_writes() {
        let dir = std::env::temp_dir().join(format!("moc-store-torn-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let store = FileObjectStore::open(&dir).unwrap();
        let key = ShardKey::new("good", StatePart::Weights, 1);
        store.put(&key, Bytes::from_static(b"fine")).unwrap();
        // Simulate a torn write: garbage in a .shard file.
        std::fs::write(dir.join("torn.w.000000000001.shard"), b"garbage").unwrap();
        assert_eq!(store.keys().unwrap().len(), 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    /// Satellite (read-path audit): a shard corrupted *on disk* after a
    /// clean write must surface as an error on `get`, never as silently
    /// corrupt payload bytes — flipping any single byte of the file
    /// yields an error or, at worst, a different-but-valid frame that the
    /// key check rejects.
    #[test]
    fn file_store_get_detects_corruption_on_read() {
        let dir =
            std::env::temp_dir().join(format!("moc-store-readcorrupt-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let store = FileObjectStore::open(&dir).unwrap();
        let key = ShardKey::new("layer1.expert2", StatePart::Weights, 9);
        let payload = Bytes::from((0..=255u8).collect::<Vec<u8>>());
        store.put(&key, payload.clone()).unwrap();
        let path = dir.join(key.file_name());
        let clean = std::fs::read(&path).unwrap();
        for byte in 0..clean.len() {
            let mut corrupt = clean.clone();
            corrupt[byte] ^= 0xA5;
            std::fs::write(&path, &corrupt).unwrap();
            match store.get(&key) {
                Err(_) => {}
                Ok(got) => assert_ne!(
                    got,
                    Some(payload.clone()),
                    "byte {byte} corrupted on disk yet get returned the original payload"
                ),
            }
        }
        // Restore and confirm the clean read still works.
        std::fs::write(&path, &clean).unwrap();
        assert_eq!(store.get(&key).unwrap(), Some(payload));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    /// A decodable frame sitting under the wrong file name (e.g. restored
    /// from a backup into the wrong path) is rejected by the key check.
    #[test]
    fn file_store_get_rejects_misnamed_shard() {
        let dir = std::env::temp_dir().join(format!("moc-store-misname-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let store = FileObjectStore::open(&dir).unwrap();
        let real = ShardKey::new("layer1.expert0", StatePart::Weights, 1);
        let other = ShardKey::new("layer1.expert1", StatePart::Weights, 1);
        store.put(&real, Bytes::from_static(b"mine")).unwrap();
        std::fs::rename(dir.join(real.file_name()), dir.join(other.file_name())).unwrap();
        match store.get(&other) {
            Err(StoreError::KeyMismatch { requested, found }) => {
                assert_eq!(requested, other);
                assert_eq!(found, real);
            }
            other_result => panic!("expected KeyMismatch, got {other_result:?}"),
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    /// Key listing reads frame headers only: a shard whose *payload*
    /// bytes are corrupt on disk (header intact, length unchanged) still
    /// lists — proof the scan never deserializes payloads — while the
    /// read path still rejects it. A payload-only *truncation* changes
    /// the file length and is skipped as a torn write.
    #[test]
    fn key_listing_reads_headers_not_payloads() {
        let dir = std::env::temp_dir().join(format!("moc-store-hdrscan-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let store = FileObjectStore::open(&dir).unwrap();
        let key = ShardKey::new("layer1.expert4", StatePart::Weights, 7);
        let payload = Bytes::from(vec![0x5Au8; 4096]);
        store.put(&key, payload).unwrap();
        let path = dir.join(key.file_name());
        let mut bytes = std::fs::read(&path).unwrap();

        // Flip a payload byte: header-only scan cannot notice, get must.
        let last = bytes.len() - 1;
        bytes[last] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();
        assert_eq!(store.keys().unwrap(), vec![key.clone()]);
        assert_eq!(store.total_bytes().unwrap(), 4096);
        assert_eq!(
            store
                .latest_version("layer1.expert4", StatePart::Weights, 99)
                .unwrap(),
            Some(7)
        );
        assert!(store.get(&key).is_err(), "get still validates the CRC");

        // Truncate the payload: the header/length mismatch marks a torn
        // write and the shard disappears from listings.
        bytes.truncate(bytes.len() - 16);
        std::fs::write(&path, &bytes).unwrap();
        assert!(store.keys().unwrap().is_empty());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn put_overwrites_same_key() {
        let store = MemoryObjectStore::new();
        let k = ShardKey::new("m", StatePart::Weights, 1);
        store.put(&k, Bytes::from_static(b"a")).unwrap();
        store.put(&k, Bytes::from_static(b"bb")).unwrap();
        assert_eq!(store.get(&k).unwrap().unwrap(), Bytes::from_static(b"bb"));
        assert_eq!(store.total_bytes().unwrap(), 2);
    }

    #[test]
    fn concurrent_same_key_file_puts_never_tear() {
        let dir = std::env::temp_dir().join(format!("moc-store-race-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let store = std::sync::Arc::new(FileObjectStore::open(&dir).unwrap());
        let key = ShardKey::new("contended", StatePart::Weights, 1);
        let mut handles = Vec::new();
        for t in 0..4u8 {
            let s = store.clone();
            let k = key.clone();
            handles.push(std::thread::spawn(move || {
                for _ in 0..16 {
                    s.put(&k, Bytes::from(vec![t; 512])).unwrap();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        // The surviving shard decodes cleanly to one writer's payload —
        // never an interleaving of two writers.
        let payload = store.get(&key).unwrap().expect("shard present");
        assert_eq!(payload.len(), 512);
        assert!(payload.iter().all(|&b| b == payload[0]));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn concurrent_puts_are_safe() {
        let store = std::sync::Arc::new(MemoryObjectStore::new());
        let mut handles = Vec::new();
        for t in 0..8 {
            let s = store.clone();
            handles.push(std::thread::spawn(move || {
                for v in 0..50u64 {
                    let k = ShardKey::new(format!("m{t}"), StatePart::Weights, v);
                    s.put(&k, Bytes::from(vec![t as u8; 16])).unwrap();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(store.len(), 8 * 50);
    }
}
