//! Per-node CPU-memory snapshot stores: the first level of the two-level
//! checkpoint hierarchy (Fig. 3, Fig. 8).
//!
//! Each training node owns a [`NodeMemoryStore`] holding the most recent
//! GPU→CPU snapshot of every module it is responsible for. A node fault
//! wipes its store (GPU *and* CPU state die together); healthy nodes keep
//! theirs and can recover newer expert states from memory than from
//! persistent storage — the mechanism that lets two-level recovery shrink
//! PLT (Section 5.1).

use crate::key::{ShardKey, StatePart};
use bytes::Bytes;
use parking_lot::RwLock;
use std::collections::HashMap;

/// Identifier of a physical node in the training cluster.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub usize);

impl std::fmt::Display for NodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Node-{}", self.0)
    }
}

/// CPU-memory snapshot store of a single node.
///
/// Keeps only the *latest* snapshot per `(module, part)` slot — memory is
/// precious, and recovery only ever wants the newest in-memory state.
#[derive(Debug, Default)]
pub struct NodeMemoryStore {
    slots: RwLock<HashMap<(String, StatePart), (u64, Bytes)>>,
}

impl NodeMemoryStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Stores a snapshot, replacing any older snapshot of the same slot.
    ///
    /// Snapshots never move backwards: a put with a version older than the
    /// stored one is ignored (a late-arriving stale snapshot must not
    /// shadow newer state).
    pub fn put(&self, key: &ShardKey, payload: Bytes) {
        let mut guard = self.slots.write();
        let slot = (key.module.clone(), key.part);
        match guard.get(&slot) {
            Some(&(existing, _)) if existing > key.version => {}
            _ => {
                guard.insert(slot, (key.version, payload));
            }
        }
    }

    /// Latest snapshot of a `(module, part)` slot, with its version.
    pub fn get(&self, module: &str, part: StatePart) -> Option<(u64, Bytes)> {
        self.slots
            .read()
            .get(&(module.to_string(), part))
            .map(|(v, b)| (*v, b.clone()))
    }

    /// Version of the latest snapshot of a slot, if any.
    pub fn version(&self, module: &str, part: StatePart) -> Option<u64> {
        self.slots
            .read()
            .get(&(module.to_string(), part))
            .map(|(v, _)| *v)
    }

    /// All `(module, part, version)` entries, sorted by module then part.
    pub fn inventory(&self) -> Vec<(String, StatePart, u64)> {
        let mut items: Vec<_> = self
            .slots
            .read()
            .iter()
            .map(|((m, p), (v, _))| (m.clone(), *p, *v))
            .collect();
        items.sort();
        items
    }

    /// Total payload bytes held.
    pub fn total_bytes(&self) -> u64 {
        self.slots
            .read()
            .values()
            .map(|(_, b)| b.len() as u64)
            .sum()
    }

    /// Number of slots held.
    pub fn len(&self) -> usize {
        self.slots.read().len()
    }

    /// Whether the store holds nothing.
    pub fn is_empty(&self) -> bool {
        self.slots.read().is_empty()
    }

    /// Destroys all held snapshots — the effect of a node fault.
    pub fn wipe(&self) {
        self.slots.write().clear();
    }
}

/// The CPU-memory tier of a whole cluster: one [`NodeMemoryStore`] per node.
#[derive(Debug)]
pub struct ClusterMemory {
    nodes: Vec<std::sync::Arc<NodeMemoryStore>>,
}

impl ClusterMemory {
    /// Creates stores for `num_nodes` nodes.
    pub fn new(num_nodes: usize) -> Self {
        Self {
            nodes: (0..num_nodes)
                .map(|_| std::sync::Arc::new(NodeMemoryStore::new()))
                .collect(),
        }
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// The store of one node.
    ///
    /// # Panics
    ///
    /// Panics if the node id is out of range.
    pub fn node(&self, id: NodeId) -> &NodeMemoryStore {
        &self.nodes[id.0]
    }

    /// A shared handle to one node's store (for handing to agent threads).
    ///
    /// # Panics
    ///
    /// Panics if the node id is out of range.
    pub fn node_arc(&self, id: NodeId) -> std::sync::Arc<NodeMemoryStore> {
        self.nodes[id.0].clone()
    }

    /// Applies a node fault: wipes exactly that node's memory.
    pub fn fault(&self, id: NodeId) {
        self.nodes[id.0].wipe();
    }

    /// Searches all *healthy* nodes for the newest in-memory snapshot of a
    /// slot. `healthy` masks which nodes survived the fault.
    pub fn newest_across(
        &self,
        module: &str,
        part: StatePart,
        healthy: &[bool],
    ) -> Option<(NodeId, u64)> {
        assert_eq!(healthy.len(), self.nodes.len(), "health mask arity");
        self.nodes
            .iter()
            .enumerate()
            .filter(|(i, _)| healthy[*i])
            .filter_map(|(i, n)| n.version(module, part).map(|v| (NodeId(i), v)))
            .max_by_key(|&(_, v)| v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn k(module: &str, v: u64) -> ShardKey {
        ShardKey::new(module, StatePart::Weights, v)
    }

    #[test]
    fn put_keeps_latest_only() {
        let store = NodeMemoryStore::new();
        store.put(&k("e0", 10), Bytes::from_static(b"ten"));
        store.put(&k("e0", 20), Bytes::from_static(b"twenty"));
        let (v, b) = store.get("e0", StatePart::Weights).unwrap();
        assert_eq!(v, 20);
        assert_eq!(b, Bytes::from_static(b"twenty"));
        assert_eq!(store.len(), 1);
    }

    #[test]
    fn stale_put_is_ignored() {
        let store = NodeMemoryStore::new();
        store.put(&k("e0", 20), Bytes::from_static(b"twenty"));
        store.put(&k("e0", 10), Bytes::from_static(b"ten"));
        assert_eq!(store.version("e0", StatePart::Weights), Some(20));
    }

    #[test]
    fn wipe_clears_everything() {
        let store = NodeMemoryStore::new();
        store.put(&k("a", 1), Bytes::from_static(b"x"));
        store.put(&k("b", 1), Bytes::from_static(b"y"));
        assert_eq!(store.total_bytes(), 2);
        store.wipe();
        assert!(store.is_empty());
        assert_eq!(store.get("a", StatePart::Weights), None);
    }

    #[test]
    fn parts_are_independent_slots() {
        let store = NodeMemoryStore::new();
        store.put(
            &ShardKey::new("m", StatePart::Weights, 5),
            Bytes::from_static(b"w"),
        );
        store.put(
            &ShardKey::new("m", StatePart::Optimizer, 9),
            Bytes::from_static(b"o"),
        );
        assert_eq!(store.version("m", StatePart::Weights), Some(5));
        assert_eq!(store.version("m", StatePart::Optimizer), Some(9));
        assert_eq!(store.len(), 2);
    }

    #[test]
    fn inventory_sorted() {
        let store = NodeMemoryStore::new();
        store.put(&k("b", 2), Bytes::new());
        store.put(&k("a", 1), Bytes::new());
        let inv = store.inventory();
        assert_eq!(inv[0].0, "a");
        assert_eq!(inv[1].0, "b");
    }

    #[test]
    fn cluster_fault_wipes_one_node() {
        let cluster = ClusterMemory::new(2);
        cluster
            .node(NodeId(0))
            .put(&k("e0", 5), Bytes::from_static(b"a"));
        cluster
            .node(NodeId(1))
            .put(&k("e1", 5), Bytes::from_static(b"b"));
        cluster.fault(NodeId(0));
        assert!(cluster.node(NodeId(0)).is_empty());
        assert_eq!(cluster.node(NodeId(1)).len(), 1);
    }

    #[test]
    fn newest_across_respects_health_mask() {
        let cluster = ClusterMemory::new(3);
        cluster.node(NodeId(0)).put(&k("e", 30), Bytes::new());
        cluster.node(NodeId(1)).put(&k("e", 20), Bytes::new());
        cluster.node(NodeId(2)).put(&k("e", 10), Bytes::new());
        let newest = cluster.newest_across("e", StatePart::Weights, &[true, true, true]);
        assert_eq!(newest, Some((NodeId(0), 30)));
        // Node 0 died: its newer snapshot is unavailable.
        let newest = cluster.newest_across("e", StatePart::Weights, &[false, true, true]);
        assert_eq!(newest, Some((NodeId(1), 20)));
        let none = cluster.newest_across("e", StatePart::Weights, &[false, false, false]);
        assert_eq!(none, None);
    }

    #[test]
    fn node_id_display() {
        assert_eq!(NodeId(3).to_string(), "Node-3");
    }
}
