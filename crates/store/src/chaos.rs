//! Deterministic store fault injection (the chaos plane's storage leg).
//!
//! [`ChaosStore`] wraps any [`ObjectStore`] and fails operations
//! according to a [`StoreFaultPlan`]: a set of outage windows addressed
//! in *operation-index* space (the n-th `put`, the n-th `get`), which
//! makes injection deterministic wherever the operation order is —
//! single-writer engines, recovery reads, unit tests. This is the
//! promotion of the old `ckpt::testing::FlakyStore` out of test-only
//! code: unlike its ancestor it faults the read path too, so recovery
//! fetches (`ChainStore` `get`s) can be exercised, and its schedule is
//! driven by the runtime's FaultPlan v2 rather than ad-hoc budgets.
//!
//! Only `put` and `get` are faultable — the durability path and the
//! recovery path. Metadata operations (`keys`, `latest_version`,
//! `total_bytes`, `prune`) pass through, so fault positions computed
//! from recorded put orders stay exact regardless of GC interleaving.

use crate::object::{ObjectStore, StoreError};
use crate::{ShardKey, StatePart};
use bytes::Bytes;
use parking_lot::Mutex;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

/// Which operation class an outage window faults.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OutagePath {
    /// Fault `get` operations (recovery reads).
    Reads,
    /// Fault `put` operations (checkpoint writes).
    Writes,
    /// Fault both.
    Both,
}

impl OutagePath {
    fn covers_reads(self) -> bool {
        matches!(self, OutagePath::Reads | OutagePath::Both)
    }

    fn covers_writes(self) -> bool {
        matches!(self, OutagePath::Writes | OutagePath::Both)
    }
}

/// One window of injected failures in operation-index space: operations
/// `start_op .. start_op + failures` of the covered class fail with
/// [`StoreError::Injected`]. `failures == u64::MAX` is a permanent
/// outage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StoreOutage {
    /// Operation class the window applies to.
    pub path: OutagePath,
    /// First faulted operation index (0-based, counted per class).
    pub start_op: u64,
    /// Number of consecutive faulted operations.
    pub failures: u64,
}

impl StoreOutage {
    fn covers(&self, op: u64) -> bool {
        op >= self.start_op && op - self.start_op < self.failures
    }
}

/// A deterministic schedule of store outages.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct StoreFaultPlan {
    /// The outage windows; they may overlap.
    pub outages: Vec<StoreOutage>,
}

impl StoreFaultPlan {
    /// No injected faults.
    pub fn none() -> Self {
        Self::default()
    }

    /// Whether the plan injects nothing.
    pub fn is_empty(&self) -> bool {
        self.outages.is_empty()
    }

    /// Every write from the `start`-th `put` onward fails — the classic
    /// torn-persist "writer died mid-checkpoint" schedule.
    pub fn permanent_write_outage(start: u64) -> Self {
        Self {
            outages: vec![StoreOutage {
                path: OutagePath::Writes,
                start_op: start,
                failures: u64::MAX,
            }],
        }
    }

    /// A transient blip: `failures` consecutive operations (reads and
    /// writes alike) starting at per-class index `start_op` fail, later
    /// ones succeed.
    pub fn transient(start_op: u64, failures: u64) -> Self {
        Self {
            outages: vec![StoreOutage {
                path: OutagePath::Both,
                start_op,
                failures,
            }],
        }
    }

    /// The longest failure run any single operation class can see —
    /// `u64::MAX` if any window is permanent. Used to check a plan is
    /// absorbable by a retry budget.
    pub fn max_consecutive_failures(&self) -> u64 {
        self.outages.iter().map(|o| o.failures).max().unwrap_or(0)
    }
}

/// An [`ObjectStore`] wrapper injecting deterministic faults per a
/// [`StoreFaultPlan`].
pub struct ChaosStore {
    inner: Arc<dyn ObjectStore>,
    plan: Mutex<StoreFaultPlan>,
    healed: AtomicBool,
    puts_seen: AtomicU64,
    gets_seen: AtomicU64,
    injected: AtomicU64,
}

impl ChaosStore {
    /// Wraps `inner` under `plan`.
    pub fn new(inner: Arc<dyn ObjectStore>, plan: StoreFaultPlan) -> Self {
        Self {
            inner,
            plan: Mutex::new(plan),
            healed: AtomicBool::new(false),
            puts_seen: AtomicU64::new(0),
            gets_seen: AtomicU64::new(0),
            injected: AtomicU64::new(0),
        }
    }

    /// Cancels every outage window: all later operations succeed.
    pub fn heal(&self) {
        self.healed.store(true, Ordering::SeqCst);
    }

    /// Number of operations failed by injection so far.
    pub fn injected_failures(&self) -> u64 {
        self.injected.load(Ordering::SeqCst)
    }

    fn check(&self, counter: &AtomicU64, writes: bool, op: &'static str) -> Result<(), StoreError> {
        let n = counter.fetch_add(1, Ordering::SeqCst);
        if self.healed.load(Ordering::SeqCst) {
            return Ok(());
        }
        let hit = self.plan.lock().outages.iter().any(|o| {
            let class = if writes {
                o.path.covers_writes()
            } else {
                o.path.covers_reads()
            };
            class && o.covers(n)
        });
        if hit {
            self.injected.fetch_add(1, Ordering::SeqCst);
            return Err(StoreError::Injected { op });
        }
        Ok(())
    }
}

impl ObjectStore for ChaosStore {
    fn put(&self, key: &ShardKey, payload: Bytes) -> Result<(), StoreError> {
        self.check(&self.puts_seen, true, "put")?;
        self.inner.put(key, payload)
    }

    fn get(&self, key: &ShardKey) -> Result<Option<Bytes>, StoreError> {
        self.check(&self.gets_seen, false, "get")?;
        self.inner.get(key)
    }

    fn latest_version(
        &self,
        module: &str,
        part: StatePart,
        at_or_before: u64,
    ) -> Result<Option<u64>, StoreError> {
        self.inner.latest_version(module, part, at_or_before)
    }

    fn keys(&self) -> Result<Vec<ShardKey>, StoreError> {
        self.inner.keys()
    }

    fn total_bytes(&self) -> Result<u64, StoreError> {
        self.inner.total_bytes()
    }

    fn prune(
        &self,
        module: &str,
        part: StatePart,
        before_version: u64,
    ) -> Result<usize, StoreError> {
        self.inner.prune(module, part, before_version)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MemoryObjectStore;

    fn key(v: u64) -> ShardKey {
        ShardKey::new("m.e0", StatePart::Weights, v)
    }

    #[test]
    fn write_window_faults_exactly_its_ops() {
        let inner = Arc::new(MemoryObjectStore::new());
        let plan = StoreFaultPlan {
            outages: vec![StoreOutage {
                path: OutagePath::Writes,
                start_op: 1,
                failures: 2,
            }],
        };
        let store = ChaosStore::new(inner.clone(), plan);
        assert!(store.put(&key(0), Bytes::from_static(b"a")).is_ok());
        assert!(store.put(&key(1), Bytes::from_static(b"b")).is_err());
        assert!(store.put(&key(2), Bytes::from_static(b"c")).is_err());
        assert!(store.put(&key(3), Bytes::from_static(b"d")).is_ok());
        assert_eq!(store.injected_failures(), 2);
        assert_eq!(inner.len(), 2);
    }

    #[test]
    fn gets_fault_too_unlike_the_old_flaky_store() {
        let inner = Arc::new(MemoryObjectStore::new());
        inner.put(&key(5), Bytes::from_static(b"v")).unwrap();
        let plan = StoreFaultPlan {
            outages: vec![StoreOutage {
                path: OutagePath::Reads,
                start_op: 0,
                failures: 1,
            }],
        };
        let store = ChaosStore::new(inner, plan);
        assert!(matches!(
            store.get(&key(5)),
            Err(StoreError::Injected { op: "get" })
        ));
        // Writes were never covered; the read window has passed.
        assert!(store.put(&key(6), Bytes::from_static(b"w")).is_ok());
        assert!(store.get(&key(5)).unwrap().is_some());
    }

    #[test]
    fn heal_cancels_a_permanent_outage() {
        let inner = Arc::new(MemoryObjectStore::new());
        let store = ChaosStore::new(inner, StoreFaultPlan::permanent_write_outage(0));
        assert!(store.put(&key(1), Bytes::from_static(b"x")).is_err());
        store.heal();
        assert!(store.put(&key(1), Bytes::from_static(b"x")).is_ok());
    }

    #[test]
    fn metadata_ops_never_fault() {
        let inner = Arc::new(MemoryObjectStore::new());
        inner.put(&key(1), Bytes::from_static(b"x")).unwrap();
        let store = ChaosStore::new(inner, StoreFaultPlan::transient(0, u64::MAX));
        assert_eq!(store.keys().unwrap().len(), 1);
        assert!(store.total_bytes().unwrap() > 0);
        assert_eq!(
            store
                .latest_version("m.e0", StatePart::Weights, u64::MAX)
                .unwrap(),
            Some(1)
        );
    }
}
