//! Property-based tests of store semantics.

use bytes::Bytes;
use moc_store::{
    frame, FaultPlan, MemoryObjectStore, NodeMemoryStore, ObjectStore, ShardKey, StatePart,
};
use proptest::prelude::*;

/// Exhaustive single-bit corruption: flipping *any* bit of an encoded
/// frame — header, key, checksum, length or payload — is always detected:
/// decoding either fails outright or yields a different `(key, payload)`
/// than the original, never a silent acceptance of the original value.
#[test]
fn every_single_bit_flip_is_detected() {
    let key = ShardKey::new("layer2.expert3", StatePart::Optimizer, 7_777);
    let payload = Bytes::from((0..=255u8).collect::<Vec<u8>>());
    let framed = frame::encode(&key, &payload);
    for byte in 0..framed.len() {
        for bit in 0..8 {
            let mut corrupt = framed.to_vec();
            corrupt[byte] ^= 1 << bit;
            match frame::decode(&Bytes::from(corrupt)) {
                Err(_) => {}
                Ok((k, p)) => {
                    assert!(
                        k != key || p != payload,
                        "bit {bit} of byte {byte} flipped yet decode returned the original"
                    );
                }
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// `latest_version` returns the max stored version <= the bound.
    #[test]
    fn latest_version_is_supremum(versions in proptest::collection::btree_set(0u64..1000, 1..20), bound in 0u64..1000) {
        let store = MemoryObjectStore::new();
        for &v in &versions {
            store
                .put(&ShardKey::new("m", StatePart::Weights, v), Bytes::new())
                .unwrap();
        }
        let expected = versions.iter().copied().filter(|&v| v <= bound).max();
        let got = store.latest_version("m", StatePart::Weights, bound).unwrap();
        prop_assert_eq!(got, expected);
    }

    /// Memory stores keep exactly the newest version per slot.
    #[test]
    fn node_memory_keeps_newest(puts in proptest::collection::vec((0u64..100, 0u8..4), 1..40)) {
        let store = NodeMemoryStore::new();
        let mut newest = std::collections::HashMap::new();
        for (v, m) in &puts {
            let module = format!("m{m}");
            store.put(&ShardKey::new(&module, StatePart::Weights, *v), Bytes::new());
            let e = newest.entry(module).or_insert(0u64);
            *e = (*e).max(*v);
        }
        for (module, v) in newest {
            prop_assert_eq!(store.version(&module, StatePart::Weights), Some(v));
        }
    }

    /// Periodic fault plans produce strictly increasing iterations below
    /// the horizon with valid victims.
    #[test]
    fn every_plan_well_formed(interval in 1u64..50, nodes in 1usize..8, horizon in 1u64..500) {
        let plan = FaultPlan::Every { interval, num_nodes: nodes };
        let events = plan.events(horizon);
        for pair in events.windows(2) {
            prop_assert!(pair[0].iteration < pair[1].iteration);
        }
        for e in &events {
            prop_assert!(e.iteration < horizon);
            prop_assert!(e.node < nodes);
        }
        prop_assert_eq!(events.len() as f64, plan.expected_faults(horizon));
    }

    /// Pruning never removes shards at or above the cutoff.
    #[test]
    fn prune_respects_cutoff(versions in proptest::collection::btree_set(0u64..100, 1..20), cutoff in 0u64..100) {
        let store = MemoryObjectStore::new();
        for &v in &versions {
            store
                .put(&ShardKey::new("m", StatePart::Optimizer, v), Bytes::from_static(b"x"))
                .unwrap();
        }
        let removed = store.prune("m", StatePart::Optimizer, cutoff).unwrap();
        let expected_removed = versions.iter().filter(|&&v| v < cutoff).count();
        prop_assert_eq!(removed, expected_removed);
        for &v in &versions {
            let present = store
                .get(&ShardKey::new("m", StatePart::Optimizer, v))
                .unwrap()
                .is_some();
            prop_assert_eq!(present, v >= cutoff);
        }
    }
}
