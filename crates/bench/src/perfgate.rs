//! The perf regression gate: diff two schema'd `BENCH_*.json` reports
//! with per-metric noise tolerances.
//!
//! Every figure bench persists a machine-readable `BENCH_*.json` at the
//! repo root. [`compare`] flattens a baseline and a candidate report
//! into dotted leaf keys (`modes.sync_full.ckpt_overhead_secs`,
//! `worlds.0.ring_wait_p99_secs`, …), classifies each metric by its key
//! suffix, and flags the candidate values that got *worse* than the
//! baseline by more than the class tolerance:
//!
//! | class  | keys                                   | worse means | default tolerance |
//! |--------|----------------------------------------|-------------|-------------------|
//! | timing | `*_secs`, `*_ms`                       | larger      | +15 % rel, +0.5 ms abs |
//! | bytes  | `*_bytes`                              | larger      | +5 % rel, +4 KiB abs |
//! | count  | `*_count`, `*_shards`, `*_allocs`, `*_stalls`, `*_phases`, `*_retries`, `*_aborts` | larger | +25 % rel, +2 abs |
//! | flag   | booleans                               | true→false  | none |
//! | other  | everything numeric else (growth factors, ratios) | larger | +25 % rel |
//!
//! Timing regressions need both the relative *and* the absolute slack
//! exceeded, so microsecond jitter on a sub-millisecond phase never
//! trips the gate while a real slowdown on a meaty metric does. A
//! metric present in the baseline but missing from the candidate is a
//! schema regression; new candidate-only metrics are fine (reports are
//! allowed to grow). The `moc-perfgate` binary wraps this: exit 0 on
//! pass, 1 on regression, 2 on usage or parse errors.

use moc_obs::Json;

/// How a leaf metric is judged.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricClass {
    /// Wall-time measurement — noisy, judged with generous slack.
    Timing,
    /// Byte count — near-deterministic, judged tightly.
    Bytes,
    /// Event/object count — deterministic-ish, small slack.
    Count,
    /// Boolean quality flag — must not flip from true to false.
    Flag,
    /// Any other numeric leaf (growth factors, ratios).
    Other,
}

impl MetricClass {
    /// Classifies a flattened key by its suffix.
    pub fn of(key: &str) -> Self {
        let leaf = key.rsplit('.').next().unwrap_or(key);
        if leaf.ends_with("_secs") || leaf.ends_with("_ms") {
            MetricClass::Timing
        } else if leaf.ends_with("_bytes") {
            MetricClass::Bytes
        } else if leaf.ends_with("_count")
            || leaf.ends_with("_shards")
            || leaf.ends_with("_allocs")
            || leaf.ends_with("_stalls")
            || leaf.ends_with("_phases")
            || leaf.ends_with("_retries")
            || leaf.ends_with("_aborts")
        {
            MetricClass::Count
        } else {
            MetricClass::Other
        }
    }
}

/// Relative + absolute slack for one metric class. A candidate value
/// regresses when it exceeds `baseline * (1 + rel)` *and*
/// `baseline + abs`.
#[derive(Debug, Clone, Copy)]
pub struct Tolerance {
    /// Relative headroom (0.15 = +15 %).
    pub rel: f64,
    /// Absolute headroom in the metric's own unit.
    pub abs: f64,
}

impl Tolerance {
    /// The largest candidate value that still passes against `baseline`.
    pub fn limit(&self, baseline: f64) -> f64 {
        (baseline * (1.0 + self.rel)).max(baseline + self.abs)
    }
}

/// Per-class tolerances of one gate run.
#[derive(Debug, Clone, Copy)]
pub struct GateConfig {
    /// Slack for `*_secs` timing metrics.
    pub timing: Tolerance,
    /// Slack for `*_bytes` metrics.
    pub bytes: Tolerance,
    /// Slack for count metrics.
    pub count: Tolerance,
    /// Slack for every other numeric metric.
    pub other: Tolerance,
}

impl Default for GateConfig {
    fn default() -> Self {
        Self {
            timing: Tolerance {
                rel: 0.15,
                abs: 0.5e-3,
            },
            bytes: Tolerance {
                rel: 0.05,
                abs: 4096.0,
            },
            count: Tolerance {
                rel: 0.25,
                abs: 2.0,
            },
            other: Tolerance {
                rel: 0.25,
                abs: 0.0,
            },
        }
    }
}

impl GateConfig {
    /// The tolerance applied to one metric class.
    pub fn tolerance(&self, class: MetricClass) -> Tolerance {
        match class {
            MetricClass::Timing => self.timing,
            MetricClass::Bytes => self.bytes,
            MetricClass::Count => self.count,
            MetricClass::Flag | MetricClass::Other => self.other,
        }
    }

    /// Scales the slack of every class by `factor` — the CI knob for
    /// comparing against baselines recorded on different hardware. The
    /// timing class scales its *absolute* floor too: a box `factor`×
    /// slower than the baseline recorder stretches sub-millisecond
    /// leaves by the same factor, so a fixed 0.5 ms floor would trip on
    /// jitter the relative slack was meant to absorb. Byte and count
    /// floors stay fixed (those metrics don't scale with hardware
    /// speed).
    pub fn scaled(mut self, factor: f64) -> Self {
        self.timing.rel *= factor;
        self.timing.abs *= factor;
        self.bytes.rel *= factor;
        self.count.rel *= factor;
        self.other.rel *= factor;
        self
    }
}

/// One metric that got worse than its tolerance allows.
#[derive(Debug, Clone)]
pub struct Regression {
    /// Flattened metric key.
    pub key: String,
    /// The metric's class.
    pub class: MetricClass,
    /// Baseline value (NaN for a boolean flip or missing metric).
    pub baseline: f64,
    /// Candidate value (NaN when missing).
    pub candidate: f64,
    /// Human-readable verdict.
    pub detail: String,
}

/// The outcome of one gate run.
#[derive(Debug, Clone, Default)]
pub struct GateReport {
    /// Leaf metrics compared.
    pub checked: usize,
    /// Metrics that regressed past tolerance.
    pub regressions: Vec<Regression>,
    /// Metrics that moved in the *better* direction (informational).
    pub improved: usize,
}

impl GateReport {
    /// Whether the candidate passes the gate.
    pub fn pass(&self) -> bool {
        self.regressions.is_empty()
    }

    /// Renders the verdict for terminal output.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "perfgate: {} metric(s) checked, {} improved, {} regression(s)\n",
            self.checked,
            self.improved,
            self.regressions.len()
        ));
        for r in &self.regressions {
            out.push_str(&format!("  REGRESSION {:<50} {}\n", r.key, r.detail));
        }
        if self.pass() {
            out.push_str("perfgate: PASS\n");
        } else {
            out.push_str("perfgate: FAIL\n");
        }
        out
    }
}

/// Flattens a JSON tree into `(dotted key, leaf)` pairs. Strings are
/// kept (schema identity checks); arrays use the element index as the
/// path segment.
fn flatten<'a>(prefix: &str, value: &'a Json, out: &mut Vec<(String, &'a Json)>) {
    match value {
        Json::Obj(fields) => {
            for (k, v) in fields {
                let key = if prefix.is_empty() {
                    k.clone()
                } else {
                    format!("{prefix}.{k}")
                };
                flatten(&key, v, out);
            }
        }
        Json::Arr(items) => {
            for (i, v) in items.iter().enumerate() {
                flatten(&format!("{prefix}.{i}"), v, out);
            }
        }
        _ => out.push((prefix.to_string(), value)),
    }
}

/// Compares `candidate` against `baseline` under `config`. Every leaf
/// of the baseline must exist in the candidate with a value no worse
/// than its class tolerance allows.
pub fn compare(baseline: &Json, candidate: &Json, config: &GateConfig) -> GateReport {
    let mut base_leaves = Vec::new();
    flatten("", baseline, &mut base_leaves);
    let mut cand_leaves = Vec::new();
    flatten("", candidate, &mut cand_leaves);
    let cand: std::collections::BTreeMap<&str, &Json> =
        cand_leaves.iter().map(|(k, v)| (k.as_str(), *v)).collect();

    let mut report = GateReport::default();
    for (key, base) in &base_leaves {
        let class = MetricClass::of(key);
        let Some(&cand_value) = cand.get(key.as_str()) else {
            report.checked += 1;
            report.regressions.push(Regression {
                key: key.clone(),
                class,
                baseline: base.as_f64().unwrap_or(f64::NAN),
                candidate: f64::NAN,
                detail: "present in baseline, missing from candidate".into(),
            });
            continue;
        };
        report.checked += 1;
        match (base, cand_value) {
            (Json::Bool(b), Json::Bool(c)) => {
                if *b && !*c {
                    report.regressions.push(Regression {
                        key: key.clone(),
                        class: MetricClass::Flag,
                        baseline: 1.0,
                        candidate: 0.0,
                        detail: "quality flag flipped true -> false".into(),
                    });
                }
            }
            (Json::Str(b), Json::Str(c)) => {
                if b != c {
                    report.regressions.push(Regression {
                        key: key.clone(),
                        class: MetricClass::Flag,
                        baseline: f64::NAN,
                        candidate: f64::NAN,
                        detail: format!("schema identity changed: {b:?} -> {c:?}"),
                    });
                }
            }
            (Json::Num(b), Json::Num(c)) => {
                let tolerance = config.tolerance(class);
                let limit = tolerance.limit(*b);
                if *c > limit {
                    let pct = if *b > 0.0 {
                        format!("{:+.1}%", 100.0 * (c - b) / b)
                    } else {
                        "from zero".to_string()
                    };
                    report.regressions.push(Regression {
                        key: key.clone(),
                        class,
                        baseline: *b,
                        candidate: *c,
                        detail: format!("{b:.6} -> {c:.6} ({pct}), limit {limit:.6} ({class:?})"),
                    });
                } else if *c < *b {
                    report.improved += 1;
                }
            }
            // Type mismatch (e.g. number became null): schema drift.
            _ => report.regressions.push(Regression {
                key: key.clone(),
                class,
                baseline: base.as_f64().unwrap_or(f64::NAN),
                candidate: cand_value.as_f64().unwrap_or(f64::NAN),
                detail: "leaf type changed between baseline and candidate".into(),
            }),
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fixture() -> Json {
        Json::parse(
            r#"{
              "bench": "fig18_ckpt_overhead",
              "modes": {
                "sync_full": {
                  "ckpt_overhead_secs": 0.100,
                  "mean_iteration_secs": 0.080,
                  "persisted_bytes": 47774628,
                  "stall_count": 0
                },
                "async_partial_delta": {
                  "ckpt_overhead_secs": 0.002,
                  "mean_iteration_secs": 0.062,
                  "persisted_bytes": 20383572,
                  "stall_count": 0
                }
              },
              "eq16_moc_beats_full": true
            }"#,
        )
        .unwrap()
    }

    #[test]
    fn identical_reports_pass() {
        let report = compare(&fixture(), &fixture(), &GateConfig::default());
        assert!(report.pass(), "{}", report.render_text());
        assert!(report.checked >= 10);
        assert_eq!(report.improved, 0);
    }

    #[test]
    fn seeded_twenty_percent_slowdown_is_caught() {
        let base = fixture();
        let mut slow = fixture();
        // Stretch one timing metric by 20 %: past the default
        // 15 % + 0.5 ms slack on a 100 ms metric.
        if let Json::Obj(fields) = &mut slow {
            if let Some((_, Json::Obj(modes))) = fields.iter_mut().find(|(k, _)| k == "modes") {
                if let Some((_, Json::Obj(mode))) = modes.iter_mut().find(|(k, _)| k == "sync_full")
                {
                    for (k, v) in mode.iter_mut() {
                        if k == "ckpt_overhead_secs" {
                            *v = Json::from(0.120);
                        }
                    }
                }
            }
        }
        let report = compare(&base, &slow, &GateConfig::default());
        assert!(!report.pass(), "a 20% slowdown must fail the gate");
        assert_eq!(report.regressions.len(), 1);
        assert_eq!(
            report.regressions[0].key,
            "modes.sync_full.ckpt_overhead_secs"
        );
        assert_eq!(report.regressions[0].class, MetricClass::Timing);
    }

    #[test]
    fn small_jitter_passes_but_improvements_count() {
        let base = fixture();
        let mut jitter = fixture();
        if let Json::Obj(fields) = &mut jitter {
            if let Some((_, Json::Obj(modes))) = fields.iter_mut().find(|(k, _)| k == "modes") {
                if let Some((_, Json::Obj(mode))) = modes.iter_mut().find(|(k, _)| k == "sync_full")
                {
                    for (k, v) in mode.iter_mut() {
                        if k == "ckpt_overhead_secs" {
                            *v = Json::from(0.108); // +8% < 15% slack
                        }
                        if k == "mean_iteration_secs" {
                            *v = Json::from(0.070); // got faster
                        }
                    }
                }
            }
        }
        let report = compare(&base, &jitter, &GateConfig::default());
        assert!(report.pass(), "{}", report.render_text());
        assert_eq!(report.improved, 1);
    }

    #[test]
    fn absolute_floor_shields_microsecond_metrics() {
        let base = Json::parse(r#"{"tiny_secs": 0.0001}"#).unwrap();
        // 3x slower but still within the 0.5 ms absolute floor.
        let cand = Json::parse(r#"{"tiny_secs": 0.0003}"#).unwrap();
        assert!(compare(&base, &cand, &GateConfig::default()).pass());
        // Past the floor it fails regardless of the tiny baseline.
        let cand = Json::parse(r#"{"tiny_secs": 0.0009}"#).unwrap();
        assert!(!compare(&base, &cand, &GateConfig::default()).pass());
    }

    #[test]
    fn missing_metric_and_flag_flip_are_schema_regressions() {
        let base = fixture();
        let missing = Json::parse(r#"{"bench": "fig18_ckpt_overhead"}"#).unwrap();
        let report = compare(&base, &missing, &GateConfig::default());
        assert!(!report.pass());
        assert!(report.regressions.len() >= 9, "{}", report.render_text());

        let mut flipped = fixture();
        if let Json::Obj(fields) = &mut flipped {
            for (k, v) in fields.iter_mut() {
                if k == "eq16_moc_beats_full" {
                    *v = Json::Bool(false);
                }
            }
        }
        let report = compare(&base, &flipped, &GateConfig::default());
        assert_eq!(report.regressions.len(), 1);
        assert!(report.regressions[0].detail.contains("flag"));
    }

    #[test]
    fn renamed_bench_fails_identity_check() {
        let base = fixture();
        let mut renamed = fixture();
        if let Json::Obj(fields) = &mut renamed {
            for (k, v) in fields.iter_mut() {
                if k == "bench" {
                    *v = Json::from("some_other_bench");
                }
            }
        }
        assert!(!compare(&base, &renamed, &GateConfig::default()).pass());
    }

    #[test]
    fn scaled_config_loosens_relative_slack() {
        let base = Json::parse(r#"{"x_secs": 0.100}"#).unwrap();
        let cand = Json::parse(r#"{"x_secs": 0.130}"#).unwrap();
        assert!(!compare(&base, &cand, &GateConfig::default()).pass());
        assert!(compare(&base, &cand, &GateConfig::default().scaled(3.0)).pass());
    }

    #[test]
    fn scaled_config_stretches_the_absolute_timing_floor() {
        // 0.2 ms -> 1.1 ms: past the default 0.5 ms floor (and far past
        // 15 % relative), but within a 3x-scaled 1.5 ms floor — the
        // slow-CI-box case the scale knob exists for.
        let base = Json::parse(r#"{"tiny_secs": 0.0002}"#).unwrap();
        let cand = Json::parse(r#"{"tiny_secs": 0.0011}"#).unwrap();
        assert!(!compare(&base, &cand, &GateConfig::default()).pass());
        assert!(compare(&base, &cand, &GateConfig::default().scaled(3.0)).pass());
        // Byte floors stay fixed: 3x scaling must not stretch the 4 KiB
        // absolute slack.
        let base = Json::parse(r#"{"x_bytes": 1000}"#).unwrap();
        let cand = Json::parse(r#"{"x_bytes": 6000}"#).unwrap();
        assert!(!compare(&base, &cand, &GateConfig::default().scaled(3.0)).pass());
    }

    #[test]
    fn counts_get_integer_slack() {
        let base = Json::parse(r#"{"pool_allocs": 4}"#).unwrap();
        // +2 absolute slack dominates the 25% relative slack at small n.
        let cand = Json::parse(r#"{"pool_allocs": 6}"#).unwrap();
        assert!(compare(&base, &cand, &GateConfig::default()).pass());
        let cand = Json::parse(r#"{"pool_allocs": 9}"#).unwrap();
        assert!(!compare(&base, &cand, &GateConfig::default()).pass());
    }
}
