//! `moc-perfgate` — the perf regression gate CLI.
//!
//! ```text
//! moc-perfgate <baseline.json> <candidate.json> [--scale <factor>]
//! ```
//!
//! Diffs two schema'd `BENCH_*.json` reports under the per-metric
//! tolerances of [`moc_bench::perfgate`] and prints the verdict.
//! `--scale` multiplies every *relative* tolerance (CI uses it to
//! compare against baselines recorded on different hardware; byte and
//! count checks stay meaningful because those metrics are
//! deterministic).
//!
//! Exit codes: `0` pass, `1` regression, `2` usage or parse error.

use moc_bench::perfgate::{compare, GateConfig};
use moc_obs::Json;
use std::process::ExitCode;

fn load(path: &str) -> Result<Json, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    Json::parse(&text).map_err(|e| format!("cannot parse {path}: {e:?}"))
}

fn run() -> Result<bool, String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut paths = Vec::new();
    let mut scale = 1.0f64;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--scale" => {
                i += 1;
                let value = args
                    .get(i)
                    .ok_or_else(|| "--scale needs a value".to_string())?;
                scale = value
                    .parse::<f64>()
                    .map_err(|_| format!("invalid --scale value {value:?}"))?;
                if !scale.is_finite() || scale <= 0.0 {
                    return Err(format!("--scale must be a positive number, got {value}"));
                }
            }
            "--help" | "-h" => {
                println!("usage: moc-perfgate <baseline.json> <candidate.json> [--scale <factor>]");
                return Ok(true);
            }
            arg => paths.push(arg.to_string()),
        }
        i += 1;
    }
    let [baseline_path, candidate_path] = paths.as_slice() else {
        return Err(
            "usage: moc-perfgate <baseline.json> <candidate.json> [--scale <factor>]".into(),
        );
    };
    let baseline = load(baseline_path)?;
    let candidate = load(candidate_path)?;
    let config = GateConfig::default().scaled(scale);
    let report = compare(&baseline, &candidate, &config);
    println!("perfgate: {baseline_path} (baseline) vs {candidate_path} (candidate), scale {scale}");
    print!("{}", report.render_text());
    Ok(report.pass())
}

fn main() -> ExitCode {
    match run() {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::from(1),
        Err(message) => {
            eprintln!("moc-perfgate: {message}");
            ExitCode::from(2)
        }
    }
}
