//! # moc-bench — benchmark harnesses for every table and figure
//!
//! Each bench target (run with `cargo bench --bench <name>`) regenerates
//! one table or figure of the paper, printing the paper-reported values
//! beside the values measured from this reproduction. Shared formatting
//! helpers live here.

#![warn(missing_docs)]

pub mod perfgate;

/// Prints a section banner.
pub fn banner(title: &str) {
    println!();
    println!("==== {title} ====");
}

/// Formats bytes as GiB with two decimals.
pub fn gib(bytes: u64) -> String {
    format!("{:.2} GiB", bytes as f64 / (1u64 << 30) as f64)
}

/// Formats a fraction as a percentage.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", 100.0 * x)
}

/// Formats seconds with millisecond resolution.
pub fn secs(x: f64) -> String {
    format!("{x:.3}s")
}

/// Formats seconds as milliseconds with microsecond resolution, for
/// sub-millisecond phase measurements.
pub fn millis(x: f64) -> String {
    format!("{:.3} ms", 1e3 * x)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formatting_helpers() {
        assert_eq!(gib(1 << 30), "1.00 GiB");
        assert_eq!(pct(0.423), "42.3%");
        assert_eq!(secs(1.5), "1.500s");
    }
}
