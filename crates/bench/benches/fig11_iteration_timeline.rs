//! Fig. 11: duration of each process in a training iteration with
//! checkpointing, per case and K (both levels at K), plus the baseline.

use moc_bench::{banner, secs};
use moc_cluster::timeline::{MethodSpec, TimelineModel};
use moc_cluster::{ClusterSpec, IterationWorkload};
use moc_core::ParallelTopology;

fn main() {
    let cfg = moc_moe::presets::gpt_350m_16e();
    for (label, topo) in [
        ("Fig. 11(a) — Case1", ParallelTopology::case1()),
        ("Fig. 11(b) — Case2", ParallelTopology::case2()),
        ("Fig. 11(c) — Case3", ParallelTopology::case3()),
    ] {
        banner(label);
        let tm = TimelineModel::new(
            cfg.clone(),
            topo,
            ClusterSpec::a800(),
            IterationWorkload::default_case(),
        );
        println!(
            "{:<12} {:>8} {:>8} {:>10} {:>9} {:>8}",
            "method", "F&B", "update", "snapshot", "persist", "stall"
        );
        let mut rows = vec![MethodSpec::baseline()];
        for k in [16usize, 8, 4, 2, 1] {
            rows.push(MethodSpec::fully_sharded_k(k));
        }
        for (i, method) in rows.iter().enumerate() {
            let t = tm.timeline(method);
            let name = if i == 0 {
                "Baseline".to_string()
            } else {
                format!("K = {}", [16, 8, 4, 2, 1][i - 1])
            };
            let stall = if method.blocking {
                t.o_save_sec
            } else {
                (t.snapshot_sec - t.fb_sec).max(0.0)
            };
            println!(
                "{:<12} {:>8} {:>8} {:>10} {:>9} {:>8}",
                name,
                secs(t.fb_sec),
                secs(t.update_sec),
                secs(t.snapshot_sec),
                secs(t.persist_sec),
                secs(stall),
            );
        }
        println!(
            "(green overlap line of the paper = F&B window: {})",
            secs(tm.fb_secs())
        );
    }
}
