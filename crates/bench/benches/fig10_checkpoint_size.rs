//! Fig. 10: checkpoint size under PEC and the sharding strategies.
//!
//! (a) total checkpoint size vs K_pec (paper: 100 / 69.2 / 53.8 / 46.1 /
//! 42.3% for K = 16/8/4/2/1 — the paper's own Eq. 6 with the Fig. 2
//! composition gives the steeper curve printed here; see EXPERIMENTS.md).
//! (b-d) bottleneck-rank workload per sharding strategy and case.

use moc_bench::{banner, gib, pct};
use moc_core::selection::PecConfig;
use moc_core::sharding::{ShardingPlanner, ShardingStrategy};
use moc_core::ParallelTopology;

fn main() {
    let cfg = moc_moe::presets::gpt_350m_16e();

    banner("Fig. 10(a) — total checkpoint size vs K_pec");
    println!(
        "{:<8} {:>12} {:>10} {:>12}",
        "K_pec", "size", "ratio", "paper-ratio"
    );
    let paper = [
        (16, "100%"),
        (8, "69.2%"),
        (4, "53.8%"),
        (2, "46.1%"),
        (1, "42.3%"),
    ];
    for (k, paper_ratio) in paper {
        let bytes = cfg.pec_checkpoint_bytes(k);
        println!(
            "{:<8} {:>12} {:>10} {:>12}",
            k,
            gib(bytes),
            pct(cfg.pec_size_ratio(k)),
            paper_ratio,
        );
    }

    for (label, topo) in [
        (
            "Fig. 10(b) — bottleneck rank, Case1",
            ParallelTopology::case1(),
        ),
        (
            "Fig. 10(c) — bottleneck rank, Case2",
            ParallelTopology::case2(),
        ),
        (
            "Fig. 10(d) — bottleneck rank, Case3",
            ParallelTopology::case3(),
        ),
    ] {
        banner(label);
        let planner = ShardingPlanner::new(cfg.clone(), topo).expect("valid");
        let pec = PecConfig::sequential(1, cfg.num_experts(), cfg.num_moe_layers());
        println!("{:<10} {:>14} {:>14}", "method", "full", "K_pec=1");
        for strategy in ShardingStrategy::ALL {
            let full = planner.plan_full(strategy).bottleneck().1;
            let partial = planner.plan_pec(strategy, &pec, 0).bottleneck().1;
            println!(
                "{:<10} {:>14} {:>14}",
                strategy.label(),
                gib(full),
                gib(partial),
            );
        }
    }
}
