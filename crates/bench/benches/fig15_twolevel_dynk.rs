//! Fig. 15: (a) two-level recovery vs storage-only PLT across
//! (K_snapshot, K_persist); (b) Dynamic-K bounding PLT under fault
//! accumulation.

use moc_bench::{banner, pct};
use moc_core::dynamic_k::{DynamicK, DEFAULT_PLT_BUDGET};
use moc_core::plt::{analytic_plt, PltSimulation};
use moc_core::selection::PecConfig;
use moc_core::ParallelTopology;
use moc_moe::{LoadModel, LoadProfile};
use moc_store::FaultEvent;

fn sim(k_snapshot: usize, k_persist: usize, two_level: bool, faults: Vec<FaultEvent>) -> f64 {
    PltSimulation {
        load: LoadModel::new(12, 16, 2048, 1, LoadProfile::Balanced, 0),
        snapshot_pec: PecConfig::sequential(k_snapshot, 16, 12),
        k_persist,
        i_ckpt: 8,
        total_iterations: 1024,
        faults,
        two_level_recovery: two_level,
        topology: ParallelTopology::case2(),
    }
    .run()
    .plt
}

fn main() {
    banner("Fig. 15(a) — PLT vs (K_snapshot, K_persist=1), GPT-350M-16E/Case2");
    println!(
        "{:<14} {:>16} {:>16}",
        "(K_snap,K_per)", "storage-recovery", "two-level"
    );
    let fault = vec![FaultEvent {
        iteration: 512,
        node: 0,
    }];
    for k in [1usize, 2, 4, 8, 16] {
        let storage = sim(k, 1, false, fault.clone());
        let two = sim(k, 1, true, fault.clone());
        println!("({k:>2},1) {:>22} {:>16}", pct(storage), pct(two));
    }

    banner("Fig. 15(b) — Dynamic-K vs fixed K under fault accumulation");
    println!(
        "{:<8} {:>12} {:>12} {:>8}",
        "faults", "fixed K=1", "dynamic", "K now"
    );
    // Long-horizon regime (I_ckpt = 2 of 4096 iterations) so a single
    // fault costs well under the budget and Dynamic-K escalates
    // gradually, as in the paper's trace.
    let per_fault = |k: usize| analytic_plt(k, 16, 2, 4096, 1);
    let mut fixed = 0.0;
    let mut ctl = DynamicK::new(1, 16, DEFAULT_PLT_BUDGET);
    for fault in 1..=32u32 {
        fixed += per_fault(1);
        let k = ctl.k();
        ctl.on_fault_recovery(per_fault(k));
        if [1, 2, 4, 8, 16, 32].contains(&fault) {
            println!(
                "{:<8} {:>12} {:>12} {:>8}",
                fault,
                pct(fixed),
                pct(ctl.cumulative_plt()),
                ctl.k()
            );
        }
    }
    println!("budget: {}", pct(DEFAULT_PLT_BUDGET));
}
