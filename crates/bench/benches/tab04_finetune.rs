//! Table 4: fine-tuning with PEC fault tolerance.
//!
//! Pre-train once, then fine-tune on a shifted corpus under the paper's
//! four methods: Base (no fine-tune), FT-w.o.E (experts frozen), FT-Full
//! (full checkpoints, midpoint fault), FT-PEC (PEC checkpoints saving 1/8
//! of the experts, midpoint fault). Paper claim: FT-PEC ≈ FT-Full, and
//! FT-w.o.E still improves markedly over Base.

use moc_bench::{banner, pct};
use moc_train::harness::{
    finetune_experiment, run_experiment_with_model, FaultToleranceConfig, FinetuneMethod,
    TrainConfig,
};

fn main() {
    banner("Table 4 — fine-tuning methods (synthetic shifted distribution)");
    let train = TrainConfig {
        total_iterations: 200,
        eval_every: 200,
        ..TrainConfig::tiny_8e()
    };
    let (_, pretrained) = run_experiment_with_model(
        &train,
        &FaultToleranceConfig::baseline(&train.model, 20, vec![]),
    );
    let k_pec = train.model.num_experts() / 8;
    println!("{:<12} {:>10}", "method", "avg acc");
    for (name, method) in [
        ("Base", FinetuneMethod::Base),
        ("FT-w.o.E", FinetuneMethod::FreezeExperts),
        ("FT-Full", FinetuneMethod::Full),
        ("FT-PEC", FinetuneMethod::Pec { k: k_pec.max(1) }),
    ] {
        let acc = finetune_experiment(&train, &pretrained, method, 120, 10);
        println!("{name:<12} {:>10}", pct(acc));
    }
    println!("(paper: Base 61.16, FT-w.o.E 63.32, FT-Full 64.09, FT-PEC 64.06)");
}
