//! Fig. 14: accuracy impact of PEC on real training.
//!
//! (a) validation-loss curves of the tiny-16E LM with periodic faults
//! under W / O / WO / WO-2L (PEC on weights, optimizer, both, both +
//! two-level recovery) vs the full-checkpoint baseline.
//! (b) the vision proxy: topic-classification accuracy under baseline vs
//! sequential vs load-aware selection.

use moc_bench::{banner, pct};
use moc_core::selection::SelectionStrategy;
use moc_store::FaultEvent;
use moc_train::harness::{run_experiment, FaultToleranceConfig, TrainConfig};
use moc_train::PecMode;

fn main() {
    banner("Fig. 14(a) — loss curves with faults (tiny-16E, real training)");
    let train = TrainConfig {
        total_iterations: 240,
        eval_every: 48,
        ..TrainConfig::tiny_16e()
    };
    // Two faults, spaced wider than the persist-PEC rotation period
    // (N/K_persist · I_ckpt = 80 iterations), mirroring the paper's
    // fault-every-2k-of-10k cadence.
    let faults: Vec<FaultEvent> = (1..=2)
        .map(|i| FaultEvent {
            iteration: i * 90 + 3,
            node: 0,
        })
        .collect();
    let variants: Vec<(&str, FaultToleranceConfig)> = vec![
        (
            "Baseline",
            FaultToleranceConfig::baseline(&train.model, 5, faults.clone()),
        ),
        (
            "W",
            FaultToleranceConfig::pec(&train.model, 4, 1, PecMode::W, false, 5, faults.clone()),
        ),
        (
            "O",
            FaultToleranceConfig::pec(&train.model, 4, 1, PecMode::O, false, 5, faults.clone()),
        ),
        (
            "WO",
            FaultToleranceConfig::pec(&train.model, 4, 1, PecMode::WO, false, 5, faults.clone()),
        ),
        (
            "WO-2L",
            FaultToleranceConfig::pec(&train.model, 4, 1, PecMode::WO, true, 5, faults.clone()),
        ),
    ];
    println!("{:<9} {:>10} {:>9} | loss curve", "method", "final", "PLT");
    for (name, ft) in variants {
        let report = run_experiment(&train, &ft);
        let curve: Vec<String> = report
            .val_curve
            .iter()
            .map(|(it, l)| format!("{it}:{l:.3}"))
            .collect();
        println!(
            "{:<9} {:>10.4} {:>9} | {}",
            name,
            report.final_val_loss,
            pct(report.plt),
            curve.join(" ")
        );
    }

    banner("Fig. 14(b) — vision proxy: selection strategies");
    let train = TrainConfig {
        total_iterations: 160,
        eval_every: 40,
        ..TrainConfig::tiny_8e()
    };
    let faults = vec![
        FaultEvent {
            iteration: 40,
            node: 0,
        },
        FaultEvent {
            iteration: 120,
            node: 1,
        },
    ];
    for (name, strategy, k) in [
        ("Baseline", SelectionStrategy::Sequential, 8usize),
        ("Sequential", SelectionStrategy::Sequential, 2),
        ("Load-aware", SelectionStrategy::LoadAware, 2),
    ] {
        let mut ft = FaultToleranceConfig::pec(
            &train.model,
            k,
            k,
            if k == 8 { PecMode::NONE } else { PecMode::WO },
            false,
            8,
            faults.clone(),
        );
        ft.strategy = strategy;
        let report = run_experiment(&train, &ft);
        let curve: Vec<String> = report
            .acc_curve
            .iter()
            .map(|(it, a)| format!("{it}:{:.2}", a * 100.0))
            .collect();
        println!("{name:<11} accuracy% {}", curve.join(" "));
    }
}
