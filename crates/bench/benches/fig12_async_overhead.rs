//! Fig. 12: iteration duration under Baseline / Base-Async / MoC-Async.
//!
//! Paper: MoC-Async cuts per-checkpoint overhead by 98.2–98.9% and speeds
//! up a checkpointing iteration by 3.25–5.12x across the three cases.

use moc_bench::{banner, pct, secs};
use moc_cluster::timeline::fig12_row;
use moc_cluster::ClusterSpec;
use moc_core::ParallelTopology;

fn main() {
    banner("Fig. 12 — asynchronous checkpointing end-to-end");
    let cfg = moc_moe::presets::gpt_350m_16e();
    println!(
        "{:<7} {:>10} {:>11} {:>10} {:>9} {:>12} {:>12}",
        "case", "baseline", "base-async", "moc-async", "speedup", "o_save-cut", "paper"
    );
    let paper = [
        ("Case1", "4.13x/-98.2%"),
        ("Case2", "5.12x/-98.5%"),
        ("Case3", "3.25x/-98.9%"),
    ];
    for ((case, paper_note), topo) in paper.into_iter().zip([
        ParallelTopology::case1(),
        ParallelTopology::case2(),
        ParallelTopology::case3(),
    ]) {
        let row = fig12_row(case, cfg.clone(), topo, ClusterSpec::a800(), 4, 1);
        println!(
            "{:<7} {:>10} {:>11} {:>10} {:>8.2}x {:>12} {:>12}",
            case,
            secs(row.baseline.iteration_sec),
            secs(row.base_async.iteration_sec),
            secs(row.moc_async.iteration_sec),
            row.speedup(),
            pct(row.o_save_reduction()),
            paper_note,
        );
    }
    println!();
    println!("checkpoint-interval lower bound (persist drain):");
    for (case, topo) in [
        ("Case1", ParallelTopology::case1()),
        ("Case2", ParallelTopology::case2()),
        ("Case3", ParallelTopology::case3()),
    ] {
        let row = fig12_row(case, cfg.clone(), topo, ClusterSpec::a800(), 4, 1);
        println!(
            "  {case}: base-async {} -> moc-async {}",
            secs(row.base_async.min_interval_sec),
            secs(row.moc_async.min_interval_sec),
        );
    }
}
