//! Observability overhead: the cost of the tracing and live-telemetry
//! planes on the training loop, and the proof that they are read-only.
//!
//! The same fault-free multi-rank training job runs four times:
//!
//! 1. **off** — observability fully disabled (the baseline);
//! 2. **spans** — span recording + blame analysis, no sampler;
//! 3. **telemetry_50ms** — spans plus the telemetry sampler at 50 ms;
//! 4. **telemetry_5ms** — spans plus the sampler at 5 ms (aggressive).
//!
//! Every variant must end with bitwise-identical parameters — tracing
//! and telemetry never touch the numerics — and the per-iteration
//! slowdown of each variant over the baseline is reported and emitted
//! as `BENCH_obs.json` so the perf regression gate can track it.
//!
//! Run with `cargo bench --bench fig21_obs_overhead`.

use moc_bench::{banner, millis, pct};
use moc_obs::Report;
use moc_runtime::{CheckpointMode, Coordinator, ObsConfig, RunSummary, RuntimeConfig};
use moc_store::MemoryObjectStore;
use moc_train::PecMode;
use std::sync::Arc;
use std::time::Duration;

struct Variant {
    label: &'static str,
    summary: RunSummary,
}

fn run(obs: ObsConfig) -> RunSummary {
    let topo = moc_core::ParallelTopology::dp_ep(2, 4, 8, 8).expect("topology");
    let config = RuntimeConfig {
        total_iterations: 40,
        i_ckpt: 4,
        eval_every: 0,
        checkpoint_mode: CheckpointMode::Async,
        k_snapshot: 4,
        k_persist: 2,
        pec_mode: PecMode::WO,
        obs,
        ..RuntimeConfig::tiny(topo)
    };
    // An in-memory store keeps file-system noise out of an overhead
    // measurement that is mostly about the hot loop.
    let store = Arc::new(MemoryObjectStore::new());
    Coordinator::new(config, store)
        .expect("valid config")
        .run()
        .expect("fault-free run")
}

fn main() {
    banner("Fig. 21 — observability overhead: spans and telemetry vs a dark run");
    let variants = [
        Variant {
            label: "off",
            summary: run(ObsConfig::default()),
        },
        Variant {
            label: "spans",
            summary: run(ObsConfig::enabled()),
        },
        Variant {
            label: "telemetry_50ms",
            summary: run(ObsConfig::enabled().with_telemetry(Duration::from_millis(50))),
        },
        Variant {
            label: "telemetry_5ms",
            summary: run(ObsConfig::enabled().with_telemetry(Duration::from_millis(5))),
        },
    ];

    let base = variants[0].summary.mean_iteration_secs();
    println!("8 ranks on 2 nodes, tiny 8-expert LM, 40 iterations, async checkpoints");
    println!(
        "{:<16} {:>13} {:>10} {:>8} {:>8}",
        "variant", "iter mean", "overhead", "spans", "samples"
    );
    for v in &variants {
        let s = &v.summary;
        println!(
            "{:<16} {:>13} {:>10} {:>8} {:>8}",
            v.label,
            millis(s.mean_iteration_secs()),
            pct(s.mean_iteration_secs() / base.max(1e-12) - 1.0),
            s.obs.spans_recorded,
            s.obs.telemetry.as_ref().map_or(0, |t| t.samples.len()),
        );
    }

    // The whole point of the plane: it observes, it never perturbs.
    let reference: Vec<u32> = variants[0]
        .summary
        .final_params
        .iter()
        .map(|x| x.to_bits())
        .collect();
    for v in &variants[1..] {
        let bits: Vec<u32> = v.summary.final_params.iter().map(|x| x.to_bits()).collect();
        assert_eq!(
            bits, reference,
            "variant {} must be bitwise identical to the dark run",
            v.label
        );
    }
    println!(
        "final parameters bitwise identical across all {} variants",
        variants.len()
    );

    for v in &variants[2..] {
        let telemetry = v.summary.obs.telemetry.as_ref().expect("sampler on");
        assert_eq!(
            telemetry.totals().value(moc_obs::Counter::Iterations),
            v.summary.iterations_executed,
            "variant {}: telemetry totals track the loop",
            v.label
        );
    }

    let variant_entries = variants.iter().fold(Report::new(), |report, v| {
        report.field(
            v.label,
            Report::new()
                .field("mean_iteration_secs", v.summary.mean_iteration_secs())
                .field("loop_secs", v.summary.loop_secs)
                .field("ckpt_overhead_secs", v.summary.checkpoint_overhead_secs())
                .field("spans_recorded", v.summary.obs.spans_recorded)
                .field(
                    "telemetry_samples",
                    v.summary
                        .obs
                        .telemetry
                        .as_ref()
                        .map_or(0u64, |t| t.samples.len() as u64),
                )
                .json(),
        )
    });
    let json_path = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_obs.json");
    Report::new()
        .field("bench", "fig21_obs_overhead")
        .field("variants", variant_entries.json())
        .field("bitwise_identical", true)
        .write(&json_path)
        .expect("write BENCH_obs.json");
    println!("wrote {}", json_path.display());
}
