//! Table 2: distributed configurations for GPT-350M-16E training.

use moc_bench::banner;
use moc_core::ParallelTopology;

fn main() {
    banner("Table 2 — distributed training configurations");
    println!(
        "{:<7} {:>6} {:>5} {:>4} {:>4} {:>4} {:>4} {:>12} {:>10}",
        "case", "nodes", "gpus", "dp", "tp", "pp", "ep", "experts/gpu", "ep-groups"
    );
    for (name, topo) in [
        ("Case1", ParallelTopology::case1()),
        ("Case2", ParallelTopology::case2()),
        ("Case3", ParallelTopology::case3()),
    ] {
        println!(
            "{:<7} {:>6} {:>5} {:>4} {:>4} {:>4} {:>4} {:>12} {:>10}",
            name,
            topo.nodes(),
            topo.world_size(),
            topo.dp(),
            topo.tp(),
            topo.pp(),
            topo.ep(),
            topo.experts_per_gpu(16),
            topo.num_ep_groups(),
        );
    }
}
