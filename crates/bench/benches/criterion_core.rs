//! Criterion micro-benchmarks of the core mechanisms: PEC selection,
//! sharding planning, shard framing, snapshot serialization, and the
//! asynchronous agent path.

use bytes::Bytes;
use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use moc_core::selection::PecConfig;
use moc_core::sharding::{ShardingPlanner, ShardingStrategy};
use moc_core::twolevel::{CheckpointJob, NodeAgent, ShardJob};
use moc_core::ParallelTopology;
use moc_store::{frame, MemoryObjectStore, NodeId, NodeMemoryStore, ShardKey, StatePart};
use std::hint::black_box;
use std::sync::Arc;

fn bench_selection(c: &mut Criterion) {
    let pec = PecConfig::sequential(2, 64, 32);
    c.bench_function("pec_sequential_select_64x32", |b| {
        b.iter(|| black_box(pec.select(black_box(17))))
    });
}

fn bench_sharding(c: &mut Criterion) {
    let planner =
        ShardingPlanner::new(moc_moe::presets::gpt_350m_16e(), ParallelTopology::case3()).unwrap();
    c.bench_function("plan_full_fully_sharded_case3", |b| {
        b.iter(|| black_box(planner.plan_full(ShardingStrategy::FullySharded)))
    });
    let pec = PecConfig::sequential(1, 16, 12);
    c.bench_function("plan_pec_adaptive_case3", |b| {
        b.iter(|| black_box(planner.plan_pec(ShardingStrategy::FullyShardedAdaptive, &pec, 3)))
    });
}

fn bench_framing(c: &mut Criterion) {
    let key = ShardKey::new("layer3.expert7", StatePart::Optimizer, 1000);
    let payload = Bytes::from(vec![42u8; 1 << 20]);
    c.bench_function("frame_encode_1MiB", |b| {
        b.iter(|| black_box(frame::encode(&key, &payload)))
    });
    let framed = frame::encode(&key, &payload);
    c.bench_function("frame_decode_1MiB", |b| {
        b.iter(|| black_box(frame::decode(&framed).unwrap()))
    });
}

fn bench_agent(c: &mut Criterion) {
    c.bench_function("agent_checkpoint_64x64KiB", |b| {
        b.iter_batched(
            || {
                let memory = Arc::new(NodeMemoryStore::new());
                let store: Arc<dyn moc_store::ObjectStore> = Arc::new(MemoryObjectStore::new());
                let agent = NodeAgent::spawn(NodeId(0), memory, store);
                let shards: Vec<ShardJob> = (0..64)
                    .map(|i| ShardJob {
                        key: ShardKey::new(format!("m{i}"), StatePart::Weights, 1),
                        payload: Bytes::from(vec![i as u8; 64 << 10]),
                        persist: i % 4 == 0,
                    })
                    .collect();
                (agent, shards)
            },
            |(agent, shards)| {
                agent.submit(CheckpointJob { version: 1, shards }).unwrap();
                agent.wait_idle();
            },
            BatchSize::SmallInput,
        )
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_selection, bench_sharding, bench_framing, bench_agent
}
criterion_main!(benches);
