//! All-reduce scaling: coordinator star vs decentralized ring.
//!
//! The star collective gathers every rank's gradient on the coordinator
//! thread and sums in rank order: its reduce cost is `O(world · |grad|)`
//! serialized on one thread. The chunked ring all-reduce pipelines the
//! same rank-order fold along peer channels, so each rank touches
//! ~`2 · |grad|` elements regardless of world size. This bench sweeps
//! world ∈ {2, 4, 8, 16, 32} under both collectives and reports the
//! star's coordinator-thread reduce time growing ~linearly while the
//! per-rank ring time stays ~flat (busy time is reported, not wall time,
//! so the numbers measure the algorithm rather than how many hardware
//! threads the host happens to have). The sweep is emitted as
//! `BENCH_allreduce.json` — including ring-wait p50/p99 from the
//! per-phase log histograms — so the perf trajectory is machine-readable
//! across commits.
//!
//! Run with `cargo bench --bench fig17_allreduce_scaling`.

use moc_bench::{banner, millis};
use moc_obs::{Json, Report};
use moc_runtime::{CollectiveKind, Coordinator, Phase, RunSummary, RuntimeConfig};
use moc_store::MemoryObjectStore;
use std::sync::Arc;
use std::time::Duration;

/// (world, nodes, gpus_per_node, ep) sweep points.
const SWEEP: [(usize, usize, usize, usize); 5] = [
    (2, 1, 2, 2),
    (4, 2, 2, 4),
    (8, 2, 4, 8),
    (16, 2, 8, 8),
    (32, 4, 8, 8),
];

fn run(point: (usize, usize, usize, usize), collective: CollectiveKind) -> RunSummary {
    let (world, nodes, gpus, ep) = point;
    let topo = moc_core::ParallelTopology::dp_ep(nodes, gpus, world, ep).expect("topology");
    let config = RuntimeConfig {
        total_iterations: 8,
        i_ckpt: 1000, // bootstrap only: isolate the iteration loop
        eval_every: 0,
        seq_len: 8,
        collective,
        // Generous detection window: 32 compute threads on a small host
        // must not be declared dead by scheduling skew.
        heartbeat_timeout: Duration::from_secs(20),
        ..RuntimeConfig::tiny(topo)
    };
    Coordinator::new(config, Arc::new(MemoryObjectStore::new()))
        .expect("valid config")
        .run()
        .expect("fault-free run")
}

fn main() {
    banner("Fig. 17 — all-reduce scaling: coordinator star vs decentralized ring");
    println!("tiny 8-expert LM, 8 measured iterations per point, per-phase busy time\n");
    println!(
        "{:>6} {:>18} {:>18} {:>18} {:>14}",
        "world", "star reduce", "ring per-rank", "ring wait", "ring allocs"
    );
    let mut star_reduce = Vec::new();
    let mut ring_rank = Vec::new();
    let mut world_entries: Vec<Json> = Vec::new();
    for point in SWEEP {
        let star = run(point, CollectiveKind::Star);
        let ring = run(point, CollectiveKind::Ring);
        // Least-disturbed iteration: on an oversubscribed host the mean
        // measures the scheduler, the min measures the algorithm.
        let star_secs = star.phase(Phase::Reduce).min_secs;
        let ring_secs =
            ring.phase(Phase::ReduceScatter).min_secs + ring.phase(Phase::AllGather).min_secs;
        println!(
            "{:>6} {:>18} {:>18} {:>18} {:>14}",
            point.0,
            millis(star_secs),
            millis(ring_secs),
            millis(ring.phase(Phase::RingWait).mean_secs()),
            ring.collective_allocs,
        );
        let wait = ring.phase(Phase::RingWait);
        world_entries.push(
            Report::new()
                .field("world", point.0)
                .field("star_reduce_min_secs", star_secs)
                .field("ring_rank_min_secs", ring_secs)
                .field("ring_wait_mean_secs", wait.mean_secs())
                .field("ring_wait_p50_secs", wait.p50_secs())
                .field("ring_wait_p99_secs", wait.p99_secs())
                .field("collective_allocs", ring.collective_allocs)
                .json(),
        );
        star_reduce.push(star_secs);
        ring_rank.push(ring_secs);
    }

    let star_growth = star_reduce.last().unwrap() / star_reduce.first().unwrap().max(1e-9);
    let ring_growth = ring_rank.last().unwrap() / ring_rank.first().unwrap().max(1e-9);
    println!(
        "\nworld 2 → 32: star coordinator reduce grew {star_growth:.1}x, \
         per-rank ring work grew {ring_growth:.1}x"
    );
    assert!(
        star_growth > 4.0,
        "star coordinator reduce must grow with world size (got {star_growth:.1}x)"
    );
    assert!(
        ring_growth < 2.0,
        "per-rank ring time must stay ~flat (got {ring_growth:.1}x)"
    );

    // Machine-readable trajectory, through the shared report schema.
    let json_path =
        std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_allreduce.json");
    Report::new()
        .field("bench", "fig17_allreduce_scaling")
        .field("worlds", world_entries)
        .field("star_reduce_growth", star_growth)
        .field("ring_rank_growth", ring_growth)
        .write(&json_path)
        .expect("write BENCH_allreduce.json");
    println!("wrote {}", json_path.display());
}
