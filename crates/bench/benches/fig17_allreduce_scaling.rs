//! All-reduce scaling: coordinator star vs flat ring vs hierarchical.
//!
//! The star collective gathers every rank's gradient on the coordinator
//! thread and sums in rank order: its reduce cost is `O(world · |grad|)`
//! serialized on one thread. The chunked ring all-reduce pipelines the
//! same rank-order fold along peer channels, so each rank touches
//! ~`2 · |grad|` elements regardless of world size. The two-level
//! hierarchical reduce folds each node's members on a leader first and
//! chains only the leaders, so the cross-node hop count scales with the
//! node count rather than the world size. This bench sweeps
//! world ∈ {2, 4, 8, 16, 32} under all three collectives and reports
//! the star's coordinator-thread reduce time growing ~linearly while
//! the per-rank ring and hierarchical times stay ~flat (busy time is
//! reported, not wall time, so the numbers measure the algorithm rather
//! than how many hardware threads the host happens to have). A final
//! degraded-window row kills a node under elastic shrink and reports
//! the survivor-ring trajectory: exactly `ring_fallback_iterations`
//! star iterations, then the ring rebuilt over the survivors. The sweep
//! is emitted as `BENCH_allreduce.json` — including ring-wait p50/p99
//! from the per-phase log histograms — so the perf trajectory is
//! machine-readable across commits.
//!
//! Run with `cargo bench --bench fig17_allreduce_scaling`.

use moc_bench::{banner, millis};
use moc_obs::{Json, Report};
use moc_runtime::{CollectiveKind, Coordinator, ElasticConfig, Phase, RunSummary, RuntimeConfig};
use moc_store::{FaultEvent, FaultPlan, MemoryObjectStore};
use std::sync::Arc;
use std::time::Duration;

/// (world, nodes, gpus_per_node, ep) sweep points.
const SWEEP: [(usize, usize, usize, usize); 5] = [
    (2, 1, 2, 2),
    (4, 2, 2, 4),
    (8, 2, 4, 8),
    (16, 2, 8, 8),
    (32, 4, 8, 8),
];

fn run(point: (usize, usize, usize, usize), collective: CollectiveKind) -> RunSummary {
    let (world, nodes, gpus, ep) = point;
    let topo = moc_core::ParallelTopology::dp_ep(nodes, gpus, world, ep).expect("topology");
    let config = RuntimeConfig {
        total_iterations: 8,
        i_ckpt: 1000, // bootstrap only: isolate the iteration loop
        eval_every: 0,
        seq_len: 8,
        collective,
        // Generous detection window: 32 compute threads on a small host
        // must not be declared dead by scheduling skew.
        heartbeat_timeout: Duration::from_secs(20),
        ..RuntimeConfig::tiny(topo)
    };
    Coordinator::new(config, Arc::new(MemoryObjectStore::new()))
        .expect("valid config")
        .run()
        .expect("fault-free run")
}

/// Degraded-window row: a node dies mid-run under elastic shrink, the
/// recovery runs the bounded star window, then the survivors continue
/// on the rebuilt ring to the end of the run.
fn run_degraded(point: (usize, usize, usize, usize)) -> RunSummary {
    let (world, nodes, gpus, ep) = point;
    let topo = moc_core::ParallelTopology::dp_ep(nodes, gpus, world, ep).expect("topology");
    let config = RuntimeConfig {
        total_iterations: 12,
        i_ckpt: 4,
        eval_every: 0,
        seq_len: 8,
        collective: CollectiveKind::Ring,
        heartbeat_timeout: Duration::from_secs(2),
        faults: FaultPlan::At(vec![FaultEvent {
            iteration: 6,
            node: 1,
        }]),
        elastic: ElasticConfig::shrink(1),
        ..RuntimeConfig::tiny(topo)
    };
    Coordinator::new(config, Arc::new(MemoryObjectStore::new()))
        .expect("valid config")
        .run()
        .expect("elastic run")
}

fn main() {
    banner("Fig. 17 — all-reduce scaling: star vs flat ring vs hierarchical");
    println!("tiny 8-expert LM, 8 measured iterations per point, per-phase busy time\n");
    println!(
        "{:>6} {:>15} {:>15} {:>15} {:>15} {:>12}",
        "world", "star reduce", "ring per-rank", "hier per-rank", "ring wait", "ring allocs"
    );
    let mut star_reduce = Vec::new();
    let mut ring_rank = Vec::new();
    let mut hier_rank = Vec::new();
    let mut world_entries: Vec<Json> = Vec::new();
    for point in SWEEP {
        let star = run(point, CollectiveKind::Star);
        let ring = run(point, CollectiveKind::Ring);
        let hier = run(point, CollectiveKind::Hierarchical);
        // Least-disturbed iteration: on an oversubscribed host the mean
        // measures the scheduler, the min measures the algorithm.
        let star_secs = star.phase(Phase::Reduce).min_secs;
        let ring_secs =
            ring.phase(Phase::ReduceScatter).min_secs + ring.phase(Phase::AllGather).min_secs;
        let hier_secs =
            hier.phase(Phase::ReduceScatter).min_secs + hier.phase(Phase::AllGather).min_secs;
        println!(
            "{:>6} {:>15} {:>15} {:>15} {:>15} {:>12}",
            point.0,
            millis(star_secs),
            millis(ring_secs),
            millis(hier_secs),
            millis(ring.phase(Phase::RingWait).mean_secs()),
            ring.collective_allocs,
        );
        let wait = ring.phase(Phase::RingWait);
        world_entries.push(
            Report::new()
                .field("world", point.0)
                .field("star_reduce_min_secs", star_secs)
                .field("ring_rank_min_secs", ring_secs)
                .field("hier_rank_min_secs", hier_secs)
                .field("ring_wait_mean_secs", wait.mean_secs())
                .field("ring_wait_p50_secs", wait.p50_secs())
                .field("ring_wait_p99_secs", wait.p99_secs())
                .field("collective_allocs", ring.collective_allocs)
                .json(),
        );
        star_reduce.push(star_secs);
        ring_rank.push(ring_secs);
        hier_rank.push(hier_secs);
    }

    let star_growth = star_reduce.last().unwrap() / star_reduce.first().unwrap().max(1e-9);
    let ring_growth = ring_rank.last().unwrap() / ring_rank.first().unwrap().max(1e-9);
    let hier_growth = hier_rank.last().unwrap() / hier_rank.first().unwrap().max(1e-9);
    let hier_vs_ring = hier_rank.last().unwrap() / ring_rank.last().unwrap().max(1e-9);
    println!(
        "\nworld 2 → 32: star coordinator reduce grew {star_growth:.1}x, \
         per-rank ring work grew {ring_growth:.1}x, hierarchical grew \
         {hier_growth:.1}x ({hier_vs_ring:.2}x the flat ring at world 32)"
    );
    assert!(
        star_growth > 4.0,
        "star coordinator reduce must grow with world size (got {star_growth:.1}x)"
    );
    assert!(
        ring_growth < 2.0,
        "per-rank ring time must stay ~flat (got {ring_growth:.1}x)"
    );
    // The two-level fold must not cost more per rank than the flat ring
    // at the largest world (10% scheduler-noise slack on the min).
    assert!(
        hier_vs_ring <= 1.10,
        "hierarchical per-rank time must not exceed the flat ring at the \
         largest world (got {hier_vs_ring:.2}x)"
    );

    // Degraded-window row: kill at 6 rolls back to the checkpoint at 4,
    // iteration 5 runs the bounded star window, 6..=12 run the ring
    // rebuilt over the survivors.
    let point = SWEEP[2];
    let degraded = run_degraded(point);
    let fallback = degraded.phase(Phase::Reduce).count;
    println!(
        "\ndegraded world {}: {} degraded iteration(s), {} on the survivor \
         ring after a {}-iteration star window (survivor per-rank min {})",
        point.0,
        degraded.degraded_iterations,
        degraded.survivor_ring_iterations,
        fallback,
        millis(
            degraded.phase(Phase::ReduceScatter).min_secs
                + degraded.phase(Phase::AllGather).min_secs
        ),
    );
    assert!(
        degraded.survivor_ring_iterations > 0,
        "the degraded window must run the survivor ring, not the star"
    );
    assert_eq!(
        degraded.degraded_iterations - degraded.survivor_ring_iterations,
        fallback,
        "only the bounded fallback window runs the star while degraded"
    );
    let degraded_entry = Report::new()
        .field("world", point.0)
        .field("degraded_iterations", degraded.degraded_iterations)
        .field(
            "survivor_ring_iterations",
            degraded.survivor_ring_iterations,
        )
        .field("star_fallback_count", fallback)
        .field(
            "survivor_ring_rank_min_secs",
            degraded.phase(Phase::ReduceScatter).min_secs
                + degraded.phase(Phase::AllGather).min_secs,
        )
        .field(
            "star_fallback_reduce_min_secs",
            degraded.phase(Phase::Reduce).min_secs,
        )
        .json();

    // Machine-readable trajectory, through the shared report schema.
    let json_path =
        std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_allreduce.json");
    Report::new()
        .field("bench", "fig17_allreduce_scaling")
        .field("worlds", world_entries)
        .field("degraded", degraded_entry)
        .field("star_reduce_growth", star_growth)
        .field("ring_rank_growth", ring_growth)
        .field("hier_rank_growth", hier_growth)
        .field("hier_vs_ring_at_max_world", hier_vs_ring)
        .write(&json_path)
        .expect("write BENCH_allreduce.json");
    println!("wrote {}", json_path.display());
}
