//! Checkpoint-engine overhead: measured wall-clock and bytes of the
//! `moc-ckpt` pipeline, validated against the analytic overhead model
//! (Eqs. 3–16).
//!
//! The same multi-rank training job runs three times against a
//! file-backed store:
//!
//! 1. **sync full** — the baseline: full-module shards, blocking persist;
//! 2. **async full** — the engine pipeline, full shards, no deltas;
//! 3. **async partial+delta** — PEC selection plus delta shards with
//!    periodic rebase.
//!
//! Measured per-checkpoint overhead is compared against Eq. 10's hidden
//! asynchronous saving overhead and Eq. 16's break-even rule, and the
//! whole summary is emitted as `BENCH_ckpt.json` so the perf trajectory
//! is machine-readable across commits.
//!
//! Run with `cargo bench --bench fig18_ckpt_overhead`.

use moc_bench::{banner, gib, millis, secs};
use moc_ckpt::EngineConfig;
use moc_core::overhead::{async_save_overhead, moc_beats_full, OverheadInputs};
use moc_obs::Report;
use moc_runtime::{CheckpointMode, Coordinator, Phase, RunSummary, RuntimeConfig};
use moc_store::FileObjectStore;
use moc_train::PecMode;
use std::sync::Arc;

struct Mode {
    label: &'static str,
    summary: RunSummary,
}

fn run(
    root: &std::path::Path,
    mode: CheckpointMode,
    k: (usize, usize),
    pec: PecMode,
    delta: bool,
) -> RunSummary {
    let topo = moc_core::ParallelTopology::dp_ep(2, 4, 8, 8).expect("topology");
    let config = RuntimeConfig {
        total_iterations: 40,
        i_ckpt: 4,
        eval_every: 0,
        checkpoint_mode: mode,
        k_snapshot: k.0,
        k_persist: k.1,
        pec_mode: pec,
        ckpt: EngineConfig {
            delta,
            ..EngineConfig::default()
        },
        ..RuntimeConfig::tiny(topo)
    };
    let store = Arc::new(FileObjectStore::open(root).expect("store root"));
    Coordinator::new(config, store)
        .expect("valid config")
        .run()
        .expect("fault-free run")
}

fn main() {
    banner("Fig. 18 — checkpoint-engine overhead (measured) vs the analytic model");
    let root = std::env::temp_dir().join(format!("moc-fig18-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);

    let modes = [
        Mode {
            label: "sync_full",
            summary: run(
                &root.join("sync"),
                CheckpointMode::Sync,
                (8, 8),
                PecMode::NONE,
                false,
            ),
        },
        Mode {
            label: "async_full",
            summary: run(
                &root.join("async"),
                CheckpointMode::Async,
                (8, 8),
                PecMode::NONE,
                false,
            ),
        },
        Mode {
            label: "async_partial_delta",
            summary: run(
                &root.join("delta"),
                CheckpointMode::Async,
                (4, 2),
                PecMode::WO,
                true,
            ),
        },
    ];

    println!("8 ranks on 2 nodes, tiny 8-expert LM, checkpoint every 4 of 40 iterations");
    println!(
        "{:<22} {:>13} {:>13} {:>11} {:>9} {:>7} {:>7}",
        "mode", "ovh/ckpt", "iter mean", "persisted", "stored", "full", "delta"
    );
    for m in &modes {
        let s = &m.summary;
        println!(
            "{:<22} {:>13} {:>13} {:>11} {:>9} {:>7} {:>7}",
            m.label,
            millis(s.checkpoint_overhead_secs()),
            millis(s.mean_iteration_secs()),
            gib(s.persisted_bytes),
            gib(s.ckpt_engine.writer.stored_bytes),
            s.ckpt_engine.writer.full_shards,
            s.ckpt_engine.writer.delta_shards,
        );
    }

    let sync = &modes[0].summary;
    let async_full = &modes[1].summary;
    let delta = &modes[2].summary;

    // Eq. 10: the async saving overhead is only the part of the snapshot
    // the next iteration's forward/backward cannot hide.
    let t_snapshot = async_full.phase(Phase::CkptSerialize).mean_secs()
        + async_full.phase(Phase::CkptSubmit).mean_secs();
    let t_fb = async_full.phase(Phase::Compute).mean_secs();
    let eq10 = async_save_overhead(t_snapshot, t_fb);
    println!(
        "Eq. 10 hidden-overhead model: snapshot {} vs F&B window {} -> predicted exposed {}",
        millis(t_snapshot),
        millis(t_fb),
        millis(eq10),
    );

    // Eq. 4/12: total fault-tolerance overhead over the run at λ = 1e-3
    // faults/iteration for each strategy, from measured per-ckpt costs.
    let lambda = 1e-3;
    let inputs = |s: &RunSummary| OverheadInputs {
        o_save_sec: s.checkpoint_overhead_secs(),
        o_restart_sec: 0.5,
        i_ckpt: s.i_ckpt as f64,
        i_total: 40.0,
        iteration_sec: s.mean_iteration_secs(),
        lambda,
    };
    for m in &modes {
        println!(
            "Eq. 4 projected O_ckpt({}): {}",
            m.label,
            secs(inputs(&m.summary).total_overhead_sec())
        );
    }

    // Eq. 16: does the engine configuration beat the sync-full baseline?
    let beats = moc_beats_full(
        delta.checkpoint_overhead_secs(),
        delta.i_ckpt as f64,
        sync.checkpoint_overhead_secs(),
        sync.i_ckpt as f64,
        lambda,
        sync.mean_iteration_secs(),
    );
    println!("Eq. 16 break-even: async partial+delta beats sync full -> {beats}");
    println!(
        "delta savings: {:.2} MB of {:.2} MB raw persisted ({:.2} MB manifests), pool allocs {}",
        delta.ckpt_engine.delta_saved_bytes() as f64 / 1e6,
        delta.ckpt_engine.writer.raw_bytes as f64 / 1e6,
        delta.ckpt_engine.writer.manifest_bytes as f64 / 1e6,
        delta.ckpt_engine.pool_allocs,
    );

    // Machine-readable trajectory, through the shared report schema
    // ([`RunSummary::ckpt_report`]) instead of hand-rolled JSON.
    let mode_entries = modes.iter().fold(Report::new(), |report, m| {
        report.field(m.label, m.summary.ckpt_report())
    });
    let json_path = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_ckpt.json");
    Report::new()
        .field("bench", "fig18_ckpt_overhead")
        .field("modes", mode_entries.json())
        .field("eq10_predicted_exposed_secs", eq10)
        .field("eq16_moc_beats_full", beats)
        .write(&json_path)
        .expect("write BENCH_ckpt.json");
    println!("wrote {}", json_path.display());

    assert!(
        async_full.checkpoint_overhead_secs() < sync.checkpoint_overhead_secs(),
        "async engine must beat the blocking baseline"
    );
    assert_eq!(
        async_full.phase(Phase::CkptWrite).count,
        0,
        "async mode must never block the training thread on store I/O"
    );
    assert!(
        delta.persisted_bytes < sync.persisted_bytes,
        "partial+delta must persist strictly fewer bytes than full-module"
    );
    assert!(beats, "Eq. 16 must favour the engine configuration");
    let _ = std::fs::remove_dir_all(&root);
}
