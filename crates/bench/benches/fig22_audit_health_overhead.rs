//! Audit + health-plane overhead: what the causal auditor and the
//! online health scorer add on top of plain span recording, and the
//! proof that neither touches the numerics.
//!
//! The same fault-free multi-rank training job runs three times:
//!
//! 1. **off** — observability fully disabled (the baseline);
//! 2. **audit** — span recording plus the finish-time causal audit
//!    (Lamport stamping on the record path, graph build + invariant
//!    checks at the end of the run);
//! 3. **audit_health_50ms** — the above plus the per-rank health
//!    scorer fed from every gradient collection and the telemetry
//!    sampler at 50 ms.
//!
//! Every variant must end with bitwise-identical parameters, and a
//! fault-free trace must audit clean — a violation here means the
//! auditor has a false positive, which would make its CI gate
//! worthless. The per-iteration numbers are emitted as
//! `BENCH_audit.json` so the perf regression gate can track them.
//!
//! Run with `cargo bench --bench fig22_audit_health_overhead`.

use moc_bench::{banner, millis, pct};
use moc_obs::Report;
use moc_runtime::{CheckpointMode, Coordinator, ObsConfig, RunSummary, RuntimeConfig};
use moc_store::MemoryObjectStore;
use moc_train::PecMode;
use std::sync::Arc;
use std::time::Duration;

struct Variant {
    label: &'static str,
    summary: RunSummary,
}

fn run(obs: ObsConfig) -> RunSummary {
    let topo = moc_core::ParallelTopology::dp_ep(2, 4, 8, 8).expect("topology");
    let config = RuntimeConfig {
        total_iterations: 40,
        i_ckpt: 4,
        eval_every: 0,
        checkpoint_mode: CheckpointMode::Async,
        k_snapshot: 4,
        k_persist: 2,
        pec_mode: PecMode::WO,
        obs,
        ..RuntimeConfig::tiny(topo)
    };
    // An in-memory store keeps file-system noise out of an overhead
    // measurement that is mostly about the hot loop.
    let store = Arc::new(MemoryObjectStore::new());
    Coordinator::new(config, store)
        .expect("valid config")
        .run()
        .expect("fault-free run")
}

fn main() {
    banner("Fig. 22 — causal audit + health plane overhead vs a dark run");
    let variants = [
        Variant {
            label: "off",
            summary: run(ObsConfig::default()),
        },
        Variant {
            label: "audit",
            summary: run(ObsConfig::enabled()),
        },
        Variant {
            label: "audit_health_50ms",
            summary: run(ObsConfig::enabled()
                .with_telemetry(Duration::from_millis(50))
                .with_health()),
        },
    ];

    let base = variants[0].summary.mean_iteration_secs();
    println!("8 ranks on 2 nodes, tiny 8-expert LM, 40 iterations, async checkpoints");
    println!(
        "{:<20} {:>13} {:>10} {:>8} {:>10} {:>8}",
        "variant", "iter mean", "overhead", "spans", "audited", "health"
    );
    for v in &variants {
        let s = &v.summary;
        println!(
            "{:<20} {:>13} {:>10} {:>8} {:>10} {:>8}",
            v.label,
            millis(s.mean_iteration_secs()),
            pct(s.mean_iteration_secs() / base.max(1e-12) - 1.0),
            s.obs.spans_recorded,
            s.obs.audit.as_ref().map_or(0, |a| a.events_checked),
            s.health.as_ref().map_or(0, |h| h.rows.len()),
        );
    }

    // A fault-free trace must audit clean: any violation is an auditor
    // false positive and would poison the CI gate.
    for v in &variants[1..] {
        let audit = v.summary.obs.audit.as_ref().expect("audit on");
        assert!(
            audit.passed(),
            "variant {}: fault-free trace must audit clean:\n{}",
            v.label,
            audit.render_text()
        );
    }
    let health = variants[2].summary.health.as_ref().expect("health on");
    assert!(
        health.degraded_ranks().is_empty(),
        "a clean run must not degrade anybody"
    );

    // The whole point of the plane: it observes, it never perturbs.
    let reference: Vec<u32> = variants[0]
        .summary
        .final_params
        .iter()
        .map(|x| x.to_bits())
        .collect();
    for v in &variants[1..] {
        let bits: Vec<u32> = v.summary.final_params.iter().map(|x| x.to_bits()).collect();
        assert_eq!(
            bits, reference,
            "variant {} must be bitwise identical to the dark run",
            v.label
        );
    }
    println!(
        "final parameters bitwise identical across all {} variants; audits clean",
        variants.len()
    );

    let variant_entries = variants.iter().fold(Report::new(), |report, v| {
        report.field(
            v.label,
            Report::new()
                .field("mean_iteration_secs", v.summary.mean_iteration_secs())
                .field("loop_secs", v.summary.loop_secs)
                .field("spans_recorded", v.summary.obs.spans_recorded)
                .field(
                    "audit_events_checked",
                    v.summary
                        .obs
                        .audit
                        .as_ref()
                        .map_or(0u64, |a| a.events_checked),
                )
                .field(
                    "audit_violations",
                    v.summary
                        .obs
                        .audit
                        .as_ref()
                        .map_or(0u64, |a| a.violations.len() as u64),
                )
                .field(
                    "health_ranks",
                    v.summary
                        .health
                        .as_ref()
                        .map_or(0u64, |h| h.rows.len() as u64),
                )
                .json(),
        )
    });
    let json_path = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_audit.json");
    Report::new()
        .field("bench", "fig22_audit_health_overhead")
        .field("variants", variant_entries.json())
        .field("bitwise_identical", true)
        .write(&json_path)
        .expect("write BENCH_audit.json");
    println!("wrote {}", json_path.display());
}
