//! Fig. 13: scaling and generalization sweeps (the ASTRA-sim study).

use moc_bench::{banner, gib, secs};
use moc_cluster::scaling::{
    scaling_point, sweep_gpus, sweep_model_size, sweep_seq_len, Parallelism, SweepConfig,
};

fn print_points(points: &[moc_cluster::ScalingPoint], key: &str) {
    println!(
        "{:<8} {:>10} {:>11} {:>10} {:>10} {:>10}",
        key, "baseline", "base-async", "moc-async", "F&B", "snapshot"
    );
    for p in points {
        let label = match key {
            "seq" => p.seq_len.to_string(),
            "hidden" => p.hidden.to_string(),
            _ => p.gpus.to_string(),
        };
        println!(
            "{:<8} {:>10} {:>11} {:>10} {:>10} {:>10}",
            label,
            secs(p.row.baseline.iteration_sec),
            secs(p.row.base_async.iteration_sec),
            secs(p.row.moc_async.iteration_sec),
            secs(p.row.base_async.fb_sec),
            secs(p.row.base_async.snapshot_sec),
        );
    }
}

fn main() {
    let gpus = [32usize, 64, 128, 256, 512, 1024];

    banner("Fig. 13(a) — DP+EP scaling on A800");
    print_points(&sweep_gpus(&SweepConfig::default_a800(), &gpus), "gpus");

    banner("Fig. 13(b) — DP+EP+TP4 scaling on A800");
    let tp = SweepConfig {
        parallelism: Parallelism::DpEpTp4,
        ..SweepConfig::default_a800()
    };
    print_points(&sweep_gpus(&tp, &gpus), "gpus");

    banner("Fig. 13(c) — DP+EP scaling on H100");
    print_points(&sweep_gpus(&SweepConfig::default_h100(), &gpus), "gpus");

    banner("Fig. 13(d) — sequence-length generalization (256 A800)");
    print_points(
        &sweep_seq_len(&SweepConfig::default_a800(), 256, &[512, 1024, 2048, 4096]),
        "seq",
    );

    banner("Fig. 13(e) — model-size generalization (256 A800)");
    print_points(
        &sweep_model_size(&SweepConfig::default_a800(), 256),
        "hidden",
    );

    banner("Fig. 13(f) — persist volume per checkpoint");
    println!("{:<8} {:>14} {:>14}", "gpus", "base-persist", "moc-persist");
    for g in gpus {
        let p = scaling_point(&SweepConfig::default_a800(), g);
        println!(
            "{:<8} {:>14} {:>14}",
            g,
            gib(p.persist_bytes_base),
            gib(p.persist_bytes_moc)
        );
    }
}
