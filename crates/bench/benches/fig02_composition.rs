//! Fig. 2: checkpoint composition of GPT-350M-16E.
//!
//! Paper: expert params ~12%, non-expert params ~2%, expert optimizer
//! ~74%, non-expert optimizer ~12%.

use moc_bench::{banner, gib, pct};

fn main() {
    banner("Fig. 2 — checkpoint composition (GPT-350M-16E)");
    let cfg = moc_moe::presets::gpt_350m_16e();
    let comp = cfg.checkpoint_composition();
    let [ew, nw, eo, no] = comp.fractions();
    println!("total checkpoint: {}", gib(comp.total()));
    println!("{:<24} {:>10} {:>8}", "component", "measured", "paper");
    println!("{:<24} {:>10} {:>8}", "expert weights", pct(ew), "12%");
    println!("{:<24} {:>10} {:>8}", "non-expert weights", pct(nw), "2%");
    println!("{:<24} {:>10} {:>8}", "expert optimizer", pct(eo), "74%");
    println!(
        "{:<24} {:>10} {:>8}",
        "non-expert optimizer",
        pct(no),
        "12%"
    );
}
