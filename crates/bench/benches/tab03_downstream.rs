//! Table 3: downstream accuracy after fault-injected pre-training.
//!
//! The paper evaluates HellaSwag/PIQA/...; this reproduction evaluates
//! eight synthetic topic-restricted next-token probes (one per corpus
//! topic) after pre-training the tiny-16E LM under each checkpointing
//! method with periodic faults. The paper's claim to check: the lossy
//! methods land within noise of — or slightly above — the full-saving
//! baseline on average (+0.62%..+1.08% in the paper).

use moc_bench::{banner, pct};
use moc_store::FaultEvent;
use moc_train::harness::{
    downstream_suite, run_experiment_with_model, FaultToleranceConfig, TrainConfig,
};
use moc_train::{MarkovCorpus, PecMode};

fn main() {
    banner("Table 3 — downstream probes after pre-training (synthetic proxies)");
    let train = TrainConfig {
        total_iterations: 220,
        eval_every: 220,
        ..TrainConfig::tiny_16e()
    };
    let faults: Vec<FaultEvent> = (1..=2)
        .map(|i| FaultEvent {
            iteration: i * 90,
            node: 0,
        })
        .collect();
    let variants: Vec<(&str, FaultToleranceConfig)> = vec![
        (
            "Baseline",
            FaultToleranceConfig::baseline(&train.model, 5, faults.clone()),
        ),
        (
            "W",
            FaultToleranceConfig::pec(&train.model, 4, 1, PecMode::W, false, 5, faults.clone()),
        ),
        (
            "O",
            FaultToleranceConfig::pec(&train.model, 4, 1, PecMode::O, false, 5, faults.clone()),
        ),
        (
            "WO",
            FaultToleranceConfig::pec(&train.model, 4, 1, PecMode::WO, false, 5, faults.clone()),
        ),
        (
            "WO-2L",
            FaultToleranceConfig::pec(&train.model, 4, 1, PecMode::WO, true, 5, faults.clone()),
        ),
    ];
    let corpus = MarkovCorpus::new(train.model.vocab_size(), train.topics, train.seed);
    print!("{:<9}", "method");
    for t in 0..train.topics {
        print!(" {:>8}", format!("probe-{t}"));
    }
    println!(" {:>8} {:>9} {:>8}", "avg", "ckpt(MB)", "PLT");
    let mut baseline_avg = None;
    for (name, ft) in variants {
        let (report, mut model) = run_experiment_with_model(&train, &ft);
        let accs = downstream_suite(&mut model, &corpus, 4, 16);
        let avg = accs.iter().sum::<f64>() / accs.len() as f64;
        if name == "Baseline" {
            baseline_avg = Some(avg);
        }
        print!("{name:<9}");
        for a in &accs {
            print!(" {:>8}", pct(*a));
        }
        println!(
            " {:>8} {:>9.2} {:>8}",
            pct(avg),
            report.persisted_bytes as f64 / 1e6,
            pct(report.plt)
        );
    }
    if let Some(b) = baseline_avg {
        println!(
            "(baseline avg {} — paper: lossy methods within +0.62%..+1.08% of baseline)",
            pct(b)
        );
    }
}
