//! Failure-detection tradeoff: detection latency vs false-positive
//! rate across detector configurations under gray heartbeat loss.
//!
//! The suspicion detector declares a rank dead after `k_misses`
//! consecutive missed heartbeat windows, granting a lease per miss. A
//! larger `k` (or lease) tolerates more gray loss — fewer healthy
//! ranks declared dead — but pays for it in detection latency when the
//! rank really is dead. This bench sweeps `(k, lease)` against
//! per-window heartbeat-loss rates, driving the detector state machine
//! ([`SuspicionSim`]) with seeded Bernoulli loss streams:
//!
//! * **false positives** — declarations per 1 000 windows of a rank
//!   that is alive but lossy (every declaration would have rolled the
//!   run back for nothing);
//! * **detection latency** — windows from a true death to declaration,
//!   the deterministic [`DetectorConfig::declare_after`] bound.
//!
//! `k = 1` is the legacy single-miss detector: zero added latency,
//! but *every* lost heartbeat is a false positive. The emitted
//! `BENCH_detect.json` records the frontier so commits can be compared.
//!
//! Run with `cargo bench --bench fig20_detection_tradeoff`.

use moc_bench::banner;
use moc_obs::{Json, Report};
use moc_runtime::{DetectorConfig, SuspicionSim, SuspicionVerdict};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::time::Duration;

/// Windows simulated per (config, loss-rate) cell.
const WINDOWS: u64 = 200_000;

/// The normalized heartbeat window: latency is reported in window
/// units, so the absolute duration only anchors `declare_after`.
const WINDOW: Duration = Duration::from_secs(1);

struct Row {
    k: u32,
    lease_windows: f64,
    loss_rate: f64,
    false_positives_per_1k: f64,
    suspicions_per_1k: f64,
    detection_latency_windows: f64,
}

/// Streams `WINDOWS` Bernoulli(loss) heartbeat observations through the
/// detector, counting suspicions and declarations. A declaration
/// resets the machine (the runtime would recover and re-admit).
fn simulate(k: u32, loss_rate: f64, seed: u64) -> (u64, u64) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut sim = SuspicionSim::new(k);
    let mut suspicions = 0u64;
    let mut declarations = 0u64;
    for _ in 0..WINDOWS {
        let arrived = !rng.random_bool(loss_rate);
        match sim.observe(arrived) {
            SuspicionVerdict::Healthy => {}
            SuspicionVerdict::Suspected(m) => {
                if m == 1 {
                    suspicions += 1;
                }
            }
            SuspicionVerdict::Declared => {
                declarations += 1;
                sim = SuspicionSim::new(k);
            }
        }
    }
    (suspicions, declarations)
}

fn main() {
    banner("fig20: suspicion-detector latency vs false-positive tradeoff");

    let ks = [1u32, 2, 3, 4];
    let lease_multiples = [0.5f64, 1.0, 2.0];
    let loss_rates = [0.01f64, 0.05, 0.10, 0.20];

    let mut rows = Vec::new();
    for &k in &ks {
        for &lease_mult in &lease_multiples {
            let det = DetectorConfig {
                k_misses: k,
                lease: Some(WINDOW.mul_f64(lease_mult)),
            };
            let latency = det.declare_after(WINDOW).as_secs_f64() / WINDOW.as_secs_f64();
            for &loss in &loss_rates {
                // The lease length never changes *whether* a Bernoulli
                // stream declares — only when — so the state machine is
                // simulated once per (k, loss) and the lease enters
                // through the latency axis.
                let seed = u64::from(k) * 1000 + (loss * 1000.0) as u64;
                let (suspicions, declarations) = simulate(k, loss, seed);
                rows.push(Row {
                    k,
                    lease_windows: lease_mult,
                    loss_rate: loss,
                    false_positives_per_1k: 1e3 * declarations as f64 / WINDOWS as f64,
                    suspicions_per_1k: 1e3 * suspicions as f64 / WINDOWS as f64,
                    detection_latency_windows: latency,
                });
            }
        }
    }

    println!(
        "{:<3} {:>7} {:>6} {:>12} {:>12} {:>10}",
        "k", "lease", "loss", "fp/1k win", "susp/1k", "latency"
    );
    for r in &rows {
        println!(
            "{:<3} {:>6.1}w {:>5.0}% {:>12.3} {:>12.1} {:>9.1}w",
            r.k,
            r.lease_windows,
            100.0 * r.loss_rate,
            r.false_positives_per_1k,
            r.suspicions_per_1k,
            r.detection_latency_windows,
        );
    }

    // Sanity pins: the legacy detector false-positives at the loss rate
    // itself; k = 2 must cut false positives by at least the loss rate
    // (independence) while adding exactly one lease of latency.
    let cell = |k: u32, loss: f64| {
        rows.iter()
            .find(|r| r.k == k && (r.loss_rate - loss).abs() < 1e-9 && r.lease_windows == 1.0)
            .expect("swept cell")
    };
    let legacy = cell(1, 0.10);
    let suspicious = cell(2, 0.10);
    assert!(
        legacy.false_positives_per_1k > 80.0,
        "legacy detector must declare on ~every loss: {}",
        legacy.false_positives_per_1k
    );
    assert!(
        suspicious.false_positives_per_1k < legacy.false_positives_per_1k * 0.2,
        "one extra miss must cut false positives ~tenfold at 10% loss"
    );
    assert!(suspicious.detection_latency_windows - legacy.detection_latency_windows == 1.0);

    let entries: Vec<Json> = rows
        .iter()
        .map(|r| {
            Report::new()
                .field("k_misses", r.k)
                .field("lease_windows", r.lease_windows)
                .field("loss_rate", r.loss_rate)
                .field("false_positives_per_1k_windows", r.false_positives_per_1k)
                .field("suspicions_per_1k_windows", r.suspicions_per_1k)
                .field("detection_latency_windows", r.detection_latency_windows)
                .json()
        })
        .collect();
    let json_path =
        std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_detect.json");
    Report::new()
        .field("bench", "fig20_detection_tradeoff")
        .field("windows_per_cell", WINDOWS)
        .field("cells", entries)
        .write(&json_path)
        .expect("write BENCH_detect.json");
    println!("wrote {}", json_path.display());
}
