//! Elastic recovery vs respawn-replay: time-to-resume after a node
//! death across world sizes.
//!
//! For each world, the same training job runs three times with a
//! mid-run node kill:
//!
//! 1. **respawn** — the fixed-shape baseline: dead ranks respawn and
//!    the run replays from the committed chain;
//! 2. **shrink** — elastic recovery: surviving shard groups adopt the
//!    dead groups' batch slices and experts, no respawn;
//! 3. **shrink+expand** — elastic with replacement ranks rejoining
//!    three iterations later.
//!
//! Time-to-resume is the recovery's wall time (detection excluded; the
//! `Recovery` timeline event's `total_secs`) plus, for the elastic
//! runs, the rebalance cost (`ShrinkRebalance` phase). All three paths
//! land bitwise on the same trajectory — asserted here — so the
//! comparison is purely about recovery latency and degraded throughput.
//! The summary is emitted as `BENCH_elastic.json` so the perf
//! trajectory is machine-readable across commits.
//!
//! Run with `cargo bench --bench fig19_elastic_recovery`.

use moc_bench::{banner, millis};
use moc_core::ParallelTopology;
use moc_obs::{Json, Report};
use moc_runtime::{
    CollectiveKind, Coordinator, ElasticConfig, EventKind, Phase, RunSummary, RuntimeConfig,
};
use moc_store::{FaultEvent, FaultPlan, MemoryObjectStore};
use moc_train::PecMode;
use std::sync::Arc;
use std::time::Duration;

fn config(topo: ParallelTopology, elastic: ElasticConfig) -> RuntimeConfig {
    RuntimeConfig {
        total_iterations: 12,
        i_ckpt: 4,
        eval_every: 0,
        seq_len: 8,
        k_snapshot: 8,
        k_persist: 8,
        pec_mode: PecMode::NONE,
        collective: CollectiveKind::Ring,
        heartbeat_timeout: Duration::from_millis(800),
        faults: FaultPlan::At(vec![FaultEvent {
            iteration: 7,
            node: topo.nodes() - 1,
        }]),
        elastic,
        ..RuntimeConfig::tiny(topo)
    }
}

fn run(topo: ParallelTopology, elastic: ElasticConfig) -> RunSummary {
    Coordinator::new(config(topo, elastic), Arc::new(MemoryObjectStore::new()))
        .expect("valid config")
        .run()
        .expect("run completes")
}

/// Recovery wall seconds from the `Recovery` timeline events.
fn recovery_secs(summary: &RunSummary) -> f64 {
    summary
        .timeline
        .iter()
        .filter_map(|e| match &e.kind {
            EventKind::Recovery { total_secs, .. } => Some(*total_secs),
            _ => None,
        })
        .sum()
}

struct Row {
    world: usize,
    respawn_secs: f64,
    shrink_secs: f64,
    rebalance_secs: f64,
    expand_secs: f64,
    experts_migrated: u64,
    degraded_iterations: u64,
}

fn main() {
    banner("fig19: elastic shrink vs respawn-replay time-to-resume");

    // (nodes, gpus/node, dp, ep): worlds 4 -> 16, one node killed each.
    let shapes = [
        (2usize, 2usize, 4usize, 4usize),
        (2, 4, 8, 8),
        (2, 8, 16, 8),
    ];
    let mut rows = Vec::new();
    for &(nodes, gpn, dp, ep) in &shapes {
        let topo = ParallelTopology::dp_ep(nodes, gpn, dp, ep).expect("shape");
        let respawn = run(topo, ElasticConfig::default());
        let shrink = run(topo, ElasticConfig::shrink(1));
        let expand = run(
            topo,
            ElasticConfig {
                shrink: true,
                replication: 1,
                rejoin_after: Some(3),
            },
        );
        assert_eq!(respawn.recoveries, 1);
        assert_eq!(shrink.elastic_shrinks, 1);
        assert_eq!(expand.elastic_expands, 1);
        // All three recovery strategies land on the same trajectory.
        let bits = |s: &RunSummary| {
            s.final_params
                .iter()
                .map(|x| x.to_bits())
                .collect::<Vec<_>>()
        };
        assert_eq!(bits(&respawn), bits(&shrink), "shrink must match respawn");
        assert_eq!(bits(&respawn), bits(&expand), "expand must match respawn");

        rows.push(Row {
            world: topo.world_size(),
            respawn_secs: recovery_secs(&respawn),
            shrink_secs: recovery_secs(&shrink),
            rebalance_secs: shrink.phase(Phase::ShrinkRebalance).total_secs,
            expand_secs: expand.phase(Phase::ExpandRestore).total_secs,
            experts_migrated: shrink.experts_migrated,
            degraded_iterations: shrink.degraded_iterations,
        });
    }

    println!(
        "{:<7} {:>13} {:>13} {:>12} {:>12} {:>9} {:>9}",
        "world", "respawn", "shrink", "rebalance", "expand", "migrated", "degraded"
    );
    for r in &rows {
        println!(
            "{:<7} {:>13} {:>13} {:>12} {:>12} {:>9} {:>9}",
            r.world,
            millis(r.respawn_secs),
            millis(r.shrink_secs),
            millis(r.rebalance_secs),
            millis(r.expand_secs),
            r.experts_migrated,
            r.degraded_iterations,
        );
    }

    // Machine-readable trajectory, through the shared report schema.
    let entries: Vec<Json> = rows
        .iter()
        .map(|r| {
            Report::new()
                .field("world", r.world)
                .field("respawn_recovery_secs", r.respawn_secs)
                .field("shrink_recovery_secs", r.shrink_secs)
                .field("shrink_rebalance_secs", r.rebalance_secs)
                .field("expand_restore_secs", r.expand_secs)
                .field("experts_migrated", r.experts_migrated)
                .field("degraded_iterations", r.degraded_iterations)
                .json()
        })
        .collect();
    let json_path =
        std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_elastic.json");
    Report::new()
        .field("bench", "fig19_elastic_recovery")
        .field("worlds", entries)
        .write(&json_path)
        .expect("write BENCH_elastic.json");
    println!("wrote {}", json_path.display());
}
