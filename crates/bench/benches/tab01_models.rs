//! Table 1: hyperparameters of the experimental MoE models, with the
//! parameter totals this reproduction derives vs the paper's.

use moc_bench::banner;

fn main() {
    banner("Table 1 — experimental MoE models");
    println!(
        "{:<14} {:>7} {:>7} {:>6} {:>9} {:>8} {:>12} {:>10}",
        "model", "layers", "hidden", "heads", "moe-layrs", "experts", "params", "paper"
    );
    for (cfg, paper_total) in moc_moe::presets::table1() {
        let counts = cfg.param_counts();
        println!(
            "{:<14} {:>7} {:>7} {:>6} {:>9} {:>8} {:>11.0}M {:>10}",
            cfg.name(),
            cfg.num_layers(),
            cfg.hidden_size(),
            cfg.num_heads(),
            cfg.num_moe_layers(),
            cfg.num_experts(),
            counts.total() as f64 / 1e6,
            paper_total,
        );
    }
}
