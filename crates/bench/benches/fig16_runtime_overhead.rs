//! Live-runtime checkpoint overhead: wall-clock sync vs async.
//!
//! Where `fig12_async_overhead` computes the overhead reduction
//! analytically, this bench *measures* it: the same multi-rank training
//! job runs twice against a real file-backed object store — once with
//! synchronous checkpointing (the baseline that blocks the iteration for
//! the full persist) and once through the asynchronous two-level agents —
//! and reports measured per-checkpoint overhead, per-iteration cost, and
//! the projection of the measured phases through the analytic event
//! simulator.
//!
//! Run with `cargo bench --bench fig16_runtime_overhead`.

use moc_bench::{banner, secs};
use moc_runtime::{CheckpointMode, Coordinator, Phase, RunSummary, RuntimeConfig};
use moc_store::FileObjectStore;
use std::sync::Arc;

fn run(mode: CheckpointMode, root: &std::path::Path) -> RunSummary {
    let topo = moc_core::ParallelTopology::dp_ep(2, 4, 8, 8).expect("topology");
    let config = RuntimeConfig {
        total_iterations: 40,
        i_ckpt: 4,
        eval_every: 0,
        checkpoint_mode: mode,
        ..RuntimeConfig::tiny(topo)
    };
    let store = Arc::new(FileObjectStore::open(root).expect("store root"));
    Coordinator::new(config, store)
        .expect("valid config")
        .run()
        .expect("fault-free run")
}

fn main() {
    banner("Fig. 16 — live runtime checkpoint overhead (measured wall-clock)");
    let root = std::env::temp_dir().join(format!("moc-fig16-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);

    let sync = run(CheckpointMode::Sync, &root.join("sync"));
    let async_ = run(CheckpointMode::Async, &root.join("async"));

    println!(
        "8 ranks on 2 nodes, tiny 8-expert LM, checkpoint every 4 iterations, file-backed store"
    );
    println!("{:<28} {:>14} {:>14}", "metric", "sync", "async two-level");
    let rows: [(&str, f64, f64); 4] = [
        (
            "ckpt overhead / ckpt",
            sync.checkpoint_overhead_secs(),
            async_.checkpoint_overhead_secs(),
        ),
        (
            "mean iteration",
            sync.mean_iteration_secs(),
            async_.mean_iteration_secs(),
        ),
        (
            "serialize (max rank)",
            sync.phase(Phase::CkptSerialize).mean_secs(),
            async_.phase(Phase::CkptSerialize).mean_secs(),
        ),
        (
            "persist path",
            sync.phase(Phase::CkptWrite).mean_secs(),
            async_.phase(Phase::CkptSubmit).mean_secs(),
        ),
    ];
    for (label, s, a) in rows {
        println!("{label:<28} {:>14} {:>14}", secs(s), secs(a));
    }
    println!(
        "overhead reduction: {:.1}x (stalls observed: {})",
        sync.checkpoint_overhead_secs() / async_.checkpoint_overhead_secs().max(1e-9),
        async_.stall_count,
    );
    let projection = async_.analytic_projection();
    println!(
        "analytic event-sim of measured phases: total {} vs live loop {}",
        secs(projection.total_sec),
        secs(async_.loop_secs),
    );
    assert!(
        async_.checkpoint_overhead_secs() < sync.checkpoint_overhead_secs(),
        "async overhead must beat sync"
    );
    let _ = std::fs::remove_dir_all(&root);
}
