//! Fig. 5: correlation between PLT and final validation loss.
//!
//! Two reproductions: (1) the full paper grid (K_pec x I_ckpt on the
//! GPT-125M-8E structure, one midpoint fault, I_total = 1280) through the
//! event-accurate PLT simulator; (2) a reduced grid on the real tiny-8E
//! training lab, where recovery physically discards expert updates and the
//! final validation loss is measured.

use moc_bench::{banner, pct};
use moc_core::plt::{analytic_plt, PltSimulation};
use moc_core::selection::PecConfig;
use moc_core::ParallelTopology;
use moc_moe::{LoadModel, LoadProfile};
use moc_store::FaultEvent;
use moc_train::harness::{run_experiment, FaultToleranceConfig, TrainConfig};
use moc_train::PecMode;

fn main() {
    banner("Fig. 5(a) — PLT grid (simulated, GPT-125M-8E structure)");
    let total = 1280u64;
    let fault = vec![FaultEvent {
        iteration: total / 2,
        node: 0,
    }];
    println!("{:<7} I_ckpt ->", "");
    print!("{:<7}", "K_pec");
    let intervals = [1u64, 2, 4, 8, 16, 32, 64];
    for i in intervals {
        print!(" {i:>7}");
    }
    println!();
    for k in [4usize, 2, 1] {
        print!("{k:<7}");
        for i_ckpt in intervals {
            let sim = PltSimulation {
                load: LoadModel::new(6, 8, 1024, 1, LoadProfile::Balanced, 0),
                snapshot_pec: PecConfig::sequential(k, 8, 6),
                k_persist: k,
                i_ckpt,
                total_iterations: total,
                faults: fault.clone(),
                two_level_recovery: false,
                topology: ParallelTopology::case1(),
            };
            print!(" {:>7}", pct(sim.run().plt));
        }
        println!();
    }
    println!(
        "paper centre cell (K=2, I=32): 3.75% | analytic here: {}",
        pct(analytic_plt(2, 8, 32, total, 1))
    );

    banner("Fig. 5(b) — final val loss vs PLT (real tiny-8E training)");
    let train = TrainConfig {
        total_iterations: 192,
        eval_every: 192,
        ..TrainConfig::tiny_8e()
    };
    let fault = vec![FaultEvent {
        iteration: 96,
        node: 0,
    }];
    let baseline = run_experiment(
        &train,
        &FaultToleranceConfig::baseline(&train.model, 16, fault.clone()),
    );
    println!(
        "non-fault-equivalent (full ckpt): val loss {:.4}, PLT {}",
        baseline.final_val_loss,
        pct(baseline.plt)
    );
    println!(
        "{:<7} {:>8} {:>10} {:>12}",
        "K_pec", "I_ckpt", "PLT", "val loss"
    );
    for k in [4usize, 2, 1] {
        for i_ckpt in [8u64, 16, 32] {
            let ft = FaultToleranceConfig::pec(
                &train.model,
                k,
                k,
                PecMode::WO,
                false,
                i_ckpt,
                fault.clone(),
            );
            let report = run_experiment(&train, &ft);
            println!(
                "{:<7} {:>8} {:>10} {:>12.4}",
                k,
                i_ckpt,
                pct(report.plt),
                report.final_val_loss
            );
        }
    }
}
