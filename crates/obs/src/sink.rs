//! Span recording: per-thread sinks, the run-wide collector, and the
//! flight-recorder rings.
//!
//! One [`TraceCollector`] exists per run; every participating thread
//! gets a [`TraceSink`] from [`TraceCollector::sink`]. A sink appends
//! finished spans to a thread-local `Vec` (no cross-thread
//! synchronization on the hot path) and mirrors each span into the
//! thread's bounded flight-recorder ring; the local buffer merges into
//! the collector when the sink flushes or drops. When observability is
//! disabled both the collector and every sink are inert: each call is
//! one branch on an `Option` that is `None`.

use crate::audit::{self, AuditConfig, AuditReport};
use crate::causal::CausalGraph;
use crate::chrome;
use crate::critical::{self, BlameReport, RankPhases};
use crate::flight::{FlightDump, FlightThread};
use crate::json::Json;
use crate::telemetry::{Counter, Telemetry, TelemetryCell, TelemetryReport};
use std::collections::{BTreeMap, VecDeque};
use std::fmt;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::{Duration, Instant};

/// First tid of the background lanes (checkpoint-engine writers live
/// at `BACKGROUND_TID_BASE + node`). Spans on these lanes are real but
/// off the training critical path, so the blame analyzer and the
/// per-rank breakdown skip them.
pub const BACKGROUND_TID_BASE: u32 = 1_000_000;

/// Observability switches for a run.
#[derive(Debug, Clone, PartialEq)]
pub struct ObsConfig {
    /// Master switch. When false, no spans are recorded and every sink
    /// call costs a single branch.
    pub enabled: bool,
    /// Spans retained per thread in the fault flight recorder.
    pub flight_recorder_len: usize,
    /// Where to write the Chrome-trace `trace.json` (and, next to it,
    /// `<stem>-flight-<n>.{json,txt}` dumps). `None` keeps everything
    /// in memory.
    pub trace_path: Option<PathBuf>,
    /// Live-telemetry sampling interval. `Some(interval)` spawns a
    /// sampler thread that snapshots the counter cells on this cadence
    /// (clamped to ≥ 1 ms), streaming `telemetry.prom` next to the
    /// trace file and keeping the series for `telemetry.json`. `None`
    /// keeps the telemetry plane fully inert.
    pub telemetry_interval: Option<Duration>,
    /// Run the causal audit over the merged spans at finish time,
    /// writing `audit.json` next to the trace (when a path is set) and
    /// taking an `-audit-flight-` dump on any violation. Costs nothing
    /// on the hot path — the audit runs once, after the loop.
    pub audit: bool,
    /// Whether the runtime should run the streaming per-rank health
    /// scorer ([`crate::health`]) over its step reports. Off by default:
    /// scoring is cheap but the corroboration hook changes detection
    /// timing, so it is an explicit opt-in.
    pub health: bool,
}

impl Default for ObsConfig {
    fn default() -> Self {
        Self {
            enabled: false,
            flight_recorder_len: 64,
            trace_path: None,
            telemetry_interval: None,
            audit: true,
            health: false,
        }
    }
}

impl ObsConfig {
    /// Enabled, in-memory only (no trace file).
    pub fn enabled() -> Self {
        Self {
            enabled: true,
            ..Self::default()
        }
    }

    /// Enabled and writing `trace.json` (plus flight dumps) at `path`.
    pub fn with_trace(path: impl Into<PathBuf>) -> Self {
        Self {
            enabled: true,
            trace_path: Some(path.into()),
            ..Self::default()
        }
    }

    /// Turns the live telemetry sampler on at `interval`.
    pub fn with_telemetry(mut self, interval: Duration) -> Self {
        self.telemetry_interval = Some(interval);
        self
    }

    /// Turns the streaming per-rank health scorer on.
    pub fn with_health(mut self) -> Self {
        self.health = true;
        self
    }
}

/// The type of a span; becomes the `cat` field in the exported trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SpanKind {
    /// A training-loop phase (compute, reduce, apply, …).
    Phase,
    /// A collective leg (TP sync, PP relay, ring all-reduce).
    Collective,
    /// Checkpoint work on the training path (collect/serialize/submit).
    Ckpt,
    /// A background persist batch in a node engine's writer thread.
    Persist,
    /// Chain-aware garbage collection in a writer thread.
    Gc,
    /// Fault lifecycle (injection, detection, recovery legs).
    Fault,
    /// Elastic transitions (shrink rebalance, expand restore).
    Elastic,
    /// Control-plane odds and ends (apply barrier, eval).
    Control,
}

impl SpanKind {
    /// Stable category label used in the exported trace.
    pub fn category(self) -> &'static str {
        match self {
            SpanKind::Phase => "phase",
            SpanKind::Collective => "collective",
            SpanKind::Ckpt => "ckpt",
            SpanKind::Persist => "persist",
            SpanKind::Gc => "gc",
            SpanKind::Fault => "fault",
            SpanKind::Elastic => "elastic",
            SpanKind::Control => "control",
        }
    }

    /// Inverse of [`SpanKind::category`], for trace re-ingestion
    /// (`moc-audit` parses exported traces back into events).
    pub fn from_category(cat: &str) -> Option<Self> {
        Some(match cat {
            "phase" => SpanKind::Phase,
            "collective" => SpanKind::Collective,
            "ckpt" => SpanKind::Ckpt,
            "persist" => SpanKind::Persist,
            "gc" => SpanKind::Gc,
            "fault" => SpanKind::Fault,
            "elastic" => SpanKind::Elastic,
            "control" => SpanKind::Control,
            _ => return None,
        })
    }
}

/// Flow-arrow participation of a span.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Flow {
    /// Not part of a flow.
    None,
    /// Starts flow `id` (Chrome `ph:"s"`).
    Start(u64),
    /// Intermediate step of flow `id` (Chrome `ph:"t"`).
    Step(u64),
    /// Ends flow `id` (Chrome `ph:"f"`).
    End(u64),
}

/// One finished span.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceEvent {
    /// Process lane in the trace (node id; the control plane gets its
    /// own lane past the last node).
    pub pid: u32,
    /// Thread lane (global rank; engine writers live at `1_000_000 + node`).
    pub tid: u32,
    /// Stable span name (see the crate-level taxonomy table).
    pub name: &'static str,
    /// Span type.
    pub kind: SpanKind,
    /// Training iteration the span belongs to (0 when not applicable).
    pub iteration: u64,
    /// Run-relative start, seconds from the collector's anchor.
    pub start_secs: f64,
    /// Duration in seconds.
    pub dur_secs: f64,
    /// Flow-arrow participation.
    pub flow: Flow,
    /// Record-order Lamport stamp: one run-wide counter advanced at
    /// record time, so any two spans are totally ordered consistently
    /// with causality (a span recorded as a downstream effect of
    /// another always carries the larger stamp). Sequential from 1;
    /// the causal audit orders the happens-before graph by it.
    pub lamport: u64,
}

impl TraceEvent {
    /// JSON form used by flight dumps.
    pub fn to_json(&self) -> Json {
        let mut fields = vec![
            ("name".to_string(), Json::from(self.name)),
            ("kind".to_string(), Json::from(self.kind.category())),
            ("iteration".to_string(), Json::from(self.iteration)),
            ("start_secs".to_string(), Json::from(self.start_secs)),
            ("dur_secs".to_string(), Json::from(self.dur_secs)),
            ("lamport".to_string(), Json::from(self.lamport)),
        ];
        let flow = match self.flow {
            Flow::None => None,
            Flow::Start(id) => Some(("start", id)),
            Flow::Step(id) => Some(("step", id)),
            Flow::End(id) => Some(("end", id)),
        };
        if let Some((phase, id)) = flow {
            fields.push((
                "flow".to_string(),
                Json::Obj(vec![
                    ("phase".to_string(), Json::from(phase)),
                    ("id".to_string(), Json::from(id)),
                ]),
            ));
        }
        Json::Obj(fields)
    }
}

/// Display names for the pid/tid lanes of the trace.
#[derive(Debug, Default, Clone)]
pub struct ThreadNames {
    /// Process display names by pid.
    pub processes: BTreeMap<u32, String>,
    /// Thread display names by `(pid, tid)`.
    pub threads: BTreeMap<(u32, u32), String>,
}

impl ThreadNames {
    /// The display name of a process lane.
    pub fn process_label(&self, pid: u32) -> String {
        self.processes
            .get(&pid)
            .cloned()
            .unwrap_or_else(|| format!("pid {pid}"))
    }

    /// The display name of a thread lane.
    pub fn thread_label(&self, pid: u32, tid: u32) -> String {
        self.threads
            .get(&(pid, tid))
            .cloned()
            .unwrap_or_else(|| format!("tid {tid}"))
    }
}

/// Flow id linking a checkpoint submission (`Flow::Start` on the
/// training-path `ckpt-submit` span) to its background persist
/// (`Flow::End` on the engine writer's `persist` span). Deterministic,
/// so both sides derive it without coordination; offset clear of the
/// collector's sequential fault-flow ids and small enough to stay
/// exactly representable in the JSON `f64` number space.
pub fn ckpt_flow_id(version: u64, writer_id: usize) -> u64 {
    1_000_000_000 + version * 4096 + writer_id as u64
}

fn lock<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

struct RingSlot {
    pid: u32,
    tid: u32,
    ring: Arc<Mutex<VecDeque<TraceEvent>>>,
}

struct Shared {
    anchor: Instant,
    ring_len: usize,
    trace_path: Option<PathBuf>,
    audit: bool,
    merged: Mutex<Vec<TraceEvent>>,
    names: Mutex<ThreadNames>,
    rings: Mutex<Vec<RingSlot>>,
    dumps: Mutex<Vec<FlightDump>>,
    flow_ids: AtomicU64,
    dump_seq: AtomicU64,
    /// The run-wide Lamport counter every sink stamps records from.
    lamport: AtomicU64,
    /// Detection-latency bound the finish-time audit holds fault flows
    /// to; set by the runtime from its detector configuration.
    detect_bound: Mutex<Option<f64>>,
}

/// The run-wide span collector. Cheap to clone-by-`sink` handles; owns
/// the anchor clock, the merged span buffer, the flight-recorder
/// rings, the live-telemetry sampler, and the export paths.
pub struct TraceCollector {
    shared: Option<Arc<Shared>>,
    telemetry: Mutex<Option<Telemetry>>,
}

impl fmt::Debug for TraceCollector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TraceCollector")
            .field("enabled", &self.is_enabled())
            .finish()
    }
}

impl TraceCollector {
    /// Builds a collector for `config`; inert when `config.enabled` is
    /// false.
    pub fn new(config: &ObsConfig) -> Self {
        if !config.enabled {
            return Self::disabled();
        }
        let shared = Arc::new(Shared {
            anchor: Instant::now(),
            ring_len: config.flight_recorder_len.max(1),
            trace_path: config.trace_path.clone(),
            audit: config.audit,
            merged: Mutex::new(Vec::new()),
            names: Mutex::new(ThreadNames::default()),
            rings: Mutex::new(Vec::new()),
            dumps: Mutex::new(Vec::new()),
            flow_ids: AtomicU64::new(0),
            dump_seq: AtomicU64::new(0),
            lamport: AtomicU64::new(0),
            detect_bound: Mutex::new(None),
        });
        let telemetry = config.telemetry_interval.map(|interval| {
            let prom_path = config
                .trace_path
                .as_ref()
                .map(|trace| trace.with_file_name("telemetry.prom"));
            Telemetry::start(shared.anchor, interval, prom_path)
        });
        Self {
            shared: Some(shared),
            telemetry: Mutex::new(telemetry),
        }
    }

    /// An inert collector: every derived sink is disabled.
    pub fn disabled() -> Self {
        Self {
            shared: None,
            telemetry: Mutex::new(None),
        }
    }

    /// Registers a live-telemetry counter cell for one thread; inert
    /// when the telemetry plane is off.
    pub fn telemetry_cell(&self) -> TelemetryCell {
        lock(&self.telemetry)
            .as_ref()
            .map(Telemetry::cell)
            .unwrap_or_default()
    }

    /// Registers an externally owned monotonic counter (e.g. the retry
    /// store's retry count) for the telemetry sampler to read.
    pub fn telemetry_probe(&self, counter: Counter, source: Arc<AtomicU64>) {
        if let Some(telemetry) = lock(&self.telemetry).as_ref() {
            telemetry.probe(counter, source);
        }
    }

    /// Whether the live telemetry sampler is running.
    pub fn telemetry_enabled(&self) -> bool {
        lock(&self.telemetry).is_some()
    }

    /// Whether spans are being recorded.
    pub fn is_enabled(&self) -> bool {
        self.shared.is_some()
    }

    /// The run-relative clock anchor (None when disabled).
    pub fn anchor(&self) -> Option<Instant> {
        self.shared.as_ref().map(|s| s.anchor)
    }

    /// Allocates a fresh flow id (sequential from 1); 0 when disabled.
    pub fn next_flow_id(&self) -> u64 {
        self.shared
            .as_ref()
            .map(|s| s.flow_ids.fetch_add(1, Ordering::Relaxed) + 1)
            .unwrap_or(0)
    }

    /// Sets the detection-latency bound (seconds) the finish-time audit
    /// holds every fault flow to: injection → detection must complete
    /// within it. Unset, the audit checks flow structure but not
    /// latency. No-op when disabled.
    pub fn set_detect_bound(&self, secs: f64) {
        if let Some(shared) = &self.shared {
            *lock(&shared.detect_bound) = Some(secs);
        }
    }

    /// Registers a thread lane and hands out its sink. Re-requesting
    /// the same `(pid, tid)` (a respawned rank) reuses the existing
    /// flight-recorder ring so pre-fault history survives.
    pub fn sink(&self, pid: u32, tid: u32, process: &str, thread: &str) -> TraceSink {
        let Some(shared) = &self.shared else {
            return TraceSink::disabled();
        };
        {
            let mut names = lock(&shared.names);
            names
                .processes
                .entry(pid)
                .or_insert_with(|| process.to_string());
            names.threads.insert((pid, tid), thread.to_string());
        }
        let ring = {
            let mut rings = lock(&shared.rings);
            match rings.iter().find(|slot| slot.pid == pid && slot.tid == tid) {
                Some(slot) => slot.ring.clone(),
                None => {
                    let ring = Arc::new(Mutex::new(VecDeque::with_capacity(shared.ring_len)));
                    rings.push(RingSlot {
                        pid,
                        tid,
                        ring: ring.clone(),
                    });
                    ring
                }
            }
        };
        TraceSink {
            shared: Some(shared.clone()),
            pid,
            tid,
            local: Vec::new(),
            ring: Some(ring),
            ring_len: shared.ring_len,
        }
    }

    /// Snapshots every thread's flight-recorder ring into a
    /// [`FlightDump`], writing the JSON + text artifacts next to the
    /// trace file when a trace path is configured. `None` when
    /// disabled.
    pub fn flight_dump(&self, reason: &str) -> Option<FlightDump> {
        self.flight_dump_named("flight", reason)
    }

    /// [`Self::flight_dump`] with a caller-chosen artifact infix: the
    /// files land as `<stem>-<infix>-<n>.{json,txt}`. The finish-time
    /// audit uses `"audit-flight"` so violation evidence is named apart
    /// from fault-declaration dumps.
    fn flight_dump_named(&self, infix: &str, reason: &str) -> Option<FlightDump> {
        let shared = self.shared.as_ref()?;
        let seq = shared.dump_seq.fetch_add(1, Ordering::Relaxed);
        let names = lock(&shared.names).clone();
        let threads: Vec<FlightThread> = lock(&shared.rings)
            .iter()
            .map(|slot| FlightThread {
                pid: slot.pid,
                tid: slot.tid,
                name: format!(
                    "{}/{}",
                    names.process_label(slot.pid),
                    names.thread_label(slot.pid, slot.tid)
                ),
                events: lock(&slot.ring).iter().copied().collect(),
            })
            .collect();
        let mut dump = FlightDump {
            seq,
            at_secs: shared.anchor.elapsed().as_secs_f64(),
            reason: reason.to_string(),
            threads,
            json_path: None,
            text_path: None,
        };
        if let Some(trace) = &shared.trace_path {
            let stem = trace
                .file_stem()
                .and_then(|s| s.to_str())
                .unwrap_or("trace");
            let json_path = trace.with_file_name(format!("{stem}-{infix}-{seq}.json"));
            let text_path = trace.with_file_name(format!("{stem}-{infix}-{seq}.txt"));
            if let Some(dir) = json_path.parent() {
                let _ = std::fs::create_dir_all(dir);
            }
            match std::fs::write(&json_path, format!("{}\n", dump.to_json().pretty())) {
                Ok(()) => dump.json_path = Some(json_path),
                Err(e) => eprintln!("moc-obs: flight dump write failed: {e}"),
            }
            match std::fs::write(&text_path, dump.render_text()) {
                Ok(()) => dump.text_path = Some(text_path),
                Err(e) => eprintln!("moc-obs: flight dump write failed: {e}"),
            }
        }
        lock(&shared.dumps).push(dump.clone());
        Some(dump)
    }

    /// The spans merged so far (flushed sinks only).
    pub fn events(&self) -> Vec<TraceEvent> {
        self.shared
            .as_ref()
            .map(|s| lock(&s.merged).clone())
            .unwrap_or_default()
    }

    /// Finishes the run: stops the telemetry sampler, renders the
    /// Chrome trace (when a path is configured), runs the critical-path
    /// blame analysis, and returns the run report. Call after every
    /// sink has flushed (dropped).
    pub fn finish(&self) -> ObsRunReport {
        let Some(shared) = &self.shared else {
            return ObsRunReport::default();
        };
        let telemetry = lock(&self.telemetry).take().map(Telemetry::finish);
        let events = lock(&shared.merged).clone();
        let names = lock(&shared.names).clone();
        let mut trace_path = None;
        if let Some(path) = &shared.trace_path {
            if let Some(dir) = path.parent() {
                let _ = std::fs::create_dir_all(dir);
            }
            match std::fs::write(path, chrome::render(&events, &names)) {
                Ok(()) => trace_path = Some(path.clone()),
                Err(e) => eprintln!("moc-obs: trace write failed ({}): {e}", path.display()),
            }
        }
        let blame = critical::analyze(&events, telemetry.as_ref().map(|t| t.samples.as_slice()));
        let mut blame_path = None;
        if let Some(trace) = &shared.trace_path {
            let path = trace.with_file_name("blame.json");
            match std::fs::write(&path, format!("{}\n", blame.to_json().pretty())) {
                Ok(()) => blame_path = Some(path),
                Err(e) => eprintln!("moc-obs: blame report write failed: {e}"),
            }
        }
        let per_rank = critical::per_rank_breakdown(&events, &|pid, tid| {
            format!(
                "{}/{}",
                names.process_label(pid),
                names.thread_label(pid, tid)
            )
        });
        let mut audit_report = None;
        let mut audit_path = None;
        if shared.audit {
            let graph = CausalGraph::build(&events);
            let config = AuditConfig {
                detect_bound_secs: *lock(&shared.detect_bound),
                ..AuditConfig::default()
            };
            let report = audit::audit(&graph, Some(&blame), &config);
            if let Some(trace) = &shared.trace_path {
                let path = trace.with_file_name("audit.json");
                match std::fs::write(&path, format!("{}\n", report.to_json().pretty())) {
                    Ok(()) => audit_path = Some(path),
                    Err(e) => eprintln!("moc-obs: audit report write failed: {e}"),
                }
            }
            if !report.passed() {
                // Violation evidence: snapshot every ring into a
                // separately named dump so CI artifacts carry the final
                // spans of every lane alongside the witness paths.
                self.flight_dump_named(
                    "audit-flight",
                    &format!(
                        "causal audit failed: {} violation(s)",
                        report.violations.len()
                    ),
                );
            }
            audit_report = Some(report);
        }
        ObsRunReport {
            enabled: true,
            spans_recorded: events.len() as u64,
            flight_dumps: lock(&shared.dumps).clone(),
            trace_path,
            per_rank,
            blame: Some(blame),
            blame_path,
            telemetry,
            audit: audit_report,
            audit_path,
        }
    }
}

/// What observability produced for one run.
#[derive(Debug, Clone, Default)]
pub struct ObsRunReport {
    /// Whether observability was on.
    pub enabled: bool,
    /// Total spans merged from all threads.
    pub spans_recorded: u64,
    /// Flight-recorder dumps taken (one per declared fault).
    pub flight_dumps: Vec<FlightDump>,
    /// Where `trace.json` was written, if anywhere.
    pub trace_path: Option<PathBuf>,
    /// Per-lane phase totals (ranks and coordinator; background engine
    /// writers excluded).
    pub per_rank: Vec<RankPhases>,
    /// Critical-path blame + incident analysis over the merged spans
    /// (`Some` whenever observability was on).
    pub blame: Option<BlameReport>,
    /// Where `blame.json` was written, if anywhere.
    pub blame_path: Option<PathBuf>,
    /// The live-telemetry series, when the sampler was on.
    pub telemetry: Option<TelemetryReport>,
    /// The finish-time causal audit verdict (`Some` whenever
    /// observability was on and `ObsConfig::audit` was left on).
    pub audit: Option<AuditReport>,
    /// Where `audit.json` was written, if anywhere.
    pub audit_path: Option<PathBuf>,
}

/// A per-thread span recorder. Append-only and unsynchronized on the
/// hot path; mirrors spans into the thread's flight-recorder ring;
/// flushes its buffer into the collector on [`TraceSink::flush`] or
/// drop.
pub struct TraceSink {
    shared: Option<Arc<Shared>>,
    pid: u32,
    tid: u32,
    local: Vec<TraceEvent>,
    ring: Option<Arc<Mutex<VecDeque<TraceEvent>>>>,
    ring_len: usize,
}

impl fmt::Debug for TraceSink {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TraceSink")
            .field("enabled", &self.is_enabled())
            .field("pid", &self.pid)
            .field("tid", &self.tid)
            .field("buffered", &self.local.len())
            .finish()
    }
}

impl TraceSink {
    /// An inert sink: every call is one branch.
    pub fn disabled() -> Self {
        Self {
            shared: None,
            pid: 0,
            tid: 0,
            local: Vec::new(),
            ring: None,
            ring_len: 0,
        }
    }

    /// Whether this sink records anything.
    pub fn is_enabled(&self) -> bool {
        self.shared.is_some()
    }

    /// Run-relative now, in seconds; `0.0` when disabled.
    pub fn now(&self) -> f64 {
        self.shared
            .as_ref()
            .map(|s| s.anchor.elapsed().as_secs_f64())
            .unwrap_or(0.0)
    }

    /// Records a finished span. The ring is updated immediately so a
    /// thread that dies before flushing still leaves its final spans
    /// visible to flight dumps.
    pub fn record(
        &mut self,
        kind: SpanKind,
        name: &'static str,
        iteration: u64,
        start_secs: f64,
        dur_secs: f64,
        flow: Flow,
    ) {
        let Some(shared) = &self.shared else {
            return;
        };
        // One relaxed fetch_add per recorded span, after the dark-path
        // early return above — a disabled run still costs one branch.
        let lamport = shared.lamport.fetch_add(1, Ordering::Relaxed) + 1;
        let event = TraceEvent {
            pid: self.pid,
            tid: self.tid,
            name,
            kind,
            iteration,
            start_secs,
            dur_secs: dur_secs.max(0.0),
            flow,
            lamport,
        };
        self.local.push(event);
        if let Some(ring) = &self.ring {
            let mut ring = lock(ring);
            if ring.len() == self.ring_len {
                ring.pop_front();
            }
            ring.push_back(event);
        }
    }

    /// Records a span that started at `start_secs` and ends now, with
    /// no flow participation.
    pub fn span(&mut self, kind: SpanKind, name: &'static str, iteration: u64, start_secs: f64) {
        let end = self.now();
        self.record(
            kind,
            name,
            iteration,
            start_secs,
            end - start_secs,
            Flow::None,
        );
    }

    /// Merges the local buffer into the collector.
    pub fn flush(&mut self) {
        if let Some(shared) = &self.shared {
            if !self.local.is_empty() {
                lock(&shared.merged).append(&mut self.local);
            }
        }
    }
}

impl Drop for TraceSink {
    fn drop(&mut self) {
        self.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_sink_records_nothing() {
        let collector = TraceCollector::disabled();
        let mut sink = collector.sink(0, 0, "node0", "rank 0");
        assert!(!sink.is_enabled());
        assert_eq!(sink.now(), 0.0);
        sink.record(SpanKind::Phase, "compute", 1, 0.0, 1.0, Flow::None);
        drop(sink);
        assert!(collector.events().is_empty());
        assert!(collector.flight_dump("x").is_none());
        assert_eq!(collector.next_flow_id(), 0);
        let report = collector.finish();
        assert!(!report.enabled);
        assert_eq!(report.spans_recorded, 0);
    }

    #[test]
    fn spans_merge_on_drop_and_flows_count_up() {
        let collector = TraceCollector::new(&ObsConfig::enabled());
        assert_eq!(collector.next_flow_id(), 1);
        assert_eq!(collector.next_flow_id(), 2);
        let mut a = collector.sink(0, 0, "node0", "rank 0");
        let mut b = collector.sink(0, 1, "node0", "rank 1");
        a.record(SpanKind::Phase, "compute", 0, 0.0, 0.5, Flow::None);
        b.record(SpanKind::Phase, "compute", 0, 0.1, 0.4, Flow::None);
        assert!(collector.events().is_empty(), "nothing merged pre-flush");
        drop(a);
        drop(b);
        let events = collector.events();
        assert_eq!(events.len(), 2);
        let report = collector.finish();
        assert!(report.enabled);
        assert_eq!(report.spans_recorded, 2);
        assert!(report.trace_path.is_none());
    }

    #[test]
    fn flight_ring_is_bounded_and_survives_sink_reissue() {
        let config = ObsConfig {
            flight_recorder_len: 4,
            ..ObsConfig::enabled()
        };
        let collector = TraceCollector::new(&config);
        let mut sink = collector.sink(1, 2, "node1", "rank 2");
        for i in 0..10u64 {
            sink.record(SpanKind::Phase, "compute", i, i as f64, 0.5, Flow::None);
        }
        // Unflushed spans must still be visible to the flight recorder:
        // the ring is written at record time.
        let dump = collector.flight_dump("test fault").unwrap();
        let thread = dump
            .threads
            .iter()
            .find(|t| t.pid == 1 && t.tid == 2)
            .unwrap();
        assert_eq!(thread.events.len(), 4);
        assert_eq!(thread.events.last().unwrap().iteration, 9);
        // A respawned rank reuses the ring: history persists.
        drop(sink);
        let mut again = collector.sink(1, 2, "node1", "rank 2");
        again.record(SpanKind::Phase, "compute", 10, 10.0, 0.5, Flow::None);
        let dump = collector.flight_dump("second fault").unwrap();
        assert_eq!(dump.seq, 1);
        let thread = dump
            .threads
            .iter()
            .find(|t| t.pid == 1 && t.tid == 2)
            .unwrap();
        assert_eq!(thread.events.len(), 4);
        assert_eq!(thread.events.last().unwrap().iteration, 10);
        assert_eq!(thread.events.first().unwrap().iteration, 7);
    }

    #[test]
    fn finish_runs_blame_and_per_rank_analysis() {
        let collector = TraceCollector::new(&ObsConfig::enabled());
        let mut a = collector.sink(0, 0, "node0", "rank 0");
        let mut b = collector.sink(0, 1, "node0", "rank 1");
        a.record(SpanKind::Phase, "compute", 1, 0.0, 0.5, Flow::None);
        b.record(SpanKind::Phase, "compute", 1, 0.0, 0.3, Flow::None);
        b.record(SpanKind::Collective, "tp-sync", 1, 0.3, 0.1, Flow::None);
        drop(a);
        drop(b);
        let report = collector.finish();
        let blame = report.blame.as_ref().unwrap();
        assert_eq!(blame.iterations.len(), 1);
        assert!((blame.total_wall_secs - 0.5).abs() < 1e-9);
        assert_eq!(report.per_rank.len(), 2);
        assert_eq!(report.per_rank[0].label, "node0/rank 0");
        assert!(report.telemetry.is_none(), "sampler off by default");
    }

    #[test]
    fn telemetry_cells_ride_the_collector_lifecycle() {
        let config = ObsConfig::enabled().with_telemetry(Duration::from_millis(2));
        let collector = TraceCollector::new(&config);
        assert!(collector.telemetry_enabled());
        let cell = collector.telemetry_cell();
        assert!(cell.is_enabled());
        cell.add(Counter::CkptBytes, 128);
        let probe = Arc::new(AtomicU64::new(3));
        collector.telemetry_probe(Counter::StoreRetries, probe);
        std::thread::sleep(Duration::from_millis(10));
        let report = collector.finish();
        let telemetry = report.telemetry.as_ref().unwrap();
        assert!(!telemetry.samples.is_empty());
        let totals = telemetry.totals();
        assert_eq!(totals.value(Counter::CkptBytes), 128);
        assert_eq!(totals.value(Counter::StoreRetries), 3);
        // Disabled collectors hand out inert cells.
        let disabled = TraceCollector::disabled();
        assert!(!disabled.telemetry_cell().is_enabled());
        assert!(!disabled.telemetry_enabled());
    }

    #[test]
    fn ckpt_flow_ids_are_unique_per_version_writer() {
        let mut seen = std::collections::BTreeSet::new();
        for version in 0..50u64 {
            for writer in 0..8usize {
                assert!(seen.insert(ckpt_flow_id(version, writer)));
            }
        }
    }
}
