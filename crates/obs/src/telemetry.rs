//! Live telemetry: per-thread counter cells, a sampling thread, and
//! Prometheus-style exposition.
//!
//! Spans ([`crate::sink`]) answer *what happened* after a run ends; the
//! telemetry plane answers *how is it going* while the run is alive.
//! Every participating thread gets a [`TelemetryCell`] — a fixed array
//! of relaxed atomics, one per [`Counter`] — and bumps it from the hot
//! path with no locks and no allocation. Components that already keep
//! their own monotonic counters (the retry store, the checkpoint
//! engines) register them as read-only *probes* instead of
//! double-counting.
//!
//! A sampler thread wakes at the configured interval
//! ([`crate::ObsConfig::telemetry_interval`]), sums cells and probes
//! into a [`TelemetrySample`], appends it to a bounded in-memory
//! time-series ring, and — when a trace dir is configured — rewrites
//! `telemetry.prom`, a Prometheus-text snapshot of the current totals,
//! so an operator (or a scrape loop) can watch a degrading run live.
//! [`Telemetry::finish`] takes a final sample, writes the full series
//! as `telemetry.json`, and returns the [`TelemetryReport`].
//!
//! The whole plane is inert when disabled: a disabled cell is an
//! `Option` that is `None`, so every `add` is a single branch, and no
//! sampler thread exists. Sampling is read-only — it never perturbs
//! the training numerics, which is what keeps telemetry-enabled runs
//! bitwise identical to disabled ones.

use crate::json::Json;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Number of distinct counters in a cell.
pub const COUNTER_COUNT: usize = 14;

/// Samples retained in the in-memory time-series ring; older samples
/// are dropped (the `telemetry.prom` snapshot always reflects current
/// totals regardless).
const SAMPLE_RING_LEN: usize = 16_384;

/// One streamed counter. Durations are accumulated as nanoseconds and
/// exposed as `*_seconds_total`; everything else is a plain count.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Counter {
    /// Training iterations completed.
    Iterations = 0,
    /// Wall time spent in the training loop (per-iteration latency).
    IterationNanos = 1,
    /// Rank time in forward/backward compute.
    ComputeNanos = 2,
    /// Rank time in collective legs (tp-sync, pp-wait/relay, ring).
    CollectiveNanos = 3,
    /// Rank time lost to injected straggler stalls.
    StallNanos = 4,
    /// Training-path checkpoint time (collect/serialize/submit).
    CkptNanos = 5,
    /// Bytes handed to checkpoint engines on the training path.
    CkptBytes = 6,
    /// Checkpoint submissions that stalled on the in-flight limit.
    CkptStalls = 7,
    /// Bytes the background engine writers persisted to the store.
    PersistedBytes = 8,
    /// Store operations retried after a transient failure.
    StoreRetries = 9,
    /// Ranks entering suspicion (missed heartbeats).
    Suspicions = 10,
    /// Suspicions that cleared without a declared fault.
    SuspicionsCleared = 11,
    /// Declared faults recovered from.
    Recoveries = 12,
    /// Wall time spent inside recovery (plan + fetch + restore).
    RecoveryNanos = 13,
}

impl Counter {
    /// Every counter, in cell-slot order.
    pub const ALL: [Counter; COUNTER_COUNT] = [
        Counter::Iterations,
        Counter::IterationNanos,
        Counter::ComputeNanos,
        Counter::CollectiveNanos,
        Counter::StallNanos,
        Counter::CkptNanos,
        Counter::CkptBytes,
        Counter::CkptStalls,
        Counter::PersistedBytes,
        Counter::StoreRetries,
        Counter::Suspicions,
        Counter::SuspicionsCleared,
        Counter::Recoveries,
        Counter::RecoveryNanos,
    ];

    /// The counter's slot in a cell.
    pub fn index(self) -> usize {
        self as usize
    }

    /// Whether the raw value is nanoseconds (exposed as seconds).
    pub fn is_nanos(self) -> bool {
        matches!(
            self,
            Counter::IterationNanos
                | Counter::ComputeNanos
                | Counter::CollectiveNanos
                | Counter::StallNanos
                | Counter::CkptNanos
                | Counter::RecoveryNanos
        )
    }

    /// Stable Prometheus metric name.
    pub fn name(self) -> &'static str {
        match self {
            Counter::Iterations => "moc_iterations_total",
            Counter::IterationNanos => "moc_iteration_seconds_total",
            Counter::ComputeNanos => "moc_compute_seconds_total",
            Counter::CollectiveNanos => "moc_collective_seconds_total",
            Counter::StallNanos => "moc_straggler_stall_seconds_total",
            Counter::CkptNanos => "moc_ckpt_seconds_total",
            Counter::CkptBytes => "moc_ckpt_bytes_total",
            Counter::CkptStalls => "moc_ckpt_stalls_total",
            Counter::PersistedBytes => "moc_persisted_bytes_total",
            Counter::StoreRetries => "moc_store_retries_total",
            Counter::Suspicions => "moc_suspicions_total",
            Counter::SuspicionsCleared => "moc_suspicions_cleared_total",
            Counter::Recoveries => "moc_recoveries_total",
            Counter::RecoveryNanos => "moc_recovery_seconds_total",
        }
    }

    fn help(self) -> &'static str {
        match self {
            Counter::Iterations => "Training iterations completed",
            Counter::IterationNanos => "Wall seconds spent in the training loop",
            Counter::ComputeNanos => "Rank seconds in forward/backward compute",
            Counter::CollectiveNanos => "Rank seconds in collective legs",
            Counter::StallNanos => "Rank seconds lost to straggler stalls",
            Counter::CkptNanos => "Training-path checkpoint seconds",
            Counter::CkptBytes => "Bytes handed to checkpoint engines",
            Counter::CkptStalls => "Checkpoint submissions that stalled",
            Counter::PersistedBytes => "Bytes persisted by engine writers",
            Counter::StoreRetries => "Store operations retried",
            Counter::Suspicions => "Ranks entering heartbeat suspicion",
            Counter::SuspicionsCleared => "Suspicions cleared without a fault",
            Counter::Recoveries => "Declared faults recovered from",
            Counter::RecoveryNanos => "Wall seconds inside recovery",
        }
    }
}

struct CellSlots {
    values: [AtomicU64; COUNTER_COUNT],
}

impl CellSlots {
    fn new() -> Self {
        Self {
            values: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

/// A per-thread bundle of counters. Cheap to clone (shares the slots);
/// every call on a disabled cell is a single branch.
#[derive(Clone, Default)]
pub struct TelemetryCell {
    slots: Option<Arc<CellSlots>>,
}

impl std::fmt::Debug for TelemetryCell {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TelemetryCell")
            .field("enabled", &self.is_enabled())
            .finish()
    }
}

impl TelemetryCell {
    /// An inert cell.
    pub fn disabled() -> Self {
        Self::default()
    }

    /// Whether increments land anywhere.
    pub fn is_enabled(&self) -> bool {
        self.slots.is_some()
    }

    /// Adds `delta` to a counter.
    pub fn add(&self, counter: Counter, delta: u64) {
        if let Some(slots) = &self.slots {
            slots.values[counter.index()].fetch_add(delta, Ordering::Relaxed);
        }
    }

    /// Adds one to a counter.
    pub fn incr(&self, counter: Counter) {
        self.add(counter, 1);
    }

    /// Adds a duration (stored as nanoseconds) to a counter.
    pub fn add_secs(&self, counter: Counter, secs: f64) {
        if secs > 0.0 {
            self.add(counter, (secs * 1e9) as u64);
        }
    }
}

/// One sampled snapshot of every counter, summed across cells and
/// probes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TelemetrySample {
    /// Seconds since the run anchor when the sample was taken.
    pub at_secs: f64,
    /// Raw counter values, indexed by [`Counter::index`].
    pub values: [u64; COUNTER_COUNT],
}

impl TelemetrySample {
    /// The raw value of one counter.
    pub fn value(&self, counter: Counter) -> u64 {
        self.values[counter.index()]
    }

    /// A counter as seconds (for nanosecond counters) or the raw count.
    pub fn scaled(&self, counter: Counter) -> f64 {
        let raw = self.value(counter) as f64;
        if counter.is_nanos() {
            raw / 1e9
        } else {
            raw
        }
    }

    fn to_json(self) -> Json {
        Json::Obj(vec![
            ("at_secs".to_string(), Json::from(self.at_secs)),
            (
                "values".to_string(),
                Json::Arr(self.values.iter().map(|&v| Json::from(v)).collect()),
            ),
        ])
    }
}

/// What the telemetry plane produced for one run.
#[derive(Debug, Clone, Default)]
pub struct TelemetryReport {
    /// The sampling interval that was configured.
    pub interval: Duration,
    /// The retained time series, oldest first; the last sample is the
    /// final snapshot taken at shutdown.
    pub samples: Vec<TelemetrySample>,
    /// Where the JSON series was written, if anywhere.
    pub json_path: Option<PathBuf>,
    /// Where the Prometheus-text snapshot was written, if anywhere.
    pub prom_path: Option<PathBuf>,
}

impl TelemetryReport {
    /// The final counter totals (zeroes when no sample was ever taken).
    pub fn totals(&self) -> TelemetrySample {
        self.samples.last().copied().unwrap_or(TelemetrySample {
            at_secs: 0.0,
            values: [0; COUNTER_COUNT],
        })
    }
}

fn lock<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

struct TelemetryShared {
    anchor: Instant,
    interval: Duration,
    prom_path: Option<PathBuf>,
    cells: Mutex<Vec<Arc<CellSlots>>>,
    probes: Mutex<Vec<(Counter, Arc<AtomicU64>)>>,
    samples: Mutex<Vec<TelemetrySample>>,
    stop: Mutex<bool>,
    wake: Condvar,
}

impl TelemetryShared {
    fn take_sample(&self) {
        let mut values = [0u64; COUNTER_COUNT];
        for cell in lock(&self.cells).iter() {
            for (slot, value) in cell.values.iter().zip(values.iter_mut()) {
                *value += slot.load(Ordering::Relaxed);
            }
        }
        for (counter, probe) in lock(&self.probes).iter() {
            values[counter.index()] += probe.load(Ordering::Relaxed);
        }
        let sample = TelemetrySample {
            at_secs: self.anchor.elapsed().as_secs_f64(),
            values,
        };
        {
            let mut samples = lock(&self.samples);
            if samples.len() == SAMPLE_RING_LEN {
                samples.remove(0);
            }
            samples.push(sample);
        }
        if let Some(path) = &self.prom_path {
            // Best effort: a failed snapshot write must never take the
            // run down.
            if let Some(dir) = path.parent() {
                let _ = std::fs::create_dir_all(dir);
            }
            let _ = std::fs::write(path, render_prom(&sample));
        }
    }
}

/// Renders one sample in the Prometheus text exposition format.
pub fn render_prom(sample: &TelemetrySample) -> String {
    let mut out = String::new();
    for counter in Counter::ALL {
        out.push_str(&format!("# HELP {} {}\n", counter.name(), counter.help()));
        out.push_str(&format!("# TYPE {} counter\n", counter.name()));
        if counter.is_nanos() {
            out.push_str(&format!(
                "{} {:.9}\n",
                counter.name(),
                sample.scaled(counter)
            ));
        } else {
            out.push_str(&format!("{} {}\n", counter.name(), sample.value(counter)));
        }
    }
    out.push_str("# HELP moc_telemetry_at_seconds Run-relative time of this snapshot\n");
    out.push_str("# TYPE moc_telemetry_at_seconds gauge\n");
    out.push_str(&format!("moc_telemetry_at_seconds {:.6}\n", sample.at_secs));
    // OpenMetrics terminator: scrapers treat a snapshot without it as a
    // truncated exposition.
    out.push_str("# EOF\n");
    out
}

/// The live telemetry hub: owns the cells, the probes, the time-series
/// ring, and the sampler thread.
pub struct Telemetry {
    shared: Arc<TelemetryShared>,
    worker: Option<JoinHandle<()>>,
}

impl std::fmt::Debug for Telemetry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Telemetry")
            .field("interval", &self.shared.interval)
            .finish()
    }
}

impl Telemetry {
    /// Spawns the sampler. `anchor` is the run clock shared with span
    /// recording; `prom_path` is where live snapshots go (`None` keeps
    /// the series in memory only). Intervals below 1 ms are clamped.
    pub fn start(anchor: Instant, interval: Duration, prom_path: Option<PathBuf>) -> Self {
        let interval = interval.max(Duration::from_millis(1));
        let shared = Arc::new(TelemetryShared {
            anchor,
            interval,
            prom_path,
            cells: Mutex::new(Vec::new()),
            probes: Mutex::new(Vec::new()),
            samples: Mutex::new(Vec::new()),
            stop: Mutex::new(false),
            wake: Condvar::new(),
        });
        let worker_shared = shared.clone();
        let worker = std::thread::Builder::new()
            .name("moc-telemetry".to_string())
            .spawn(move || sampler_loop(worker_shared))
            .expect("spawn telemetry sampler");
        Self {
            shared,
            worker: Some(worker),
        }
    }

    /// Registers a new counter cell for one thread.
    pub fn cell(&self) -> TelemetryCell {
        let slots = Arc::new(CellSlots::new());
        lock(&self.shared.cells).push(slots.clone());
        TelemetryCell { slots: Some(slots) }
    }

    /// Registers an externally owned monotonic counter. The sampler
    /// reads it with relaxed loads; the owner keeps writing it as
    /// usual.
    pub fn probe(&self, counter: Counter, source: Arc<AtomicU64>) {
        lock(&self.shared.probes).push((counter, source));
    }

    /// The samples collected so far (for mid-run inspection).
    pub fn samples(&self) -> Vec<TelemetrySample> {
        lock(&self.shared.samples).clone()
    }

    /// Stops the sampler, takes a final snapshot, writes the JSON
    /// series next to the Prometheus snapshot, and returns the report.
    pub fn finish(mut self) -> TelemetryReport {
        self.stop_worker();
        self.shared.take_sample();
        let samples = lock(&self.shared.samples).clone();
        let prom_path = self.shared.prom_path.clone();
        let json_path = prom_path.as_ref().and_then(|prom| {
            let path = prom.with_file_name("telemetry.json");
            let series = Json::Obj(vec![
                (
                    "interval_secs".to_string(),
                    Json::from(self.shared.interval.as_secs_f64()),
                ),
                (
                    "counters".to_string(),
                    Json::Arr(Counter::ALL.iter().map(|c| Json::from(c.name())).collect()),
                ),
                (
                    "samples".to_string(),
                    Json::Arr(samples.iter().map(|s| s.to_json()).collect()),
                ),
            ]);
            match std::fs::write(&path, format!("{}\n", series.pretty())) {
                Ok(()) => Some(path),
                Err(e) => {
                    eprintln!("moc-obs: telemetry series write failed: {e}");
                    None
                }
            }
        });
        TelemetryReport {
            interval: self.shared.interval,
            samples,
            json_path,
            prom_path,
        }
    }

    fn stop_worker(&mut self) {
        *lock(&self.shared.stop) = true;
        self.shared.wake.notify_all();
        if let Some(worker) = self.worker.take() {
            let _ = worker.join();
        }
    }
}

impl Drop for Telemetry {
    fn drop(&mut self) {
        self.stop_worker();
    }
}

fn sampler_loop(shared: Arc<TelemetryShared>) {
    let mut stop = lock(&shared.stop);
    while !*stop {
        let (guard, timed_out) = shared
            .wake
            .wait_timeout(stop, shared.interval)
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        stop = guard;
        if timed_out.timed_out() && !*stop {
            drop(stop);
            shared.take_sample();
            stop = lock(&shared.stop);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_cell_is_inert() {
        let cell = TelemetryCell::disabled();
        assert!(!cell.is_enabled());
        cell.incr(Counter::Iterations);
        cell.add_secs(Counter::ComputeNanos, 1.0);
    }

    #[test]
    fn cells_and_probes_sum_into_samples() {
        let telemetry = Telemetry::start(Instant::now(), Duration::from_secs(3600), None);
        let a = telemetry.cell();
        let b = telemetry.cell();
        a.incr(Counter::Iterations);
        b.add(Counter::Iterations, 2);
        a.add_secs(Counter::ComputeNanos, 0.5);
        let probe = Arc::new(AtomicU64::new(7));
        telemetry.probe(Counter::StoreRetries, probe.clone());
        probe.fetch_add(1, Ordering::Relaxed);
        let report = telemetry.finish();
        let totals = report.totals();
        assert_eq!(totals.value(Counter::Iterations), 3);
        assert_eq!(totals.value(Counter::StoreRetries), 8);
        assert!((totals.scaled(Counter::ComputeNanos) - 0.5).abs() < 1e-6);
    }

    #[test]
    fn sampler_streams_at_interval() {
        let telemetry = Telemetry::start(Instant::now(), Duration::from_millis(2), None);
        let cell = telemetry.cell();
        for _ in 0..10 {
            cell.incr(Counter::Iterations);
            std::thread::sleep(Duration::from_millis(3));
        }
        let report = telemetry.finish();
        assert!(
            report.samples.len() >= 3,
            "expected several mid-run samples, got {}",
            report.samples.len()
        );
        // Counter totals are monotone across the series.
        for pair in report.samples.windows(2) {
            assert!(pair[1].value(Counter::Iterations) >= pair[0].value(Counter::Iterations));
            assert!(pair[1].at_secs >= pair[0].at_secs);
        }
        assert_eq!(report.totals().value(Counter::Iterations), 10);
    }

    #[test]
    fn prom_and_json_snapshots_land_in_trace_dir() {
        let dir = std::env::temp_dir().join(format!("moc-telemetry-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let prom = dir.join("telemetry.prom");
        let telemetry = Telemetry::start(Instant::now(), Duration::from_millis(5), Some(prom));
        let cell = telemetry.cell();
        cell.add(Counter::CkptBytes, 4096);
        std::thread::sleep(Duration::from_millis(25));
        let report = telemetry.finish();
        let prom_path = report.prom_path.clone().unwrap();
        let text = std::fs::read_to_string(&prom_path).unwrap();
        assert!(text.contains("# TYPE moc_ckpt_bytes_total counter"));
        assert!(text.contains("moc_ckpt_bytes_total 4096"));
        let json_path = report.json_path.clone().unwrap();
        let series = Json::parse(&std::fs::read_to_string(&json_path).unwrap()).unwrap();
        let samples = series.get("samples").and_then(Json::as_array).unwrap();
        assert_eq!(samples.len(), report.samples.len());
        let names = series.get("counters").and_then(Json::as_array).unwrap();
        assert_eq!(names.len(), COUNTER_COUNT);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn prom_exposition_is_strictly_well_formed() {
        let sample = TelemetrySample {
            at_secs: 1.5,
            values: [7; COUNTER_COUNT],
        };
        let text = render_prom(&sample);
        assert!(text.ends_with("# EOF\n"), "terminator required:\n{text}");
        let mut typed: std::collections::BTreeMap<String, String> = Default::default();
        let mut helped: std::collections::BTreeSet<String> = Default::default();
        for line in text.lines() {
            if let Some(rest) = line.strip_prefix("# HELP ") {
                let name = rest.split_whitespace().next().unwrap().to_string();
                assert!(helped.insert(name), "duplicate HELP: {line}");
                continue;
            }
            if let Some(rest) = line.strip_prefix("# TYPE ") {
                let mut parts = rest.split_whitespace();
                let name = parts.next().unwrap().to_string();
                let ty = parts.next().unwrap().to_string();
                assert!(matches!(ty.as_str(), "counter" | "gauge"), "{line}");
                // Prometheus convention: `_total` suffix iff counter.
                assert_eq!(name.ends_with("_total"), ty == "counter", "{line}");
                assert!(typed.insert(name, ty).is_none(), "duplicate TYPE: {line}");
                continue;
            }
            if line == "# EOF" || line.is_empty() {
                continue;
            }
            // Sample lines: `<name> <value>`, name declared above it.
            let mut parts = line.split_whitespace();
            let name = parts.next().unwrap();
            assert!(typed.contains_key(name), "sample before TYPE: {line}");
            assert!(helped.contains(name), "sample before HELP: {line}");
            let value = parts.next().expect("sample has a value");
            assert!(value.parse::<f64>().is_ok(), "unparseable value: {line}");
            assert!(parts.next().is_none(), "trailing tokens: {line}");
        }
        assert_eq!(typed.len(), COUNTER_COUNT + 1, "every counter exposed");
    }
}
