//! Chrome-trace / Perfetto JSON export.
//!
//! Renders merged [`TraceEvent`]s as a Chrome trace-event document:
//! `M` metadata records name the pid/tid lanes, each span becomes an
//! `X` complete event (`ts`/`dur` in microseconds with nanosecond
//! decimals), and [`Flow`] participation becomes `s`/`t`/`f` flow
//! events bound to the middle of their slice. Load the result at
//! <https://ui.perfetto.dev> or `chrome://tracing`.

use crate::json::escape_into;
use crate::sink::{Flow, ThreadNames, TraceEvent};
use std::fmt::Write as _;

/// Renders a full trace document from merged spans and lane names.
pub fn render(events: &[TraceEvent], names: &ThreadNames) -> String {
    let mut sorted: Vec<&TraceEvent> = events.iter().collect();
    sorted.sort_by(|a, b| {
        (a.pid, a.tid)
            .cmp(&(b.pid, b.tid))
            .then(a.start_secs.total_cmp(&b.start_secs))
    });

    let mut out = String::with_capacity(events.len() * 180 + 1024);
    out.push_str("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
    let mut first = true;

    for (pid, name) in &names.processes {
        meta(&mut out, &mut first, "process_name", *pid, 0, name);
        // Sort index keeps node lanes in id order ahead of the control
        // plane lane in the Perfetto UI.
        let _ = write!(
            out,
            ",\n{{\"ph\":\"M\",\"name\":\"process_sort_index\",\"pid\":{pid},\"tid\":0,\"args\":{{\"sort_index\":{pid}}}}}"
        );
    }
    for ((pid, tid), name) in &names.threads {
        meta(&mut out, &mut first, "thread_name", *pid, *tid, name);
    }

    for e in sorted {
        let ts = e.start_secs * 1e6;
        let dur = e.dur_secs * 1e6;
        sep(&mut out, &mut first);
        // The slice args embed the Lamport stamp and the flow binding so
        // an exported trace can be re-ingested for the causal audit
        // without matching the separate s/t/f records (those remain for
        // Perfetto's arrow rendering).
        let _ = write!(
            out,
            "{{\"ph\":\"X\",\"name\":\"{}\",\"cat\":\"{}\",\"pid\":{},\"tid\":{},\"ts\":{ts:.3},\"dur\":{dur:.3},\"args\":{{\"iteration\":{},\"lamport\":{}",
            Escaped(e.name),
            e.kind.category(),
            e.pid,
            e.tid,
            e.iteration,
            e.lamport,
        );
        if let Some((phase, id)) = crate::causal::flow_parts(e.flow) {
            let _ = write!(out, ",\"flow\":\"{phase}\",\"flow_id\":{id}");
        }
        out.push_str("}}");
        let (ph, extra, id) = match e.flow {
            Flow::None => continue,
            Flow::Start(id) => ("s", "", id),
            Flow::Step(id) => ("t", "", id),
            Flow::End(id) => ("f", ",\"bp\":\"e\"", id),
        };
        // Bind the flow event to the middle of the slice so it falls
        // strictly inside [ts, ts+dur] for any positive duration.
        let bind = ts + dur * 0.5;
        sep(&mut out, &mut first);
        let _ = write!(
            out,
            "{{\"ph\":\"{ph}\",\"cat\":\"flow\",\"name\":\"flow\",\"id\":{id},\"pid\":{},\"tid\":{},\"ts\":{bind:.3}{extra}}}",
            e.pid, e.tid,
        );
    }

    out.push_str("\n]}\n");
    out
}

fn sep(out: &mut String, first: &mut bool) {
    if *first {
        *first = false;
        out.push('\n');
    } else {
        out.push_str(",\n");
    }
}

fn meta(out: &mut String, first: &mut bool, key: &str, pid: u32, tid: u32, name: &str) {
    sep(out, first);
    let _ = write!(
        out,
        "{{\"ph\":\"M\",\"name\":\"{key}\",\"pid\":{pid},\"tid\":{tid},\"args\":{{\"name\":\"{}\"}}}}",
        Escaped(name),
    );
}

struct Escaped<'a>(&'a str);

impl std::fmt::Display for Escaped<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut buf = String::with_capacity(self.0.len());
        escape_into(self.0, &mut buf);
        f.write_str(&buf)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::Json;
    use crate::sink::SpanKind;

    #[test]
    fn render_is_valid_json_with_flows_and_metadata() {
        let mut names = ThreadNames::default();
        names.processes.insert(0, "node0".to_string());
        names.threads.insert((0, 0), "rank 0".to_string());
        let events = vec![
            TraceEvent {
                pid: 0,
                tid: 0,
                name: "fault-injected",
                kind: SpanKind::Fault,
                iteration: 3,
                start_secs: 0.5,
                dur_secs: 0.001,
                flow: Flow::Start(1),
                lamport: 1,
            },
            TraceEvent {
                pid: 0,
                tid: 0,
                name: "recovery",
                kind: SpanKind::Fault,
                iteration: 3,
                start_secs: 0.6,
                dur_secs: 0.05,
                flow: Flow::End(1),
                lamport: 2,
            },
        ];
        let doc = Json::parse(&render(&events, &names)).unwrap();
        let records = doc.get("traceEvents").unwrap().as_array().unwrap();
        let ph = |p: &str| -> Vec<&Json> {
            records
                .iter()
                .filter(|r| r.get("ph").and_then(Json::as_str) == Some(p))
                .collect()
        };
        assert_eq!(ph("X").len(), 2);
        assert_eq!(ph("s").len(), 1);
        let finishes = ph("f");
        assert_eq!(finishes.len(), 1);
        assert_eq!(finishes[0].get("bp").unwrap().as_str(), Some("e"));
        assert_eq!(
            finishes[0].get("id").unwrap().as_u64(),
            ph("s")[0].get("id").unwrap().as_u64()
        );
        // Flow binds inside the recovery slice.
        let f_ts = finishes[0].get("ts").unwrap().as_f64().unwrap();
        assert!(f_ts > 0.6e6 && f_ts < 0.65e6);
        assert!(ph("M").len() >= 2);
    }

    #[test]
    fn microsecond_timestamps_keep_nanosecond_decimals() {
        let names = ThreadNames::default();
        let events = vec![TraceEvent {
            pid: 0,
            tid: 0,
            name: "compute",
            kind: SpanKind::Phase,
            iteration: 0,
            start_secs: 1.234_567_891,
            dur_secs: 0.000_000_5,
            flow: Flow::None,
            lamport: 1,
        }];
        let text = render(&events, &names);
        assert!(text.contains("\"ts\":1234567.891"), "{text}");
        assert!(text.contains("\"dur\":0.500"), "{text}");
    }
}
