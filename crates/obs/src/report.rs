//! Report rendering: human-readable phase/timeline tables and the
//! schema'd JSON report emitter used by the benches.

use crate::json::Json;
use std::fmt::Write as _;
use std::io;
use std::path::Path;

/// One row of a phase-latency table.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PhaseRow {
    /// Phase label.
    pub label: String,
    /// Sample count.
    pub count: u64,
    /// Mean seconds.
    pub mean_secs: f64,
    /// Median seconds (log-bucket estimate).
    pub p50_secs: f64,
    /// 99th-percentile seconds (log-bucket estimate).
    pub p99_secs: f64,
    /// Worst sample, seconds.
    pub max_secs: f64,
    /// Sum of all samples, seconds.
    pub total_secs: f64,
}

/// Renders a fixed-width phase table (milliseconds).
pub fn render_phase_table(rows: &[PhaseRow]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "  {:<18} {:>7} {:>12} {:>12} {:>12} {:>12} {:>12}",
        "phase", "count", "mean", "p50", "p99", "max", "total"
    );
    for r in rows {
        let _ = writeln!(
            out,
            "  {:<18} {:>7} {:>12} {:>12} {:>12} {:>12} {:>12}",
            r.label,
            r.count,
            ms(r.mean_secs),
            ms(r.p50_secs),
            ms(r.p99_secs),
            ms(r.max_secs),
            ms(r.total_secs),
        );
    }
    out
}

fn ms(secs: f64) -> String {
    format!("{:.3} ms", 1e3 * secs)
}

/// One row of a timeline rendering.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TimelineRow {
    /// Run-relative seconds.
    pub at_secs: f64,
    /// Training iteration.
    pub iteration: u64,
    /// Short event label (e.g. `RECOVERED`).
    pub label: String,
    /// Free-form detail text.
    pub detail: String,
}

/// Renders a timestamped timeline, one event per line.
pub fn render_timeline(rows: &[TimelineRow]) -> String {
    let mut out = String::new();
    for r in rows {
        let _ = writeln!(
            out,
            "  [{:>9.3}s] iter {:>4}  {:<11} {}",
            r.at_secs, r.iteration, r.label, r.detail
        );
    }
    out
}

/// A schema'd JSON report builder: ordered fields, pretty-printed to
/// disk. Replaces the hand-rolled `format!` JSON writers previously
/// duplicated across the benches.
#[derive(Debug, Clone, Default)]
pub struct Report {
    fields: Vec<(String, Json)>,
}

impl Report {
    /// An empty report.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a field (insertion order is preserved in the output).
    pub fn field(mut self, key: &str, value: impl Into<Json>) -> Self {
        self.fields.push((key.to_string(), value.into()));
        self
    }

    /// The report as a JSON object.
    pub fn json(&self) -> Json {
        Json::Obj(self.fields.clone())
    }

    /// Writes the pretty-printed report (with trailing newline) to
    /// `path`.
    pub fn write(&self, path: &Path) -> io::Result<()> {
        std::fs::write(path, format!("{}\n", self.json().pretty()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phase_table_lists_rows() {
        let rows = vec![PhaseRow {
            label: "compute".to_string(),
            count: 12,
            mean_secs: 0.002,
            p50_secs: 0.0019,
            p99_secs: 0.004,
            max_secs: 0.005,
            total_secs: 0.024,
        }];
        let table = render_phase_table(&rows);
        assert!(table.contains("compute"));
        assert!(table.contains("p99"));
        assert!(table.contains("2.000 ms"));
    }

    #[test]
    fn timeline_renders_timestamps() {
        let rows = vec![TimelineRow {
            at_secs: 1.5,
            iteration: 7,
            label: "KILL".to_string(),
            detail: "nodes [1]".to_string(),
        }];
        let text = render_timeline(&rows);
        assert!(text.contains("1.500s"));
        assert!(text.contains("KILL"));
        assert!(text.contains("nodes [1]"));
    }

    #[test]
    fn report_roundtrips_through_parse() {
        let report = Report::new()
            .field("bench", "fig18")
            .field(
                "worlds",
                Json::Arr(vec![Json::from(2u64), Json::from(4u64)]),
            )
            .field("ratio", 1.5);
        let parsed = Json::parse(&report.json().pretty()).unwrap();
        assert_eq!(parsed.get("bench").unwrap().as_str(), Some("fig18"));
        assert_eq!(
            parsed.get("worlds").unwrap().as_array().unwrap()[1].as_u64(),
            Some(4)
        );
    }
}
