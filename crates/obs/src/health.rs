//! Online per-rank health scoring.
//!
//! The chaos plane injects *gray* degradation — stragglers that slow a
//! rank down without silencing it — which the silence-based suspicion
//! detector cannot see until the rank misses a whole collect window.
//! This module watches the per-rank step samples the coordinator
//! already collects (compute + stall seconds, store retries) and keeps
//! a streaming baseline per rank: an EWMA of the step time plus a MAD
//! (median absolute deviation) estimate of its spread over a sliding
//! window. Each new sample is scored as a z-score against that
//! baseline; sustained high scores walk the rank through a
//! healthy → degraded → suspect state machine, and sustained normal
//! scores walk it back.
//!
//! The scorer is pure bookkeeping over numbers the runtime already
//! produced — it never touches the training math, so a run with health
//! scoring on stays bitwise identical to the dark run. Its output
//! feeds three places: `EventKind::HealthDegraded` run events, the
//! `health.json` report next to the trace, and the suspicion detector's
//! corroboration hook (an already-degraded rank needs one fewer missed
//! lease before the coordinator declares it).

use crate::json::Json;

/// Tunables of the per-rank scorer.
#[derive(Debug, Clone)]
pub struct HealthConfig {
    /// Z-score at or above which a sample counts toward `Degraded`.
    pub z_degraded: f64,
    /// Z-score at or above which a sample counts toward `Suspect`.
    pub z_suspect: f64,
    /// Consecutive degraded-scoring samples before `Healthy → Degraded`.
    pub degrade_after: u32,
    /// Consecutive suspect-scoring samples before `→ Suspect`.
    pub suspect_after: u32,
    /// Consecutive normal-scoring samples before recovery to `Healthy`.
    pub recover_after: u32,
    /// Samples per rank consumed before scoring starts (baseline warmup).
    pub warmup: u32,
    /// EWMA smoothing factor for the step-time baseline.
    pub ewma_alpha: f64,
    /// Sliding-window length for the MAD spread estimate.
    pub window: usize,
    /// Absolute floor of the z-score scale, seconds. Millisecond-class
    /// steps (a release-mode toy model) ride scheduler jitter of the
    /// same magnitude as the step itself; a purely relative floor would
    /// read that jitter as a many-sigma outlier. Degradation below this
    /// absolute excess is invisible — tune it well under the step times
    /// you care about.
    pub scale_floor_secs: f64,
}

impl Default for HealthConfig {
    fn default() -> Self {
        Self {
            z_degraded: 6.0,
            z_suspect: 12.0,
            degrade_after: 2,
            suspect_after: 4,
            recover_after: 3,
            warmup: 2,
            ewma_alpha: 0.2,
            window: 32,
            scale_floor_secs: 2e-3,
        }
    }
}

/// The health state machine's states, in increasing severity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum HealthState {
    /// Scoring within the baseline.
    Healthy,
    /// Sustained z-scores over `z_degraded`: slow but alive.
    Degraded,
    /// Sustained z-scores over `z_suspect`: corroborates suspicion.
    Suspect,
}

impl HealthState {
    /// Lower-case label used in reports.
    pub fn label(self) -> &'static str {
        match self {
            HealthState::Healthy => "healthy",
            HealthState::Degraded => "degraded",
            HealthState::Suspect => "suspect",
        }
    }
}

/// One state-machine transition, returned from [`HealthScorer::observe`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HealthTransition {
    /// Rank whose state changed.
    pub rank: usize,
    /// Iteration of the sample that tipped it.
    pub iteration: u64,
    /// State before the sample.
    pub from: HealthState,
    /// State after the sample.
    pub to: HealthState,
    /// The z-score of the tipping sample.
    pub z: f64,
}

#[derive(Debug, Clone)]
struct RankHealth {
    rank: usize,
    state: HealthState,
    ewma: f64,
    residuals: Vec<f64>,
    samples: u64,
    hot_streak: u32,
    calm_streak: u32,
    last_z: f64,
    worst_z: f64,
    transitions: u32,
}

impl RankHealth {
    fn new(rank: usize) -> Self {
        Self {
            rank,
            state: HealthState::Healthy,
            ewma: 0.0,
            residuals: Vec::new(),
            samples: 0,
            hot_streak: 0,
            calm_streak: 0,
            last_z: 0.0,
            worst_z: 0.0,
            transitions: 0,
        }
    }
}

/// Streaming per-rank health scorer (EWMA + MAD z-scores).
#[derive(Debug, Clone, Default)]
pub struct HealthScorer {
    config: HealthConfig,
    ranks: Vec<RankHealth>,
    transitions: Vec<HealthTransition>,
}

impl HealthScorer {
    /// A scorer with the given tunables.
    pub fn new(config: HealthConfig) -> Self {
        Self {
            config,
            ranks: Vec::new(),
            transitions: Vec::new(),
        }
    }

    fn rank_mut(&mut self, rank: usize) -> &mut RankHealth {
        if let Some(i) = self.ranks.iter().position(|r| r.rank == rank) {
            &mut self.ranks[i]
        } else {
            self.ranks.push(RankHealth::new(rank));
            self.ranks.sort_by_key(|r| r.rank);
            let i = self.ranks.iter().position(|r| r.rank == rank).unwrap();
            &mut self.ranks[i]
        }
    }

    /// Feeds one per-rank step sample; returns the state transition it
    /// caused, if any.
    pub fn observe(
        &mut self,
        rank: usize,
        iteration: u64,
        step_secs: f64,
        stall_secs: f64,
        retries_delta: u64,
    ) -> Option<HealthTransition> {
        let config = self.config.clone();
        let r = self.rank_mut(rank);
        r.samples += 1;

        if r.samples <= config.warmup as u64 {
            // Baseline warmup: adopt, don't score.
            r.ewma = if r.samples == 1 {
                step_secs
            } else {
                config.ewma_alpha * step_secs + (1.0 - config.ewma_alpha) * r.ewma
            };
            r.residuals.push(0.0);
            return None;
        }

        // Robust spread: 1.4826·MAD rescales MAD to a standard deviation
        // for normal data; the floor keeps tiny quiet baselines from
        // turning scheduler jitter into huge z-scores.
        let mad = median_abs(&r.residuals);
        let scale = (1.4826 * mad)
            .max(0.05 * r.ewma)
            .max(config.scale_floor_secs)
            .max(1e-6);
        let z_step = (step_secs - r.ewma).max(0.0) / scale;
        // Stall is near-zero on a healthy rank, so score it against the
        // step baseline rather than its own (degenerate) spread.
        let z_stall = stall_secs / (0.1 * r.ewma).max(config.scale_floor_secs).max(1e-9);
        let z_retries = retries_delta as f64;
        let z = z_step.max(z_stall) + 0.5 * z_retries;
        r.last_z = z;
        r.worst_z = r.worst_z.max(z);

        // Only normal-scoring samples update the baseline, so a
        // straggler cannot drag its own baseline up and score itself
        // healthy again while still slow.
        if z < config.z_degraded {
            r.ewma = config.ewma_alpha * step_secs + (1.0 - config.ewma_alpha) * r.ewma;
            r.residuals.push((step_secs - r.ewma).abs());
            if r.residuals.len() > config.window {
                let excess = r.residuals.len() - config.window;
                r.residuals.drain(..excess);
            }
        }

        let from = r.state;
        if z >= config.z_degraded {
            r.hot_streak += 1;
            r.calm_streak = 0;
        } else {
            r.calm_streak += 1;
            r.hot_streak = 0;
        }

        let to = match from {
            HealthState::Healthy if r.hot_streak >= config.degrade_after => HealthState::Degraded,
            HealthState::Degraded
                if z >= config.z_suspect && r.hot_streak >= config.suspect_after =>
            {
                HealthState::Suspect
            }
            HealthState::Degraded | HealthState::Suspect
                if r.calm_streak >= config.recover_after =>
            {
                HealthState::Healthy
            }
            other => other,
        };
        if to == from {
            return None;
        }
        r.state = to;
        r.transitions += 1;
        let t = HealthTransition {
            rank,
            iteration,
            from,
            to,
            z,
        };
        self.transitions.push(t);
        Some(t)
    }

    /// Current state of a rank (`Healthy` if it was never observed).
    pub fn state(&self, rank: usize) -> HealthState {
        self.ranks
            .iter()
            .find(|r| r.rank == rank)
            .map(|r| r.state)
            .unwrap_or(HealthState::Healthy)
    }

    /// Whether a rank is currently scored worse than healthy.
    pub fn is_degraded(&self, rank: usize) -> bool {
        self.state(rank) != HealthState::Healthy
    }

    /// Freezes the scorer into the run's health report.
    pub fn report(&self) -> HealthReport {
        HealthReport {
            rows: self
                .ranks
                .iter()
                .map(|r| HealthRow {
                    rank: r.rank,
                    state: r.state,
                    samples: r.samples,
                    ewma_step_secs: r.ewma,
                    last_z: r.last_z,
                    worst_z: r.worst_z,
                    transitions: r.transitions,
                })
                .collect(),
            transitions: self.transitions.clone(),
        }
    }
}

fn median_abs(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let mut sorted = values.to_vec();
    sorted.sort_by(f64::total_cmp);
    let mid = sorted.len() / 2;
    if sorted.len() % 2 == 1 {
        sorted[mid]
    } else {
        0.5 * (sorted[mid - 1] + sorted[mid])
    }
}

/// One rank's row in the health report.
#[derive(Debug, Clone)]
pub struct HealthRow {
    /// Global rank id.
    pub rank: usize,
    /// Final state at the end of the run.
    pub state: HealthState,
    /// Samples scored (including warmup).
    pub samples: u64,
    /// Final EWMA step-time baseline, seconds.
    pub ewma_step_secs: f64,
    /// Z-score of the last sample.
    pub last_z: f64,
    /// Largest z-score seen.
    pub worst_z: f64,
    /// State transitions over the run.
    pub transitions: u32,
}

/// The run's frozen health verdict (`health.json`).
#[derive(Debug, Clone, Default)]
pub struct HealthReport {
    /// Per-rank final rows, sorted by rank.
    pub rows: Vec<HealthRow>,
    /// Every state transition, in observation order.
    pub transitions: Vec<HealthTransition>,
}

impl HealthReport {
    /// Ranks whose final state is worse than healthy.
    pub fn degraded_ranks(&self) -> Vec<usize> {
        self.rows
            .iter()
            .filter(|r| r.state != HealthState::Healthy)
            .map(|r| r.rank)
            .collect()
    }

    /// JSON form written as `health.json`.
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            (
                "ranks".to_string(),
                Json::Arr(
                    self.rows
                        .iter()
                        .map(|r| {
                            Json::Obj(vec![
                                ("rank".to_string(), Json::from(r.rank as u64)),
                                ("state".to_string(), Json::from(r.state.label())),
                                ("samples".to_string(), Json::from(r.samples)),
                                ("ewma_step_secs".to_string(), Json::from(r.ewma_step_secs)),
                                ("last_z".to_string(), Json::from(r.last_z)),
                                ("worst_z".to_string(), Json::from(r.worst_z)),
                                (
                                    "transitions".to_string(),
                                    Json::from(u64::from(r.transitions)),
                                ),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "transitions".to_string(),
                Json::Arr(
                    self.transitions
                        .iter()
                        .map(|t| {
                            Json::Obj(vec![
                                ("rank".to_string(), Json::from(t.rank as u64)),
                                ("iteration".to_string(), Json::from(t.iteration)),
                                ("from".to_string(), Json::from(t.from.label())),
                                ("to".to_string(), Json::from(t.to.label())),
                                ("z".to_string(), Json::from(t.z)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn feed_steady(scorer: &mut HealthScorer, rank: usize, n: u64, step: f64) {
        for i in 0..n {
            assert!(scorer.observe(rank, i, step, 0.0, 0).is_none());
        }
    }

    #[test]
    fn steady_rank_stays_healthy() {
        let mut scorer = HealthScorer::new(HealthConfig::default());
        feed_steady(&mut scorer, 0, 50, 0.010);
        assert_eq!(scorer.state(0), HealthState::Healthy);
        assert!(!scorer.is_degraded(0));
        let report = scorer.report();
        assert_eq!(report.rows.len(), 1);
        assert!(report.transitions.is_empty());
        assert!(report.degraded_ranks().is_empty());
    }

    #[test]
    fn jitter_does_not_degrade() {
        // ±20% jitter around the baseline stays under the scale floor's
        // z threshold.
        let mut scorer = HealthScorer::new(HealthConfig::default());
        for i in 0..40u64 {
            let step = 0.010 * (1.0 + 0.2 * if i % 2 == 0 { 1.0 } else { -1.0 });
            scorer.observe(0, i, step, 0.0, 0);
        }
        assert_eq!(scorer.state(0), HealthState::Healthy);
    }

    #[test]
    fn straggler_degrades_then_recovers() {
        let mut scorer = HealthScorer::new(HealthConfig::default());
        feed_steady(&mut scorer, 2, 10, 0.010);
        // Factor-3 straggler: step triples and the stall term lights up.
        let mut transition = None;
        for i in 10..14u64 {
            if let Some(t) = scorer.observe(2, i, 0.030, 0.020, 0) {
                transition = Some(t);
                break;
            }
        }
        let t = transition.expect("straggler must trip the state machine");
        assert_eq!(t.rank, 2);
        assert_eq!(t.from, HealthState::Healthy);
        assert_eq!(t.to, HealthState::Degraded);
        assert!(t.z >= HealthConfig::default().z_degraded);
        assert!(scorer.is_degraded(2));

        // Back to normal: recovers to healthy after the calm streak.
        let mut recovered = None;
        for i in 20..30u64 {
            if let Some(t) = scorer.observe(2, i, 0.010, 0.0, 0) {
                recovered = Some(t);
                break;
            }
        }
        let t = recovered.expect("calm samples must recover the rank");
        assert_eq!(t.to, HealthState::Healthy);
        assert!(!scorer.is_degraded(2));
    }

    #[test]
    fn severe_straggler_escalates_to_suspect() {
        let config = HealthConfig::default();
        let mut scorer = HealthScorer::new(config.clone());
        feed_steady(&mut scorer, 1, 10, 0.010);
        let mut states = Vec::new();
        for i in 10..20u64 {
            if let Some(t) = scorer.observe(1, i, 0.200, 0.190, 0) {
                states.push(t.to);
            }
        }
        assert_eq!(states, [HealthState::Degraded, HealthState::Suspect]);
        assert_eq!(scorer.state(1), HealthState::Suspect);
    }

    #[test]
    fn baseline_is_not_dragged_by_the_straggler() {
        let mut scorer = HealthScorer::new(HealthConfig::default());
        feed_steady(&mut scorer, 0, 10, 0.010);
        let before = scorer.report().rows[0].ewma_step_secs;
        for i in 10..20u64 {
            scorer.observe(0, i, 0.100, 0.0, 0);
        }
        let after = scorer.report().rows[0].ewma_step_secs;
        assert!(
            (after - before).abs() < 1e-9,
            "hot samples must not move the EWMA ({before} -> {after})"
        );
    }

    #[test]
    fn store_retries_raise_the_score() {
        let mut scorer = HealthScorer::new(HealthConfig::default());
        feed_steady(&mut scorer, 0, 10, 0.010);
        scorer.observe(0, 10, 0.010, 0.0, 20);
        let report = scorer.report();
        assert!(
            report.rows[0].last_z >= 10.0,
            "retries alone must score hot"
        );
    }

    #[test]
    fn report_json_round_trips() {
        let mut scorer = HealthScorer::new(HealthConfig::default());
        feed_steady(&mut scorer, 0, 5, 0.010);
        feed_steady(&mut scorer, 3, 5, 0.012);
        for i in 5..7u64 {
            scorer.observe(3, i, 0.100, 0.05, 0);
        }
        let report = scorer.report();
        assert_eq!(report.degraded_ranks(), [3]);
        let doc = Json::parse(&report.to_json().pretty()).unwrap();
        let ranks = doc.get("ranks").unwrap().as_array().unwrap();
        assert_eq!(ranks.len(), 2);
        assert_eq!(ranks[1].get("state").unwrap().as_str(), Some("degraded"));
        let transitions = doc.get("transitions").unwrap().as_array().unwrap();
        assert_eq!(transitions.len(), 1);
        assert_eq!(transitions[0].get("to").unwrap().as_str(), Some("degraded"));
    }
}
