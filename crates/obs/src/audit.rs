//! Structural invariant checks over the happens-before graph.
//!
//! The trace records event chains the system's correctness story leans
//! on — inject → detect → recover, submit → persist — and this module
//! is what *checks* them. Each invariant walks the [`CausalGraph`] and
//! reports violations with a causal witness path (the chain of events
//! proving — or failing to prove — the required edge). The `moc-audit`
//! binary runs the same checks over an exported `trace.json` and exits
//! non-zero on any violation, which is what gates CI.
//!
//! Invariants (stable slugs, the `invariant` field of `audit.json`):
//!
//! * `fault-detection` — every `fault-injected` flow start reaches a
//!   `fault-detected` step with a larger Lamport stamp;
//! * `detection-latency` — injection → detection completes within the
//!   configured detector bound (checked only when the runtime set one);
//! * `fault-recovery` — every fault flow is resolved by a `recovery`
//!   flow end;
//! * `recovery-causality` — no flow-resolved `recovery` precedes its
//!   `fault-detected` step in Lamport order;
//! * `ckpt-persist` — every `ckpt-submit` flow start reaches its
//!   engine-side flow end (the `persist` span) with a larger stamp;
//! * `span-nesting` — per-thread spans are properly nested: a span
//!   starting inside an open span ends inside it (1 µs slack for the
//!   exporter's ns-resolution serialization);
//! * `step-monotonic` — per-thread collective step order is monotone in
//!   the iteration number, except across a recovery or elastic
//!   transition (the legitimate rollbacks);
//! * `blame-accounting` — every blame window's attributed time sums to
//!   its measured wall time within the configured tolerance.

use crate::causal::{CausalEvent, CausalGraph};
use crate::critical::BlameReport;
use crate::json::Json;
use crate::sink::{Flow, SpanKind};

/// Ids below this bound are fault flows; at or above, checkpoint flows
/// (see [`crate::ckpt_flow_id`]).
const CKPT_FLOW_BASE: u64 = 1_000_000_000;

/// Tunables of one audit pass.
#[derive(Debug, Clone)]
pub struct AuditConfig {
    /// Upper bound, in seconds, on injection → detection for every
    /// fault flow. `None` skips the `detection-latency` invariant (the
    /// bound depends on the detector configuration only the runtime
    /// knows).
    pub detect_bound_secs: Option<f64>,
    /// Relative tolerance of the `blame-accounting` invariant (matches
    /// the 5 % window the blame analyzer is pinned to).
    pub blame_tolerance: f64,
}

impl Default for AuditConfig {
    fn default() -> Self {
        Self {
            detect_bound_secs: None,
            blame_tolerance: 0.05,
        }
    }
}

/// One invariant violation, with its causal witness.
#[derive(Debug, Clone)]
pub struct AuditViolation {
    /// Stable invariant slug (see the module docs).
    pub invariant: &'static str,
    /// Human-readable account of what failed.
    pub detail: String,
    /// The events proving the violation: the broken chain in Lamport
    /// order (e.g. the flow's start with no matching end, or the two
    /// events recorded out of causal order).
    pub witness: Vec<CausalEvent>,
}

impl AuditViolation {
    /// JSON form used in `audit.json`.
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("invariant".to_string(), Json::from(self.invariant)),
            ("detail".to_string(), Json::from(self.detail.as_str())),
            (
                "witness".to_string(),
                Json::Arr(self.witness.iter().map(CausalEvent::to_json).collect()),
            ),
        ])
    }
}

/// The audit verdict over one trace.
#[derive(Debug, Clone, Default)]
pub struct AuditReport {
    /// Events the graph held.
    pub events_checked: u64,
    /// Fault flows examined (injected starts).
    pub fault_flows: u64,
    /// Checkpoint flows examined (submit starts).
    pub ckpt_flows: u64,
    /// Every invariant violation found, in discovery order.
    pub violations: Vec<AuditViolation>,
}

impl AuditReport {
    /// Whether the trace passed every invariant.
    pub fn passed(&self) -> bool {
        self.violations.is_empty()
    }

    /// JSON form written as `audit.json`.
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("passed".to_string(), Json::from(self.passed())),
            (
                "events_checked".to_string(),
                Json::from(self.events_checked),
            ),
            ("fault_flows".to_string(), Json::from(self.fault_flows)),
            ("ckpt_flows".to_string(), Json::from(self.ckpt_flows)),
            (
                "violations".to_string(),
                Json::Arr(
                    self.violations
                        .iter()
                        .map(AuditViolation::to_json)
                        .collect(),
                ),
            ),
        ])
    }

    /// Terminal rendering used by the `moc-audit` binary.
    pub fn render_text(&self) -> String {
        let mut out = format!(
            "causal audit: {} event(s), {} fault flow(s), {} ckpt flow(s): {}\n",
            self.events_checked,
            self.fault_flows,
            self.ckpt_flows,
            if self.passed() {
                "PASS".to_string()
            } else {
                format!("{} VIOLATION(S)", self.violations.len())
            }
        );
        for v in &self.violations {
            out.push_str(&format!("  [{}] {}\n", v.invariant, v.detail));
            for e in &v.witness {
                out.push_str(&format!("      {}\n", e.describe()));
            }
        }
        out
    }
}

/// Runs every invariant over `graph` (and, when given, the blame
/// report), returning the combined verdict.
pub fn audit(
    graph: &CausalGraph,
    blame: Option<&BlameReport>,
    config: &AuditConfig,
) -> AuditReport {
    let mut report = AuditReport {
        events_checked: graph.events.len() as u64,
        ..AuditReport::default()
    };
    check_fault_flows(graph, config, &mut report);
    check_ckpt_flows(graph, &mut report);
    check_span_nesting(graph, &mut report);
    check_step_monotonic(graph, &mut report);
    if let Some(blame) = blame {
        check_blame_accounting(blame, config.blame_tolerance, &mut report);
    }
    report
}

/// The witness of a flow: its events in Lamport order.
fn flow_witness(graph: &CausalGraph, id: u64) -> Vec<CausalEvent> {
    graph
        .flows
        .get(&id)
        .map(|chain| chain.iter().map(|&i| graph.events[i].clone()).collect())
        .unwrap_or_default()
}

fn check_fault_flows(graph: &CausalGraph, config: &AuditConfig, report: &mut AuditReport) {
    for (&id, chain) in &graph.flows {
        if id >= CKPT_FLOW_BASE {
            continue;
        }
        let injected = chain
            .iter()
            .map(|&i| &graph.events[i])
            .find(|e| e.name == "fault-injected" && matches!(e.flow, Flow::Start(_)));
        let Some(injected) = injected else {
            continue; // not a fault-injection flow
        };
        report.fault_flows += 1;
        let detected = graph.flow_event(id, "fault-detected");
        match detected {
            None => report.violations.push(AuditViolation {
                invariant: "fault-detection",
                detail: format!(
                    "fault flow {id}: injection at iteration {} never reached a \
                     fault-detected step",
                    injected.iteration
                ),
                witness: flow_witness(graph, id),
            }),
            Some(detected) => {
                if detected.lamport <= injected.lamport {
                    report.violations.push(AuditViolation {
                        invariant: "fault-detection",
                        detail: format!(
                            "fault flow {id}: fault-detected (L{}) does not follow \
                             fault-injected (L{})",
                            detected.lamport, injected.lamport
                        ),
                        witness: flow_witness(graph, id),
                    });
                }
                if let Some(bound) = config.detect_bound_secs {
                    let latency = detected.end_secs() - injected.start_secs;
                    if latency > bound {
                        report.violations.push(AuditViolation {
                            invariant: "detection-latency",
                            detail: format!(
                                "fault flow {id}: detection took {latency:.3}s, \
                                 over the detector bound of {bound:.3}s"
                            ),
                            witness: flow_witness(graph, id),
                        });
                    }
                }
            }
        }
        let recovery = graph.flow_event(id, "recovery");
        match recovery {
            None => report.violations.push(AuditViolation {
                invariant: "fault-recovery",
                detail: format!(
                    "fault flow {id}: injection at iteration {} was never resolved \
                     by a recovery",
                    injected.iteration
                ),
                witness: flow_witness(graph, id),
            }),
            Some(recovery) => {
                if let Some(detected) = detected {
                    if recovery.lamport <= detected.lamport {
                        report.violations.push(AuditViolation {
                            invariant: "recovery-causality",
                            detail: format!(
                                "fault flow {id}: recovery (L{}) does not follow its \
                                 fault-detected step (L{})",
                                recovery.lamport, detected.lamport
                            ),
                            witness: flow_witness(graph, id),
                        });
                    }
                }
            }
        }
    }
}

fn check_ckpt_flows(graph: &CausalGraph, report: &mut AuditReport) {
    for (&id, chain) in &graph.flows {
        if id < CKPT_FLOW_BASE {
            continue;
        }
        let submit = chain
            .iter()
            .map(|&i| &graph.events[i])
            .find(|e| matches!(e.flow, Flow::Start(_)));
        let Some(submit) = submit else {
            continue; // an end with no start is the dump of a dead lane
        };
        report.ckpt_flows += 1;
        let end = chain
            .iter()
            .map(|&i| &graph.events[i])
            .find(|e| matches!(e.flow, Flow::End(_)));
        match end {
            None => report.violations.push(AuditViolation {
                invariant: "ckpt-persist",
                detail: format!(
                    "ckpt flow {id}: '{}' at version {} never reached a persist \
                     (no flow end recorded)",
                    submit.name, submit.iteration
                ),
                witness: flow_witness(graph, id),
            }),
            Some(end) => {
                if end.lamport <= submit.lamport {
                    report.violations.push(AuditViolation {
                        invariant: "ckpt-persist",
                        detail: format!(
                            "ckpt flow {id}: persist '{}' (L{}) does not follow its \
                             submit (L{})",
                            end.name, end.lamport, submit.lamport
                        ),
                        witness: flow_witness(graph, id),
                    });
                }
            }
        }
    }
}

/// Serialization slack: ts/dur are exported at nanosecond resolution.
const NESTING_SLACK_SECS: f64 = 1e-6;

fn check_span_nesting(graph: &CausalGraph, report: &mut AuditReport) {
    for (&(pid, tid), lane) in &graph.lanes {
        // Nesting is a property of the wall-clock intervals, so order by
        // start time (Lamport order within a lane is *end* order: an
        // inner span records before the parent that encloses it).
        let mut spans: Vec<&CausalEvent> = lane.iter().map(|&i| &graph.events[i]).collect();
        spans.sort_by(|a, b| a.start_secs.total_cmp(&b.start_secs));
        let mut open: Vec<&CausalEvent> = Vec::new();
        for s in spans {
            while let Some(top) = open.last() {
                if s.start_secs >= top.end_secs() {
                    open.pop();
                } else {
                    break;
                }
            }
            if let Some(top) = open.last() {
                if s.end_secs() > top.end_secs() + NESTING_SLACK_SECS {
                    report.violations.push(AuditViolation {
                        invariant: "span-nesting",
                        detail: format!(
                            "lane ({pid},{tid}): '{}' starts inside '{}' but ends \
                             {:.6}s after it",
                            s.name,
                            top.name,
                            s.end_secs() - top.end_secs()
                        ),
                        witness: vec![(*top).clone(), s.clone()],
                    });
                }
            }
            open.push(s);
        }
    }
}

fn check_step_monotonic(graph: &CausalGraph, report: &mut AuditReport) {
    // Rollback points: the Lamport stamps of every recovery or elastic
    // transition. An iteration-number decrease on a lane is legitimate
    // exactly when one of these falls between the two spans.
    let rollbacks: Vec<u64> = graph
        .events
        .iter()
        .filter(|e| {
            (e.kind == SpanKind::Fault && e.name == "recovery") || e.kind == SpanKind::Elastic
        })
        .map(|e| e.lamport)
        .collect();
    for (&(pid, tid), lane) in &graph.lanes {
        let steps: Vec<&CausalEvent> = lane
            .iter()
            .map(|&i| &graph.events[i])
            .filter(|e| e.kind == SpanKind::Collective)
            .collect();
        for pair in steps.windows(2) {
            let (a, b) = (pair[0], pair[1]);
            if b.iteration >= a.iteration {
                continue;
            }
            let excused = rollbacks.iter().any(|&r| r > a.lamport && r < b.lamport);
            if !excused {
                report.violations.push(AuditViolation {
                    invariant: "step-monotonic",
                    detail: format!(
                        "lane ({pid},{tid}): collective step went backwards from \
                         iteration {} (L{}) to {} (L{}) with no recovery between",
                        a.iteration, a.lamport, b.iteration, b.lamport
                    ),
                    witness: vec![a.clone(), b.clone()],
                });
            }
        }
    }
}

fn check_blame_accounting(blame: &BlameReport, tolerance: f64, report: &mut AuditReport) {
    for window in &blame.iterations {
        let attributed = window.attributed_total_secs();
        let slack = tolerance * window.wall_secs.max(1e-9);
        if (attributed - window.wall_secs).abs() > slack {
            report.violations.push(AuditViolation {
                invariant: "blame-accounting",
                detail: format!(
                    "blame window (epoch {}, iteration {}): attributed {attributed:.6}s \
                     vs wall {:.6}s exceeds the {:.0}% tolerance",
                    window.epoch,
                    window.iteration,
                    window.wall_secs,
                    100.0 * tolerance
                ),
                witness: Vec::new(),
            });
        }
    }
}

/// The `blame-accounting` invariant over an on-disk `blame.json` (the
/// `moc-audit` binary has the JSON, not the in-memory report). Returns
/// the violations found.
pub fn audit_blame_json(doc: &Json, tolerance: f64) -> Vec<AuditViolation> {
    let mut out = Vec::new();
    let Some(windows) = doc.get("iterations").and_then(Json::as_array) else {
        return out;
    };
    for w in windows {
        let epoch = w.get("epoch").and_then(Json::as_u64).unwrap_or(0);
        let iteration = w.get("iteration").and_then(Json::as_u64).unwrap_or(0);
        let wall = w.get("wall_secs").and_then(Json::as_f64).unwrap_or(0.0);
        let attributed: f64 = w
            .get("attributed")
            .and_then(Json::as_object)
            .map(|fields| fields.iter().filter_map(|(_, v)| v.as_f64()).sum())
            .unwrap_or(0.0);
        let slack = tolerance * wall.max(1e-9);
        if (attributed - wall).abs() > slack {
            out.push(AuditViolation {
                invariant: "blame-accounting",
                detail: format!(
                    "blame window (epoch {epoch}, iteration {iteration}): attributed \
                     {attributed:.6}s vs wall {wall:.6}s exceeds the {:.0}% tolerance",
                    100.0 * tolerance
                ),
                witness: Vec::new(),
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::causal::CausalEvent;

    #[allow(clippy::too_many_arguments)]
    fn ev(
        tid: u32,
        name: &str,
        kind: SpanKind,
        iteration: u64,
        lamport: u64,
        start: f64,
        dur: f64,
        flow: Flow,
    ) -> CausalEvent {
        CausalEvent {
            pid: 0,
            tid,
            name: name.to_string(),
            kind,
            iteration,
            start_secs: start,
            dur_secs: dur,
            flow,
            lamport,
        }
    }

    fn healthy_fault_chain() -> Vec<CausalEvent> {
        vec![
            ev(
                0,
                "fault-injected",
                SpanKind::Fault,
                3,
                1,
                0.10,
                0.01,
                Flow::Start(1),
            ),
            ev(
                0,
                "fault-detected",
                SpanKind::Fault,
                3,
                2,
                0.50,
                0.40,
                Flow::Step(1),
            ),
            ev(
                0,
                "recovery",
                SpanKind::Fault,
                3,
                3,
                0.90,
                0.20,
                Flow::End(1),
            ),
        ]
    }

    #[test]
    fn healthy_chains_pass() {
        let mut events = healthy_fault_chain();
        events.push(ev(
            1,
            "ckpt-submit",
            SpanKind::Ckpt,
            4,
            4,
            1.2,
            0.001,
            Flow::Start(CKPT_FLOW_BASE + 4 * 4096),
        ));
        events.push(ev(
            1_000_000,
            "persist",
            SpanKind::Persist,
            4,
            5,
            1.21,
            0.01,
            Flow::End(CKPT_FLOW_BASE + 4 * 4096),
        ));
        let graph = CausalGraph::from_causal(events);
        let report = audit(&graph, None, &AuditConfig::default());
        assert!(report.passed(), "{}", report.render_text());
        assert_eq!(report.fault_flows, 1);
        assert_eq!(report.ckpt_flows, 1);
    }

    #[test]
    fn missing_detection_and_recovery_are_flagged() {
        let events = vec![ev(
            0,
            "fault-injected",
            SpanKind::Fault,
            3,
            1,
            0.1,
            0.01,
            Flow::Start(1),
        )];
        let graph = CausalGraph::from_causal(events);
        let report = audit(&graph, None, &AuditConfig::default());
        let slugs: Vec<&str> = report.violations.iter().map(|v| v.invariant).collect();
        assert_eq!(slugs, ["fault-detection", "fault-recovery"]);
        assert!(!report.violations[0].witness.is_empty(), "witness carried");
    }

    #[test]
    fn detection_over_bound_is_flagged() {
        let graph = CausalGraph::from_causal(healthy_fault_chain());
        let config = AuditConfig {
            detect_bound_secs: Some(0.5),
            ..AuditConfig::default()
        };
        // end of detection (0.9) - start of injection (0.1) = 0.8 > 0.5.
        let report = audit(&graph, None, &config);
        let slugs: Vec<&str> = report.violations.iter().map(|v| v.invariant).collect();
        assert_eq!(slugs, ["detection-latency"]);
        // A generous bound passes.
        let config = AuditConfig {
            detect_bound_secs: Some(2.0),
            ..AuditConfig::default()
        };
        assert!(audit(&graph, None, &config).passed());
    }

    #[test]
    fn reordered_recovery_is_exactly_recovery_causality() {
        let mut events = healthy_fault_chain();
        // Swap the Lamport stamps of detection and recovery: the flow
        // still has all three events, but the recovery now precedes its
        // detection in causal order.
        events[1].lamport = 3;
        events[2].lamport = 2;
        let graph = CausalGraph::from_causal(events);
        let report = audit(&graph, None, &AuditConfig::default());
        let slugs: Vec<&str> = report.violations.iter().map(|v| v.invariant).collect();
        assert_eq!(slugs, ["recovery-causality"]);
        let witness = &report.violations[0].witness;
        assert_eq!(witness.len(), 3, "witness is the whole flow chain");
        assert_eq!(witness[1].name, "recovery", "chain shows the inversion");
    }

    #[test]
    fn dropped_persist_is_exactly_ckpt_persist() {
        let id = CKPT_FLOW_BASE + 8 * 4096 + 1;
        let events = vec![ev(
            1,
            "ckpt-submit",
            SpanKind::Ckpt,
            8,
            1,
            2.0,
            0.001,
            Flow::Start(id),
        )];
        let graph = CausalGraph::from_causal(events);
        let report = audit(&graph, None, &AuditConfig::default());
        let slugs: Vec<&str> = report.violations.iter().map(|v| v.invariant).collect();
        assert_eq!(slugs, ["ckpt-persist"]);
        assert_eq!(report.violations[0].witness[0].name, "ckpt-submit");
    }

    #[test]
    fn bad_nesting_is_flagged() {
        let events = vec![
            ev(2, "compute", SpanKind::Phase, 1, 1, 0.0, 1.0, Flow::None),
            // Starts inside compute, ends well past it.
            ev(
                2,
                "tp-sync",
                SpanKind::Collective,
                1,
                2,
                0.5,
                1.0,
                Flow::None,
            ),
        ];
        let graph = CausalGraph::from_causal(events);
        let report = audit(&graph, None, &AuditConfig::default());
        let slugs: Vec<&str> = report.violations.iter().map(|v| v.invariant).collect();
        assert_eq!(slugs, ["span-nesting"]);
    }

    #[test]
    fn rollback_excuses_step_regression() {
        let regression = vec![
            ev(
                2,
                "ring-all-reduce",
                SpanKind::Collective,
                7,
                1,
                0.0,
                0.1,
                Flow::None,
            ),
            ev(
                2,
                "ring-all-reduce",
                SpanKind::Collective,
                5,
                2,
                0.2,
                0.1,
                Flow::None,
            ),
        ];
        let graph = CausalGraph::from_causal(regression.clone());
        let report = audit(&graph, None, &AuditConfig::default());
        let slugs: Vec<&str> = report.violations.iter().map(|v| v.invariant).collect();
        assert_eq!(slugs, ["step-monotonic"]);

        // The same regression with a recovery in between is a rollback.
        let mut excused = regression;
        excused[1].lamport = 3;
        excused.push(ev(
            0,
            "recovery",
            SpanKind::Fault,
            7,
            2,
            0.15,
            0.01,
            Flow::None,
        ));
        let graph = CausalGraph::from_causal(excused);
        assert!(audit(&graph, None, &AuditConfig::default()).passed());
    }

    #[test]
    fn blame_json_accounting_catches_mismatched_rows() {
        let doc = Json::parse(
            r#"{"iterations":[
                {"epoch":0,"iteration":1,"wall_secs":1.0,
                 "attributed":{"compute":0.99,"reduce":0.005}},
                {"epoch":0,"iteration":2,"wall_secs":1.0,
                 "attributed":{"compute":0.5}}
            ]}"#,
        )
        .unwrap();
        let violations = audit_blame_json(&doc, 0.05);
        assert_eq!(violations.len(), 1);
        assert!(violations[0].detail.contains("iteration 2"));
    }
}
