//! Critical-path blame: who ate the iteration time, and which chaos
//! event cost what.
//!
//! The analyzer consumes the merged span trace ([`TraceEvent`]) after a
//! run and answers the question spans alone leave open: an iteration
//! was slow — was it compute, an exposed collective wait, a checkpoint,
//! a straggler stall, or a recovery? The algorithm is a priority sweep
//! over each iteration's wall-clock window:
//!
//! 1. Foreground spans (rank and coordinator lanes; background engine
//!    writers at tid ≥ [`crate::sink::BACKGROUND_TID_BASE`] and their
//!    `persist`/`gc` spans are excluded — hiding that work *is* the
//!    system under test) are grouped into per-iteration windows. A
//!    recovery rolls iterations back and re-executes them, so windows
//!    are keyed by `(epoch, iteration)` where the epoch increments at
//!    every `recovery` span — re-executed iterations get their own
//!    window instead of smearing across the fault.
//! 2. Each window `[min start, max end]` is cut at every span boundary;
//!    every elementary slice is attributed to exactly one
//!    [`BlameCategory`]: the highest-priority span active during the
//!    slice (ties to the innermost, i.e. latest-started, span), or
//!    `Idle` when nothing foreground is active. Waits rank *below*
//!    compute, so a `ring-all-reduce` slice counts as ring-wait only
//!    while no rank is computing — the sweep measures **exposed** wait,
//!    not issued wait.
//!
//! Because every slice lands in exactly one category, per-window
//! attributed time sums to the window's wall time by construction; the
//! live test pins that the windows in turn tile the measured training
//! loop. The incident report correlates chaos-plane activity
//! (suspicions, gray mesh chaos, recoveries, elastic transitions,
//! straggler stalls) with its measured latency impact: time blamed on
//! the disruption plus the window's excess wall time over the clean
//! iteration median, joined with the store-retry delta from the
//! telemetry series when one is available.

use crate::json::Json;
use crate::sink::{SpanKind, TraceEvent, BACKGROUND_TID_BASE};
use crate::telemetry::{Counter, TelemetrySample};
use std::collections::BTreeMap;

/// Number of blame categories.
pub const CATEGORY_COUNT: usize = 13;

/// Where an elementary slice of iteration wall time is attributed.
/// Declaration order is sweep priority: when several spans cover the
/// same instant the *earliest-declared* category wins, so waits below
/// `Compute` only accumulate when they are exposed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BlameCategory {
    /// Fault lifecycle: detection legs, recovery plan/fetch/restore.
    Recovery = 0,
    /// Elastic transitions (shrink rebalance, expand restore).
    Elastic = 1,
    /// Injected straggler stalls.
    StragglerStall = 2,
    /// Training-path checkpoint work (collect/serialize/submit).
    Ckpt = 3,
    /// Evaluation passes.
    Eval = 4,
    /// Forward/backward compute.
    Compute = 5,
    /// Coordinator star reduce.
    Reduce = 6,
    /// Update apply on the ranks.
    Apply = 7,
    /// Exposed tensor-parallel sync.
    TpSync = 8,
    /// Exposed pipeline wait/relay.
    PpWait = 9,
    /// Exposed ring all-reduce wait.
    RingWait = 10,
    /// Control-plane odds and ends (apply barrier, …).
    Control = 11,
    /// No foreground span active.
    Idle = 12,
}

impl BlameCategory {
    /// Every category, in priority order.
    pub const ALL: [BlameCategory; CATEGORY_COUNT] = [
        BlameCategory::Recovery,
        BlameCategory::Elastic,
        BlameCategory::StragglerStall,
        BlameCategory::Ckpt,
        BlameCategory::Eval,
        BlameCategory::Compute,
        BlameCategory::Reduce,
        BlameCategory::Apply,
        BlameCategory::TpSync,
        BlameCategory::PpWait,
        BlameCategory::RingWait,
        BlameCategory::Control,
        BlameCategory::Idle,
    ];

    /// The category's slot in an attribution array.
    pub fn index(self) -> usize {
        self as usize
    }

    /// Stable report label.
    pub fn label(self) -> &'static str {
        match self {
            BlameCategory::Recovery => "recovery",
            BlameCategory::Elastic => "elastic",
            BlameCategory::StragglerStall => "straggler-stall",
            BlameCategory::Ckpt => "ckpt",
            BlameCategory::Eval => "eval",
            BlameCategory::Compute => "compute",
            BlameCategory::Reduce => "reduce",
            BlameCategory::Apply => "apply",
            BlameCategory::TpSync => "tp-sync",
            BlameCategory::PpWait => "pp-wait",
            BlameCategory::RingWait => "ring-wait",
            BlameCategory::Control => "control",
            BlameCategory::Idle => "idle",
        }
    }
}

/// The blame category of one span; `None` for background work that is
/// off the critical path by design.
pub fn categorize(event: &TraceEvent) -> Option<BlameCategory> {
    if event.tid >= BACKGROUND_TID_BASE {
        return None;
    }
    match event.kind {
        SpanKind::Persist | SpanKind::Gc => None,
        SpanKind::Fault => Some(BlameCategory::Recovery),
        SpanKind::Elastic => Some(BlameCategory::Elastic),
        SpanKind::Ckpt => Some(BlameCategory::Ckpt),
        SpanKind::Phase | SpanKind::Collective | SpanKind::Control => Some(match event.name {
            "straggler-stall" => BlameCategory::StragglerStall,
            "compute" => BlameCategory::Compute,
            "reduce" => BlameCategory::Reduce,
            "apply" => BlameCategory::Apply,
            "tp-sync" => BlameCategory::TpSync,
            "pp-wait" | "pp-relay" => BlameCategory::PpWait,
            "ring-all-reduce" => BlameCategory::RingWait,
            "eval" => BlameCategory::Eval,
            _ => BlameCategory::Control,
        }),
    }
}

/// Blame for one `(epoch, iteration)` execution window.
#[derive(Debug, Clone)]
pub struct IterationBlame {
    /// Recovery epoch: how many `recovery` spans ended before this
    /// window's spans started. Re-executed iterations appear once per
    /// epoch.
    pub epoch: u64,
    /// The training iteration.
    pub iteration: u64,
    /// Window start, seconds from the run anchor.
    pub start_secs: f64,
    /// Window wall time (max span end − min span start).
    pub wall_secs: f64,
    /// Attributed seconds by [`BlameCategory::index`]; sums to
    /// `wall_secs` by construction.
    pub attributed: [f64; CATEGORY_COUNT],
}

impl IterationBlame {
    /// Seconds attributed to one category.
    pub fn attributed_secs(&self, category: BlameCategory) -> f64 {
        self.attributed[category.index()]
    }

    /// Total attributed seconds (equals `wall_secs` up to float error).
    pub fn attributed_total_secs(&self) -> f64 {
        self.attributed.iter().sum()
    }

    /// Seconds blamed on disruptions (recovery + elastic + stalls).
    pub fn disruption_secs(&self) -> f64 {
        self.attributed_secs(BlameCategory::Recovery)
            + self.attributed_secs(BlameCategory::Elastic)
            + self.attributed_secs(BlameCategory::StragglerStall)
    }
}

/// What kind of chaos-plane activity an [`Incident`] reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IncidentKind {
    /// A declared fault with a full recovery.
    Recovery,
    /// A heartbeat suspicion; `cleared` is whether it resolved without
    /// a declared fault.
    Suspicion {
        /// Whether the suspicion cleared on its own.
        cleared: bool,
    },
    /// Gray mesh chaos (delays/drops/heartbeat loss) without recovery.
    GrayChaos,
    /// An elastic shrink or expand transition.
    Elastic,
    /// An injected straggler stall.
    Straggler,
}

impl IncidentKind {
    /// Stable report label.
    pub fn label(self) -> &'static str {
        match self {
            IncidentKind::Recovery => "recovery",
            IncidentKind::Suspicion { cleared: true } => "suspicion-cleared",
            IncidentKind::Suspicion { cleared: false } => "suspicion",
            IncidentKind::GrayChaos => "gray-chaos",
            IncidentKind::Elastic => "elastic",
            IncidentKind::Straggler => "straggler",
        }
    }
}

/// One chaos-plane event correlated with its measured latency impact.
#[derive(Debug, Clone)]
pub struct Incident {
    /// The iteration the disruption landed in.
    pub iteration: u64,
    /// Recovery epoch of the affected window.
    pub epoch: u64,
    /// What happened.
    pub kind: IncidentKind,
    /// Window start, seconds from the run anchor.
    pub start_secs: f64,
    /// Seconds the sweep blamed on the disruption itself.
    pub disruption_secs: f64,
    /// Window wall time minus the clean-iteration median (signed: a
    /// masked disruption can come out ≈ 0).
    pub excess_secs: f64,
    /// Store retries the telemetry series saw inside the window (0
    /// when no series was recorded).
    pub store_retries: u64,
}

/// The full blame + incident report for one run.
#[derive(Debug, Clone, Default)]
pub struct BlameReport {
    /// Per-window blame, ordered by (epoch, iteration).
    pub iterations: Vec<IterationBlame>,
    /// Attributed seconds summed over all windows, by
    /// [`BlameCategory::index`].
    pub aggregate: [f64; CATEGORY_COUNT],
    /// Sum of all window wall times.
    pub total_wall_secs: f64,
    /// Median wall time of clean (undisrupted, computing) windows.
    pub clean_median_secs: f64,
    /// Chaos-plane events with their measured latency impact.
    pub incidents: Vec<Incident>,
}

impl BlameReport {
    /// Aggregate seconds attributed to one category.
    pub fn aggregate_secs(&self, category: BlameCategory) -> f64 {
        self.aggregate[category.index()]
    }

    /// Renders the aggregate blame table plus the incident list.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        out.push_str("  blame (exposed wall time by category):\n");
        for category in BlameCategory::ALL {
            let secs = self.aggregate_secs(category);
            if secs <= 0.0 {
                continue;
            }
            let share = if self.total_wall_secs > 0.0 {
                100.0 * secs / self.total_wall_secs
            } else {
                0.0
            };
            out.push_str(&format!(
                "    {:<16} {:>12} {:>6.1}%\n",
                category.label(),
                format!("{:.3} ms", 1e3 * secs),
                share
            ));
        }
        out.push_str(&format!(
            "    {:<16} {:>12} over {} window(s)\n",
            "total",
            format!("{:.3} ms", 1e3 * self.total_wall_secs),
            self.iterations.len()
        ));
        if !self.incidents.is_empty() {
            out.push_str("  incidents:\n");
            for incident in &self.incidents {
                out.push_str(&format!(
                    "    iter {:>4} {:<18} disruption {:>10} excess {:>10} store-retries {}\n",
                    incident.iteration,
                    incident.kind.label(),
                    format!("{:.3} ms", 1e3 * incident.disruption_secs),
                    format!("{:+.3} ms", 1e3 * incident.excess_secs),
                    incident.store_retries
                ));
            }
        }
        out
    }

    /// Schema'd JSON form (written as `blame.json` in the trace dir).
    pub fn to_json(&self) -> Json {
        let categories = Json::Obj(
            BlameCategory::ALL
                .iter()
                .map(|&c| (c.label().to_string(), Json::from(self.aggregate_secs(c))))
                .collect(),
        );
        let iterations = Json::Arr(
            self.iterations
                .iter()
                .map(|row| {
                    Json::Obj(vec![
                        ("epoch".to_string(), Json::from(row.epoch)),
                        ("iteration".to_string(), Json::from(row.iteration)),
                        ("start_secs".to_string(), Json::from(row.start_secs)),
                        ("wall_secs".to_string(), Json::from(row.wall_secs)),
                        (
                            "attributed".to_string(),
                            Json::Obj(
                                BlameCategory::ALL
                                    .iter()
                                    .map(|&c| {
                                        (c.label().to_string(), Json::from(row.attributed_secs(c)))
                                    })
                                    .collect(),
                            ),
                        ),
                    ])
                })
                .collect(),
        );
        let incidents = Json::Arr(
            self.incidents
                .iter()
                .map(|incident| {
                    Json::Obj(vec![
                        ("iteration".to_string(), Json::from(incident.iteration)),
                        ("epoch".to_string(), Json::from(incident.epoch)),
                        ("kind".to_string(), Json::from(incident.kind.label())),
                        ("start_secs".to_string(), Json::from(incident.start_secs)),
                        (
                            "disruption_secs".to_string(),
                            Json::from(incident.disruption_secs),
                        ),
                        ("excess_secs".to_string(), Json::from(incident.excess_secs)),
                        (
                            "store_retries".to_string(),
                            Json::from(incident.store_retries),
                        ),
                    ])
                })
                .collect(),
        );
        Json::Obj(vec![
            (
                "total_wall_secs".to_string(),
                Json::from(self.total_wall_secs),
            ),
            (
                "clean_median_secs".to_string(),
                Json::from(self.clean_median_secs),
            ),
            ("categories".to_string(), categories),
            ("iterations".to_string(), iterations),
            ("incidents".to_string(), incidents),
        ])
    }
}

/// Per-lane phase totals derived from the merged trace (the per-rank
/// breakdown rendered in the run summary).
#[derive(Debug, Clone)]
pub struct RankPhases {
    /// Process lane (node id; the control plane sits past the nodes).
    pub pid: u32,
    /// Thread lane (global rank, or 0 for the coordinator).
    pub tid: u32,
    /// Display label (`node0/rank 3`, `control-plane/coordinator`).
    pub label: String,
    /// Spans recorded on the lane.
    pub spans: u64,
    /// Seconds in forward/backward compute.
    pub compute_secs: f64,
    /// Seconds in collective legs (reduce/apply/tp/pp/ring).
    pub collective_secs: f64,
    /// Seconds in injected straggler stalls.
    pub stall_secs: f64,
    /// Seconds in training-path checkpoint work.
    pub ckpt_secs: f64,
    /// Seconds in fault + elastic handling.
    pub fault_secs: f64,
    /// Seconds in evaluation passes.
    pub eval_secs: f64,
}

/// Sums per-lane phase time for every foreground lane, ordered by
/// `(pid, tid)`. `labels` maps `(pid, tid)` to a display name.
pub fn per_rank_breakdown(
    events: &[TraceEvent],
    labels: &dyn Fn(u32, u32) -> String,
) -> Vec<RankPhases> {
    let mut lanes: BTreeMap<(u32, u32), RankPhases> = BTreeMap::new();
    for event in events {
        let Some(category) = categorize(event) else {
            continue;
        };
        let lane = lanes
            .entry((event.pid, event.tid))
            .or_insert_with(|| RankPhases {
                pid: event.pid,
                tid: event.tid,
                label: labels(event.pid, event.tid),
                spans: 0,
                compute_secs: 0.0,
                collective_secs: 0.0,
                stall_secs: 0.0,
                ckpt_secs: 0.0,
                fault_secs: 0.0,
                eval_secs: 0.0,
            });
        lane.spans += 1;
        let secs = event.dur_secs;
        match category {
            BlameCategory::Compute => lane.compute_secs += secs,
            BlameCategory::Reduce
            | BlameCategory::Apply
            | BlameCategory::TpSync
            | BlameCategory::PpWait
            | BlameCategory::RingWait
            | BlameCategory::Control => lane.collective_secs += secs,
            BlameCategory::StragglerStall => lane.stall_secs += secs,
            BlameCategory::Ckpt => lane.ckpt_secs += secs,
            BlameCategory::Recovery | BlameCategory::Elastic => lane.fault_secs += secs,
            BlameCategory::Eval => lane.eval_secs += secs,
            BlameCategory::Idle => {}
        }
    }
    lanes.into_values().collect()
}

struct WindowSpan {
    start: f64,
    end: f64,
    category: BlameCategory,
    name: &'static str,
}

/// Runs the blame + incident analysis over a merged trace. Pass the
/// run's telemetry series (when one was recorded) to join store-retry
/// deltas into the incidents.
pub fn analyze(events: &[TraceEvent], telemetry: Option<&[TelemetrySample]>) -> BlameReport {
    // Epoch boundaries: the end of every `recovery` span.
    let mut recovery_ends: Vec<f64> = events
        .iter()
        .filter(|e| e.kind == SpanKind::Fault && e.name == "recovery")
        .map(|e| e.start_secs + e.dur_secs)
        .collect();
    recovery_ends.sort_by(f64::total_cmp);
    let epoch_of = |start: f64| recovery_ends.iter().filter(|&&end| end <= start).count() as u64;

    let mut windows: BTreeMap<(u64, u64), Vec<WindowSpan>> = BTreeMap::new();
    for event in events {
        let Some(category) = categorize(event) else {
            continue;
        };
        windows
            .entry((epoch_of(event.start_secs), event.iteration))
            .or_default()
            .push(WindowSpan {
                start: event.start_secs,
                end: event.start_secs + event.dur_secs,
                category,
                name: event.name,
            });
    }

    let mut report = BlameReport::default();
    for ((epoch, iteration), spans) in &windows {
        let window_start = spans.iter().map(|s| s.start).fold(f64::INFINITY, f64::min);
        let window_end = spans
            .iter()
            .map(|s| s.end)
            .fold(f64::NEG_INFINITY, f64::max);
        let mut boundaries: Vec<f64> = spans.iter().flat_map(|s| [s.start, s.end]).collect();
        boundaries.sort_by(f64::total_cmp);
        boundaries.dedup();
        let mut attributed = [0.0f64; CATEGORY_COUNT];
        for pair in boundaries.windows(2) {
            let (a, b) = (pair[0], pair[1]);
            if b <= a {
                continue;
            }
            // Highest priority wins; ties go to the innermost
            // (latest-started) span.
            let best = spans
                .iter()
                .filter(|s| s.start <= a && s.end >= b)
                .min_by(|x, y| {
                    x.category
                        .index()
                        .cmp(&y.category.index())
                        .then(y.start.total_cmp(&x.start))
                })
                .map(|s| s.category)
                .unwrap_or(BlameCategory::Idle);
            attributed[best.index()] += b - a;
        }
        report.iterations.push(IterationBlame {
            epoch: *epoch,
            iteration: *iteration,
            start_secs: window_start,
            wall_secs: window_end - window_start,
            attributed,
        });
    }

    for row in &report.iterations {
        for (aggregate, value) in report.aggregate.iter_mut().zip(row.attributed.iter()) {
            *aggregate += value;
        }
    }
    report.total_wall_secs = report.iterations.iter().map(|r| r.wall_secs).sum();

    // Clean baseline: the median wall time of undisrupted windows that
    // actually computed (screens out the bootstrap-checkpoint window).
    let mut clean: Vec<f64> = report
        .iterations
        .iter()
        .filter(|r| r.disruption_secs() == 0.0 && r.attributed_secs(BlameCategory::Compute) > 0.0)
        .map(|r| r.wall_secs)
        .collect();
    clean.sort_by(f64::total_cmp);
    report.clean_median_secs = if clean.is_empty() {
        0.0
    } else {
        clean[clean.len() / 2]
    };

    for row in &report.iterations {
        if row.disruption_secs() <= 0.0 {
            continue;
        }
        let spans = &windows[&(row.epoch, row.iteration)];
        let has = |name: &str| spans.iter().any(|s| s.name == name);
        let kind = if has("recovery") {
            IncidentKind::Recovery
        } else if has("fault-suspected") {
            IncidentKind::Suspicion {
                cleared: has("fault-cleared"),
            }
        } else if row.attributed_secs(BlameCategory::Recovery) > 0.0 {
            IncidentKind::GrayChaos
        } else if row.attributed_secs(BlameCategory::Elastic) > 0.0 {
            IncidentKind::Elastic
        } else {
            IncidentKind::Straggler
        };
        let window_end = row.start_secs + row.wall_secs;
        report.incidents.push(Incident {
            iteration: row.iteration,
            epoch: row.epoch,
            kind,
            start_secs: row.start_secs,
            disruption_secs: row.disruption_secs(),
            excess_secs: row.wall_secs - report.clean_median_secs,
            store_retries: telemetry
                .map(|samples| retries_between(samples, row.start_secs, window_end))
                .unwrap_or(0),
        });
    }
    report
}

/// The store-retry delta the telemetry series saw across `[a, b]`.
fn retries_between(samples: &[TelemetrySample], a: f64, b: f64) -> u64 {
    let before = samples
        .iter()
        .take_while(|s| s.at_secs <= a)
        .last()
        .map(|s| s.value(Counter::StoreRetries))
        .unwrap_or(0);
    let after = samples
        .iter()
        .filter(|s| s.at_secs >= b)
        .map(|s| s.value(Counter::StoreRetries))
        .next()
        .or_else(|| samples.last().map(|s| s.value(Counter::StoreRetries)))
        .unwrap_or(0);
    after.saturating_sub(before)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::Flow;

    fn span(
        tid: u32,
        name: &'static str,
        kind: SpanKind,
        iteration: u64,
        start: f64,
        dur: f64,
    ) -> TraceEvent {
        TraceEvent {
            pid: 0,
            tid,
            name,
            kind,
            iteration,
            start_secs: start,
            dur_secs: dur,
            flow: Flow::None,
            lamport: 0,
        }
    }

    #[test]
    fn exposed_wait_only_counts_when_no_rank_computes() {
        // Rank 0 computes [0, 10]; rank 1 computes [0, 4] then rings
        // [4, 12]. Ring wait is exposed only over [10, 12].
        let events = vec![
            span(0, "compute", SpanKind::Phase, 1, 0.0, 10.0),
            span(1, "compute", SpanKind::Phase, 1, 0.0, 4.0),
            span(1, "ring-all-reduce", SpanKind::Collective, 1, 4.0, 8.0),
        ];
        let report = analyze(&events, None);
        assert_eq!(report.iterations.len(), 1);
        let row = &report.iterations[0];
        assert!((row.wall_secs - 12.0).abs() < 1e-9);
        assert!((row.attributed_secs(BlameCategory::Compute) - 10.0).abs() < 1e-9);
        assert!((row.attributed_secs(BlameCategory::RingWait) - 2.0).abs() < 1e-9);
        assert!((row.attributed_total_secs() - row.wall_secs).abs() < 1e-9);
    }

    #[test]
    fn stalls_outrank_compute_and_ckpt_is_attributed() {
        let events = vec![
            span(0, "compute", SpanKind::Phase, 3, 0.0, 6.0),
            span(0, "straggler-stall", SpanKind::Phase, 3, 2.0, 3.0),
            span(1, "ckpt-serialize", SpanKind::Ckpt, 3, 6.0, 2.0),
        ];
        let report = analyze(&events, None);
        let row = &report.iterations[0];
        assert!((row.attributed_secs(BlameCategory::StragglerStall) - 3.0).abs() < 1e-9);
        assert!((row.attributed_secs(BlameCategory::Compute) - 3.0).abs() < 1e-9);
        assert!((row.attributed_secs(BlameCategory::Ckpt) - 2.0).abs() < 1e-9);
        assert!((report.total_wall_secs - 8.0).abs() < 1e-9);
        // One straggler incident, with the stall as its disruption.
        assert_eq!(report.incidents.len(), 1);
        assert_eq!(report.incidents[0].kind, IncidentKind::Straggler);
        assert!((report.incidents[0].disruption_secs - 3.0).abs() < 1e-9);
    }

    #[test]
    fn recovery_splits_reexecuted_iterations_into_epochs() {
        // Iterations 1–2 run, a fault at 2 recovers, then 1–2 re-run.
        // Without epochs the re-executions would smear iteration 1's
        // window across the whole fault.
        let events = vec![
            span(0, "compute", SpanKind::Phase, 1, 0.0, 1.0),
            span(0, "compute", SpanKind::Phase, 2, 1.0, 1.0),
            span(0, "fault-injected", SpanKind::Fault, 2, 1.5, 0.0),
            span(0, "recovery", SpanKind::Fault, 2, 2.0, 1.0),
            span(0, "compute", SpanKind::Phase, 1, 3.0, 1.0),
            span(0, "compute", SpanKind::Phase, 2, 4.0, 1.0),
        ];
        let report = analyze(&events, None);
        assert_eq!(report.iterations.len(), 4, "{:?}", report.iterations);
        let total: f64 = report.iterations.iter().map(|r| r.wall_secs).sum();
        // Windows tile the run: no double counting across the rollback.
        assert!((total - 5.0).abs() < 1e-9, "total {total}");
        assert_eq!(report.incidents.len(), 1);
        assert_eq!(report.incidents[0].kind, IncidentKind::Recovery);
        assert_eq!(report.incidents[0].iteration, 2);
        assert!(report.incidents[0].disruption_secs >= 1.0);
    }

    #[test]
    fn background_persist_is_off_the_critical_path() {
        let events = vec![
            span(0, "compute", SpanKind::Phase, 1, 0.0, 2.0),
            // Engine-writer lane: must not extend or pollute the window.
            span(
                BACKGROUND_TID_BASE + 1,
                "persist",
                SpanKind::Persist,
                1,
                1.0,
                50.0,
            ),
        ];
        let report = analyze(&events, None);
        assert_eq!(report.iterations.len(), 1);
        assert!((report.iterations[0].wall_secs - 2.0).abs() < 1e-9);
        assert_eq!(
            report.aggregate_secs(BlameCategory::Ckpt),
            0.0,
            "background persist must not be blamed"
        );
    }

    #[test]
    fn incidents_join_store_retries_from_telemetry() {
        let events = vec![
            span(0, "compute", SpanKind::Phase, 1, 0.0, 1.0),
            span(0, "compute", SpanKind::Phase, 2, 1.0, 1.0),
            span(0, "recovery", SpanKind::Fault, 3, 2.0, 2.0),
            span(0, "compute", SpanKind::Phase, 3, 4.0, 1.0),
        ];
        let sample = |at: f64, retries: u64| {
            let mut values = [0u64; crate::telemetry::COUNTER_COUNT];
            values[Counter::StoreRetries.index()] = retries;
            TelemetrySample {
                at_secs: at,
                values,
            }
        };
        let samples = vec![sample(0.5, 0), sample(1.9, 1), sample(4.5, 6)];
        let report = analyze(&events, Some(&samples));
        let incident = report
            .incidents
            .iter()
            .find(|i| i.kind == IncidentKind::Recovery)
            .unwrap();
        assert_eq!(
            incident.store_retries, 5,
            "retry delta across the recovery window"
        );
    }

    #[test]
    fn per_rank_breakdown_sums_each_lane() {
        let events = vec![
            span(0, "compute", SpanKind::Phase, 1, 0.0, 2.0),
            span(0, "tp-sync", SpanKind::Collective, 1, 2.0, 0.5),
            span(1, "compute", SpanKind::Phase, 1, 0.0, 1.0),
            span(1, "straggler-stall", SpanKind::Phase, 1, 1.0, 1.0),
            span(1, "ckpt-serialize", SpanKind::Ckpt, 1, 2.0, 0.25),
            span(
                BACKGROUND_TID_BASE,
                "persist",
                SpanKind::Persist,
                1,
                0.0,
                9.0,
            ),
        ];
        let rows = per_rank_breakdown(&events, &|pid, tid| format!("n{pid}/r{tid}"));
        assert_eq!(rows.len(), 2, "background lane excluded");
        assert_eq!(rows[0].label, "n0/r0");
        assert!((rows[0].compute_secs - 2.0).abs() < 1e-9);
        assert!((rows[0].collective_secs - 0.5).abs() < 1e-9);
        assert!((rows[1].stall_secs - 1.0).abs() < 1e-9);
        assert!((rows[1].ckpt_secs - 0.25).abs() < 1e-9);
        assert_eq!(rows[1].spans, 3);
    }

    #[test]
    fn render_text_lists_categories_and_incidents() {
        let events = vec![
            span(0, "compute", SpanKind::Phase, 1, 0.0, 1.0),
            span(0, "recovery", SpanKind::Fault, 2, 1.0, 0.5),
        ];
        let report = analyze(&events, None);
        let text = report.render_text();
        assert!(text.contains("compute"), "{text}");
        assert!(text.contains("recovery"), "{text}");
        assert!(text.contains("incidents:"), "{text}");
        let json = report.to_json();
        assert!(json.get("categories").is_some());
        assert_eq!(
            json.get("incidents")
                .and_then(Json::as_array)
                .unwrap()
                .len(),
            1
        );
    }
}
