//! Log-scale latency histograms with fixed footprint.
//!
//! A [`LogHistogram`] buckets samples by `log2` with [`SUB_BUCKETS`]
//! sub-buckets per octave over `2^-30` s (≈1 ns) to `2^6` s (64 s).
//! Percentile queries return the geometric midpoint of the bucket the
//! target rank falls in, so they are exact to within one bucket —
//! about 9 % relative error — while the whole histogram is a fixed
//! ~1.1 KiB array: `Copy`, mergeable, and allocation-free on the
//! record path.

/// Sub-buckets per power-of-two octave.
pub const SUB_BUCKETS: usize = 8;
/// Exponent of the smallest representable duration (`2^MIN_EXP` s).
const MIN_EXP: i32 = -30;
/// Exponent one past the largest octave (`2^MAX_EXP` s).
const MAX_EXP: i32 = 6;
/// Total number of buckets.
pub const NUM_BUCKETS: usize = (MAX_EXP - MIN_EXP) as usize * SUB_BUCKETS;

/// A log-scale histogram of durations in seconds.
#[derive(Clone, Copy, PartialEq)]
pub struct LogHistogram {
    counts: [u32; NUM_BUCKETS],
    /// Samples at or past the 64 s ceiling. Kept out of the top bucket
    /// so percentile queries can report the ceiling itself instead of
    /// the top bucket's midpoint (~61 s), which would *understate* a
    /// saturated tail.
    saturated: u32,
}

impl Default for LogHistogram {
    fn default() -> Self {
        // `[u32; 288]` is past the N ≤ 32 limit of the std array
        // `Default` impl, hence the manual one.
        Self {
            counts: [0; NUM_BUCKETS],
            saturated: 0,
        }
    }
}

impl std::fmt::Debug for LogHistogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LogHistogram")
            .field("count", &self.count())
            .field("p50_secs", &self.percentile(0.50))
            .field("p99_secs", &self.percentile(0.99))
            .finish()
    }
}

impl LogHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one duration. Non-positive and NaN samples land in the
    /// smallest bucket; samples at or past 64 s count as saturated and
    /// report the 64 s ceiling from percentile queries.
    pub fn record(&mut self, secs: f64) {
        match Self::bucket_index(secs) {
            Some(i) => self.counts[i] = self.counts[i].saturating_add(1),
            None => self.saturated = self.saturated.saturating_add(1),
        }
    }

    /// Total number of recorded samples (saturated ones included).
    pub fn count(&self) -> u64 {
        self.counts.iter().map(|&c| u64::from(c)).sum::<u64>() + u64::from(self.saturated)
    }

    /// Samples recorded at or past the 64 s ceiling.
    pub fn saturated(&self) -> u64 {
        u64::from(self.saturated)
    }

    /// The `q`-quantile (`q` in `[0, 1]`) as the geometric midpoint of
    /// the bucket holding the target rank; `0.0` when empty. A rank
    /// falling in the saturated region reports the 64 s ceiling (a
    /// lower bound on the true value), never a bucket midpoint below
    /// it.
    pub fn percentile(&self, q: f64) -> f64 {
        let total = self.count();
        if total == 0 {
            return 0.0;
        }
        let q = q.clamp(0.0, 1.0);
        let target = ((q * total as f64).ceil() as u64).max(1);
        let mut cumulative = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            cumulative += u64::from(c);
            if cumulative >= target {
                return Self::bucket_value(i);
            }
        }
        f64::from(MAX_EXP).exp2()
    }

    /// Merges another histogram's samples into this one. Merging an
    /// empty histogram is a no-op (and merging into an empty one makes
    /// an exact copy): counts, saturation, and every percentile are
    /// preserved.
    pub fn merge(&mut self, other: &Self) {
        for (a, &b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a = a.saturating_add(b);
        }
        self.saturated = self.saturated.saturating_add(other.saturated);
    }

    /// The bucket for a sample, or `None` when it saturates past the
    /// 64 s ceiling.
    fn bucket_index(secs: f64) -> Option<usize> {
        if secs <= 0.0 || secs.is_nan() {
            return Some(0);
        }
        let pos = (secs.log2() - f64::from(MIN_EXP)) * SUB_BUCKETS as f64;
        if pos < 0.0 {
            Some(0)
        } else if pos >= NUM_BUCKETS as f64 {
            None
        } else {
            Some(pos as usize)
        }
    }

    fn bucket_value(i: usize) -> f64 {
        let exp = f64::from(MIN_EXP) + (i as f64 + 0.5) / SUB_BUCKETS as f64;
        exp.exp2()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_is_zero() {
        let h = LogHistogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.percentile(0.5), 0.0);
    }

    #[test]
    fn percentiles_match_uniform_distribution() {
        // 10,000 samples uniform over [1 ms, 101 ms): p50 ≈ 51 ms,
        // p99 ≈ 100 ms — a log-bucket estimate must land within the
        // bucket resolution (~9 %).
        let mut h = LogHistogram::new();
        for i in 0..10_000u64 {
            let secs = 1e-3 + 100e-3 * (i as f64 / 10_000.0);
            h.record(secs);
        }
        assert_eq!(h.count(), 10_000);
        let p50 = h.percentile(0.50);
        let p99 = h.percentile(0.99);
        assert!((p50 - 51e-3).abs() / 51e-3 < 0.15, "p50 = {p50}");
        assert!((p99 - 100e-3).abs() / 100e-3 < 0.15, "p99 = {p99}");
        assert!(h.percentile(0.0) <= p50 && p50 <= p99);
        assert!(p99 <= h.percentile(1.0));
    }

    #[test]
    fn point_mass_is_within_bucket_resolution() {
        let mut h = LogHistogram::new();
        for _ in 0..100 {
            h.record(2.5e-3);
        }
        for q in [0.0, 0.5, 0.99, 1.0] {
            let v = h.percentile(q);
            assert!((v - 2.5e-3).abs() / 2.5e-3 < 0.09, "q={q} v={v}");
        }
    }

    #[test]
    fn outliers_clamp_to_edge_buckets() {
        let mut h = LogHistogram::new();
        h.record(0.0);
        h.record(-1.0);
        h.record(f64::NAN);
        h.record(1e12);
        assert_eq!(h.count(), 4);
        assert!(h.percentile(0.25) < 1e-9);
        assert!(h.percentile(1.0) > 32.0);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = LogHistogram::new();
        let mut b = LogHistogram::new();
        a.record(1e-3);
        b.record(1e-3);
        b.record(4e-1);
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert!(a.percentile(1.0) > 0.3);
    }

    /// Merging an empty histogram must be a no-op, and merging into an
    /// empty one must reproduce the source exactly — including the
    /// saturation count.
    #[test]
    fn merging_an_empty_histogram_preserves_everything() {
        let mut h = LogHistogram::new();
        for i in 1..=100u64 {
            h.record(i as f64 * 1e-3);
        }
        h.record(1e9); // saturated
        let before = h;
        h.merge(&LogHistogram::new());
        assert_eq!(h, before, "merging empty must not change the histogram");
        for q in [0.0, 0.5, 0.99, 1.0] {
            assert_eq!(h.percentile(q), before.percentile(q), "q={q}");
        }
        let mut empty = LogHistogram::new();
        empty.merge(&before);
        assert_eq!(empty, before, "merging into empty must copy exactly");
        assert_eq!(empty.saturated(), 1);
        let mut both = LogHistogram::new();
        both.merge(&LogHistogram::new());
        assert_eq!(both.count(), 0);
        assert_eq!(both.percentile(0.5), 0.0);
    }

    /// A saturated tail must never be *understated*: ranks falling in
    /// the saturated region report the 64 s ceiling, not the top
    /// bucket's geometric midpoint (~61 s).
    #[test]
    fn saturated_percentiles_report_the_ceiling() {
        let mut h = LogHistogram::new();
        h.record(1.0);
        h.record(500.0); // way past the 64 s ceiling
        assert_eq!(h.saturated(), 1);
        assert_eq!(h.percentile(1.0), 64.0, "lower bound on the true 500 s");
        assert!(h.percentile(0.25) < 2.0, "in-range samples keep midpoints");
        // All-saturated: every quantile is the ceiling.
        let mut all = LogHistogram::new();
        for _ in 0..10 {
            all.record(1e6);
        }
        for q in [0.0, 0.5, 1.0] {
            assert_eq!(all.percentile(q), 64.0, "q={q}");
        }
        // A legitimate top-bucket sample (just under 64 s) still gets
        // its midpoint, below the ceiling.
        let mut edge = LogHistogram::new();
        edge.record(63.0);
        assert_eq!(edge.saturated(), 0);
        assert!(edge.percentile(1.0) < 64.0);
        assert!(edge.percentile(1.0) > 55.0);
    }
}
