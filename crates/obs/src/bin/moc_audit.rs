//! `moc-audit`: the causal trace auditor, as a CLI.
//!
//! Re-ingests an exported Chrome trace (`trace.json`), rebuilds the
//! happens-before graph from the embedded Lamport stamps and flow
//! bindings, and runs the full invariant suite from
//! [`moc_obs::audit`]. With `--blame blame.json` the blame-accounting
//! invariant runs too. Exit status: 0 clean, 2 on violations, 1 on
//! usage or parse errors — which is what lets CI gate on the live-run
//! trace artifact.

use moc_obs::audit::{audit, audit_blame_json, AuditConfig};
use moc_obs::causal::{parse_chrome_trace, CausalGraph};
use moc_obs::Json;
use std::process::ExitCode;

const USAGE: &str = "usage: moc-audit <trace.json> [--blame <blame.json>] \
                     [--out <audit.json>] [--detect-bound-secs <S>]";

fn main() -> ExitCode {
    let mut trace_path = None;
    let mut blame_path = None;
    let mut out_path = None;
    let mut config = AuditConfig::default();

    let mut argv = std::env::args().skip(1);
    while let Some(arg) = argv.next() {
        match arg.as_str() {
            "--blame" => blame_path = argv.next(),
            "--out" => out_path = argv.next(),
            "--detect-bound-secs" => {
                let Some(value) = argv.next().and_then(|v| v.parse::<f64>().ok()) else {
                    eprintln!("{USAGE}");
                    return ExitCode::from(1);
                };
                config.detect_bound_secs = Some(value);
            }
            "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            _ if trace_path.is_none() && !arg.starts_with('-') => trace_path = Some(arg),
            _ => {
                eprintln!("moc-audit: unexpected argument '{arg}'\n{USAGE}");
                return ExitCode::from(1);
            }
        }
    }
    let Some(trace_path) = trace_path else {
        eprintln!("{USAGE}");
        return ExitCode::from(1);
    };

    let text = match std::fs::read_to_string(&trace_path) {
        Ok(text) => text,
        Err(e) => {
            eprintln!("moc-audit: cannot read {trace_path}: {e}");
            return ExitCode::from(1);
        }
    };
    let events = match parse_chrome_trace(&text) {
        Ok(events) => events,
        Err(e) => {
            eprintln!("moc-audit: {trace_path}: {e}");
            return ExitCode::from(1);
        }
    };
    let graph = CausalGraph::from_causal(events);
    let mut report = audit(&graph, None, &config);

    if let Some(blame_path) = blame_path {
        let doc = std::fs::read_to_string(&blame_path)
            .map_err(|e| e.to_string())
            .and_then(|text| Json::parse(&text).map_err(|e| e.to_string()));
        match doc {
            Ok(doc) => report
                .violations
                .extend(audit_blame_json(&doc, config.blame_tolerance)),
            Err(e) => {
                eprintln!("moc-audit: cannot read {blame_path}: {e}");
                return ExitCode::from(1);
            }
        }
    }

    if let Some(out_path) = out_path {
        if let Err(e) = std::fs::write(&out_path, report.to_json().pretty() + "\n") {
            eprintln!("moc-audit: cannot write {out_path}: {e}");
            return ExitCode::from(1);
        }
    }

    print!("{}", report.render_text());
    if report.passed() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(2)
    }
}
