//! A minimal JSON value: build, print (compact or pretty), parse.
//!
//! The workspace's vendored `serde` is an offline API stand-in whose
//! derives emit nothing, so real serialization is done through this
//! module. Object fields keep insertion order, which keeps emitted
//! reports diffable; numbers are `f64` (integers print without a
//! fractional part while exactly representable, i.e. below 2^53).

use std::fmt;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number (non-finite values print as `null`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object with insertion-ordered fields.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Looks up a field of an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The elements if this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The value if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value if this is a non-negative integer-valued number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= 9.007_199_254_740_992e15 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The value if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The fields if this is an object.
    pub fn as_object(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(fields) => Some(fields),
            _ => None,
        }
    }

    /// The value if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Renders with two-space indentation and a trailing-newline-free
    /// final line (diff-friendly for the `BENCH_*.json` artifacts).
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.pretty_into(&mut out, 0);
        out
    }

    fn pretty_into(&self, out: &mut String, depth: usize) {
        match self {
            Json::Arr(items) if !items.is_empty() => {
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    indent(out, depth + 1);
                    item.pretty_into(out, depth + 1);
                    if i + 1 < items.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                indent(out, depth);
                out.push(']');
            }
            Json::Obj(fields) if !fields.is_empty() => {
                out.push_str("{\n");
                for (i, (key, value)) in fields.iter().enumerate() {
                    indent(out, depth + 1);
                    out.push('"');
                    escape_into(key, out);
                    out.push_str("\": ");
                    value.pretty_into(out, depth + 1);
                    if i + 1 < fields.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                indent(out, depth);
                out.push('}');
            }
            other => out.push_str(&other.to_string()),
        }
    }

    /// Parses a JSON document (recursive descent; rejects trailing
    /// garbage).
    pub fn parse(input: &str) -> Result<Json, ParseError> {
        let mut p = Parser {
            bytes: input.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after document"));
        }
        Ok(value)
    }
}

fn indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => f.write_str("null"),
            Json::Bool(b) => f.write_str(if *b { "true" } else { "false" }),
            Json::Num(n) => write_num(*n, f),
            Json::Str(s) => {
                let mut buf = String::with_capacity(s.len() + 2);
                buf.push('"');
                escape_into(s, &mut buf);
                buf.push('"');
                f.write_str(&buf)
            }
            Json::Arr(items) => {
                f.write_str("[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{item}")?;
                }
                f.write_str("]")
            }
            Json::Obj(fields) => {
                f.write_str("{")?;
                for (i, (key, value)) in fields.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{}:{value}", Json::Str(key.clone()))?;
                }
                f.write_str("}")
            }
        }
    }
}

fn write_num(n: f64, f: &mut fmt::Formatter<'_>) -> fmt::Result {
    if !n.is_finite() {
        f.write_str("null")
    } else if n.fract() == 0.0 && n.abs() < 9.007_199_254_740_992e15 {
        write!(f, "{}", n as i64)
    } else {
        write!(f, "{n}")
    }
}

/// Appends `s` to `out` with JSON string escaping applied.
pub fn escape_into(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
}

impl From<bool> for Json {
    fn from(v: bool) -> Self {
        Json::Bool(v)
    }
}
impl From<f64> for Json {
    fn from(v: f64) -> Self {
        Json::Num(v)
    }
}
impl From<u64> for Json {
    fn from(v: u64) -> Self {
        Json::Num(v as f64)
    }
}
impl From<i64> for Json {
    fn from(v: i64) -> Self {
        Json::Num(v as f64)
    }
}
impl From<u32> for Json {
    fn from(v: u32) -> Self {
        Json::Num(f64::from(v))
    }
}
impl From<usize> for Json {
    fn from(v: usize) -> Self {
        Json::Num(v as f64)
    }
}
impl From<&str> for Json {
    fn from(v: &str) -> Self {
        Json::Str(v.to_string())
    }
}
impl From<String> for Json {
    fn from(v: String) -> Self {
        Json::Str(v)
    }
}
impl From<Vec<Json>> for Json {
    fn from(v: Vec<Json>) -> Self {
        Json::Arr(v)
    }
}

/// A parse failure: byte offset and message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset in the input where the failure was detected.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "json parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for ParseError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> ParseError {
        ParseError {
            offset: self.pos,
            message: message.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, c: u8) -> Result<(), ParseError> {
        if self.peek() == Some(c) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", c as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<Json, ParseError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a value")),
        }
    }

    fn array(&mut self) -> Result<Json, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, ParseError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(c) = self.peek() else {
                return Err(self.err("unterminated string"));
            };
            self.pos += 1;
            match c {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err(self.err("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let code = if (0xD800..0xDC00).contains(&hi)
                                && self.bytes[self.pos..].starts_with(b"\\u")
                            {
                                self.pos += 2;
                                let lo = self.hex4()?;
                                0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                            } else {
                                hi
                            };
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                }
                c if c < 0x80 => out.push(c as char),
                _ => {
                    // Multi-byte UTF-8: the input is a &str, so the
                    // sequence is valid; copy it through.
                    let start = self.pos - 1;
                    let mut end = self.pos;
                    while end < self.bytes.len() && self.bytes[end] & 0xC0 == 0x80 {
                        end += 1;
                    }
                    out.push_str(
                        std::str::from_utf8(&self.bytes[start..end])
                            .map_err(|_| self.err("invalid utf-8"))?,
                    );
                    self.pos = end;
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, ParseError> {
        if self.pos + 4 > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| self.err("invalid \\u escape"))?;
        let code = u32::from_str_radix(hex, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos += 4;
        Ok(code)
    }

    fn number(&mut self) -> Result<Json, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_compact_and_pretty() {
        let value = Json::Obj(vec![
            ("name".into(), Json::from("tr\"ace\n")),
            ("count".into(), Json::from(42u64)),
            ("ratio".into(), Json::from(0.5)),
            ("ok".into(), Json::from(true)),
            ("none".into(), Json::Null),
            (
                "items".into(),
                Json::Arr(vec![Json::from(1u64), Json::from(2u64)]),
            ),
        ]);
        for text in [value.to_string(), value.pretty()] {
            let parsed = Json::parse(&text).unwrap();
            assert_eq!(parsed, value, "text = {text}");
        }
    }

    #[test]
    fn integers_print_without_fraction() {
        assert_eq!(Json::from(3u64).to_string(), "3");
        assert_eq!(Json::from(-2i64).to_string(), "-2");
        assert_eq!(Json::from(0.25).to_string(), "0.25");
        assert_eq!(Json::Num(f64::NAN).to_string(), "null");
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("1 2").is_err());
        assert!(Json::parse("\"unterminated").is_err());
    }

    #[test]
    fn parse_handles_unicode_escapes() {
        let parsed = Json::parse("\"a\\u00e9\\ud83d\\ude00b\"").unwrap();
        assert_eq!(parsed.as_str().unwrap(), "aé😀b");
        let parsed = Json::parse("\"héllo\"").unwrap();
        assert_eq!(parsed.as_str().unwrap(), "héllo");
    }

    #[test]
    fn accessors() {
        let doc = Json::parse("{\"a\": [1, true, \"x\"], \"b\": 2.5}").unwrap();
        let arr = doc.get("a").unwrap().as_array().unwrap();
        assert_eq!(arr[0].as_u64(), Some(1));
        assert_eq!(arr[1].as_bool(), Some(true));
        assert_eq!(arr[2].as_str(), Some("x"));
        assert_eq!(doc.get("b").unwrap().as_f64(), Some(2.5));
        assert_eq!(doc.get("b").unwrap().as_u64(), None);
        assert!(doc.get("missing").is_none());
    }
}
