//! The happens-before graph over a recorded trace.
//!
//! Every span carries a run-wide Lamport stamp assigned at record time
//! ([`crate::TraceEvent::lamport`]); this module assembles the causal
//! structure the audit checks: program-order edges within each thread
//! lane and flow edges along every flow id (fault arrows, checkpoint
//! submit→persist arrows). Events come either straight from a live
//! [`crate::TraceCollector`] or re-ingested from an exported
//! `trace.json` via [`parse_chrome_trace`] — the Chrome exporter embeds
//! `lamport` and the flow binding in each slice's `args` exactly so the
//! graph can be rebuilt offline.

use crate::json::Json;
use crate::sink::{Flow, SpanKind, TraceEvent};
use std::collections::{BTreeMap, VecDeque};

/// One trace span in causal form: owned name (offline traces have no
/// `&'static` names), plus everything the audit needs to order and
/// blame it.
#[derive(Debug, Clone, PartialEq)]
pub struct CausalEvent {
    /// Process lane (node id; control plane past the last node).
    pub pid: u32,
    /// Thread lane (rank; engine writers at `1_000_000 + node`).
    pub tid: u32,
    /// Span name.
    pub name: String,
    /// Span type.
    pub kind: SpanKind,
    /// Training iteration the span belongs to.
    pub iteration: u64,
    /// Run-relative start, seconds.
    pub start_secs: f64,
    /// Duration, seconds.
    pub dur_secs: f64,
    /// Flow-arrow participation.
    pub flow: Flow,
    /// Record-order Lamport stamp.
    pub lamport: u64,
}

impl CausalEvent {
    /// Run-relative end of the span, seconds.
    pub fn end_secs(&self) -> f64 {
        self.start_secs + self.dur_secs
    }

    /// One-line rendering used in witness paths.
    pub fn describe(&self) -> String {
        format!(
            "[L{}] ({},{}) {} '{}' it={} @{:.6}s+{:.6}s",
            self.lamport,
            self.pid,
            self.tid,
            self.kind.category(),
            self.name,
            self.iteration,
            self.start_secs,
            self.dur_secs,
        )
    }

    /// JSON form used in `audit.json` witness paths.
    pub fn to_json(&self) -> Json {
        let mut fields = vec![
            ("pid".to_string(), Json::from(self.pid as u64)),
            ("tid".to_string(), Json::from(self.tid as u64)),
            ("name".to_string(), Json::from(self.name.as_str())),
            ("kind".to_string(), Json::from(self.kind.category())),
            ("iteration".to_string(), Json::from(self.iteration)),
            ("start_secs".to_string(), Json::from(self.start_secs)),
            ("dur_secs".to_string(), Json::from(self.dur_secs)),
            ("lamport".to_string(), Json::from(self.lamport)),
        ];
        if let Some((phase, id)) = flow_parts(self.flow) {
            fields.push(("flow".to_string(), Json::from(phase)));
            fields.push(("flow_id".to_string(), Json::from(id)));
        }
        Json::Obj(fields)
    }
}

impl From<&TraceEvent> for CausalEvent {
    fn from(e: &TraceEvent) -> Self {
        Self {
            pid: e.pid,
            tid: e.tid,
            name: e.name.to_string(),
            kind: e.kind,
            iteration: e.iteration,
            start_secs: e.start_secs,
            dur_secs: e.dur_secs,
            flow: e.flow,
            lamport: e.lamport,
        }
    }
}

/// `(chrome phase letter, id)` of a flow, `None` for [`Flow::None`].
pub fn flow_parts(flow: Flow) -> Option<(&'static str, u64)> {
    match flow {
        Flow::None => None,
        Flow::Start(id) => Some(("s", id)),
        Flow::Step(id) => Some(("t", id)),
        Flow::End(id) => Some(("f", id)),
    }
}

/// Re-ingests an exported Chrome trace (`trace.json`) into causal
/// events. Only complete-slice (`ph:"X"`) records become events; the
/// flow binding and Lamport stamp are read from the slice's `args`
/// (the separate `s`/`t`/`f` records exist for Perfetto rendering and
/// are redundant with the embedded form).
///
/// # Errors
///
/// Returns a message naming the structural problem: not JSON, no
/// `traceEvents` array, or a slice missing a required field.
pub fn parse_chrome_trace(text: &str) -> Result<Vec<CausalEvent>, String> {
    let doc = Json::parse(text).map_err(|e| format!("trace is not valid JSON: {e}"))?;
    let events = doc
        .get("traceEvents")
        .and_then(Json::as_array)
        .ok_or_else(|| "trace has no traceEvents array".to_string())?;
    let mut out = Vec::new();
    for (i, e) in events.iter().enumerate() {
        if e.get("ph").and_then(Json::as_str) != Some("X") {
            continue;
        }
        let field_u64 = |k: &str| {
            e.get(k)
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("slice {i}: missing {k}"))
        };
        let field_f64 = |k: &str| {
            e.get(k)
                .and_then(Json::as_f64)
                .ok_or_else(|| format!("slice {i}: missing {k}"))
        };
        let name = e
            .get("name")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("slice {i}: missing name"))?
            .to_string();
        let cat = e
            .get("cat")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("slice {i}: missing cat"))?;
        let kind = SpanKind::from_category(cat)
            .ok_or_else(|| format!("slice {i}: unknown category '{cat}'"))?;
        let args = e.get("args");
        let arg_u64 = |k: &str| args.and_then(|a| a.get(k)).and_then(Json::as_u64);
        let flow = match (
            args.and_then(|a| a.get("flow")).and_then(Json::as_str),
            arg_u64("flow_id"),
        ) {
            (Some("s"), Some(id)) => Flow::Start(id),
            (Some("t"), Some(id)) => Flow::Step(id),
            (Some("f"), Some(id)) => Flow::End(id),
            _ => Flow::None,
        };
        out.push(CausalEvent {
            pid: field_u64("pid")? as u32,
            tid: field_u64("tid")? as u32,
            name,
            kind,
            // ts/dur are microseconds in the Chrome schema.
            iteration: arg_u64("iteration").unwrap_or(0),
            start_secs: field_f64("ts")? / 1e6,
            dur_secs: field_f64("dur")? / 1e6,
            flow,
            lamport: arg_u64("lamport").unwrap_or(0),
        });
    }
    Ok(out)
}

/// The happens-before graph: events totally ordered by Lamport stamp,
/// with program-order edges per thread lane and flow edges per flow id.
#[derive(Debug, Default)]
pub struct CausalGraph {
    /// All events, sorted by `(lamport, pid, tid, start_secs)`.
    pub events: Vec<CausalEvent>,
    /// Event indices per `(pid, tid)` lane, in lamport order (the
    /// program-order chains).
    pub lanes: BTreeMap<(u32, u32), Vec<usize>>,
    /// Event indices per flow id, in lamport order (the flow chains).
    pub flows: BTreeMap<u64, Vec<usize>>,
    /// Forward happens-before edges (program order + flow order).
    edges: Vec<Vec<usize>>,
}

impl CausalGraph {
    /// Builds the graph from live collector events.
    pub fn build(events: &[TraceEvent]) -> Self {
        Self::from_causal(events.iter().map(CausalEvent::from).collect())
    }

    /// Builds the graph from re-ingested (offline) events.
    pub fn from_causal(mut events: Vec<CausalEvent>) -> Self {
        events.sort_by(|a, b| {
            (a.lamport, a.pid, a.tid)
                .cmp(&(b.lamport, b.pid, b.tid))
                .then(a.start_secs.total_cmp(&b.start_secs))
        });
        let mut lanes: BTreeMap<(u32, u32), Vec<usize>> = BTreeMap::new();
        let mut flows: BTreeMap<u64, Vec<usize>> = BTreeMap::new();
        for (i, e) in events.iter().enumerate() {
            lanes.entry((e.pid, e.tid)).or_default().push(i);
            if let Some((_, id)) = flow_parts(e.flow) {
                flows.entry(id).or_default().push(i);
            }
        }
        let mut edges = vec![Vec::new(); events.len()];
        for chain in lanes.values().chain(flows.values()) {
            for pair in chain.windows(2) {
                edges[pair[0]].push(pair[1]);
            }
        }
        Self {
            events,
            lanes,
            flows,
            edges,
        }
    }

    /// The first event on flow `id` whose name matches, in lamport
    /// order.
    pub fn flow_event(&self, id: u64, name: &str) -> Option<&CausalEvent> {
        self.flows
            .get(&id)?
            .iter()
            .map(|&i| &self.events[i])
            .find(|e| e.name == name)
    }

    /// BFS over the happens-before edges from `from` to `to` (event
    /// indices into [`Self::events`]); the returned path includes both
    /// endpoints. `None` when `to` is not reachable.
    pub fn witness_path(&self, from: usize, to: usize) -> Option<Vec<&CausalEvent>> {
        if from >= self.events.len() || to >= self.events.len() {
            return None;
        }
        let mut prev: Vec<Option<usize>> = vec![None; self.events.len()];
        let mut queue = VecDeque::from([from]);
        prev[from] = Some(from);
        while let Some(i) = queue.pop_front() {
            if i == to {
                let mut path = vec![to];
                let mut at = to;
                while at != from {
                    at = prev[at].expect("visited nodes have predecessors");
                    path.push(at);
                }
                path.reverse();
                return Some(path.into_iter().map(|i| &self.events[i]).collect());
            }
            for &next in &self.edges[i] {
                if prev[next].is_none() {
                    prev[next] = Some(i);
                    queue.push_back(next);
                }
            }
        }
        None
    }

    /// Index of the first event matching `pred`, in lamport order.
    pub fn find(&self, mut pred: impl FnMut(&CausalEvent) -> bool) -> Option<usize> {
        self.events.iter().position(&mut pred)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(
        tid: u32,
        name: &str,
        kind: SpanKind,
        lamport: u64,
        start: f64,
        flow: Flow,
    ) -> CausalEvent {
        CausalEvent {
            pid: 0,
            tid,
            name: name.to_string(),
            kind,
            iteration: 1,
            start_secs: start,
            dur_secs: 0.1,
            flow,
            lamport,
        }
    }

    #[test]
    fn graph_orders_lanes_and_flows_by_lamport() {
        let graph = CausalGraph::from_causal(vec![
            ev(1, "recovery", SpanKind::Fault, 3, 0.9, Flow::End(7)),
            ev(0, "fault-injected", SpanKind::Fault, 1, 0.1, Flow::Start(7)),
            ev(0, "fault-detected", SpanKind::Fault, 2, 0.5, Flow::Step(7)),
        ]);
        assert_eq!(graph.events[0].name, "fault-injected");
        assert_eq!(graph.flows[&7], vec![0, 1, 2]);
        assert_eq!(graph.lanes[&(0, 0)], vec![0, 1]);
        let path = graph.witness_path(0, 2).expect("flow connects them");
        let names: Vec<&str> = path.iter().map(|e| e.name.as_str()).collect();
        assert_eq!(names, ["fault-injected", "fault-detected", "recovery"]);
        assert!(graph.witness_path(2, 0).is_none(), "edges are forward-only");
    }

    #[test]
    fn chrome_roundtrip_preserves_causal_fields() {
        let live = vec![
            TraceEvent {
                pid: 2,
                tid: 0,
                name: "ckpt-submit",
                kind: SpanKind::Ckpt,
                iteration: 4,
                start_secs: 1.25,
                dur_secs: 0.002,
                flow: Flow::Start(1_000_000_123),
                lamport: 41,
            },
            TraceEvent {
                pid: 0,
                tid: 1_000_000,
                name: "persist",
                kind: SpanKind::Persist,
                iteration: 4,
                start_secs: 1.26,
                dur_secs: 0.01,
                flow: Flow::End(1_000_000_123),
                lamport: 42,
            },
        ];
        let names = crate::ThreadNames::default();
        let text = crate::chrome::render(&live, &names);
        let parsed = parse_chrome_trace(&text).expect("roundtrip parses");
        assert_eq!(parsed.len(), 2);
        let submit = parsed.iter().find(|e| e.name == "ckpt-submit").unwrap();
        assert_eq!(submit.lamport, 41);
        assert_eq!(submit.flow, Flow::Start(1_000_000_123));
        assert_eq!(submit.kind, SpanKind::Ckpt);
        assert!((submit.start_secs - 1.25).abs() < 1e-6);
        let persist = parsed.iter().find(|e| e.name == "persist").unwrap();
        assert_eq!(persist.flow, Flow::End(1_000_000_123));
        let graph = CausalGraph::from_causal(parsed);
        assert_eq!(graph.flows[&1_000_000_123].len(), 2);
    }

    #[test]
    fn parse_rejects_structural_garbage() {
        assert!(parse_chrome_trace("not json").is_err());
        assert!(parse_chrome_trace("{\"other\": 1}").is_err());
    }
}
