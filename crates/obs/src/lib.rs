//! moc-obs: observability for the MoC-System runtime.
//!
//! Zero dependencies beyond the workspace (std only). Nine pieces:
//!
//! - **Span recording** ([`sink`]): every runtime thread (rank,
//!   coordinator, checkpoint-engine writer) holds a [`TraceSink`] and
//!   appends typed spans to a thread-local buffer without any
//!   cross-thread synchronization on the hot path; buffers merge into
//!   the run-wide [`TraceCollector`] when the thread finishes. When
//!   observability is disabled every sink call is a single branch.
//! - **Chrome-trace/Perfetto export** ([`chrome`]): the collector
//!   renders the merged spans to a `trace.json` loadable in
//!   <https://ui.perfetto.dev> — pid = node, tid = global rank, flow
//!   arrows linking fault injection → detection → recovery and
//!   checkpoint submission → background persist.
//! - **Fault flight recorder** ([`flight`]): each thread additionally
//!   mirrors its last N spans into a bounded ring; the moment the
//!   coordinator declares a fault it snapshots every ring into a
//!   [`FlightDump`] (JSON + human-readable text), so every recovery
//!   leaves a post-mortem artifact that includes the dead ranks' final
//!   spans.
//! - **Log-scale latency histograms** ([`hist`]): fixed-footprint
//!   `log2`-bucketed histograms giving p50/p99/max per phase with ~9 %
//!   relative error and no allocation on the record path.
//! - **Live telemetry** ([`telemetry`]): per-thread atomic counter
//!   cells plus read-only probes into existing counters, sampled by a
//!   dedicated thread at [`ObsConfig::telemetry_interval`] into an
//!   in-memory time series, streamed as a Prometheus-text
//!   `telemetry.prom` snapshot during the run and flushed as a
//!   `telemetry.json` series at the end — a degrading run is visible
//!   while it runs, and sampling is read-only so enabled runs stay
//!   bitwise identical to disabled ones.
//! - **Critical-path blame** ([`critical`]): a priority sweep over the
//!   merged spans attributing every slice of each iteration's wall
//!   time to exactly one category (compute, exposed ring/tp/pp wait,
//!   ckpt, straggler stall, recovery, …), per iteration and aggregate,
//!   plus an incident report correlating chaos-plane events with their
//!   measured latency impact.
//! - **Happens-before graph** ([`causal`]): every span carries a
//!   run-wide Lamport stamp assigned at record time (one relaxed atomic
//!   increment — the dark run stays bitwise identical); at finish the
//!   stamps plus flow ids assemble into a [`CausalGraph`] with
//!   program-order and flow edges, rebuildable offline from an exported
//!   `trace.json` via [`parse_chrome_trace`].
//! - **Causal audit** ([`audit`]): structural invariant checks over the
//!   graph — inject → detect → recover chains complete and ordered,
//!   submit → persist chains complete, spans properly nested, step
//!   order monotone outside rollbacks, blame rows sum to wall time —
//!   written as `audit.json` with causal witness paths per violation;
//!   the `moc-audit` binary re-runs the same checks over an exported
//!   trace and gates CI.
//! - **Health scorer** ([`health`]): streaming per-rank EWMA + MAD
//!   z-scores over step time, stall time and store retries, driving a
//!   healthy → degraded → suspect state machine whose verdicts feed
//!   `health.json`, `EventKind::HealthDegraded` run events, and the
//!   suspicion detector's corroboration hook (a degraded rank is
//!   declared one lease window sooner).
//!
//! [`json`] is a minimal JSON value (build/print/parse — the vendored
//! `serde` is an API stand-in with no runtime behaviour) and [`report`]
//! renders human-readable phase/timeline tables plus schema'd JSON
//! reports for the benches.
//!
//! # Span taxonomy
//!
//! Spans are typed by [`SpanKind`] (→ the `cat` field in the exported
//! trace) and named with stable `&'static str` labels:
//!
//! | kind          | names                                                    | thread               |
//! |---------------|----------------------------------------------------------|----------------------|
//! | `Phase`       | `compute`, `straggler-stall`, `reduce`, `apply`          | rank / coordinator   |
//! | `Collective`  | `tp-sync`, `pp-wait`, `pp-relay`, `ring-all-reduce`      | rank                 |
//! | `Ckpt`        | `ckpt-collect`, `ckpt-serialize`, `ckpt-write`, `ckpt-submit` | rank / coordinator |
//! | `Persist`     | `persist` (background batch persist)                     | ckpt-engine writer   |
//! | `Gc`          | `gc` (chain-aware garbage collection)                    | ckpt-engine writer   |
//! | `Fault`       | `fault-injected`, `fault-suspected`, `fault-cleared`, `fault-detected`, `heartbeat-loss`, `mesh-delay`, `mesh-drop`, `recovery`, `recovery-plan`, `recovery-fetch`, `recovery-restore`, `restore-apply` | coordinator / rank |
//! | `Elastic`     | `shrink-rebalance`, `expand-restore`, `export-state`     | coordinator / rank   |
//! | `Control`     | `apply-wait`, `eval`, `health-degraded`                  | coordinator / rank   |
//!
//! Flow arrows (`cat = "flow"`):
//!
//! - **fault flows** — sequential ids from [`TraceCollector::next_flow_id`];
//!   start on `fault-injected`, step on `fault-detected`, finish on the
//!   `recovery` span (which covers the shrink or respawn path taken).
//! - **checkpoint flows** — deterministic ids from [`ckpt_flow_id`];
//!   start on each per-node `ckpt-submit` span on the training path,
//!   finish on the matching background `persist` span in that node's
//!   engine writer thread.
//!
//! Every span additionally carries its run-wide Lamport stamp in
//! `args.lamport` (and its flow binding in `args.flow`/`args.flow_id`),
//! so the happens-before graph survives the round trip through
//! `trace.json`.

#![warn(missing_docs)]

pub mod audit;
pub mod causal;
pub mod chrome;
pub mod critical;
pub mod flight;
pub mod health;
pub mod hist;
pub mod json;
pub mod report;
pub mod sink;
pub mod telemetry;

pub use audit::{audit_blame_json, AuditConfig, AuditReport, AuditViolation};
pub use causal::{parse_chrome_trace, CausalEvent, CausalGraph};
pub use critical::{
    BlameCategory, BlameReport, Incident, IncidentKind, IterationBlame, RankPhases,
};
pub use flight::{FlightDump, FlightThread};
pub use health::{
    HealthConfig, HealthReport, HealthRow, HealthScorer, HealthState, HealthTransition,
};
pub use hist::LogHistogram;
pub use json::Json;
pub use report::{render_phase_table, render_timeline, PhaseRow, Report, TimelineRow};
pub use sink::{
    ckpt_flow_id, Flow, ObsConfig, ObsRunReport, SpanKind, ThreadNames, TraceCollector, TraceEvent,
    TraceSink, BACKGROUND_TID_BASE,
};
pub use telemetry::{Counter, Telemetry, TelemetryCell, TelemetryReport, TelemetrySample};
