//! moc-obs: observability for the MoC-System runtime.
//!
//! Zero dependencies beyond the workspace (std only). Six pieces:
//!
//! - **Span recording** ([`sink`]): every runtime thread (rank,
//!   coordinator, checkpoint-engine writer) holds a [`TraceSink`] and
//!   appends typed spans to a thread-local buffer without any
//!   cross-thread synchronization on the hot path; buffers merge into
//!   the run-wide [`TraceCollector`] when the thread finishes. When
//!   observability is disabled every sink call is a single branch.
//! - **Chrome-trace/Perfetto export** ([`chrome`]): the collector
//!   renders the merged spans to a `trace.json` loadable in
//!   <https://ui.perfetto.dev> — pid = node, tid = global rank, flow
//!   arrows linking fault injection → detection → recovery and
//!   checkpoint submission → background persist.
//! - **Fault flight recorder** ([`flight`]): each thread additionally
//!   mirrors its last N spans into a bounded ring; the moment the
//!   coordinator declares a fault it snapshots every ring into a
//!   [`FlightDump`] (JSON + human-readable text), so every recovery
//!   leaves a post-mortem artifact that includes the dead ranks' final
//!   spans.
//! - **Log-scale latency histograms** ([`hist`]): fixed-footprint
//!   `log2`-bucketed histograms giving p50/p99/max per phase with ~9 %
//!   relative error and no allocation on the record path.
//! - **Live telemetry** ([`telemetry`]): per-thread atomic counter
//!   cells plus read-only probes into existing counters, sampled by a
//!   dedicated thread at [`ObsConfig::telemetry_interval`] into an
//!   in-memory time series, streamed as a Prometheus-text
//!   `telemetry.prom` snapshot during the run and flushed as a
//!   `telemetry.json` series at the end — a degrading run is visible
//!   while it runs, and sampling is read-only so enabled runs stay
//!   bitwise identical to disabled ones.
//! - **Critical-path blame** ([`critical`]): a priority sweep over the
//!   merged spans attributing every slice of each iteration's wall
//!   time to exactly one category (compute, exposed ring/tp/pp wait,
//!   ckpt, straggler stall, recovery, …), per iteration and aggregate,
//!   plus an incident report correlating chaos-plane events with their
//!   measured latency impact.
//!
//! [`json`] is a minimal JSON value (build/print/parse — the vendored
//! `serde` is an API stand-in with no runtime behaviour) and [`report`]
//! renders human-readable phase/timeline tables plus schema'd JSON
//! reports for the benches.
//!
//! # Span taxonomy
//!
//! Spans are typed by [`SpanKind`] (→ the `cat` field in the exported
//! trace) and named with stable `&'static str` labels:
//!
//! | kind          | names                                                    | thread               |
//! |---------------|----------------------------------------------------------|----------------------|
//! | `Phase`       | `compute`, `straggler-stall`, `reduce`, `apply`          | rank / coordinator   |
//! | `Collective`  | `tp-sync`, `pp-wait`, `pp-relay`, `ring-all-reduce`      | rank                 |
//! | `Ckpt`        | `ckpt-collect`, `ckpt-serialize`, `ckpt-write`, `ckpt-submit` | rank / coordinator |
//! | `Persist`     | `persist` (background batch persist)                     | ckpt-engine writer   |
//! | `Gc`          | `gc` (chain-aware garbage collection)                    | ckpt-engine writer   |
//! | `Fault`       | `fault-injected`, `fault-suspected`, `fault-cleared`, `fault-detected`, `heartbeat-loss`, `mesh-delay`, `mesh-drop`, `recovery`, `recovery-plan`, `recovery-fetch`, `recovery-restore`, `restore-apply` | coordinator / rank |
//! | `Elastic`     | `shrink-rebalance`, `expand-restore`, `export-state`     | coordinator / rank   |
//! | `Control`     | `apply-wait`, `eval`                                     | coordinator / rank   |
//!
//! Flow arrows (`cat = "flow"`):
//!
//! - **fault flows** — sequential ids from [`TraceCollector::next_flow_id`];
//!   start on `fault-injected`, step on `fault-detected`, finish on the
//!   `recovery` span (which covers the shrink or respawn path taken).
//! - **checkpoint flows** — deterministic ids from [`ckpt_flow_id`];
//!   start on each per-node `ckpt-submit` span on the training path,
//!   finish on the matching background `persist` span in that node's
//!   engine writer thread.

#![warn(missing_docs)]

pub mod chrome;
pub mod critical;
pub mod flight;
pub mod hist;
pub mod json;
pub mod report;
pub mod sink;
pub mod telemetry;

pub use critical::{
    BlameCategory, BlameReport, Incident, IncidentKind, IterationBlame, RankPhases,
};
pub use flight::{FlightDump, FlightThread};
pub use hist::LogHistogram;
pub use json::Json;
pub use report::{render_phase_table, render_timeline, PhaseRow, Report, TimelineRow};
pub use sink::{
    ckpt_flow_id, Flow, ObsConfig, ObsRunReport, SpanKind, ThreadNames, TraceCollector, TraceEvent,
    TraceSink, BACKGROUND_TID_BASE,
};
pub use telemetry::{Counter, Telemetry, TelemetryCell, TelemetryReport, TelemetrySample};
