//! The fault flight recorder: bounded per-thread span history,
//! snapshotted the moment a fault is declared.
//!
//! Every [`TraceSink`](crate::TraceSink) mirrors its spans into a
//! bounded ring at record time (not at flush), so a rank that dies
//! mid-iteration still leaves its final spans behind. When the
//! coordinator declares a fault it calls
//! [`TraceCollector::flight_dump`](crate::TraceCollector::flight_dump),
//! which freezes every ring into a [`FlightDump`] and writes it as
//! both JSON (machine post-mortems) and indented text (humans).

use crate::json::Json;
use crate::sink::TraceEvent;
use std::fmt::Write as _;
use std::path::PathBuf;

/// One thread's slice of a flight dump.
#[derive(Debug, Clone)]
pub struct FlightThread {
    /// Process lane (node id).
    pub pid: u32,
    /// Thread lane (global rank / engine id).
    pub tid: u32,
    /// Human-readable lane name, e.g. `node1/rank 2`.
    pub name: String,
    /// The ring contents, oldest first.
    pub events: Vec<TraceEvent>,
}

/// A snapshot of every thread's recent spans at fault-declaration
/// time.
#[derive(Debug, Clone)]
pub struct FlightDump {
    /// Dump sequence number within the run (0-based).
    pub seq: u64,
    /// Run-relative time the dump was taken, in seconds.
    pub at_secs: f64,
    /// Why the dump was taken (fault description).
    pub reason: String,
    /// Per-thread span history, ordered by `(pid, tid)` registration.
    pub threads: Vec<FlightThread>,
    /// Where the JSON artifact landed, if written.
    pub json_path: Option<PathBuf>,
    /// Where the text artifact landed, if written.
    pub text_path: Option<PathBuf>,
}

impl FlightDump {
    /// The machine-readable form.
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("seq".to_string(), Json::from(self.seq)),
            ("at_secs".to_string(), Json::from(self.at_secs)),
            ("reason".to_string(), Json::from(self.reason.clone())),
            (
                "threads".to_string(),
                Json::Arr(
                    self.threads
                        .iter()
                        .map(|t| {
                            Json::Obj(vec![
                                ("pid".to_string(), Json::from(t.pid)),
                                ("tid".to_string(), Json::from(t.tid)),
                                ("name".to_string(), Json::from(t.name.clone())),
                                (
                                    "events".to_string(),
                                    Json::Arr(t.events.iter().map(TraceEvent::to_json).collect()),
                                ),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }

    /// The human-readable form: one block per thread, one line per
    /// span, newest last.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "== flight recorder dump #{} @ {:.3}s ==",
            self.seq, self.at_secs
        );
        let _ = writeln!(out, "reason: {}", self.reason);
        for thread in &self.threads {
            let _ = writeln!(
                out,
                "\n-- {} (pid {}, tid {}) --",
                thread.name, thread.pid, thread.tid
            );
            if thread.events.is_empty() {
                let _ = writeln!(out, "  (no spans recorded)");
            }
            for e in &thread.events {
                let _ = writeln!(
                    out,
                    "  [{:>10.4}s {:>9.3} ms]  iter {:>4}  {:<18} ({})",
                    e.start_secs,
                    1e3 * e.dur_secs,
                    e.iteration,
                    e.name,
                    e.kind.category(),
                );
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::{Flow, SpanKind};

    fn sample_dump() -> FlightDump {
        FlightDump {
            seq: 3,
            at_secs: 1.25,
            reason: "fault detected at iteration 7: nodes [1]".to_string(),
            threads: vec![
                FlightThread {
                    pid: 1,
                    tid: 2,
                    name: "node1/rank 2".to_string(),
                    events: vec![TraceEvent {
                        pid: 1,
                        tid: 2,
                        name: "compute",
                        kind: SpanKind::Phase,
                        iteration: 7,
                        start_secs: 1.2,
                        dur_secs: 0.01,
                        flow: Flow::None,
                        lamport: 1,
                    }],
                },
                FlightThread {
                    pid: 0,
                    tid: 0,
                    name: "node0/rank 0".to_string(),
                    events: vec![],
                },
            ],
            json_path: None,
            text_path: None,
        }
    }

    #[test]
    fn json_roundtrips_and_carries_events() {
        let dump = sample_dump();
        let text = dump.to_json().pretty();
        let parsed = Json::parse(&text).unwrap();
        assert_eq!(parsed.get("seq").unwrap().as_u64(), Some(3));
        assert_eq!(
            parsed.get("reason").unwrap().as_str().unwrap(),
            "fault detected at iteration 7: nodes [1]"
        );
        let threads = parsed.get("threads").unwrap().as_array().unwrap();
        assert_eq!(threads.len(), 2);
        let events = threads[0].get("events").unwrap().as_array().unwrap();
        assert_eq!(events[0].get("name").unwrap().as_str(), Some("compute"));
        assert_eq!(events[0].get("iteration").unwrap().as_u64(), Some(7));
    }

    #[test]
    fn text_lists_every_thread() {
        let text = sample_dump().render_text();
        assert!(text.contains("flight recorder dump #3"));
        assert!(text.contains("node1/rank 2"));
        assert!(text.contains("compute"));
        assert!(text.contains("(no spans recorded)"));
    }
}
