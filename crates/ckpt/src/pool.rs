//! Reusable byte-buffer pool for the copy-on-snapshot and encode stages.
//!
//! The engine copies every persist-bound payload into a pooled buffer at
//! submit time (the "copy-on-snapshot": the training thread hands the
//! bytes over and immediately moves on) and the writer encodes deltas into
//! a second pooled buffer. Buffers return to the pool on drop, so after a
//! short warm-up the pool itself stops allocating —
//! [`BufferPool::allocations`] plateaus, which the runtime surfaces as
//! `pool_allocs` and tests pin down. (The final `Bytes` handed to the
//! object store is still an allocation per stored shard: stores own
//! their payloads.)

use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

struct PoolInner {
    idle: Mutex<Vec<Vec<u8>>>,
    /// Buffers ever allocated (fresh `Vec` constructions).
    allocations: AtomicU64,
    /// Acquires served from the idle list.
    reuses: AtomicU64,
    /// Idle buffers beyond this cap are dropped instead of retained.
    idle_limit: usize,
}

/// A shared pool of reusable `Vec<u8>` buffers.
#[derive(Clone)]
pub struct BufferPool {
    inner: Arc<PoolInner>,
}

impl std::fmt::Debug for BufferPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BufferPool")
            .field("allocations", &self.allocations())
            .field("reuses", &self.reuses())
            .finish()
    }
}

impl BufferPool {
    /// Creates a pool retaining at most `idle_limit` idle buffers.
    pub fn new(idle_limit: usize) -> Self {
        Self {
            inner: Arc::new(PoolInner {
                idle: Mutex::new(Vec::new()),
                allocations: AtomicU64::new(0),
                reuses: AtomicU64::new(0),
                idle_limit,
            }),
        }
    }

    /// Acquires an empty buffer (reusing an idle one when available).
    pub fn acquire(&self) -> PooledBuf {
        let buf = self.inner.idle.lock().pop();
        let buf = match buf {
            Some(mut b) => {
                b.clear();
                self.inner.reuses.fetch_add(1, Ordering::Relaxed);
                b
            }
            None => {
                self.inner.allocations.fetch_add(1, Ordering::Relaxed);
                Vec::new()
            }
        };
        PooledBuf {
            buf,
            pool: self.inner.clone(),
        }
    }

    /// Fresh `Vec` constructions so far (the pool's heap footprint).
    pub fn allocations(&self) -> u64 {
        self.inner.allocations.load(Ordering::Relaxed)
    }

    /// Acquires served without allocating.
    pub fn reuses(&self) -> u64 {
        self.inner.reuses.load(Ordering::Relaxed)
    }

    /// Buffers currently idle in the pool.
    pub fn idle(&self) -> usize {
        self.inner.idle.lock().len()
    }
}

/// A buffer borrowed from a [`BufferPool`]; returns on drop.
pub struct PooledBuf {
    buf: Vec<u8>,
    pool: Arc<PoolInner>,
}

impl PooledBuf {
    /// Replaces the contents with a copy of `data`.
    pub fn copy_from(&mut self, data: &[u8]) {
        self.buf.clear();
        self.buf.extend_from_slice(data);
    }
}

impl std::ops::Deref for PooledBuf {
    type Target = Vec<u8>;
    fn deref(&self) -> &Vec<u8> {
        &self.buf
    }
}

impl std::ops::DerefMut for PooledBuf {
    fn deref_mut(&mut self) -> &mut Vec<u8> {
        &mut self.buf
    }
}

impl std::fmt::Debug for PooledBuf {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "PooledBuf({} bytes)", self.buf.len())
    }
}

impl Drop for PooledBuf {
    fn drop(&mut self) {
        let mut idle = self.pool.idle.lock();
        if idle.len() < self.pool.idle_limit {
            idle.push(std::mem::take(&mut self.buf));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buffers_are_reused_after_return() {
        let pool = BufferPool::new(8);
        {
            let mut a = pool.acquire();
            a.copy_from(b"hello");
            assert_eq!(&a[..], b"hello");
        }
        assert_eq!(pool.allocations(), 1);
        assert_eq!(pool.idle(), 1);
        let b = pool.acquire();
        assert!(b.is_empty(), "reused buffer must come back cleared");
        assert_eq!(pool.allocations(), 1, "no second allocation");
        assert_eq!(pool.reuses(), 1);
    }

    #[test]
    fn idle_limit_bounds_retention() {
        let pool = BufferPool::new(2);
        let bufs: Vec<PooledBuf> = (0..5).map(|_| pool.acquire()).collect();
        drop(bufs);
        assert_eq!(pool.idle(), 2, "only idle_limit buffers retained");
        assert_eq!(pool.allocations(), 5);
    }

    #[test]
    fn steady_state_allocates_nothing() {
        let pool = BufferPool::new(16);
        for _ in 0..100 {
            let mut b = pool.acquire();
            b.copy_from(&[7u8; 512]);
        }
        assert_eq!(pool.allocations(), 1);
        assert_eq!(pool.reuses(), 99);
    }
}
