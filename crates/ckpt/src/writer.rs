//! The synchronous shard writer: delta encoding + two-phase manifest
//! commit.
//!
//! [`ShardWriter`] is the persist core shared by the background
//! [`crate::engine::CkptEngine`] worker and by synchronous callers (the
//! training-lab checkpointer). One [`ShardWriter::persist`] call writes
//! one checkpoint batch: every shard payload first (full or
//! delta-encoded), then the [`crate::manifest::ManifestEntry`] that
//! commits them. A crash — or an injected store failure — between shard
//! writes leaves orphans that no manifest references and **no** writer
//! state changes, so the chain's last committed checkpoint stays
//! recoverable bit-for-bit.

use crate::config::EngineConfig;
use crate::delta;
use crate::manifest::{manifest_module, ManifestEntry, ShardKind, ShardRecord};
use crate::pool::BufferPool;
use bytes::Bytes;
use moc_store::frame::crc32;
use moc_store::{ObjectStore, ShardKey, StatePart, StoreError};
use serde::Serialize;
use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;
use std::time::Instant;

/// Work counters of one writer.
#[derive(Debug, Clone, Default, PartialEq, Serialize)]
pub struct WriterStats {
    /// Committed checkpoint batches (manifests written).
    pub checkpoints: u64,
    /// Shards stored as full payloads.
    pub full_shards: u64,
    /// Shards stored as deltas.
    pub delta_shards: u64,
    /// Shards skipped because the identical payload was already committed.
    pub dedup_skips: u64,
    /// Full writes that replaced an existing delta base (periodic rebase
    /// or unprofitable delta).
    pub rebases: u64,
    /// Raw payload bytes of written shards (before delta encoding).
    pub raw_bytes: u64,
    /// Bytes actually stored for those shards (after delta encoding).
    pub stored_bytes: u64,
    /// Manifest payload bytes written.
    pub manifest_bytes: u64,
    /// Chain-aware GC passes executed.
    pub gc_runs: u64,
    /// Shard objects GC removed from the store.
    pub gc_pruned_shards: u64,
    /// Manifest objects GC removed from the store.
    pub gc_pruned_manifests: u64,
    /// Seconds spent delta-encoding.
    pub encode_secs: f64,
    /// Seconds spent in store writes (shards + manifests).
    pub persist_secs: f64,
}

impl WriterStats {
    /// Bytes the delta encoding avoided storing.
    pub fn delta_saved_bytes(&self) -> u64 {
        self.raw_bytes.saturating_sub(self.stored_bytes)
    }

    /// Folds another writer's counters into this one.
    pub fn merge(&mut self, other: &WriterStats) {
        self.checkpoints += other.checkpoints;
        self.full_shards += other.full_shards;
        self.delta_shards += other.delta_shards;
        self.dedup_skips += other.dedup_skips;
        self.rebases += other.rebases;
        self.raw_bytes += other.raw_bytes;
        self.stored_bytes += other.stored_bytes;
        self.manifest_bytes += other.manifest_bytes;
        self.gc_runs += other.gc_runs;
        self.gc_pruned_shards += other.gc_pruned_shards;
        self.gc_pruned_manifests += other.gc_pruned_manifests;
        self.encode_secs += other.encode_secs;
        self.persist_secs += other.persist_secs;
    }
}

/// Per-slot delta state: the last committed full shard and what has been
/// written against it.
struct BaseState {
    /// Version of the last committed full shard.
    version: u64,
    /// Its payload (shared so staging a delta does not copy it).
    bytes: Arc<Vec<u8>>,
    /// Consecutive deltas committed against it.
    deltas_since: u64,
    /// Version of the slot's last committed write (full or delta).
    last_version: u64,
    /// CRC of that write's raw payload (dedup key).
    last_crc: u32,
    /// Manifest record of that last committed write. A dedup-skipped
    /// shard still contributes this record to the new manifest, so
    /// re-committing a version (e.g. re-executed checkpoint iterations
    /// after a rollback) overwrites the old manifest with a superset,
    /// never a gutted one.
    last_record: ShardRecord,
}

/// Synchronous checkpoint writer owning one manifest chain.
pub struct ShardWriter {
    writer_id: usize,
    config: EngineConfig,
    store: Arc<dyn ObjectStore>,
    bases: HashMap<(String, StatePart), BaseState>,
    /// Last committed manifest version (the chain head).
    committed: Option<u64>,
    /// The writer's committed chain, ascending by version — its own
    /// committed `ChainStore` view, which chain-aware GC prunes from the
    /// head.
    chain: Vec<ManifestEntry>,
    /// Commits since the last GC pass.
    commits_since_gc: u64,
    pool: BufferPool,
    stats: WriterStats,
}

impl std::fmt::Debug for ShardWriter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardWriter")
            .field("writer_id", &self.writer_id)
            .field("committed", &self.committed)
            .finish()
    }
}

impl ShardWriter {
    /// Creates a writer persisting chain `writer_id` into `store`.
    pub fn new(writer_id: usize, store: Arc<dyn ObjectStore>, config: EngineConfig) -> Self {
        let pool = BufferPool::new(config.pool_idle_limit);
        Self::with_pool(writer_id, store, config, pool)
    }

    /// Like [`ShardWriter::new`] but drawing encode scratch from an
    /// external pool (the engine shares one pool across submit copies and
    /// writer scratch so the whole pipeline has one heap footprint).
    pub fn with_pool(
        writer_id: usize,
        store: Arc<dyn ObjectStore>,
        config: EngineConfig,
        pool: BufferPool,
    ) -> Self {
        Self {
            writer_id,
            config,
            store,
            bases: HashMap::new(),
            committed: None,
            chain: Vec::new(),
            commits_since_gc: 0,
            pool,
            stats: WriterStats::default(),
        }
    }

    /// The writer's chain id.
    pub fn writer_id(&self) -> usize {
        self.writer_id
    }

    /// The last committed checkpoint version.
    pub fn committed_version(&self) -> Option<u64> {
        self.committed
    }

    /// Work counters so far.
    pub fn stats(&self) -> WriterStats {
        self.stats.clone()
    }

    /// The writer's scratch-buffer pool (shared with the engine so the
    /// whole persist pipeline draws from one footprint).
    pub fn pool(&self) -> &BufferPool {
        &self.pool
    }

    /// Persists one checkpoint batch and commits it with a manifest.
    /// Shard keys carry their own versions (an old in-memory snapshot may
    /// be persisted under a manifest of a newer iteration); `version` is
    /// the checkpoint iteration the manifest commits.
    ///
    /// # Errors
    ///
    /// Propagates the first store failure. Nothing is committed in that
    /// case: the manifest is only written after every shard write
    /// succeeded, and the writer's delta state is left untouched.
    pub fn persist<'a>(
        &mut self,
        version: u64,
        shards: impl IntoIterator<Item = (&'a ShardKey, &'a [u8])>,
    ) -> Result<(), StoreError> {
        let mut records: Vec<ShardRecord> = Vec::new();
        let mut staged: HashMap<(String, StatePart), BaseState> = HashMap::new();
        let mut batch = WriterStats::default();

        for (key, raw) in shards {
            let slot = (key.module.clone(), key.part);
            let raw_crc = crc32(raw);
            let base = staged.get(&slot).or_else(|| self.bases.get(&slot));
            if let Some(b) = base {
                if b.last_version == key.version && b.last_crc == raw_crc {
                    // Already durably committed: skip the write but keep
                    // the record in this manifest so the commit stays
                    // self-contained even if it overwrites a previous
                    // manifest of the same version.
                    records.push(b.last_record.clone());
                    batch.dedup_skips += 1;
                    continue;
                }
            }

            // Delta-eligible: a strictly older committed base exists, the
            // rebase budget allows another delta, and encoding pays off.
            let mut encoded: Option<(Bytes, u64)> = None;
            if self.config.delta && self.config.rebase_interval > 1 {
                if let Some(b) = base {
                    if b.version < key.version && b.deltas_since < self.config.rebase_interval - 1 {
                        let mut scratch = self.pool.acquire();
                        let t0 = Instant::now();
                        let ok = delta::encode_into(&b.bytes, raw, b.version, &mut scratch);
                        batch.encode_secs += t0.elapsed().as_secs_f64();
                        if ok {
                            encoded = Some((Bytes::copy_from_slice(&scratch), b.version));
                        }
                    }
                }
            }

            let (stored, kind, base_meta) = match encoded {
                Some((delta_bytes, base_version)) => {
                    let b = base.expect("delta implies base");
                    batch.delta_shards += 1;
                    let meta = (b.version, b.bytes.clone(), b.deltas_since + 1);
                    (delta_bytes, ShardKind::Delta { base_version }, meta)
                }
                None => {
                    batch.full_shards += 1;
                    if base.is_some() {
                        batch.rebases += 1;
                    }
                    (
                        Bytes::copy_from_slice(raw),
                        ShardKind::Full,
                        (key.version, Arc::new(raw.to_vec()), 0),
                    )
                }
            };

            batch.raw_bytes += raw.len() as u64;
            batch.stored_bytes += stored.len() as u64;
            let record = ShardRecord {
                key: key.clone(),
                kind,
                stored_crc: crc32(&stored),
                stored_len: stored.len() as u64,
                raw_len: raw.len() as u64,
            };
            let (base_version, base_bytes, deltas_since) = base_meta;
            let next_state = BaseState {
                version: base_version,
                bytes: base_bytes,
                deltas_since,
                last_version: key.version,
                last_crc: raw_crc,
                last_record: record.clone(),
            };
            records.push(record);
            let t0 = Instant::now();
            self.store.put(key, stored)?;
            batch.persist_secs += t0.elapsed().as_secs_f64();
            staged.insert(slot, next_state);
        }

        // Commit point: the manifest goes in only after every shard write
        // succeeded. Anything before a crash here is an orphan the chain
        // reader never surfaces.
        let entry = ManifestEntry {
            version,
            // On a re-commit of the head version (re-executed checkpoint
            // after a rollback) the chain pointer stays strictly older.
            prev: self.committed.filter(|&c| c < version),
            shards: records,
        };
        let payload = entry.encode();
        batch.manifest_bytes += payload.len() as u64;
        let manifest_key =
            ShardKey::new(manifest_module(self.writer_id), StatePart::Extra, version);
        let t0 = Instant::now();
        self.store.put(&manifest_key, payload)?;
        batch.persist_secs += t0.elapsed().as_secs_f64();

        // Committed: fold the staged delta state and counters in.
        for (slot, state) in staged {
            self.bases.insert(slot, state);
        }
        self.committed = Some(version);
        // Maintain the committed chain. A rollback can re-commit *any*
        // earlier version (re-executed checkpoint iterations after a
        // recovery): entries at or above it are stale re-execution
        // targets — the replay will re-commit them in order — so they
        // drop here, keeping the chain ascending and duplicate-free
        // (the sortedness GC's anchor and `Manifest::prunable` rely
        // on).
        self.chain.retain(|e| e.version < version);
        self.chain.push(entry);
        batch.checkpoints = 1;
        self.stats.merge(&batch);
        self.commits_since_gc += 1;
        Ok(())
    }

    /// Runs [`ShardWriter::gc`] when the configured GC interval has
    /// elapsed since the last pass. Returns whether a pass ran. The
    /// engine's background worker calls this after every committed
    /// batch; synchronous callers may invoke it at their own cadence.
    ///
    /// # Errors
    ///
    /// Propagates store failures from the pass.
    pub fn maybe_gc(&mut self) -> Result<bool, StoreError> {
        if self.config.gc_interval == 0 || self.commits_since_gc < self.config.gc_interval {
            return Ok(false);
        }
        self.commits_since_gc = 0;
        self.gc()?;
        Ok(true)
    }

    /// Chain-aware garbage collection over this writer's committed view.
    ///
    /// The prune anchor is the `gc_keep_last`-newest committed version:
    /// [`moc_core::manifest::Manifest::prunable`] over the chain's
    /// records nominates every shard version superseded before that
    /// anchor. A nominated shard is *doomed* unless a retained record
    /// still needs it — directly (a dedup re-commit re-records an old
    /// key) or as the full base of a retained delta — so superseded
    /// full+delta groups are dropped while every version the chain still
    /// reports keeps reconstructing bitwise.
    ///
    /// Deletion is two-phase for crash safety under the reader's
    /// prefix-strict commit rule: first every manifest listing a doomed
    /// record is *compacted* (atomically rewritten without it; leading
    /// manifests left empty are deleted so the chain start advances),
    /// then the doomed shard objects are removed. A crash between the
    /// phases leaves unreferenced orphans, never a manifest pointing at
    /// missing bytes.
    ///
    /// Store deletions go through [`ObjectStore::prune`] per slot,
    /// capped at the slot's contiguous doomed prefix of *stored*
    /// versions, so a slot another writer also persisted (expert
    /// migration during an elastic shrink) can never lose a foreign
    /// committed shard.
    ///
    /// # Errors
    ///
    /// Propagates store failures; the in-memory chain only forgets what
    /// the store confirmed.
    pub fn gc(&mut self) -> Result<(), StoreError> {
        if self.chain.len() <= self.config.gc_keep_last {
            return Ok(());
        }
        let keep_from = self.chain[self.chain.len() - self.config.gc_keep_last].version;

        // The writer's committed view as a core manifest: per-slot
        // version lists feeding the prunable-shard nomination.
        let mut manifest = moc_core::Manifest::new();
        for entry in &self.chain {
            for record in &entry.shards {
                manifest.record(&record.key.module, record.key.part, record.key.version);
            }
            manifest.complete_checkpoint(entry.version);
        }
        // Nomination as a ShardKey set: every membership probe below
        // reuses a record's existing key reference instead of cloning
        // its module string (GC runs on the background persist thread,
        // which sits on the checkpoint critical path in sync mode).
        let nominated: std::collections::HashSet<ShardKey> = manifest
            .prunable(keep_from)
            .into_iter()
            .map(|(module, part, version)| ShardKey::new(module, part, version))
            .collect();

        // Partition the chain's keys: a nominated key survives only if a
        // kept record still needs it as its delta base (delta -> full is
        // one level, so a single closure pass suffices).
        let mut kept: std::collections::HashSet<ShardKey> = std::collections::HashSet::new();
        for entry in &self.chain {
            for record in &entry.shards {
                if !nominated.contains(&record.key) {
                    kept.insert(record.key.clone());
                }
            }
        }
        for entry in &self.chain {
            for record in &entry.shards {
                if let ShardKind::Delta { base_version } = record.kind {
                    if kept.contains(&record.key) {
                        kept.insert(ShardKey::new(
                            record.key.module.clone(),
                            record.key.part,
                            base_version,
                        ));
                    }
                }
            }
        }
        // Per-slot candidate versions (nominated and unneeded), for the
        // stored-prefix scan below.
        let mut cand_by_slot: BTreeMap<(String, StatePart), std::collections::HashSet<u64>> =
            BTreeMap::new();
        for entry in &self.chain {
            for record in &entry.shards {
                let k = &record.key;
                if nominated.contains(k) && !kept.contains(k) {
                    cand_by_slot
                        .entry((k.module.clone(), k.part))
                        .or_default()
                        .insert(k.version);
                }
            }
        }
        if cand_by_slot.is_empty() {
            return Ok(());
        }

        // Deletion goes through [`ObjectStore::prune`], a strictly
        // range-below operation, so only each slot's contiguous
        // candidate prefix of *stored* versions is actually deletable —
        // a kept old delta base, or a foreign writer's interleaved
        // version (expert migration during an elastic shrink), caps the
        // range. Keys beyond the cap stay committed and recoverable
        // instead of becoming dead weight in a compacted manifest.
        let mut stored: BTreeMap<(String, StatePart), Vec<u64>> = BTreeMap::new();
        for key in self.store.keys()? {
            stored
                .entry((key.module, key.part))
                .or_default()
                .push(key.version);
        }
        let mut doomed: std::collections::HashSet<ShardKey> = std::collections::HashSet::new();
        let mut prune_bounds: Vec<(String, StatePart, u64)> = Vec::new();
        for ((module, part), candidates) in &cand_by_slot {
            let Some(versions) = stored.get_mut(&(module.clone(), *part)) else {
                continue;
            };
            versions.sort_unstable();
            let mut bound = None;
            for &v in versions.iter() {
                if candidates.contains(&v) {
                    doomed.insert(ShardKey::new(module.clone(), *part, v));
                    bound = Some(v);
                } else {
                    break;
                }
            }
            if let Some(v) = bound {
                prune_bounds.push((module.clone(), *part, v));
            }
        }
        if doomed.is_empty() {
            return Ok(());
        }

        // Phase 1: compact every manifest listing a doomed record —
        // after this, no committed manifest references the bytes phase 2
        // removes. Each stored rewrite succeeds *before* the in-memory
        // entry adopts it, so a mid-phase store failure leaves the
        // writer's view never ahead of the store: un-compacted entries
        // still carry their records and a later pass re-nominates them.
        for entry in &mut self.chain {
            if !entry.shards.iter().any(|r| doomed.contains(&r.key)) {
                continue;
            }
            let mut compacted = entry.clone();
            compacted.shards.retain(|r| !doomed.contains(&r.key));
            let manifest_key = ShardKey::new(
                manifest_module(self.writer_id),
                StatePart::Extra,
                entry.version,
            );
            let payload = compacted.encode();
            self.stats.manifest_bytes += payload.len() as u64;
            self.store.put(&manifest_key, payload)?;
            *entry = compacted;
        }
        // Leading manifests left empty carry no information: delete them
        // so the chain start advances (never past the keep anchor).
        let mut first_kept_idx = 0usize;
        while first_kept_idx < self.chain.len() - self.config.gc_keep_last
            && self.chain[first_kept_idx].shards.is_empty()
        {
            first_kept_idx += 1;
        }
        let mut pruned_manifests = 0u64;
        if first_kept_idx > 0 {
            let first_kept = self.chain[first_kept_idx].version;
            pruned_manifests = self.store.prune(
                &manifest_module(self.writer_id),
                StatePart::Extra,
                first_kept,
            )? as u64;
            self.chain.drain(..first_kept_idx);
        }

        // Phase 2: the deletions themselves, per slot up to the bound
        // established above.
        let mut pruned_shards = 0u64;
        for (module, part, v) in prune_bounds {
            pruned_shards += self.store.prune(&module, part, v + 1)? as u64;
        }
        self.stats.gc_runs += 1;
        self.stats.gc_pruned_shards += pruned_shards;
        self.stats.gc_pruned_manifests += pruned_manifests;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reader::ChainStore;
    use moc_store::MemoryObjectStore;

    fn payload(seed: u8, len: usize) -> Vec<u8> {
        let values: Vec<f32> = (0..len)
            .map(|i| (i as f32) + f32::from(seed) * 1e-3)
            .collect();
        values.iter().flat_map(|v| v.to_le_bytes()).collect()
    }

    fn store() -> Arc<dyn ObjectStore> {
        Arc::new(MemoryObjectStore::new())
    }

    #[test]
    fn full_then_delta_then_rebase() {
        let store = store();
        let cfg = EngineConfig {
            delta: true,
            rebase_interval: 3,
            ..EngineConfig::default()
        };
        let mut w = ShardWriter::new(0, store.clone(), cfg);
        let key = |v: u64| ShardKey::new("layer1.expert0", StatePart::Weights, v);
        for v in 1..=5u64 {
            let p = payload(v as u8, 256);
            w.persist(v * 10, [(&key(v * 10), &p[..])]).unwrap();
        }
        let s = w.stats();
        // v10 full, v20/v30 deltas, v40 rebase (budget exhausted), v50 delta.
        assert_eq!(s.checkpoints, 5);
        assert_eq!(s.full_shards, 2);
        assert_eq!(s.delta_shards, 3);
        assert_eq!(s.rebases, 1);
        assert!(s.stored_bytes < s.raw_bytes, "deltas must save bytes");
        // Every version reconstructs bitwise through the chain.
        let chain = ChainStore::load(store).unwrap();
        for v in 1..=5u64 {
            let got = chain.get(&key(v * 10)).unwrap().unwrap();
            assert_eq!(&got[..], &payload(v as u8, 256)[..], "version {v}");
        }
    }

    #[test]
    fn identical_repersist_is_deduped() {
        let store = store();
        let mut w = ShardWriter::new(0, store.clone(), EngineConfig::default());
        let key = ShardKey::new("m", StatePart::Optimizer, 7);
        let p = payload(1, 64);
        w.persist(10, [(&key, &p[..])]).unwrap();
        w.persist(20, [(&key, &p[..])]).unwrap();
        let s = w.stats();
        assert_eq!(s.dedup_skips, 1);
        assert_eq!(s.full_shards, 1);
        // Both manifests committed; the shard resolves either way.
        let chain = ChainStore::load(store).unwrap();
        assert_eq!(chain.newest_committed(), Some(20));
        assert_eq!(&chain.get(&key).unwrap().unwrap()[..], &p[..]);
    }

    #[test]
    fn store_failure_commits_nothing() {
        let store = store();
        let mut w = ShardWriter::new(0, store.clone(), EngineConfig::default());
        let k1 = ShardKey::new("a", StatePart::Weights, 10);
        let p1 = payload(3, 128);
        w.persist(10, [(&k1, &p1[..])]).unwrap();

        let flaky = crate::testing::FlakyStore::new(store.clone(), 1);
        let mut w2 = ShardWriter::new(0, Arc::new(flaky), EngineConfig::default());
        let k2a = ShardKey::new("a", StatePart::Weights, 20);
        let k2b = ShardKey::new("b", StatePart::Weights, 20);
        let p2 = payload(4, 128);
        // First put succeeds, second fails: no manifest for version 20.
        assert!(w2.persist(20, [(&k2a, &p2[..]), (&k2b, &p2[..])]).is_err());
        assert_eq!(w2.committed_version(), None);

        let chain = ChainStore::load(store).unwrap();
        assert_eq!(chain.newest_committed(), Some(10));
        // The torn version is invisible; version 10 still reconstructs.
        assert_eq!(
            chain.latest_version("a", StatePart::Weights, 99).unwrap(),
            Some(10)
        );
        assert_eq!(&chain.get(&k1).unwrap().unwrap()[..], &p1[..]);
    }

    /// A re-committed version (re-executed checkpoint iteration after a
    /// rollback) overwrites the old manifest with a superset: dedup
    /// skips the store writes but keeps every record, so the chain keeps
    /// resolving the version and later deltas against it.
    #[test]
    fn recommitted_version_keeps_its_records() {
        let store = store();
        let mut w = ShardWriter::new(0, store.clone(), EngineConfig::default());
        let key10 = ShardKey::new("m", StatePart::Weights, 10);
        let key20 = ShardKey::new("m", StatePart::Weights, 20);
        let p10 = payload(1, 128);
        let p20 = payload(2, 128);
        w.persist(10, [(&key10, &p10[..])]).unwrap();
        w.persist(20, [(&key20, &p20[..])]).unwrap(); // delta vs 10
                                                      // Replay re-commits version 20 with the identical payload.
        w.persist(20, [(&key20, &p20[..])]).unwrap();
        assert_eq!(w.stats().dedup_skips, 1);
        let chain = ChainStore::load(store).unwrap();
        assert_eq!(chain.newest_committed(), Some(20));
        assert_eq!(
            &chain.get(&key20).unwrap().unwrap()[..],
            &p20[..],
            "the re-committed manifest must still carry the record"
        );
        // And a later delta against the same chain still resolves.
        let key30 = ShardKey::new("m", StatePart::Weights, 30);
        let p30 = payload(3, 128);
        w.persist(30, [(&key30, &p30[..])]).unwrap();
        let chain = ChainStore::load(w.store.clone()).unwrap();
        assert_eq!(&chain.get(&key30).unwrap().unwrap()[..], &p30[..]);
    }

    /// Two versions of one slot inside a single batch: the second
    /// delta-encodes against the first (staged) base, and the chain
    /// resolves both even though base and delta share a manifest.
    #[test]
    fn intra_batch_same_slot_delta_resolves() {
        let store = store();
        let mut w = ShardWriter::new(0, store.clone(), EngineConfig::default());
        let k1 = ShardKey::new("m", StatePart::Weights, 5);
        let k2 = ShardKey::new("m", StatePart::Weights, 9);
        let p1 = payload(1, 128);
        let p2 = payload(2, 128);
        w.persist(9, [(&k1, &p1[..]), (&k2, &p2[..])]).unwrap();
        assert_eq!(
            w.stats().delta_shards,
            1,
            "second write deltas vs staged base"
        );
        let chain = ChainStore::load(store).unwrap();
        assert_eq!(&chain.get(&k1).unwrap().unwrap()[..], &p1[..]);
        assert_eq!(&chain.get(&k2).unwrap().unwrap()[..], &p2[..]);
    }

    /// Chain-aware GC drops superseded full+delta groups from the head
    /// of the chain — and their manifests — while every version the
    /// chain still reports reconstructs bitwise.
    #[test]
    fn gc_prunes_superseded_groups_and_keeps_chain_valid() {
        let store = store();
        let cfg = EngineConfig {
            rebase_interval: 2,
            gc_keep_last: 2,
            ..EngineConfig::with_gc(1)
        };
        let mut w = ShardWriter::new(0, store.clone(), cfg);
        let key = |v: u64| ShardKey::new("m", StatePart::Weights, v);
        for v in 1..=8u64 {
            let p = payload(v as u8, 256);
            w.persist(v * 10, [(&key(v * 10), &p[..])]).unwrap();
            w.maybe_gc().unwrap();
        }
        let s = w.stats();
        assert!(s.gc_runs > 0, "GC must have run: {s:?}");
        assert!(s.gc_pruned_shards > 0, "old groups must be dropped");
        assert!(s.gc_pruned_manifests > 0, "their manifests too");

        let chain = ChainStore::load(store.clone()).unwrap();
        let committed = chain.committed_versions();
        assert!(
            committed.len() < 8,
            "superseded versions must be gone: {committed:?}"
        );
        assert!(
            committed.contains(&80),
            "the chain head must survive: {committed:?}"
        );
        // Every version the post-GC chain reports still reconstructs
        // bitwise (no stranded delta, no missing base).
        for &v in &committed {
            let got = chain.get(&key(v)).unwrap().unwrap();
            assert_eq!(&got[..], &payload((v / 10) as u8, 256)[..], "version {v}");
        }
        // Bytes actually shrank versus the no-GC run.
        let unpruned = store_without_gc(8);
        assert!(
            store.total_bytes().unwrap() < unpruned,
            "GC must reclaim store bytes"
        );
    }

    fn store_without_gc(versions: u64) -> u64 {
        let store = store();
        let cfg = EngineConfig {
            rebase_interval: 2,
            ..EngineConfig::default()
        };
        let mut w = ShardWriter::new(0, store.clone(), cfg);
        for v in 1..=versions {
            let p = payload(v as u8, 256);
            let key = ShardKey::new("m", StatePart::Weights, v * 10);
            w.persist(v * 10, [(&key, &p[..])]).unwrap();
        }
        store.total_bytes().unwrap()
    }

    /// GC never strands a delta: the full base of retained deltas
    /// survives even when it sits far below the prune anchor, while
    /// superseded sibling deltas between base and anchor are dropped.
    #[test]
    fn gc_keeps_delta_bases_alive() {
        let store = store();
        let cfg = EngineConfig {
            rebase_interval: 8,
            gc_keep_last: 2,
            ..EngineConfig::with_gc(1)
        };
        let mut w = ShardWriter::new(0, store.clone(), cfg);
        let key = |v: u64| ShardKey::new("m", StatePart::Weights, v);
        for v in 1..=6u64 {
            let p = payload(v as u8, 256);
            w.persist(v * 10, [(&key(v * 10), &p[..])]).unwrap();
            w.maybe_gc().unwrap();
        }
        // With rebase_interval 8 every later shard deltas against the
        // v10 full: the middle deltas are superseded, but deleting them
        // would require removing versions *above* the still-needed v10
        // base — outside `prune`'s range-below reach — so GC leaves the
        // whole group intact and recoverable rather than compacting
        // records it cannot reclaim.
        assert_eq!(w.stats().gc_pruned_shards, 0);
        let chain = ChainStore::load(store).unwrap();
        assert_eq!(chain.committed_versions().len(), 6);
        for v in 1..=6u64 {
            let got = chain.get(&key(v * 10)).unwrap().unwrap();
            assert_eq!(&got[..], &payload(v as u8, 256)[..], "version {v}");
        }
    }

    /// GC caps each slot's deletion at the contiguous doomed prefix of
    /// *stored* versions: a foreign writer's interleaved shard (expert
    /// migration during an elastic shrink) is never collateral damage.
    #[test]
    fn gc_spares_foreign_writers_shards() {
        let store = store();
        // Writer 1 owns "m" during a degraded window and committed v25.
        let mut w1 = ShardWriter::new(1, store.clone(), EngineConfig::full_only());
        let foreign = ShardKey::new("m", StatePart::Weights, 25);
        let fp = payload(9, 64);
        w1.persist(25, [(&foreign, &fp[..])]).unwrap();

        // Writer 0 wrote v10/v20 before and v30/v40 after; its GC wants
        // v10..v30 gone but must stop below the foreign v25.
        let cfg = EngineConfig {
            gc_keep_last: 1,
            rebase_interval: 2,
            ..EngineConfig::with_gc(8)
        };
        let mut w0 = ShardWriter::new(0, store.clone(), cfg);
        let key = |v: u64| ShardKey::new("m", StatePart::Weights, v);
        for v in [10u64, 20, 30, 40] {
            let p = payload(v as u8, 64);
            w0.persist(v, [(&key(v), &p[..])]).unwrap();
        }
        w0.gc().unwrap();
        assert!(w0.stats().gc_pruned_shards > 0);
        // v10 and v20 (below the foreign shard) are gone; v25 survives.
        assert!(store.get(&key(10)).unwrap().is_none());
        assert!(store.get(&key(20)).unwrap().is_none());
        assert_eq!(&store.get(&foreign).unwrap().unwrap()[..], &fp[..]);
        // Writer 1's chain still validates and serves its shard.
        let view = ChainStore::load_for_writers(store, &[1]).unwrap();
        assert_eq!(&view.get(&foreign).unwrap().unwrap()[..], &fp[..]);
    }

    #[test]
    fn delta_disabled_writes_full_only() {
        let store = store();
        let mut w = ShardWriter::new(0, store, EngineConfig::full_only());
        let key = |v: u64| ShardKey::new("m", StatePart::Weights, v);
        for v in [1u64, 2, 3] {
            let p = payload(v as u8, 64);
            w.persist(v, [(&key(v), &p[..])]).unwrap();
        }
        let s = w.stats();
        assert_eq!(s.delta_shards, 0);
        assert_eq!(s.full_shards, 3);
        assert_eq!(s.raw_bytes, s.stored_bytes);
    }
}
