//! The asynchronous checkpoint engine: snapshot → shard → persist as a
//! pipeline.
//!
//! One [`CkptEngine`] serves one node. [`CkptEngine::submit`] runs on the
//! training-side thread and performs **no store I/O**: it snapshots every
//! shard into the node's CPU-memory tier (a refcounted handoff), copies
//! the persist subset into pooled buffers (the copy-on-snapshot), and
//! enqueues the batch for the background writer. Admission is
//! double-buffered: up to [`crate::EngineConfig::inflight_limit`] batches
//! may be draining; beyond that `submit` stalls and reports it — the
//! checkpoint stall "S" of the paper's Fig. 3.
//!
//! The writer thread drains batches through a [`crate::ShardWriter`]:
//! delta-encode, write shards, then commit the manifest
//! ([`crate::manifest`]). Training iterations therefore never block on
//! persistence in steady state, and a node death mid-drain can only lose
//! the uncommitted tail.

use crate::config::EngineConfig;
use crate::pool::{BufferPool, PooledBuf};
use crate::writer::{ShardWriter, WriterStats};
use crossbeam::channel::{unbounded, Receiver, Sender};
use moc_core::twolevel::ShardJob;
use moc_obs::{ckpt_flow_id, Flow, SpanKind, TraceSink};
use moc_store::{NodeMemoryStore, ObjectStore, ShardKey};
use parking_lot::{Condvar, Mutex};
use serde::Serialize;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

/// Aggregated work counters of an engine (or several, via
/// [`EngineStats::merge`]).
#[derive(Debug, Clone, Default, PartialEq, Serialize)]
pub struct EngineStats {
    /// Checkpoint batches submitted.
    pub batches: u64,
    /// Shards copied into the CPU-memory snapshot tier.
    pub snapshots: u64,
    /// Bytes handed to the snapshot tier.
    pub snapshot_bytes: u64,
    /// Submissions that stalled on the in-flight limit.
    pub stalls: u64,
    /// Buffers the pipeline's pool ever allocated.
    pub pool_allocs: u64,
    /// Pool acquires served without allocating.
    pub pool_reuses: u64,
    /// The background [`ShardWriter`]'s counters: committed checkpoints,
    /// full/delta shard mix, raw vs stored bytes, encode/persist time.
    pub writer: WriterStats,
    /// Store errors the writer hit (each aborts its batch uncommitted).
    pub errors: Vec<String>,
}

impl EngineStats {
    /// Bytes the delta encoding avoided storing.
    pub fn delta_saved_bytes(&self) -> u64 {
        self.writer.delta_saved_bytes()
    }

    /// Folds another engine's counters into this one.
    pub fn merge(&mut self, other: &EngineStats) {
        self.batches += other.batches;
        self.snapshots += other.snapshots;
        self.snapshot_bytes += other.snapshot_bytes;
        self.stalls += other.stalls;
        self.pool_allocs += other.pool_allocs;
        self.pool_reuses += other.pool_reuses;
        self.writer.merge(&other.writer);
        self.errors.extend(other.errors.iter().cloned());
    }
}

struct Batch {
    version: u64,
    entries: Vec<(ShardKey, PooledBuf)>,
}

struct Inner {
    inflight: Mutex<usize>,
    /// Signalled when a batch finishes draining.
    drained: Condvar,
    /// Submit-side counters plus the writer's latest snapshot.
    stats: Mutex<EngineStats>,
    /// Cumulative bytes the writer stored, mirrored lock-free after
    /// every batch so a telemetry sampler can probe it live.
    persisted_bytes: Arc<AtomicU64>,
}

/// Asynchronous checkpoint engine of one node.
pub struct CkptEngine {
    writer_id: usize,
    config: EngineConfig,
    memory: Option<Arc<NodeMemoryStore>>,
    pool: BufferPool,
    inner: Arc<Inner>,
    tx: Option<Sender<Batch>>,
    worker: Option<JoinHandle<()>>,
}

impl std::fmt::Debug for CkptEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CkptEngine")
            .field("writer_id", &self.writer_id)
            .finish()
    }
}

impl CkptEngine {
    /// Spawns the engine's writer thread. `memory` is the node's
    /// CPU-memory snapshot tier (pass `None` for persist-only use).
    ///
    /// # Panics
    ///
    /// Panics if `config` fails [`EngineConfig::validate`].
    pub fn spawn(
        writer_id: usize,
        memory: Option<Arc<NodeMemoryStore>>,
        store: Arc<dyn ObjectStore>,
        config: EngineConfig,
    ) -> Self {
        Self::spawn_observed(writer_id, memory, store, config, TraceSink::disabled())
    }

    /// [`CkptEngine::spawn`] with a trace sink for the writer thread:
    /// background persist and GC batches become `persist`/`gc` spans,
    /// and each committed persist ends the checkpoint flow started by
    /// the submitting trainer ([`ckpt_flow_id`]).
    pub fn spawn_observed(
        writer_id: usize,
        memory: Option<Arc<NodeMemoryStore>>,
        store: Arc<dyn ObjectStore>,
        config: EngineConfig,
        sink: TraceSink,
    ) -> Self {
        config.validate().expect("valid engine config");
        let pool = BufferPool::new(config.pool_idle_limit);
        let inner = Arc::new(Inner {
            inflight: Mutex::new(0),
            drained: Condvar::new(),
            stats: Mutex::new(EngineStats::default()),
            persisted_bytes: Arc::new(AtomicU64::new(0)),
        });
        let (tx, rx) = unbounded::<Batch>();
        let writer = ShardWriter::with_pool(writer_id, store, config, pool.clone());
        let worker_inner = inner.clone();
        let worker = std::thread::Builder::new()
            .name(format!("moc-ckpt-{writer_id}"))
            .spawn(move || writer_loop(rx, writer, worker_inner, writer_id, sink))
            .expect("spawn ckpt writer");
        Self {
            writer_id,
            config,
            memory,
            pool,
            inner,
            tx: Some(tx),
            worker: Some(worker),
        }
    }

    /// The engine's writer / manifest-chain id.
    pub fn writer_id(&self) -> usize {
        self.writer_id
    }

    /// The engine's buffer pool.
    pub fn pool(&self) -> &BufferPool {
        &self.pool
    }

    /// Submits one checkpoint batch. All shards are snapshotted to the
    /// memory tier; shards flagged `persist` are copied into pooled
    /// buffers and queued for the background writer. Returns whether the
    /// submission stalled on the in-flight limit. Performs no store I/O.
    pub fn submit(&self, version: u64, shards: Vec<ShardJob>) -> bool {
        let mut entries = Vec::new();
        let mut snapshots = 0u64;
        let mut snapshot_bytes = 0u64;
        for shard in shards {
            if let Some(memory) = &self.memory {
                memory.put(&shard.key, shard.payload.clone());
            }
            snapshots += 1;
            snapshot_bytes += shard.payload.len() as u64;
            if shard.persist {
                let mut buf = self.pool.acquire();
                buf.copy_from(&shard.payload);
                entries.push((shard.key, buf));
            }
        }

        // Double-buffered admission: stall only when `inflight_limit`
        // batches are already draining.
        let mut stalled = false;
        {
            let mut inflight = self.inner.inflight.lock();
            while *inflight >= self.config.inflight_limit {
                stalled = true;
                // The writer notifies `drained` after every batch, so a
                // plain blocking wait suffices (no polling).
                self.inner.drained.wait(&mut inflight);
            }
            *inflight += 1;
        }
        {
            let mut stats = self.inner.stats.lock();
            stats.batches += 1;
            stats.snapshots += snapshots;
            stats.snapshot_bytes += snapshot_bytes;
            if stalled {
                stats.stalls += 1;
            }
        }
        if self
            .tx
            .as_ref()
            .expect("engine not shut down")
            .send(Batch { version, entries })
            .is_err()
        {
            panic!("ckpt writer thread died");
        }
        stalled
    }

    /// Blocks until every submitted batch has drained to the store.
    pub fn wait_idle(&self) {
        let mut inflight = self.inner.inflight.lock();
        while *inflight > 0 {
            self.inner.drained.wait(&mut inflight);
        }
    }

    /// A shared handle on the cumulative bytes this engine's writer has
    /// stored, updated after every drained batch — safe for read-only
    /// sampling (e.g. a telemetry plane) while the writer runs.
    pub fn persisted_bytes_probe(&self) -> Arc<AtomicU64> {
        self.inner.persisted_bytes.clone()
    }

    /// Current counters (submit side + the writer's last completed batch).
    pub fn stats(&self) -> EngineStats {
        let mut stats = self.inner.stats.lock().clone();
        stats.pool_allocs = self.pool.allocations();
        stats.pool_reuses = self.pool.reuses();
        stats
    }

    /// Shuts the writer down after draining, returning final counters.
    pub fn shutdown(mut self) -> EngineStats {
        self.shutdown_in_place();
        self.stats()
    }

    fn shutdown_in_place(&mut self) {
        drop(self.tx.take());
        if let Some(worker) = self.worker.take() {
            let _ = worker.join();
        }
    }
}

impl Drop for CkptEngine {
    fn drop(&mut self) {
        self.shutdown_in_place();
    }
}

fn writer_loop(
    rx: Receiver<Batch>,
    mut writer: ShardWriter,
    inner: Arc<Inner>,
    writer_id: usize,
    mut sink: TraceSink,
) {
    while let Ok(batch) = rx.recv() {
        let persist_start = sink.now();
        let result = writer.persist(
            batch.version,
            batch.entries.iter().map(|(key, buf)| (key, &buf[..])),
        );
        sink.record(
            SpanKind::Persist,
            "persist",
            batch.version,
            persist_start,
            sink.now() - persist_start,
            Flow::End(ckpt_flow_id(batch.version, writer_id)),
        );
        // Chain-aware GC rides the background worker: after a committed
        // batch, superseded full+delta groups of this writer's chain are
        // dropped on the configured cadence. A GC store failure leaves
        // the commit intact and is reported distinctly.
        let gc_result = if result.is_ok() {
            let gc_start = sink.now();
            let gc = writer.maybe_gc();
            if matches!(gc, Ok(true)) {
                sink.span(SpanKind::Gc, "gc", batch.version, gc_start);
            }
            gc.map(|_| ())
        } else {
            Ok(())
        };
        {
            let mut stats = inner.stats.lock();
            stats.writer = writer.stats();
            inner
                .persisted_bytes
                .store(stats.writer.stored_bytes, Ordering::Relaxed);
            if let Err(e) = result {
                stats.errors.push(format!(
                    "persist of version {} aborted uncommitted: {e}",
                    batch.version
                ));
            }
            if let Err(e) = gc_result {
                stats
                    .errors
                    .push(format!("gc after version {} failed: {e}", batch.version));
            }
        }
        drop(batch); // buffers return to the pool
        {
            let mut inflight = inner.inflight.lock();
            *inflight = inflight.saturating_sub(1);
        }
        inner.drained.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reader::ChainStore;
    use bytes::Bytes;
    use moc_store::{MemoryObjectStore, StatePart};

    fn job(module: &str, version: u64, fill: u8, persist: bool) -> ShardJob {
        let payload: Vec<u8> = (0..256)
            .flat_map(|i| ((i as f32) + f32::from(fill) * 1e-3).to_le_bytes())
            .collect();
        ShardJob {
            key: ShardKey::new(module, StatePart::Weights, version),
            payload: Bytes::from(payload),
            persist,
        }
    }

    #[test]
    fn submit_snapshots_and_persists_with_manifest() {
        let memory = Arc::new(NodeMemoryStore::new());
        let store: Arc<dyn ObjectStore> = Arc::new(MemoryObjectStore::new());
        let engine = CkptEngine::spawn(
            0,
            Some(memory.clone()),
            store.clone(),
            EngineConfig::default(),
        );
        engine.submit(10, vec![job("a", 10, 1, true), job("b", 10, 2, false)]);
        engine.wait_idle();
        // Both shards snapshotted; only `a` persisted, under a manifest.
        assert_eq!(memory.version("a", StatePart::Weights), Some(10));
        assert_eq!(memory.version("b", StatePart::Weights), Some(10));
        let chain = ChainStore::load(store).unwrap();
        assert_eq!(chain.newest_committed(), Some(10));
        assert_eq!(
            chain.latest_version("a", StatePart::Weights, 99).unwrap(),
            Some(10)
        );
        assert_eq!(
            chain.latest_version("b", StatePart::Weights, 99).unwrap(),
            None
        );
        let stats = engine.shutdown();
        assert_eq!(stats.snapshots, 2);
        assert_eq!(stats.writer.checkpoints, 1);
        assert_eq!(stats.writer.full_shards, 1);
        assert!(stats.errors.is_empty());
    }

    #[test]
    fn successive_versions_use_deltas_and_reconstruct() {
        let store: Arc<dyn ObjectStore> = Arc::new(MemoryObjectStore::new());
        let engine = CkptEngine::spawn(3, None, store.clone(), EngineConfig::default());
        for v in 1..=4u64 {
            engine.submit(v * 10, vec![job("m", v * 10, v as u8, true)]);
        }
        engine.wait_idle();
        let stats = engine.stats();
        assert!(
            stats.writer.delta_shards > 0,
            "close payloads must delta: {stats:?}"
        );
        assert!(stats.writer.stored_bytes < stats.writer.raw_bytes);
        let chain = ChainStore::load(store).unwrap();
        for v in 1..=4u64 {
            let got = chain
                .get(&ShardKey::new("m", StatePart::Weights, v * 10))
                .unwrap()
                .unwrap();
            assert_eq!(got, job("m", v * 10, v as u8, true).payload, "version {v}");
        }
        engine.shutdown();
    }

    /// The background worker runs chain-aware GC on the configured
    /// cadence: superseded versions disappear from the committed view
    /// while everything the view still reports reconstructs.
    #[test]
    fn background_gc_prunes_superseded_versions() {
        let store: Arc<dyn ObjectStore> = Arc::new(MemoryObjectStore::new());
        let config = EngineConfig {
            rebase_interval: 2,
            gc_keep_last: 2,
            ..EngineConfig::with_gc(1)
        };
        let engine = CkptEngine::spawn(0, None, store.clone(), config);
        for v in 1..=8u64 {
            engine.submit(v * 10, vec![job("m", v * 10, v as u8, true)]);
        }
        engine.wait_idle();
        let stats = engine.shutdown();
        assert!(stats.writer.gc_runs > 0, "{stats:?}");
        assert!(stats.writer.gc_pruned_shards > 0);
        assert!(stats.errors.is_empty(), "{:?}", stats.errors);
        let chain = ChainStore::load(store).unwrap();
        let committed = chain.committed_versions();
        assert!(committed.len() < 8, "{committed:?}");
        assert!(committed.contains(&80));
        for &v in &committed {
            assert!(
                chain
                    .get(&ShardKey::new("m", StatePart::Weights, v))
                    .unwrap()
                    .is_some(),
                "version {v} must stay recoverable"
            );
        }
    }

    #[test]
    fn steady_state_pool_stops_allocating() {
        let store: Arc<dyn ObjectStore> = Arc::new(MemoryObjectStore::new());
        let engine = CkptEngine::spawn(0, None, store, EngineConfig::default());
        for v in 1..=3u64 {
            engine.submit(v, vec![job("m", v, v as u8, true)]);
            engine.wait_idle();
        }
        let after_warmup = engine.pool().allocations();
        for v in 4..=20u64 {
            engine.submit(v, vec![job("m", v, v as u8, true)]);
            engine.wait_idle();
        }
        assert_eq!(
            engine.pool().allocations(),
            after_warmup,
            "steady state must reuse pooled buffers"
        );
        engine.shutdown();
    }

    #[test]
    fn inflight_limit_stalls_third_batch() {
        let store: Arc<dyn ObjectStore> = Arc::new(crate::testing::SlowStore::new(
            Arc::new(MemoryObjectStore::new()),
            std::time::Duration::from_millis(30),
        ));
        let engine = CkptEngine::spawn(
            0,
            None,
            store,
            EngineConfig {
                inflight_limit: 2,
                ..EngineConfig::default()
            },
        );
        let a = engine.submit(1, vec![job("m", 1, 1, true)]);
        let b = engine.submit(2, vec![job("m", 2, 2, true)]);
        let c = engine.submit(3, vec![job("m", 3, 3, true)]);
        engine.wait_idle();
        assert!(!a && !b, "first two batches fit the double buffer");
        assert!(c, "third batch must stall");
        assert_eq!(engine.stats().stalls, 1);
        engine.shutdown();
    }

    #[test]
    fn store_failure_surfaces_in_errors_not_manifests() {
        let inner: Arc<dyn ObjectStore> = Arc::new(MemoryObjectStore::new());
        let flaky: Arc<dyn ObjectStore> =
            Arc::new(crate::testing::FlakyStore::new(inner.clone(), 2));
        let engine = CkptEngine::spawn(0, None, flaky, EngineConfig::default());
        engine.submit(10, vec![job("a", 10, 1, true)]); // shard + manifest: ok
        engine.wait_idle();
        engine.submit(20, vec![job("a", 20, 2, true)]); // first put fails
        engine.wait_idle();
        let stats = engine.shutdown();
        assert_eq!(stats.errors.len(), 1);
        let chain = ChainStore::load(inner).unwrap();
        assert_eq!(chain.newest_committed(), Some(10));
    }
}
