//! Checkpoint engine configuration.

/// Policy knobs of a checkpoint engine / shard writer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EngineConfig {
    /// Encode shards as deltas against their last full shard when
    /// profitable.
    pub delta: bool,
    /// After this many consecutive delta shards of a slot, force a full
    /// rebase (`1` = every persist is full, i.e. deltas disabled in
    /// practice). Must be at least 1.
    pub rebase_interval: u64,
    /// Checkpoint batches allowed in flight before `submit` stalls the
    /// caller. `2` is the double-buffered default: one batch draining to
    /// storage while the next is being filled.
    pub inflight_limit: usize,
    /// Idle buffers the engine's pool retains for reuse.
    pub pool_idle_limit: usize,
}

impl Default for EngineConfig {
    fn default() -> Self {
        Self {
            delta: true,
            rebase_interval: 4,
            inflight_limit: 2,
            pool_idle_limit: 256,
        }
    }
}

impl EngineConfig {
    /// A configuration writing only full shards (the pre-delta behaviour).
    pub fn full_only() -> Self {
        Self {
            delta: false,
            ..Self::default()
        }
    }

    /// Checks internal consistency.
    ///
    /// # Errors
    ///
    /// Returns a description of the first invalid field.
    pub fn validate(&self) -> Result<(), String> {
        if self.rebase_interval == 0 {
            return Err("rebase_interval must be at least 1".into());
        }
        if self.inflight_limit == 0 {
            return Err("inflight_limit must be at least 1".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_valid() {
        EngineConfig::default().validate().unwrap();
        EngineConfig::full_only().validate().unwrap();
        assert!(!EngineConfig::full_only().delta);
    }

    #[test]
    fn zero_fields_rejected() {
        let bad = EngineConfig {
            rebase_interval: 0,
            ..EngineConfig::default()
        };
        assert!(bad.validate().is_err());
        let bad = EngineConfig {
            inflight_limit: 0,
            ..EngineConfig::default()
        };
        assert!(bad.validate().is_err());
    }
}
