//! Checkpoint engine configuration.

/// Policy knobs of a checkpoint engine / shard writer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EngineConfig {
    /// Encode shards as deltas against their last full shard when
    /// profitable.
    pub delta: bool,
    /// After this many consecutive delta shards of a slot, force a full
    /// rebase (`1` = every persist is full, i.e. deltas disabled in
    /// practice). Must be at least 1.
    pub rebase_interval: u64,
    /// Checkpoint batches allowed in flight before `submit` stalls the
    /// caller. `2` is the double-buffered default: one batch draining to
    /// storage while the next is being filled.
    pub inflight_limit: usize,
    /// Idle buffers the engine's pool retains for reuse.
    pub pool_idle_limit: usize,
    /// Run chain-aware garbage collection after every this many
    /// committed checkpoints (`0` = GC disabled, the historical
    /// behaviour). GC drops superseded full+delta shard groups — and
    /// their manifests — from the head of the writer's chain while every
    /// version the chain still reports stays recoverable.
    pub gc_interval: u64,
    /// Committed chain versions GC always keeps fully recoverable (the
    /// prune anchor is the `gc_keep_last`-newest committed version).
    /// Must cover the worst-case commit lag between *live* writers —
    /// with the runtime's lock-step submission that lag is bounded by
    /// the in-flight limit. Writers retired by an elastic shrink leave
    /// the commit rule entirely (`ChainStore::load_for_writers`) and
    /// are re-synced by a full rejoin-barrier checkpoint when they come
    /// back, so their unbounded lag never gates recoverability. Must be
    /// at least 1 when GC is enabled.
    ///
    /// [`ChainStore::load_for_writers`]: crate::ChainStore::load_for_writers
    pub gc_keep_last: usize,
}

impl Default for EngineConfig {
    fn default() -> Self {
        Self {
            delta: true,
            rebase_interval: 4,
            inflight_limit: 2,
            pool_idle_limit: 256,
            gc_interval: 0,
            gc_keep_last: 2,
        }
    }
}

impl EngineConfig {
    /// A configuration writing only full shards (the pre-delta behaviour).
    pub fn full_only() -> Self {
        Self {
            delta: false,
            ..Self::default()
        }
    }

    /// The default configuration with chain-aware GC running every
    /// `interval` committed checkpoints.
    pub fn with_gc(interval: u64) -> Self {
        Self {
            gc_interval: interval,
            ..Self::default()
        }
    }

    /// Checks internal consistency.
    ///
    /// # Errors
    ///
    /// Returns a description of the first invalid field.
    pub fn validate(&self) -> Result<(), String> {
        if self.rebase_interval == 0 {
            return Err("rebase_interval must be at least 1".into());
        }
        if self.inflight_limit == 0 {
            return Err("inflight_limit must be at least 1".into());
        }
        if self.gc_interval > 0 && self.gc_keep_last == 0 {
            return Err("gc_keep_last must be at least 1 when GC is enabled".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_valid() {
        EngineConfig::default().validate().unwrap();
        EngineConfig::full_only().validate().unwrap();
        assert!(!EngineConfig::full_only().delta);
    }

    #[test]
    fn zero_fields_rejected() {
        let bad = EngineConfig {
            rebase_interval: 0,
            ..EngineConfig::default()
        };
        assert!(bad.validate().is_err());
        let bad = EngineConfig {
            inflight_limit: 0,
            ..EngineConfig::default()
        };
        assert!(bad.validate().is_err());
    }

    #[test]
    fn gc_without_keep_anchor_rejected() {
        let bad = EngineConfig {
            gc_keep_last: 0,
            ..EngineConfig::with_gc(2)
        };
        assert!(bad.validate().is_err());
        EngineConfig::with_gc(2).validate().unwrap();
        assert_eq!(EngineConfig::default().gc_interval, 0, "GC is opt-in");
    }
}
