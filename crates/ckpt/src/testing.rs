//! Fault-injection store wrappers for crash-consistency tests.
//!
//! These wrappers let tests model a node dying *between* shard writes —
//! the torn-persist scenario — and record global put order so "any prefix
//! of persisted shards" properties can be checked literally.

use bytes::Bytes;
use moc_store::{MemoryObjectStore, ObjectStore, ShardKey, StatePart, StoreError};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicI64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// A store whose `put` starts failing after a budget of writes — the
/// writer "dies" mid-persist, before its manifest.
///
/// Compatibility shim over the promoted [`moc_store::ChaosStore`]: a
/// permanent write outage starting at operation index `allow_puts`.
/// Write-only by design — the chaos plane's read faults live on
/// `ChaosStore` schedules; this shim keeps the classic torn-persist
/// semantics the crash-consistency tests pin.
pub struct FlakyStore {
    chaos: moc_store::ChaosStore,
}

impl FlakyStore {
    /// Allows `allow_puts` writes, then fails every later one.
    pub fn new(inner: Arc<dyn ObjectStore>, allow_puts: i64) -> Self {
        let start = allow_puts.max(0) as u64;
        Self {
            chaos: moc_store::ChaosStore::new(
                inner,
                moc_store::StoreFaultPlan::permanent_write_outage(start),
            ),
        }
    }

    /// Restores full write service.
    pub fn heal(&self) {
        self.chaos.heal();
    }
}

impl ObjectStore for FlakyStore {
    fn put(&self, key: &ShardKey, payload: Bytes) -> Result<(), StoreError> {
        self.chaos.put(key, payload)
    }

    fn get(&self, key: &ShardKey) -> Result<Option<Bytes>, StoreError> {
        self.chaos.get(key)
    }

    fn latest_version(
        &self,
        module: &str,
        part: StatePart,
        at_or_before: u64,
    ) -> Result<Option<u64>, StoreError> {
        self.chaos.latest_version(module, part, at_or_before)
    }

    fn keys(&self) -> Result<Vec<ShardKey>, StoreError> {
        self.chaos.keys()
    }

    fn total_bytes(&self) -> Result<u64, StoreError> {
        self.chaos.total_bytes()
    }

    fn prune(
        &self,
        module: &str,
        part: StatePart,
        before_version: u64,
    ) -> Result<usize, StoreError> {
        self.chaos.prune(module, part, before_version)
    }
}

/// A store that sleeps on every `put`, surfacing pipeline backpressure.
pub struct SlowStore {
    inner: Arc<dyn ObjectStore>,
    delay: Duration,
}

impl SlowStore {
    /// Delays every write by `delay`.
    pub fn new(inner: Arc<dyn ObjectStore>, delay: Duration) -> Self {
        Self { inner, delay }
    }
}

impl ObjectStore for SlowStore {
    fn put(&self, key: &ShardKey, payload: Bytes) -> Result<(), StoreError> {
        std::thread::sleep(self.delay);
        self.inner.put(key, payload)
    }

    fn get(&self, key: &ShardKey) -> Result<Option<Bytes>, StoreError> {
        self.inner.get(key)
    }

    fn latest_version(
        &self,
        module: &str,
        part: StatePart,
        at_or_before: u64,
    ) -> Result<Option<u64>, StoreError> {
        self.inner.latest_version(module, part, at_or_before)
    }

    fn keys(&self) -> Result<Vec<ShardKey>, StoreError> {
        self.inner.keys()
    }

    fn total_bytes(&self) -> Result<u64, StoreError> {
        self.inner.total_bytes()
    }

    fn prune(
        &self,
        module: &str,
        part: StatePart,
        before_version: u64,
    ) -> Result<usize, StoreError> {
        self.inner.prune(module, part, before_version)
    }
}

/// A store counting every read: `get` calls, payload bytes served, and
/// `keys` listings. Tests wrap a real store in this to prove access-path
/// properties — e.g. that key listing and recovery *planning* never
/// deserialize shard payloads, only the shards a plan actually fetches.
pub struct CountingStore {
    inner: Arc<dyn ObjectStore>,
    gets: AtomicI64,
    get_bytes: AtomicI64,
    key_listings: AtomicI64,
}

impl CountingStore {
    /// Wraps `inner`, counting reads.
    pub fn new(inner: Arc<dyn ObjectStore>) -> Self {
        Self {
            inner,
            gets: AtomicI64::new(0),
            get_bytes: AtomicI64::new(0),
            key_listings: AtomicI64::new(0),
        }
    }

    /// Number of `get` calls served.
    pub fn gets(&self) -> i64 {
        self.gets.load(Ordering::SeqCst)
    }

    /// Total payload bytes returned by `get`.
    pub fn get_bytes(&self) -> i64 {
        self.get_bytes.load(Ordering::SeqCst)
    }

    /// Number of `keys` listings served.
    pub fn key_listings(&self) -> i64 {
        self.key_listings.load(Ordering::SeqCst)
    }
}

impl ObjectStore for CountingStore {
    fn put(&self, key: &ShardKey, payload: Bytes) -> Result<(), StoreError> {
        self.inner.put(key, payload)
    }

    fn get(&self, key: &ShardKey) -> Result<Option<Bytes>, StoreError> {
        let got = self.inner.get(key)?;
        self.gets.fetch_add(1, Ordering::SeqCst);
        if let Some(payload) = &got {
            self.get_bytes
                .fetch_add(payload.len() as i64, Ordering::SeqCst);
        }
        Ok(got)
    }

    fn latest_version(
        &self,
        module: &str,
        part: StatePart,
        at_or_before: u64,
    ) -> Result<Option<u64>, StoreError> {
        self.inner.latest_version(module, part, at_or_before)
    }

    fn keys(&self) -> Result<Vec<ShardKey>, StoreError> {
        self.key_listings.fetch_add(1, Ordering::SeqCst);
        self.inner.keys()
    }

    fn total_bytes(&self) -> Result<u64, StoreError> {
        self.inner.total_bytes()
    }

    fn prune(
        &self,
        module: &str,
        part: StatePart,
        before_version: u64,
    ) -> Result<usize, StoreError> {
        self.inner.prune(module, part, before_version)
    }
}

/// A store recording the global order of successful `put`s, so tests can
/// replay any prefix into a fresh store and check what it reconstructs.
#[derive(Default)]
pub struct RecordingStore {
    inner: MemoryObjectStore,
    log: Mutex<Vec<(ShardKey, Bytes)>>,
}

impl RecordingStore {
    /// Creates an empty recording store.
    pub fn new() -> Self {
        Self::default()
    }

    /// The successful puts, in order.
    pub fn log(&self) -> Vec<(ShardKey, Bytes)> {
        self.log.lock().clone()
    }

    /// Materializes the first `n` puts into a fresh in-memory store (the
    /// state a crash after put `n` would leave behind).
    pub fn prefix(&self, n: usize) -> MemoryObjectStore {
        let store = MemoryObjectStore::new();
        for (key, payload) in self.log.lock().iter().take(n) {
            store.put(key, payload.clone()).expect("memory put");
        }
        store
    }
}

impl ObjectStore for RecordingStore {
    fn put(&self, key: &ShardKey, payload: Bytes) -> Result<(), StoreError> {
        self.inner.put(key, payload.clone())?;
        self.log.lock().push((key.clone(), payload));
        Ok(())
    }

    fn get(&self, key: &ShardKey) -> Result<Option<Bytes>, StoreError> {
        self.inner.get(key)
    }

    fn latest_version(
        &self,
        module: &str,
        part: StatePart,
        at_or_before: u64,
    ) -> Result<Option<u64>, StoreError> {
        self.inner.latest_version(module, part, at_or_before)
    }

    fn keys(&self) -> Result<Vec<ShardKey>, StoreError> {
        self.inner.keys()
    }

    fn total_bytes(&self) -> Result<u64, StoreError> {
        self.inner.total_bytes()
    }

    fn prune(
        &self,
        module: &str,
        part: StatePart,
        before_version: u64,
    ) -> Result<usize, StoreError> {
        self.inner.prune(module, part, before_version)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flaky_store_fails_after_budget() {
        let store = FlakyStore::new(Arc::new(MemoryObjectStore::new()), 2);
        let k = |v| ShardKey::new("m", StatePart::Weights, v);
        assert!(store.put(&k(1), Bytes::new()).is_ok());
        assert!(store.put(&k(2), Bytes::new()).is_ok());
        assert!(store.put(&k(3), Bytes::new()).is_err());
        store.heal();
        assert!(store.put(&k(4), Bytes::new()).is_ok());
    }

    #[test]
    fn recording_store_replays_prefixes() {
        let store = RecordingStore::new();
        let k = |v| ShardKey::new("m", StatePart::Weights, v);
        for v in 1..=3u64 {
            store.put(&k(v), Bytes::from(vec![v as u8])).unwrap();
        }
        assert_eq!(store.log().len(), 3);
        let prefix = store.prefix(2);
        assert!(prefix.get(&k(2)).unwrap().is_some());
        assert!(prefix.get(&k(3)).unwrap().is_none());
    }
}
