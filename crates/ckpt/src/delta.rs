//! Delta shards: a shard encoded against the last *full* shard of the
//! same slot.
//!
//! Checkpoint payloads here are little-endian `f32` streams whose values
//! drift slowly between checkpoints: the sign, exponent and high-mantissa
//! bytes of a parameter are usually unchanged while the low-mantissa
//! bytes churn. The codec exploits that structure:
//!
//! 1. XOR the new payload against the base full payload (identical bytes
//!    become zero);
//! 2. transpose the XOR stream into its four byte planes (`i % 4`), so
//!    the mostly-zero high bytes of every float land in long contiguous
//!    zero runs;
//! 3. run-length encode: `(zero_run, literal_len, literal bytes)` tokens
//!    with LEB128 lengths.
//!
//! Encoding is lossless and self-checking: the delta records the CRC of
//! both the base it was built against and the payload it reconstructs, so
//! [`apply`] can never silently produce wrong bytes. When a delta would
//! not be smaller than the full payload (or the shapes changed),
//! [`encode_into`] declines and the writer falls back to a full shard —
//! the periodic rebase additionally bounds how far any delta sits from
//! its base.

use bytes::Bytes;
use moc_store::frame::crc32;
use std::fmt;

const MAGIC: u32 = 0x4D4F_4344; // "MOCD"
const FORMAT: u16 = 1;
/// Fixed header size: magic, format, base_version, base_crc, raw_len,
/// raw_crc.
const HEADER_LEN: usize = 4 + 2 + 8 + 4 + 8 + 4;
/// Zero runs shorter than this are cheaper left inside a literal token.
const MIN_ZERO_RUN: usize = 4;

/// Error applying a delta shard.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DeltaError {
    /// The payload is not a delta frame (wrong magic or truncated header).
    NotADelta,
    /// Unsupported delta format version.
    BadFormat(u16),
    /// The base payload's CRC does not match the one the delta was
    /// encoded against (wrong or corrupted base).
    BaseMismatch {
        /// CRC recorded at encode time.
        expected: u32,
        /// CRC of the base supplied to [`apply`].
        actual: u32,
    },
    /// The token stream was truncated or overran the declared length.
    Corrupt,
    /// The reconstructed payload failed its CRC check.
    ReconstructionMismatch {
        /// CRC recorded at encode time.
        expected: u32,
        /// CRC of the reconstructed payload.
        actual: u32,
    },
}

impl fmt::Display for DeltaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DeltaError::NotADelta => write!(f, "payload is not a delta frame"),
            DeltaError::BadFormat(v) => write!(f, "unsupported delta format {v}"),
            DeltaError::BaseMismatch { expected, actual } => {
                write!(f, "delta base crc mismatch: {expected:#x} vs {actual:#x}")
            }
            DeltaError::Corrupt => write!(f, "corrupt delta token stream"),
            DeltaError::ReconstructionMismatch { expected, actual } => {
                write!(
                    f,
                    "delta reconstruction crc mismatch: {expected:#x} vs {actual:#x}"
                )
            }
        }
    }
}

impl std::error::Error for DeltaError {}

/// Decoded delta header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeltaHeader {
    /// Version of the full shard the delta was encoded against.
    pub base_version: u64,
    /// CRC of that base payload.
    pub base_crc: u32,
    /// Length of the reconstructed payload.
    pub raw_len: u64,
    /// CRC of the reconstructed payload.
    pub raw_crc: u32,
}

/// Whether a stored payload is a delta frame.
pub fn is_delta(payload: &[u8]) -> bool {
    payload.len() >= 4 && payload[..4] == MAGIC.to_le_bytes()
}

/// Reads a delta frame's header.
///
/// # Errors
///
/// [`DeltaError::NotADelta`] / [`DeltaError::BadFormat`] when the payload
/// is not a supported delta frame.
pub fn decode_header(payload: &[u8]) -> Result<DeltaHeader, DeltaError> {
    if payload.len() < HEADER_LEN || !is_delta(payload) {
        return Err(DeltaError::NotADelta);
    }
    let u16_at = |i: usize| u16::from_le_bytes(payload[i..i + 2].try_into().expect("2 bytes"));
    let u32_at = |i: usize| u32::from_le_bytes(payload[i..i + 4].try_into().expect("4 bytes"));
    let u64_at = |i: usize| u64::from_le_bytes(payload[i..i + 8].try_into().expect("8 bytes"));
    let format = u16_at(4);
    if format != FORMAT {
        return Err(DeltaError::BadFormat(format));
    }
    Ok(DeltaHeader {
        base_version: u64_at(6),
        base_crc: u32_at(14),
        raw_len: u64_at(18),
        raw_crc: u32_at(26),
    })
}

fn put_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7F) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

fn get_varint(buf: &mut &[u8]) -> Result<u64, DeltaError> {
    let mut v = 0u64;
    let mut shift = 0u32;
    loop {
        if buf.is_empty() || shift >= 64 {
            return Err(DeltaError::Corrupt);
        }
        let byte = buf[0];
        *buf = &buf[1..];
        v |= u64::from(byte & 0x7F) << shift;
        if byte & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
    }
}

/// Index of the `k`-th byte of the plane-transposed stream in the
/// original payload of length `len`.
#[inline]
fn plane_index(k: usize, len: usize) -> usize {
    // Plane p holds ceil((len - p) / 4) bytes; walk planes in order.
    let mut k = k;
    for p in 0..4usize {
        let plane_len = (len + 3 - p) / 4;
        if k < plane_len {
            return p + 4 * k;
        }
        k -= plane_len;
    }
    unreachable!("k out of range");
}

/// Encodes `new` against `base` into `out` (cleared first). Returns
/// `false` — leaving `out` unspecified — when the payloads have different
/// lengths or the delta would not be strictly smaller than `new`; the
/// caller then writes a full shard instead.
pub fn encode_into(base: &[u8], new: &[u8], base_version: u64, out: &mut Vec<u8>) -> bool {
    if base.len() != new.len() || new.len() < HEADER_LEN {
        return false;
    }
    let len = new.len();
    out.clear();
    out.extend_from_slice(&MAGIC.to_le_bytes());
    out.extend_from_slice(&FORMAT.to_le_bytes());
    out.extend_from_slice(&base_version.to_le_bytes());
    out.extend_from_slice(&crc32(base).to_le_bytes());
    out.extend_from_slice(&(len as u64).to_le_bytes());
    out.extend_from_slice(&crc32(new).to_le_bytes());

    // Tokenize the plane-transposed XOR stream without materializing it.
    let xor_at = |k: usize| -> u8 {
        let i = plane_index(k, len);
        base[i] ^ new[i]
    };
    let mut pos = 0usize;
    while pos < len {
        if out.len() >= len {
            return false; // not profitable
        }
        // Zero run.
        let zero_start = pos;
        while pos < len && xor_at(pos) == 0 {
            pos += 1;
        }
        put_varint(out, (pos - zero_start) as u64);
        // Literal run: extends over short zero gaps.
        let lit_start = pos;
        let mut probe = pos;
        while probe < len {
            if xor_at(probe) != 0 {
                probe += 1;
                pos = probe;
                continue;
            }
            // Count the zero gap; stop the literal before a long one.
            let gap_start = probe;
            while probe < len && xor_at(probe) == 0 {
                probe += 1;
            }
            if probe - gap_start >= MIN_ZERO_RUN || probe == len {
                break;
            }
            pos = probe;
        }
        put_varint(out, (pos - lit_start) as u64);
        for k in lit_start..pos {
            out.push(xor_at(k));
        }
    }
    out.len() < len
}

/// Reconstructs the full payload from `base` and a delta frame.
///
/// # Errors
///
/// Any [`DeltaError`]: wrong frame, wrong base, corrupt stream, or a
/// reconstruction that fails its CRC.
pub fn apply(base: &[u8], delta: &[u8]) -> Result<Bytes, DeltaError> {
    let header = decode_header(delta)?;
    let actual_base_crc = crc32(base);
    if actual_base_crc != header.base_crc {
        return Err(DeltaError::BaseMismatch {
            expected: header.base_crc,
            actual: actual_base_crc,
        });
    }
    let len = usize::try_from(header.raw_len).map_err(|_| DeltaError::Corrupt)?;
    if base.len() != len {
        return Err(DeltaError::Corrupt);
    }
    let mut out = base.to_vec();
    let mut stream = &delta[HEADER_LEN..];
    let mut pos = 0usize; // transposed position
    while pos < len {
        let zeros = get_varint(&mut stream)? as usize;
        pos = pos.checked_add(zeros).ok_or(DeltaError::Corrupt)?;
        if pos > len {
            return Err(DeltaError::Corrupt);
        }
        if pos == len {
            // The encoder closes a trailing zero run with an empty
            // literal token; anything else is corruption.
            if get_varint(&mut stream)? != 0 {
                return Err(DeltaError::Corrupt);
            }
            break;
        }
        let lits = get_varint(&mut stream)? as usize;
        if lits > len - pos || stream.len() < lits {
            return Err(DeltaError::Corrupt);
        }
        for &b in &stream[..lits] {
            let i = plane_index(pos, len);
            out[i] ^= b;
            pos += 1;
        }
        stream = &stream[lits..];
    }
    if !stream.is_empty() {
        return Err(DeltaError::Corrupt);
    }
    let actual = crc32(&out);
    if actual != header.raw_crc {
        return Err(DeltaError::ReconstructionMismatch {
            expected: header.raw_crc,
            actual,
        });
    }
    Ok(Bytes::from(out))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn f32s(values: &[f32]) -> Vec<u8> {
        values.iter().flat_map(|v| v.to_le_bytes()).collect()
    }

    #[test]
    fn roundtrip_close_floats_saves_bytes() {
        let base: Vec<f32> = (0..512).map(|i| (i as f32).sin()).collect();
        let new: Vec<f32> = base.iter().map(|v| v + 1e-4).collect();
        let (base_b, new_b) = (f32s(&base), f32s(&new));
        let mut delta = Vec::new();
        assert!(encode_into(&base_b, &new_b, 10, &mut delta));
        assert!(
            delta.len() < new_b.len() * 3 / 4,
            "close floats keep their high byte planes: {} vs {}",
            delta.len(),
            new_b.len()
        );
        assert!(is_delta(&delta));
        let restored = apply(&base_b, &delta).unwrap();
        assert_eq!(&restored[..], &new_b[..], "bitwise reconstruction");
    }

    #[test]
    fn identical_payload_is_header_sized() {
        let b = f32s(&vec![1.5f32; 256]);
        let mut delta = Vec::new();
        assert!(encode_into(&b, &b, 3, &mut delta));
        assert!(delta.len() <= HEADER_LEN + 4, "only header + one token");
        assert_eq!(&apply(&b, &delta).unwrap()[..], &b[..]);
    }

    #[test]
    fn random_payload_declines() {
        // Unrelated noise has no zero structure: encode must decline.
        let base: Vec<u8> = (0..4096u32)
            .map(|i| i.wrapping_mul(2_654_435_761) as u8)
            .collect();
        let new: Vec<u8> = (0..4096u32)
            .map(|i| (i + 7).wrapping_mul(2_246_822_519) as u8)
            .collect();
        let mut delta = Vec::new();
        assert!(!encode_into(&base, &new, 1, &mut delta));
    }

    #[test]
    fn length_mismatch_declines() {
        let mut delta = Vec::new();
        assert!(!encode_into(&[0u8; 64], &[0u8; 68], 1, &mut delta));
    }

    #[test]
    fn wrong_base_is_rejected() {
        let base = f32s(&(0..128).map(|i| i as f32).collect::<Vec<_>>());
        let mut new = base.clone();
        new[17] ^= 0x55; // sparse change: encoding clearly profitable
        let mut delta = Vec::new();
        assert!(encode_into(&base, &new, 5, &mut delta));
        let mut wrong = base.clone();
        wrong[0] ^= 0xFF;
        assert!(matches!(
            apply(&wrong, &delta),
            Err(DeltaError::BaseMismatch { .. })
        ));
    }

    #[test]
    fn corrupt_stream_is_rejected() {
        let base = f32s(&vec![2.0f32; 256]);
        let new = f32s(&vec![2.0001f32; 256]);
        let mut delta = Vec::new();
        assert!(encode_into(&base, &new, 5, &mut delta));
        for byte in HEADER_LEN..delta.len() {
            let mut corrupt = delta.clone();
            corrupt[byte] ^= 0x40;
            assert!(
                apply(&base, &corrupt).is_err(),
                "flip at {byte} must not reconstruct silently"
            );
        }
    }

    #[test]
    fn header_roundtrip() {
        let base = f32s(&vec![1.0f32; 64]);
        let new = f32s(&vec![1.0000001f32; 64]);
        let mut delta = Vec::new();
        assert!(encode_into(&base, &new, 42, &mut delta));
        let h = decode_header(&delta).unwrap();
        assert_eq!(h.base_version, 42);
        assert_eq!(h.raw_len, 256);
        assert_eq!(h.base_crc, crc32(&base));
        assert_eq!(h.raw_crc, crc32(&new));
        assert_eq!(decode_header(b"nope"), Err(DeltaError::NotADelta));
    }

    #[test]
    fn plane_index_is_a_bijection() {
        for len in [1usize, 2, 3, 4, 5, 7, 8, 63, 64, 65] {
            let mut seen = vec![false; len];
            for k in 0..len {
                let i = plane_index(k, len);
                assert!(!seen[i], "len {len}: index {i} hit twice");
                seen[i] = true;
            }
        }
    }
}
