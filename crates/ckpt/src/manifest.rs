//! Versioned manifest chain: the commit protocol of the checkpoint engine.
//!
//! Every writer (one per node agent) persists its checkpoint in two
//! phases: first the shard payloads, then — only after every shard write
//! succeeded — a *manifest* object describing them. Because the store's
//! `put` is atomic (unique temp file + rename + directory fsync in
//! [`moc_store::FileObjectStore`]), the manifest is the commit point: a
//! crash between shard writes leaves orphaned shards that no manifest
//! references, and recovery simply resumes from the newest version for
//! which **every** writer committed a manifest.
//!
//! Each manifest records, per shard: the exact key, whether the payload is
//! a full shard or a delta (and against which base version), the stored
//! payload's CRC, and the reconstructed length — enough to re-validate the
//! whole chain without trusting anything but the manifest bytes
//! themselves (which carry their own CRC inside the store frame, and a
//! `prev` pointer linking the writer's chain).

use bytes::{Buf, BufMut, Bytes, BytesMut};
use moc_store::{ShardKey, StatePart};
use std::fmt;

const MAGIC: u32 = 0x4D4F_434D; // "MOCM"
const FORMAT: u16 = 1;

/// Reserved module-name prefix of manifest shards. Model modules are
/// `layer<i>.…`/`embedding`/… and can never collide.
pub const MANIFEST_PREFIX: &str = "__ckpt_manifest__";

/// The manifest module name of one writer's chain.
pub fn manifest_module(writer: usize) -> String {
    format!("{MANIFEST_PREFIX}.n{writer}")
}

/// Whether a module name belongs to a manifest chain; returns the writer
/// id when it does.
pub fn manifest_writer(module: &str) -> Option<usize> {
    module
        .strip_prefix(MANIFEST_PREFIX)?
        .strip_prefix(".n")?
        .parse()
        .ok()
}

/// How a shard's payload is encoded in the store.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShardKind {
    /// The raw serialized payload.
    Full,
    /// A delta against the slot's full shard at `base_version`.
    Delta {
        /// Version of the full shard the delta applies to.
        base_version: u64,
    },
}

/// One shard a manifest commits.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardRecord {
    /// The shard's store key.
    pub key: ShardKey,
    /// Payload encoding.
    pub kind: ShardKind,
    /// CRC-32 of the *stored* payload (delta bytes for delta shards).
    pub stored_crc: u32,
    /// Stored payload length in bytes.
    pub stored_len: u64,
    /// Length of the reconstructed (raw) payload.
    pub raw_len: u64,
}

/// One writer's committed checkpoint: the shard set of one version.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ManifestEntry {
    /// Checkpoint version (training iteration).
    pub version: u64,
    /// The writer's previous committed version (chain pointer).
    pub prev: Option<u64>,
    /// Shards this checkpoint wrote.
    pub shards: Vec<ShardRecord>,
}

/// Error decoding a manifest payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ManifestError {
    /// Not a manifest frame (magic mismatch or truncated).
    Malformed,
    /// Unsupported manifest format version.
    BadFormat(u16),
}

impl fmt::Display for ManifestError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ManifestError::Malformed => write!(f, "malformed manifest payload"),
            ManifestError::BadFormat(v) => write!(f, "unsupported manifest format {v}"),
        }
    }
}

impl std::error::Error for ManifestError {}

fn part_tag(p: StatePart) -> u8 {
    match p {
        StatePart::Weights => 0,
        StatePart::Optimizer => 1,
        StatePart::Extra => 2,
    }
}

fn decode_part(t: u8) -> Result<StatePart, ManifestError> {
    match t {
        0 => Ok(StatePart::Weights),
        1 => Ok(StatePart::Optimizer),
        2 => Ok(StatePart::Extra),
        _ => Err(ManifestError::Malformed),
    }
}

impl ManifestEntry {
    /// Serializes the manifest to its store payload.
    pub fn encode(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(64 + self.shards.len() * 64);
        buf.put_u32_le(MAGIC);
        buf.put_u16_le(FORMAT);
        buf.put_u64_le(self.version);
        match self.prev {
            Some(p) => {
                buf.put_u8(1);
                buf.put_u64_le(p);
            }
            None => {
                buf.put_u8(0);
                buf.put_u64_le(0);
            }
        }
        buf.put_u32_le(self.shards.len() as u32);
        for s in &self.shards {
            buf.put_u16_le(s.key.module.len() as u16);
            buf.put_slice(s.key.module.as_bytes());
            buf.put_u8(part_tag(s.key.part));
            buf.put_u64_le(s.key.version);
            match s.kind {
                ShardKind::Full => {
                    buf.put_u8(0);
                    buf.put_u64_le(0);
                }
                ShardKind::Delta { base_version } => {
                    buf.put_u8(1);
                    buf.put_u64_le(base_version);
                }
            }
            buf.put_u32_le(s.stored_crc);
            buf.put_u64_le(s.stored_len);
            buf.put_u64_le(s.raw_len);
        }
        buf.freeze()
    }

    /// Decodes a manifest payload.
    ///
    /// # Errors
    ///
    /// [`ManifestError`] when the payload is not a valid manifest.
    pub fn decode(payload: &Bytes) -> Result<Self, ManifestError> {
        let mut buf = payload.clone();
        if buf.remaining() < 4 + 2 + 8 + 9 + 4 {
            return Err(ManifestError::Malformed);
        }
        if buf.get_u32_le() != MAGIC {
            return Err(ManifestError::Malformed);
        }
        let format = buf.get_u16_le();
        if format != FORMAT {
            return Err(ManifestError::BadFormat(format));
        }
        let version = buf.get_u64_le();
        let has_prev = buf.get_u8() == 1;
        let prev_raw = buf.get_u64_le();
        let prev = has_prev.then_some(prev_raw);
        let count = buf.get_u32_le() as usize;
        let mut shards = Vec::with_capacity(count);
        for _ in 0..count {
            if buf.remaining() < 2 {
                return Err(ManifestError::Malformed);
            }
            let name_len = buf.get_u16_le() as usize;
            if buf.remaining() < name_len + 1 + 8 + 1 + 8 + 4 + 8 + 8 {
                return Err(ManifestError::Malformed);
            }
            let name_bytes = buf.copy_to_bytes(name_len);
            let module =
                String::from_utf8(name_bytes.to_vec()).map_err(|_| ManifestError::Malformed)?;
            let part = decode_part(buf.get_u8())?;
            let shard_version = buf.get_u64_le();
            let kind_tag = buf.get_u8();
            let base_version = buf.get_u64_le();
            let kind = match kind_tag {
                0 => ShardKind::Full,
                1 => ShardKind::Delta { base_version },
                _ => return Err(ManifestError::Malformed),
            };
            shards.push(ShardRecord {
                key: ShardKey::new(module, part, shard_version),
                kind,
                stored_crc: buf.get_u32_le(),
                stored_len: buf.get_u64_le(),
                raw_len: buf.get_u64_le(),
            });
        }
        if buf.remaining() != 0 {
            return Err(ManifestError::Malformed);
        }
        Ok(Self {
            version,
            prev,
            shards,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry() -> ManifestEntry {
        ManifestEntry {
            version: 20,
            prev: Some(10),
            shards: vec![
                ShardRecord {
                    key: ShardKey::new("layer1.expert0", StatePart::Weights, 20),
                    kind: ShardKind::Full,
                    stored_crc: 0xDEAD_BEEF,
                    stored_len: 4096,
                    raw_len: 4096,
                },
                ShardRecord {
                    key: ShardKey::new("embedding", StatePart::Optimizer, 20),
                    kind: ShardKind::Delta { base_version: 10 },
                    stored_crc: 7,
                    stored_len: 128,
                    raw_len: 8192,
                },
            ],
        }
    }

    #[test]
    fn roundtrip() {
        let e = entry();
        let decoded = ManifestEntry::decode(&e.encode()).unwrap();
        assert_eq!(decoded, e);
    }

    #[test]
    fn roundtrip_empty_and_no_prev() {
        let e = ManifestEntry {
            version: 0,
            prev: None,
            shards: Vec::new(),
        };
        assert_eq!(ManifestEntry::decode(&e.encode()).unwrap(), e);
    }

    #[test]
    fn truncation_detected() {
        let bytes = entry().encode();
        for cut in 0..bytes.len() {
            assert!(
                ManifestEntry::decode(&bytes.slice(0..cut)).is_err(),
                "prefix of {cut} bytes must not decode"
            );
        }
        // Trailing garbage is rejected too.
        let mut long = bytes.to_vec();
        long.push(0);
        assert!(ManifestEntry::decode(&Bytes::from(long)).is_err());
    }

    #[test]
    fn magic_mismatch_detected() {
        let mut bytes = entry().encode().to_vec();
        bytes[0] ^= 0xFF;
        assert_eq!(
            ManifestEntry::decode(&Bytes::from(bytes)),
            Err(ManifestError::Malformed)
        );
    }

    #[test]
    fn module_names_and_writers() {
        assert_eq!(manifest_module(3), "__ckpt_manifest__.n3");
        assert_eq!(manifest_writer("__ckpt_manifest__.n3"), Some(3));
        assert_eq!(manifest_writer("__ckpt_manifest__.nx"), None);
        assert_eq!(manifest_writer("layer1.expert0"), None);
        assert_eq!(manifest_writer("embedding"), None);
    }
}
