//! Reading a manifest chain back: committed-state resolution.
//!
//! [`ChainStore`] is a read-only [`ObjectStore`] view over a raw store
//! that the checkpoint engine persisted into. It decodes every writer's
//! manifest chain, determines the *committed* checkpoint versions — those
//! for which **every** writer's manifest exists, decodes, and whose listed
//! shards (including transitive delta bases) are all present — and then
//! serves exactly the committed shards, transparently reconstructing
//! delta shards (`full ⊕ delta`) and verifying every CRC on the way.
//!
//! Orphaned shards from a torn persist (a writer died between shard
//! writes, before its manifest) are invisible: the two-level recovery
//! planner running on top of this view can only ever choose state that
//! reconstructs bit-for-bit. Commit validation is prefix-strict: versions
//! after the first incomplete one are rejected even if later manifests
//! look whole, so a chain is either accepted up to a consistent point or
//! not at all.

use crate::delta;
use crate::manifest::{manifest_writer, ManifestEntry, ShardKind, ShardRecord};
use bytes::Bytes;
use moc_store::frame::crc32;
use moc_store::{ObjectStore, ShardKey, StatePart, StoreError};
use std::collections::{BTreeMap, BTreeSet, HashSet};
use std::sync::Arc;

fn read_only_error() -> StoreError {
    StoreError::Io(std::io::Error::other("chain view is read-only"))
}

fn integrity_error(msg: String) -> StoreError {
    StoreError::Io(std::io::Error::new(std::io::ErrorKind::InvalidData, msg))
}

/// Read-only committed-state view over an engine-written store.
pub struct ChainStore {
    inner: Arc<dyn ObjectStore>,
    /// Globally committed checkpoint versions, ascending.
    committed: BTreeSet<u64>,
    /// Writer ids that contributed manifests.
    writers: BTreeSet<usize>,
    /// Committed shard records: slot → version → record.
    slots: BTreeMap<(String, StatePart), BTreeMap<u64, ShardRecord>>,
    /// Every decoded record whose shard bytes are present, committed or
    /// not — delta bases resolve against this wider set: a base's
    /// *bytes* only need to exist and pass their CRC, its manifest
    /// version need not be globally committed (another writer's torn
    /// chain must not strand every later delta).
    bases: BTreeMap<(String, StatePart), BTreeMap<u64, ShardRecord>>,
}

impl std::fmt::Debug for ChainStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ChainStore")
            .field("writers", &self.writers.len())
            .field("committed", &self.committed.len())
            .field("slots", &self.slots.len())
            .finish()
    }
}

impl ChainStore {
    /// Loads and validates the manifest chains of `store`, inferring the
    /// writer set from the manifests observed. Prefer
    /// [`ChainStore::load_expecting`] when the writer count is known: a
    /// crash before a writer's *first* manifest would otherwise make that
    /// writer invisible and the global commit rule vacuous.
    ///
    /// # Errors
    ///
    /// Propagates raw-store failures. Malformed or incomplete chain
    /// *content* is not an error — those versions are simply not
    /// committed.
    pub fn load(store: Arc<dyn ObjectStore>) -> Result<Self, StoreError> {
        Self::load_expecting(store, None)
    }

    /// Like [`ChainStore::load`], but requiring manifests from writers
    /// `0..expected` (plus any extra chains observed): a version is
    /// committed only if **every** such writer committed it.
    ///
    /// # Errors
    ///
    /// Propagates raw-store failures.
    pub fn load_expecting(
        store: Arc<dyn ObjectStore>,
        expected_writers: Option<usize>,
    ) -> Result<Self, StoreError> {
        Self::load_inner(store, expected_writers.map(|n| (0..n).collect()), None)
    }

    /// Like [`ChainStore::load`], but the commit rule spans exactly the
    /// `required` writers: a version is committed when **every required**
    /// writer committed it and all listed shards (of every chain that
    /// has the version, required or not) validate. Chains outside
    /// `required` still *serve* their shards at committed versions —
    /// this is the elastic-shrink view, where a dead node's frozen chain
    /// must keep serving its pre-fault checkpoints without its absence
    /// freezing the commit frontier.
    ///
    /// # Errors
    ///
    /// Propagates raw-store failures.
    pub fn load_for_writers(
        store: Arc<dyn ObjectStore>,
        required: &[usize],
    ) -> Result<Self, StoreError> {
        let set: BTreeSet<usize> = required.iter().copied().collect();
        Self::load_inner(
            store,
            Some(set.iter().copied().collect::<Vec<_>>()),
            Some(set),
        )
    }

    /// Shared loader. `ensure` writers contribute (possibly empty)
    /// chains even without manifests; `commit_over`, when given,
    /// restricts the commit intersection to that writer set (otherwise
    /// every observed-or-ensured chain participates).
    fn load_inner(
        store: Arc<dyn ObjectStore>,
        ensure: Option<Vec<usize>>,
        commit_over: Option<BTreeSet<usize>>,
    ) -> Result<Self, StoreError> {
        let keys = store.keys()?;
        let key_set: HashSet<&ShardKey> = keys.iter().collect();

        // Decode every manifest, grouped by writer.
        let mut chains: BTreeMap<usize, BTreeMap<u64, ManifestEntry>> = BTreeMap::new();
        for key in &keys {
            let Some(writer) = manifest_writer(&key.module) else {
                continue;
            };
            let Some(payload) = store.get(key)? else {
                continue;
            };
            if let Ok(entry) = ManifestEntry::decode(&payload) {
                if entry.version == key.version {
                    chains
                        .entry(writer)
                        .or_default()
                        .insert(entry.version, entry);
                }
            }
        }

        // An expected writer with no manifests at all contributes an
        // empty chain, voiding every candidate version — a crash that
        // early left nothing committed.
        for w in ensure.unwrap_or_default() {
            chains.entry(w).or_default();
        }
        let writers: BTreeSet<usize> = chains.keys().copied().collect();
        // The writers whose agreement commits a version: all of them,
        // unless an explicit required set restricts the rule.
        let commit_writers: BTreeSet<usize> = commit_over.unwrap_or_else(|| writers.clone());
        let mut committed = BTreeSet::new();
        let mut slots: BTreeMap<(String, StatePart), BTreeMap<u64, ShardRecord>> = BTreeMap::new();

        // Index every record whose shard bytes exist, from every decoded
        // manifest (even uncommitted ones): the delta-base resolution
        // set. Integrity is still enforced at fetch time via the
        // record's CRC.
        let mut bases: BTreeMap<(String, StatePart), BTreeMap<u64, ShardRecord>> = BTreeMap::new();
        for chain in chains.values() {
            for entry in chain.values() {
                for record in &entry.shards {
                    if key_set.contains(&record.key) {
                        bases
                            .entry((record.key.module.clone(), record.key.part))
                            .or_default()
                            .insert(record.key.version, record.clone());
                    }
                }
            }
        }

        if !chains.is_empty() && !commit_writers.is_empty() {
            // Candidate versions: committed by every commit-rule writer
            // (a required writer without a chain voids everything).
            let empty = BTreeMap::new();
            let mut candidates: Option<BTreeSet<u64>> = None;
            for &w in &commit_writers {
                let versions: BTreeSet<u64> =
                    chains.get(&w).unwrap_or(&empty).keys().copied().collect();
                candidates = Some(match candidates {
                    None => versions,
                    Some(c) => c.intersection(&versions).copied().collect(),
                });
            }

            // Accept ascending, prefix-strict: a version is committed only
            // if every listed shard — from every chain that has the
            // version — exists and every delta's base resolves to a full
            // record.
            'versions: for v in candidates.unwrap_or_default() {
                let mut version_records: Vec<&ShardRecord> = Vec::new();
                for chain in chains.values() {
                    let Some(entry) = chain.get(&v) else {
                        // A non-required writer never committed v; its
                        // chain simply contributes nothing here.
                        continue;
                    };
                    for record in &entry.shards {
                        if !key_set.contains(&record.key) {
                            break 'versions;
                        }
                        if let ShardKind::Delta { base_version } = record.kind {
                            let base_ok = bases
                                .get(&(record.key.module.clone(), record.key.part))
                                .and_then(|m| m.get(&base_version))
                                .is_some_and(|r| r.kind == ShardKind::Full);
                            if !base_ok {
                                break 'versions;
                            }
                        }
                        version_records.push(record);
                    }
                }
                for record in version_records {
                    slots
                        .entry((record.key.module.clone(), record.key.part))
                        .or_default()
                        .insert(record.key.version, record.clone());
                }
                committed.insert(v);
            }
        }

        Ok(Self {
            inner: store,
            committed,
            writers,
            slots,
            bases,
        })
    }

    /// The newest globally committed checkpoint version.
    pub fn newest_committed(&self) -> Option<u64> {
        self.committed.last().copied()
    }

    /// All committed checkpoint versions, ascending.
    pub fn committed_versions(&self) -> Vec<u64> {
        self.committed.iter().copied().collect()
    }

    /// Writer chains observed in the store.
    pub fn writer_count(&self) -> usize {
        self.writers.len()
    }

    /// Committed shard records of one slot, ascending by version.
    pub fn slot_records(&self, module: &str, part: StatePart) -> Vec<&ShardRecord> {
        self.slots
            .get(&(module.to_string(), part))
            .map(|m| m.values().collect())
            .unwrap_or_default()
    }

    fn record(&self, key: &ShardKey) -> Option<&ShardRecord> {
        self.slots
            .get(&(key.module.clone(), key.part))
            .and_then(|m| m.get(&key.version))
    }

    /// Fetches a committed shard's stored payload, CRC-verified against
    /// its manifest record.
    fn fetch_stored(&self, record: &ShardRecord) -> Result<Bytes, StoreError> {
        let payload = self.inner.get(&record.key)?.ok_or_else(|| {
            integrity_error(format!("committed shard {} missing from store", record.key))
        })?;
        if payload.len() as u64 != record.stored_len || crc32(&payload) != record.stored_crc {
            return Err(integrity_error(format!(
                "committed shard {} fails manifest crc/len check",
                record.key
            )));
        }
        Ok(payload)
    }

    /// Reconstructs the raw payload of a committed shard (applying its
    /// delta against the base full shard when necessary).
    fn reconstruct(&self, record: &ShardRecord) -> Result<Bytes, StoreError> {
        let stored = self.fetch_stored(record)?;
        match record.kind {
            ShardKind::Full => Ok(stored),
            ShardKind::Delta { base_version } => {
                let base_key =
                    ShardKey::new(record.key.module.clone(), record.key.part, base_version);
                // The base resolves against the wider decoded-record set
                // (its own version may be uncommitted); its CRC is still
                // verified against the manifest record on fetch.
                let base_record = self
                    .bases
                    .get(&(base_key.module.clone(), base_key.part))
                    .and_then(|m| m.get(&base_key.version))
                    .ok_or_else(|| {
                        integrity_error(format!("delta base {base_key} unresolvable"))
                    })?;
                if base_record.kind != ShardKind::Full {
                    return Err(integrity_error(format!(
                        "delta base {base_key} is not a full shard"
                    )));
                }
                let base = self.fetch_stored(base_record)?;
                delta::apply(&base, &stored)
                    .map_err(|e| integrity_error(format!("applying delta {}: {e}", record.key)))
            }
        }
    }
}

impl ObjectStore for ChainStore {
    fn put(&self, _key: &ShardKey, _payload: Bytes) -> Result<(), StoreError> {
        Err(read_only_error())
    }

    fn get(&self, key: &ShardKey) -> Result<Option<Bytes>, StoreError> {
        match self.record(key) {
            Some(record) => self.reconstruct(&record.clone()).map(Some),
            None => Ok(None),
        }
    }

    fn latest_version(
        &self,
        module: &str,
        part: StatePart,
        at_or_before: u64,
    ) -> Result<Option<u64>, StoreError> {
        Ok(self
            .slots
            .get(&(module.to_string(), part))
            .and_then(|m| m.range(..=at_or_before).next_back().map(|(&v, _)| v)))
    }

    fn keys(&self) -> Result<Vec<ShardKey>, StoreError> {
        let mut keys: Vec<ShardKey> = self
            .slots
            .values()
            .flat_map(|m| m.values().map(|r| r.key.clone()))
            .collect();
        keys.sort();
        Ok(keys)
    }

    fn total_bytes(&self) -> Result<u64, StoreError> {
        Ok(self
            .slots
            .values()
            .flat_map(|m| m.values().map(|r| r.stored_len))
            .sum())
    }

    fn prune(
        &self,
        _module: &str,
        _part: StatePart,
        _before_version: u64,
    ) -> Result<usize, StoreError> {
        Err(read_only_error())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::EngineConfig;
    use crate::writer::ShardWriter;
    use moc_store::MemoryObjectStore;

    fn payload(tag: u8, n: usize) -> Vec<u8> {
        (0..n)
            .flat_map(|i| ((i as f32) * 0.5 + f32::from(tag) * 1e-3).to_le_bytes())
            .collect()
    }

    /// Two writers, several checkpoints, deltas on: the view serves
    /// exactly the committed keys and reconstructs bitwise.
    #[test]
    fn multi_writer_commit_and_reconstruct() {
        let store: Arc<dyn ObjectStore> = Arc::new(MemoryObjectStore::new());
        let mut w0 = ShardWriter::new(0, store.clone(), EngineConfig::default());
        let mut w1 = ShardWriter::new(1, store.clone(), EngineConfig::default());
        for v in [10u64, 20, 30] {
            let a = payload(v as u8, 128);
            let b = payload(v as u8 + 100, 128);
            let ka = ShardKey::new("a", StatePart::Weights, v);
            let kb = ShardKey::new("b", StatePart::Weights, v);
            w0.persist(v, [(&ka, &a[..])]).unwrap();
            w1.persist(v, [(&kb, &b[..])]).unwrap();
        }
        let chain = ChainStore::load(store).unwrap();
        assert_eq!(chain.writer_count(), 2);
        assert_eq!(chain.committed_versions(), vec![10, 20, 30]);
        for v in [10u64, 20, 30] {
            let got = chain
                .get(&ShardKey::new("a", StatePart::Weights, v))
                .unwrap()
                .unwrap();
            assert_eq!(&got[..], &payload(v as u8, 128)[..]);
        }
        assert_eq!(
            chain.latest_version("b", StatePart::Weights, 25).unwrap(),
            Some(20)
        );
    }

    /// A version one writer never committed is not globally committed.
    #[test]
    fn partial_version_not_committed() {
        let store: Arc<dyn ObjectStore> = Arc::new(MemoryObjectStore::new());
        let mut w0 = ShardWriter::new(0, store.clone(), EngineConfig::default());
        let mut w1 = ShardWriter::new(1, store.clone(), EngineConfig::default());
        let p = payload(1, 64);
        let ka = ShardKey::new("a", StatePart::Weights, 10);
        let kb = ShardKey::new("b", StatePart::Weights, 10);
        w0.persist(10, [(&ka, &p[..])]).unwrap();
        w1.persist(10, [(&kb, &p[..])]).unwrap();
        // Writer 0 alone reaches version 20: not globally committed.
        let ka2 = ShardKey::new("a", StatePart::Weights, 20);
        w0.persist(20, [(&ka2, &p[..])]).unwrap();
        let chain = ChainStore::load(store).unwrap();
        assert_eq!(chain.newest_committed(), Some(10));
        assert_eq!(chain.get(&ka2).unwrap(), None, "uncommitted key invisible");
        assert_eq!(
            chain.latest_version("a", StatePart::Weights, 99).unwrap(),
            Some(10)
        );
    }

    /// One writer's torn version must not strand the chain: a later
    /// committed version whose delta base sits at the globally
    /// *uncommitted* version still resolves (the base bytes exist and
    /// are CRC-checked), so the chain makes progress once both writers
    /// commit again.
    #[test]
    fn delta_base_at_uncommitted_version_still_resolves() {
        let store: Arc<dyn ObjectStore> = Arc::new(MemoryObjectStore::new());
        let mut w0 = ShardWriter::new(0, store.clone(), EngineConfig::default());
        let mut w1 = ShardWriter::new(1, store.clone(), EngineConfig::default());
        let ka = |v: u64| ShardKey::new("a", StatePart::Weights, v);
        let kb = |v: u64| ShardKey::new("b", StatePart::Weights, v);
        // v10: both commit. v20: only writer 0 commits (writer 1 torn);
        // the payload length changes at v20, forcing a full rebase —
        // writer 0's delta base now sits at the uncommitted version 20.
        w0.persist(10, [(&ka(10), &payload(1, 128)[..])]).unwrap();
        w1.persist(10, [(&kb(10), &payload(2, 128)[..])]).unwrap();
        w0.persist(20, [(&ka(20), &payload(3, 192)[..])]).unwrap();
        // v30: both commit; writer 0's shard deltas against the v20 base.
        w0.persist(30, [(&ka(30), &payload(4, 192)[..])]).unwrap();
        w1.persist(30, [(&kb(30), &payload(5, 128)[..])]).unwrap();
        assert_eq!(w0.stats().delta_shards, 1, "v30 must delta against v20");

        let chain = ChainStore::load_expecting(store, Some(2)).unwrap();
        assert_eq!(
            chain.committed_versions(),
            vec![10, 30],
            "v20 stays uncommitted but must not block v30"
        );
        let got = chain.get(&ka(30)).unwrap().unwrap();
        assert_eq!(
            &got[..],
            &payload(4, 192)[..],
            "delta vs an uncommitted base reconstructs"
        );
        assert_eq!(
            chain.get(&ka(20)).unwrap(),
            None,
            "v20 itself stays invisible"
        );
    }

    /// The elastic-shrink view: after writer 1 dies, the commit rule
    /// spans only writer 0, so writer 0's later versions commit — while
    /// writer 1's frozen chain keeps serving its pre-fault shards.
    #[test]
    fn live_writer_view_advances_past_a_dead_chain() {
        let store: Arc<dyn ObjectStore> = Arc::new(MemoryObjectStore::new());
        let mut w0 = ShardWriter::new(0, store.clone(), EngineConfig::default());
        let mut w1 = ShardWriter::new(1, store.clone(), EngineConfig::default());
        let ka = |v: u64| ShardKey::new("a", StatePart::Weights, v);
        let kb = ShardKey::new("b", StatePart::Weights, 10);
        w0.persist(10, [(&ka(10), &payload(1, 64)[..])]).unwrap();
        w1.persist(10, [(&kb, &payload(2, 64)[..])]).unwrap();
        // Writer 1 dies; writer 0 keeps checkpointing.
        w0.persist(20, [(&ka(20), &payload(3, 64)[..])]).unwrap();

        // The full-quorum view stays pinned at 10 …
        let all = ChainStore::load_expecting(store.clone(), Some(2)).unwrap();
        assert_eq!(all.newest_committed(), Some(10));
        // … the live-writer view advances, and still serves the dead
        // writer's committed shard.
        let live = ChainStore::load_for_writers(store, &[0]).unwrap();
        assert_eq!(live.committed_versions(), vec![10, 20]);
        assert_eq!(
            &live.get(&ka(20)).unwrap().unwrap()[..],
            &payload(3, 64)[..]
        );
        assert_eq!(&live.get(&kb).unwrap().unwrap()[..], &payload(2, 64)[..]);
        assert_eq!(
            live.latest_version("b", StatePart::Weights, 99).unwrap(),
            Some(10)
        );
    }

    /// A required writer with no chain at all voids every version under
    /// the live-writer view, exactly like `load_expecting`.
    #[test]
    fn missing_required_writer_voids_commits() {
        let store: Arc<dyn ObjectStore> = Arc::new(MemoryObjectStore::new());
        let mut w0 = ShardWriter::new(0, store.clone(), EngineConfig::default());
        let k = ShardKey::new("a", StatePart::Weights, 10);
        w0.persist(10, [(&k, &payload(1, 64)[..])]).unwrap();
        let view = ChainStore::load_for_writers(store, &[0, 7]).unwrap();
        assert_eq!(view.newest_committed(), None);
    }

    /// Orphaned shards without any manifest are invisible.
    #[test]
    fn orphans_are_invisible() {
        let store: Arc<dyn ObjectStore> = Arc::new(MemoryObjectStore::new());
        let orphan = ShardKey::new("ghost", StatePart::Weights, 5);
        store.put(&orphan, Bytes::from_static(b"torn")).unwrap();
        let chain = ChainStore::load(store).unwrap();
        assert_eq!(chain.newest_committed(), None);
        assert_eq!(chain.get(&orphan).unwrap(), None);
        assert!(chain.keys().unwrap().is_empty());
    }

    /// Deleting a committed shard's bytes surfaces loudly on get, and a
    /// corrupted payload fails its manifest CRC.
    #[test]
    fn missing_or_corrupt_committed_shard_errors() {
        let raw_store = Arc::new(MemoryObjectStore::new());
        let store: Arc<dyn ObjectStore> = raw_store.clone();
        let mut w = ShardWriter::new(0, store.clone(), EngineConfig::default());
        let key = ShardKey::new("m", StatePart::Weights, 10);
        let p = payload(2, 64);
        w.persist(10, [(&key, &p[..])]).unwrap();

        // Corrupt the stored payload behind the manifest's back.
        raw_store.put(&key, Bytes::from_static(b"junk")).unwrap();
        let chain = ChainStore::load(store.clone()).unwrap();
        assert!(chain.get(&key).is_err(), "corruption must not pass");

        // Remove it entirely: the version no longer validates at load
        // time, so the chain rejects it as incomplete.
        raw_store.prune("m", StatePart::Weights, 11).unwrap();
        let chain = ChainStore::load(store).unwrap();
        assert_eq!(chain.newest_committed(), None);
        assert_eq!(chain.get(&key).unwrap(), None);
    }

    #[test]
    fn view_is_read_only() {
        let store: Arc<dyn ObjectStore> = Arc::new(MemoryObjectStore::new());
        let chain = ChainStore::load(store).unwrap();
        let key = ShardKey::new("m", StatePart::Weights, 1);
        assert!(chain.put(&key, Bytes::new()).is_err());
        assert!(chain.prune("m", StatePart::Weights, 1).is_err());
    }
}
