//! # moc-ckpt — the asynchronous sharded checkpoint engine
//!
//! Where `moc_core::twolevel` models the paper's triple-buffer agents and
//! `moc-train` serializes module state, this crate owns the checkpoint
//! *data path* end to end — snapshot → shard → persist — as a pipeline
//! instead of a blocking call:
//!
//! * [`plan`] — partial-expert shard selection (PEC-FSS): the rotating
//!   `K_snapshot` / `K_persist` expert sets, with per-rank byte workloads
//!   from `moc_core::sharding`;
//! * [`pool`] — the reusable buffer pool behind copy-on-snapshot and
//!   delta-encode scratch (its allocation count plateaus after warm-up);
//! * [`delta`] — delta shards: byte-plane XOR + RLE against the slot's
//!   last full shard, with periodic full rebase and CRC self-checking;
//! * [`manifest`] — the versioned manifest chain: per-writer commit
//!   records naming every shard (kind, base, CRC), written strictly
//!   *after* the shards so the store's atomic rename makes each manifest
//!   a commit point;
//! * [`writer`] — [`ShardWriter`]: the synchronous persist core (encode,
//!   write shards, commit manifest; nothing committed on failure);
//! * [`engine`] — [`CkptEngine`]: the per-node background pipeline with
//!   double-buffered admission, so training threads never perform store
//!   I/O at a checkpoint;
//! * [`reader`] — [`ChainStore`]: a read-only `ObjectStore` view serving
//!   only committed state, reconstructing `full ⊕ delta` bitwise — the
//!   view recovery plans against, which makes torn persists invisible;
//! * [`testing`] — crash-injection store wrappers for consistency tests.
//!
//! # Examples
//!
//! ```
//! use moc_ckpt::{ChainStore, EngineConfig, ShardWriter};
//! use moc_store::{MemoryObjectStore, ObjectStore, ShardKey, StatePart};
//! use std::sync::Arc;
//!
//! let store: Arc<dyn ObjectStore> = Arc::new(MemoryObjectStore::new());
//! let mut writer = ShardWriter::new(0, store.clone(), EngineConfig::default());
//! let key = ShardKey::new("layer1.expert0", StatePart::Weights, 10);
//! let payload = vec![0u8; 64];
//! writer.persist(10, [(&key, &payload[..])])?;
//!
//! let chain = ChainStore::load(store)?;
//! assert_eq!(chain.newest_committed(), Some(10));
//! assert_eq!(&chain.get(&key)?.unwrap()[..], &payload[..]);
//! # Ok::<(), moc_store::StoreError>(())
//! ```

#![warn(missing_docs)]

pub mod config;
pub mod delta;
pub mod engine;
pub mod manifest;
pub mod plan;
pub mod pool;
pub mod reader;
pub mod testing;
pub mod writer;

pub use config::EngineConfig;
pub use engine::{CkptEngine, EngineStats};
pub use manifest::{manifest_module, manifest_writer, ManifestEntry, ShardKind, ShardRecord};
pub use plan::{shard_group_of_expert, CheckpointSelection, PartialPlan};
pub use pool::BufferPool;
pub use reader::ChainStore;
pub use writer::{ShardWriter, WriterStats};
