//! Partial-expert shard selection for the checkpoint engine (PEC-FSS).
//!
//! Wraps `moc_core::selection` into the two-level selection the engine
//! consumes each checkpoint: the snapshot-level expert window
//! (`K_snapshot`) and the independently rotating persist subset
//! (`K_persist`), with persist ⊆ snapshot enforced by construction so the
//! live path always serializes what it persists. The byte-level workload
//! of a selection under the paper's fully-sharded placements comes from
//! `moc_core::sharding` via [`PartialPlan::persist_workload`] /
//! [`PartialPlan::snapshot_workload`].

use moc_core::selection::PecConfig;
use moc_core::sharding::{CheckpointWorkload, ShardingPlanner, ShardingStrategy};
use moc_core::topology::ParallelTopology;
use moc_moe::ExpertId;
use std::collections::{BTreeMap, HashSet};

/// The shard group (DP index) hosting an expert's state under `topo`:
/// the expert's EP rank within the EP group its layer rotates onto.
/// This is the group-coordinate key checkpoint plans and recovery both
/// resolve ownership through — a selection is a property of shard
/// groups, not of flat global ranks (whose `tp · pp` members share the
/// group's duties).
pub fn shard_group_of_expert(topo: &ParallelTopology, id: ExpertId, num_experts: usize) -> usize {
    let ep_rank = topo.expert_ep_rank(id.expert, num_experts);
    let group = id.layer % topo.num_ep_groups();
    group * topo.ep() + ep_rank
}

/// The expert sets of one checkpoint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckpointSelection {
    /// Experts snapshotted to CPU memory (includes every persisted one).
    pub snapshot: HashSet<ExpertId>,
    /// Experts persisted to storage.
    pub persist: HashSet<ExpertId>,
}

impl CheckpointSelection {
    /// Splits the selection by the shard group (DP index) owning each
    /// expert under `topo` — the group-coordinate keying of the plan.
    /// Every selected expert lands in exactly one group's selection, so
    /// the returned selections partition `self`.
    pub fn by_shard_group(
        &self,
        topo: &ParallelTopology,
        num_experts: usize,
    ) -> BTreeMap<usize, CheckpointSelection> {
        let mut out: BTreeMap<usize, CheckpointSelection> = BTreeMap::new();
        for &id in &self.snapshot {
            let group = shard_group_of_expert(topo, id, num_experts);
            let entry = out.entry(group).or_insert_with(|| CheckpointSelection {
                snapshot: HashSet::new(),
                persist: HashSet::new(),
            });
            entry.snapshot.insert(id);
            if self.persist.contains(&id) {
                entry.persist.insert(id);
            }
        }
        out
    }
}

/// Rotating partial-expert checkpoint plan.
#[derive(Debug, Clone)]
pub struct PartialPlan {
    /// Experts snapshotted per layer per checkpoint.
    pub k_snapshot: usize,
    /// Experts persisted per layer per checkpoint.
    pub k_persist: usize,
    /// Experts per MoE layer.
    pub num_experts: usize,
    /// MoE layers.
    pub num_moe_layers: usize,
    snapshot_pec: PecConfig,
    persist_pec: PecConfig,
}

impl PartialPlan {
    /// Creates a plan with sequential rotation at both levels.
    pub fn new(k_snapshot: usize, k_persist: usize, num_experts: usize, layers: usize) -> Self {
        Self {
            k_snapshot,
            k_persist,
            num_experts,
            num_moe_layers: layers,
            snapshot_pec: PecConfig::sequential(k_snapshot, num_experts, layers),
            persist_pec: PecConfig::sequential(k_persist, num_experts, layers),
        }
    }

    /// The same plan with new degrees (the Dynamic-K escalation path).
    pub fn with_k(&self, k_snapshot: usize, k_persist: usize) -> Self {
        Self::new(k_snapshot, k_persist, self.num_experts, self.num_moe_layers)
    }

    /// The selection of checkpoint index `t`.
    ///
    /// The persist level rotates independently with stride `K_persist`, so
    /// its coverage never stalls when `K_snapshot` is large; persist-due
    /// experts outside the snapshot window are pulled into the snapshot
    /// set, keeping persist ⊆ snapshot on the live path (the engine only
    /// persists what was serialized this checkpoint).
    pub fn at(&self, t: u64) -> CheckpointSelection {
        let persist: HashSet<ExpertId> = self.persist_pec.select(t).into_iter().collect();
        let mut snapshot: HashSet<ExpertId> = self.snapshot_pec.select(t).into_iter().collect();
        snapshot.extend(persist.iter().copied());
        CheckpointSelection { snapshot, persist }
    }

    /// The full selection (bootstrap / Dynamic-K saturation).
    pub fn full_selection(&self) -> CheckpointSelection {
        let all: HashSet<ExpertId> = (0..self.num_moe_layers)
            .flat_map(|layer| (0..self.num_experts).map(move |e| ExpertId::new(layer, e)))
            .collect();
        CheckpointSelection {
            snapshot: all.clone(),
            persist: all,
        }
    }

    /// Per-rank byte workload of checkpoint `t`'s *persist* level under a
    /// sharding strategy (Section 4's planner reused for the engine).
    pub fn persist_workload(
        &self,
        planner: &ShardingPlanner,
        strategy: ShardingStrategy,
        t: u64,
    ) -> CheckpointWorkload {
        let mut selected: Vec<ExpertId> = self.at(t).persist.into_iter().collect();
        selected.sort();
        planner.plan_selected(strategy, &selected)
    }

    /// Per-rank byte workload of checkpoint `t`'s *snapshot* level.
    pub fn snapshot_workload(
        &self,
        planner: &ShardingPlanner,
        strategy: ShardingStrategy,
        t: u64,
    ) -> CheckpointWorkload {
        let mut selected: Vec<ExpertId> = self.at(t).snapshot.into_iter().collect();
        selected.sort();
        planner.plan_selected(strategy, &selected)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn persist_is_subset_of_snapshot() {
        let plan = PartialPlan::new(2, 1, 8, 2);
        for t in 0..32 {
            let sel = plan.at(t);
            assert!(sel.persist.is_subset(&sel.snapshot), "t={t}");
            assert_eq!(sel.persist.len(), 2, "1 expert × 2 layers");
        }
    }

    #[test]
    fn persist_rotation_covers_all_experts() {
        let plan = PartialPlan::new(4, 1, 8, 1);
        let mut seen: HashSet<ExpertId> = HashSet::new();
        for t in 0..8 {
            seen.extend(plan.at(t).persist);
        }
        assert_eq!(seen.len(), 8, "stride-K_persist rotation covers everyone");
    }

    #[test]
    fn full_selection_is_everything() {
        let plan = PartialPlan::new(2, 1, 8, 3);
        let full = plan.full_selection();
        assert_eq!(full.snapshot.len(), 24);
        assert_eq!(full.snapshot, full.persist);
    }

    #[test]
    fn with_k_rebuilds_rotations() {
        let plan = PartialPlan::new(1, 1, 8, 1).with_k(8, 8);
        assert_eq!(plan.at(0).snapshot.len(), 8);
    }

    #[test]
    fn group_keyed_selection_partitions_exactly() {
        // dp = 16, ep = 8: two EP groups, expert layers rotate between
        // them.
        let topo = moc_core::ParallelTopology::dp_ep(2, 8, 16, 8).unwrap();
        let plan = PartialPlan::new(4, 2, 8, 2);
        for t in 0..8 {
            let sel = plan.at(t);
            let by_group = sel.by_shard_group(&topo, 8);
            let mut snap_union: HashSet<ExpertId> = HashSet::new();
            let mut persist_union: HashSet<ExpertId> = HashSet::new();
            let mut total_snap = 0;
            for (group, gsel) in &by_group {
                assert!(*group < topo.dp(), "group key is a DP index");
                total_snap += gsel.snapshot.len();
                snap_union.extend(gsel.snapshot.iter().copied());
                persist_union.extend(gsel.persist.iter().copied());
                assert!(gsel.persist.is_subset(&gsel.snapshot));
                for &id in &gsel.snapshot {
                    assert_eq!(shard_group_of_expert(&topo, id, 8), *group);
                }
            }
            assert_eq!(total_snap, sel.snapshot.len(), "no expert counted twice");
            assert_eq!(snap_union, sel.snapshot, "t={t}: snapshot partition");
            assert_eq!(persist_union, sel.persist, "t={t}: persist partition");
        }
    }

    #[test]
    fn expert_layers_rotate_over_ep_groups() {
        let topo = moc_core::ParallelTopology::dp_ep(2, 8, 16, 8).unwrap();
        // Layer 0 sits in EP group 0, layer 1 in EP group 1.
        assert_eq!(shard_group_of_expert(&topo, ExpertId::new(0, 0), 8), 0);
        assert_eq!(shard_group_of_expert(&topo, ExpertId::new(1, 0), 8), 8);
        // With one EP group everything collapses onto 0..ep.
        let flat = moc_core::ParallelTopology::dp_ep(1, 8, 8, 8).unwrap();
        assert_eq!(shard_group_of_expert(&flat, ExpertId::new(1, 5), 8), 5);
    }

    #[test]
    fn persist_workload_shrinks_with_k() {
        let model = moc_moe::presets::gpt_350m_16e();
        let topo = moc_core::ParallelTopology::case2();
        let planner = ShardingPlanner::new(model, topo).unwrap();
        let partial = PartialPlan::new(2, 1, 16, 12);
        let full = PartialPlan::new(16, 16, 16, 12);
        let p = partial.persist_workload(&planner, ShardingStrategy::FullySharded, 0);
        let f = full.persist_workload(&planner, ShardingStrategy::FullySharded, 0);
        assert!(p.total_bytes() < f.total_bytes());
        assert!(p.bottleneck().1 < f.bottleneck().1);
    }
}
