//! Key listing and recovery *planning* must not scale with stored
//! payload bytes: `FileObjectStore::scan` reads frame headers only, and
//! `ChainStore::load` — which lists keys and decodes manifests —
//! fetches manifest payloads but never shard payloads. The
//! [`CountingStore`] wrapper observes every `get` crossing the store
//! boundary, so the property is checked literally.

use moc_ckpt::testing::CountingStore;
use moc_ckpt::{manifest_writer, ChainStore, EngineConfig, ShardWriter};
use moc_store::{FileObjectStore, ObjectStore, ShardKey, StatePart};
use std::sync::Arc;

fn payload(tag: u8, n: usize) -> Vec<u8> {
    (0..n).map(|i| (i as u8).wrapping_mul(tag)).collect()
}

/// Loading the committed chain view over a file-backed store with large
/// shard payloads reads only manifest payloads: shard bytes cross the
/// store boundary exclusively when a recovery plan fetches them.
#[test]
fn chain_load_never_deserializes_shard_payloads() {
    let root = std::env::temp_dir().join(format!("moc-ckpt-keylist-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    let file_store: Arc<dyn ObjectStore> = Arc::new(FileObjectStore::open(&root).unwrap());
    let counting = Arc::new(CountingStore::new(file_store));
    let store: Arc<dyn ObjectStore> = counting.clone();

    // Persist three checkpoints of two large modules (full shards only,
    // so payload sizes are predictable and dwarf the manifests).
    const SHARD_BYTES: usize = 64 * 1024;
    let mut writer = ShardWriter::new(0, store.clone(), EngineConfig::full_only());
    for v in [10u64, 20, 30] {
        let a = payload(v as u8 + 1, SHARD_BYTES);
        let b = payload(v as u8 + 2, SHARD_BYTES);
        let ka = ShardKey::new("layer1.expert0", StatePart::Weights, v);
        let kb = ShardKey::new("layer1.expert1", StatePart::Weights, v);
        writer.persist(v, [(&ka, &a[..]), (&kb, &b[..])]).unwrap();
    }

    let puts_done_gets = counting.gets();
    let chain = ChainStore::load(store).unwrap();
    assert_eq!(chain.committed_versions(), vec![10, 20, 30]);

    // Every get the load performed was a manifest, never a shard.
    assert!(counting.key_listings() >= 1, "load lists keys");
    let manifest_keys: Vec<ShardKey> = counting
        .keys()
        .unwrap()
        .into_iter()
        .filter(|k| manifest_writer(&k.module).is_some())
        .collect();
    let load_gets = counting.gets() - puts_done_gets;
    assert_eq!(
        load_gets,
        manifest_keys.len() as i64,
        "chain load must fetch exactly the manifests"
    );
    assert!(
        counting.get_bytes() < (SHARD_BYTES / 2) as i64,
        "bytes served during load ({}) must not include any {SHARD_BYTES}-byte shard",
        counting.get_bytes()
    );

    // Fetching one committed shard through the view reads exactly that
    // shard's payload (plus nothing else).
    let before = counting.get_bytes();
    let got = chain
        .get(&ShardKey::new("layer1.expert0", StatePart::Weights, 30))
        .unwrap()
        .unwrap();
    assert_eq!(got.len(), SHARD_BYTES);
    assert_eq!(counting.get_bytes() - before, SHARD_BYTES as i64);
    std::fs::remove_dir_all(&root).unwrap();
}
