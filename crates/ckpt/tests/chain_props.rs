//! Property tests of the manifest chain's crash consistency.
//!
//! The central guarantee the checkpoint engine makes: for **any prefix**
//! of the global put order (the state any crash point leaves behind in
//! the store), the chain view either reconstructs bitwise-identical
//! payloads for every slot of every committed version, or rejects the
//! incomplete tail entirely — it never serves partially persisted state.

use bytes::Bytes;
use moc_ckpt::testing::RecordingStore;
use moc_ckpt::{ChainStore, EngineConfig, ShardWriter};
use moc_store::{ObjectStore, ShardKey, StatePart};
use proptest::prelude::*;
use std::collections::HashMap;
use std::sync::Arc;

const SLOTS: [&str; 3] = ["layer1.expert0", "layer1.expert1", "embedding"];

/// Deterministic slot payload at a version: a float ramp whose low bytes
/// drift per version (delta-friendly) plus a version-dependent patch in a
/// region selected by `mask` (so consecutive payloads always differ and
/// delta sizes vary).
fn payload(slot: usize, version: u64, mask: u8) -> Vec<u8> {
    let mut bytes: Vec<u8> = (0..128u32)
        .flat_map(|i| ((i as f32) * 0.25 + slot as f32).to_le_bytes())
        .collect();
    let start = (usize::from(mask) * 16) % (bytes.len() - 24);
    for (offset, b) in bytes[start..start + 16].iter_mut().enumerate() {
        *b = b.wrapping_add(version as u8).wrapping_add(offset as u8);
    }
    bytes
}

/// Drives `checkpoints` batches through per-writer `ShardWriter`s over a
/// recording store; returns the store and the reference payloads.
#[allow(clippy::type_complexity)]
fn drive(
    checkpoints: &[u8],
    writers: usize,
    rebase_interval: u64,
) -> (Arc<RecordingStore>, HashMap<(usize, u64), Vec<u8>>) {
    let store = Arc::new(RecordingStore::new());
    let as_dyn: Arc<dyn ObjectStore> = store.clone();
    let config = EngineConfig {
        delta: true,
        rebase_interval,
        ..EngineConfig::default()
    };
    let mut shard_writers: Vec<ShardWriter> = (0..writers)
        .map(|w| ShardWriter::new(w, as_dyn.clone(), config))
        .collect();
    let mut reference = HashMap::new();
    for (i, &mask) in checkpoints.iter().enumerate() {
        let version = 10 * (i as u64 + 1);
        for (w, writer) in shard_writers.iter_mut().enumerate() {
            let owned: Vec<(ShardKey, Vec<u8>)> = SLOTS
                .iter()
                .enumerate()
                .filter(|(s, _)| s % writers == w)
                .map(|(s, name)| {
                    let p = payload(s, version, mask);
                    reference.insert((s, version), p.clone());
                    (ShardKey::new(*name, StatePart::Weights, version), p)
                })
                .collect();
            writer
                .persist(version, owned.iter().map(|(k, p)| (k, &p[..])))
                .expect("memory store persists");
        }
    }
    (store, reference)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Any prefix of the put log reconstructs every committed slot
    /// bitwise, and never surfaces a version past the last complete
    /// manifest set.
    #[test]
    fn any_prefix_reconstructs_bitwise_or_rejects(
        checkpoints in proptest::collection::vec(0u8..8, 1..5),
        writers in 1usize..3,
        rebase_interval in 1u64..4,
    ) {
        let (store, reference) = drive(&checkpoints, writers, rebase_interval);
        let log_len = store.log().len();
        for cut in 0..=log_len {
            let prefix: Arc<dyn ObjectStore> = Arc::new(store.prefix(cut));
            let chain = ChainStore::load_expecting(prefix, Some(writers))
                .expect("load never fails on a healthy store");
            let committed = chain.committed_versions();
            // Committed versions are a prefix of the checkpoint sequence.
            let all_versions: Vec<u64> =
                (1..=checkpoints.len() as u64).map(|i| 10 * i).collect();
            prop_assert_eq!(
                &committed[..],
                &all_versions[..committed.len()],
                "cut {}: committed set must be a version prefix", cut
            );
            // Every slot of every committed version reconstructs bitwise.
            for &v in &committed {
                for (s, name) in SLOTS.iter().enumerate() {
                    let key = ShardKey::new(*name, StatePart::Weights, v);
                    let got = chain
                        .get(&key)
                        .expect("committed shard reconstructs")
                        .expect("committed shard present");
                    let want = &reference[&(s, v)];
                    prop_assert_eq!(&got[..], &want[..], "cut {} {}@{}", cut, name, v);
                }
            }
            // Nothing newer than the last complete manifest set leaks out.
            let newest = chain.newest_committed().unwrap_or(0);
            for name in SLOTS {
                let latest = chain
                    .latest_version(name, StatePart::Weights, u64::MAX)
                    .expect("latest_version");
                prop_assert!(
                    latest.unwrap_or(0) <= newest,
                    "cut {}: {} surfaced uncommitted version {:?} past {}",
                    cut, name, latest, newest
                );
            }
        }
    }
}

/// The full log (no crash) commits every checkpoint — the property above
/// is not vacuous.
#[test]
fn full_log_commits_everything() {
    let checkpoints = [0u8, 3, 6, 1];
    let (store, _) = drive(&checkpoints, 2, 3);
    let prefix: Arc<dyn ObjectStore> = Arc::new(store.prefix(store.log().len()));
    let chain = ChainStore::load(prefix).unwrap();
    assert_eq!(chain.committed_versions(), vec![10, 20, 30, 40]);
}

/// A cut strictly inside a batch (after its first put, before its
/// manifest) must reject exactly that version — directly modelling a
/// writer death between shard writes.
#[test]
fn mid_batch_cut_rejects_exactly_the_torn_version() {
    let checkpoints = [0u8, 2, 4];
    let (store, reference) = drive(&checkpoints, 1, 2);
    let log = store.log();
    // Find the first put of version 20 (batch 2) and cut just after it.
    let v20_start = log
        .iter()
        .position(|(k, _)| k.version == 20)
        .expect("version 20 written");
    let prefix: Arc<dyn ObjectStore> = Arc::new(store.prefix(v20_start + 1));
    let chain = ChainStore::load(prefix).unwrap();
    assert_eq!(chain.newest_committed(), Some(10), "version 20 is torn");
    // Version 10 still reconstructs bitwise.
    let got = chain
        .get(&ShardKey::new(SLOTS[0], StatePart::Weights, 10))
        .unwrap()
        .unwrap();
    assert_eq!(Bytes::from(reference[&(0usize, 10u64)].clone()), got);
}
