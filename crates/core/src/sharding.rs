//! Fully sharded checkpointing — Section 4 and Fig. 10(b-d).
//!
//! Under ZeRO-2 DP + EP, optimizer states are already partitioned: every
//! rank writes its own non-expert ZeRO shard, and each expert's optimizer
//! shard is split over its `dp/ep` replica ranks. What the sharding
//! strategies of Section 4 change is who writes the *model parameters*:
//!
//! * **Baseline** (Megatron-DeepSpeed, Fig. 7(a)): rank 0 writes all
//!   non-expert weights; only EP-group-0 ranks write expert weights.
//! * **Equal expert sharding (EE)** (Section 4.1): each EP group writes a
//!   `1/num_ep_groups` slice of every hosted expert's weights.
//! * **Equal non-expert sharding (EN)** (Section 4.2): non-expert weights
//!   are spread over all DP ranks at layer granularity (greedy LPT).
//! * **Adaptive non-expert sharding (AN)** (Section 4.3): non-expert
//!   layers go to the ranks left idle by the PEC selection pattern
//!   (greedy least-total-load).
//!
//! The planner reports per-rank byte workloads — whose maximum is the
//! *bottleneck rank* that determines blocking checkpoint time — and the
//! explicit per-rank save items the checkpoint engine executes.

use crate::selection::PecConfig;
use crate::topology::ParallelTopology;
use moc_moe::{ExpertId, MoeModelConfig};
use moc_store::StatePart;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Which sharding strategy to plan with (the Fig. 10 x-axis).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ShardingStrategy {
    /// Megatron-DeepSpeed default: rank 0 + EP-group-0 (Fig. 7(a)).
    Baseline,
    /// Equal expert sharding only ("EE").
    EqualExpert,
    /// Equal expert + equal non-expert sharding ("EE+EN") — the paper's
    /// fully sharded checkpointing.
    FullySharded,
    /// Equal expert + adaptive non-expert sharding ("EE+AN").
    FullyShardedAdaptive,
}

impl ShardingStrategy {
    /// All strategies in Fig. 10 order.
    pub const ALL: [ShardingStrategy; 4] = [
        ShardingStrategy::Baseline,
        ShardingStrategy::EqualExpert,
        ShardingStrategy::FullySharded,
        ShardingStrategy::FullyShardedAdaptive,
    ];

    /// The label used in Fig. 10.
    pub fn label(&self) -> &'static str {
        match self {
            ShardingStrategy::Baseline => "Baseline",
            ShardingStrategy::EqualExpert => "EE",
            ShardingStrategy::FullySharded => "EE+EN",
            ShardingStrategy::FullyShardedAdaptive => "EE+AN",
        }
    }
}

impl fmt::Display for ShardingStrategy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// One unit of state a rank must write at a checkpoint.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SaveItem {
    /// Module name the bytes belong to.
    pub module: String,
    /// State category.
    pub part: StatePart,
    /// Bytes this rank writes for the module (may be a slice).
    pub bytes: u64,
}

/// Per-rank checkpoint workload.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RankWorkload {
    /// Non-expert ZeRO optimizer shard bytes.
    pub non_expert_optimizer: u64,
    /// Expert optimizer shard bytes.
    pub expert_optimizer: u64,
    /// Expert weight bytes.
    pub expert_weights: u64,
    /// Non-expert weight bytes.
    pub non_expert_weights: u64,
    /// Explicit save items (weights granularity; optimizer shards are
    /// folded into aggregate items).
    pub items: Vec<SaveItem>,
}

impl RankWorkload {
    /// Total bytes this rank writes.
    pub fn total(&self) -> u64 {
        self.non_expert_optimizer
            + self.expert_optimizer
            + self.expert_weights
            + self.non_expert_weights
    }
}

/// The planned checkpoint workload of all DP ranks.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CheckpointWorkload {
    /// Workloads indexed by DP rank.
    pub per_rank: Vec<RankWorkload>,
}

impl CheckpointWorkload {
    /// Total bytes written across all ranks (the Fig. 10(a) quantity).
    pub fn total_bytes(&self) -> u64 {
        self.per_rank.iter().map(|r| r.total()).sum()
    }

    /// The bottleneck rank and its byte workload (Fig. 10(b-d) y-axis).
    pub fn bottleneck(&self) -> (usize, u64) {
        self.per_rank
            .iter()
            .enumerate()
            .map(|(i, r)| (i, r.total()))
            .max_by_key(|&(i, b)| (b, usize::MAX - i))
            .unwrap_or((0, 0))
    }

    /// Ratio of bottleneck to mean workload (1.0 = perfectly balanced).
    pub fn imbalance(&self) -> f64 {
        if self.per_rank.is_empty() {
            return 1.0;
        }
        let total = self.total_bytes() as f64;
        let mean = total / self.per_rank.len() as f64;
        if mean == 0.0 {
            1.0
        } else {
            self.bottleneck().1 as f64 / mean
        }
    }
}

/// Error planning a sharded checkpoint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlanError {
    /// The expert count per layer is not divisible by the EP degree.
    ExpertsNotDivisible {
        /// Experts per MoE layer.
        num_experts: usize,
        /// Expert-parallel degree.
        ep: usize,
    },
}

impl fmt::Display for PlanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlanError::ExpertsNotDivisible { num_experts, ep } => {
                write!(f, "{num_experts} experts cannot spread over ep degree {ep}")
            }
        }
    }
}

impl std::error::Error for PlanError {}

/// Plans per-rank checkpoint workloads for a model on a topology.
#[derive(Debug, Clone)]
pub struct ShardingPlanner {
    model: MoeModelConfig,
    topo: ParallelTopology,
}

impl ShardingPlanner {
    /// Creates a planner.
    ///
    /// # Errors
    ///
    /// Returns [`PlanError::ExpertsNotDivisible`] if the model's experts
    /// cannot be placed evenly on the topology's EP ranks.
    pub fn new(model: MoeModelConfig, topo: ParallelTopology) -> Result<Self, PlanError> {
        if model.num_moe_layers() > 0 && !model.num_experts().is_multiple_of(topo.ep()) {
            return Err(PlanError::ExpertsNotDivisible {
                num_experts: model.num_experts(),
                ep: topo.ep(),
            });
        }
        Ok(Self { model, topo })
    }

    /// The model being planned for.
    pub fn model(&self) -> &MoeModelConfig {
        &self.model
    }

    /// The topology being planned for.
    pub fn topology(&self) -> &ParallelTopology {
        &self.topo
    }

    /// Plans the workload of a *full* checkpoint (all experts saved).
    pub fn plan_full(&self, strategy: ShardingStrategy) -> CheckpointWorkload {
        let all: Vec<ExpertId> = self.model.expert_ids();
        self.plan_selected(strategy, &all)
    }

    /// Plans the workload of a PEC checkpoint at `checkpoint_index`.
    pub fn plan_pec(
        &self,
        strategy: ShardingStrategy,
        pec: &PecConfig,
        checkpoint_index: u64,
    ) -> CheckpointWorkload {
        self.plan_selected(strategy, &pec.select(checkpoint_index))
    }

    /// Plans the workload for an explicit set of saved experts.
    pub fn plan_selected(
        &self,
        strategy: ShardingStrategy,
        selected: &[ExpertId],
    ) -> CheckpointWorkload {
        let dp = self.topo.dp();
        let n = self.model.num_experts();
        let counts = self.model.param_counts();
        let bytes = self.model.bytes();
        let expert_dp = self.topo.expert_dp().max(1);
        let mut ranks = vec![RankWorkload::default(); dp];

        // --- Optimizer states: inherent ZeRO-2 + EP partitioning. ---
        let ne_opt_shard = counts.non_expert() * bytes.optimizer / dp as u64;
        for (rank, w) in ranks.iter_mut().enumerate() {
            w.non_expert_optimizer = ne_opt_shard;
            w.items.push(SaveItem {
                module: format!("zero-shard.rank{rank}"),
                part: StatePart::Optimizer,
                bytes: ne_opt_shard,
            });
        }
        let expert_opt_shard = counts.per_expert * bytes.optimizer / expert_dp as u64;
        for id in selected {
            for (g, rank) in self
                .topo
                .ranks_hosting_expert(id.expert, n)
                .into_iter()
                .enumerate()
            {
                ranks[rank].expert_optimizer += expert_opt_shard;
                ranks[rank].items.push(SaveItem {
                    module: format!("{}#o{g}", expert_module_name(&self.model, id)),
                    part: StatePart::Optimizer,
                    bytes: expert_opt_shard,
                });
            }
        }

        // --- Expert weights. ---
        let expert_w = counts.per_expert * bytes.weight;
        match strategy {
            ShardingStrategy::Baseline => {
                for id in selected {
                    let rank = self.topo.expert_ep_rank(id.expert, n); // EP group 0
                    ranks[rank].expert_weights += expert_w;
                    ranks[rank].items.push(SaveItem {
                        module: expert_module_name(&self.model, id),
                        part: StatePart::Weights,
                        bytes: expert_w,
                    });
                }
            }
            _ => {
                // EE: slice each expert's weights across its replicas.
                let groups = self.topo.num_ep_groups() as u64;
                let slice = expert_w / groups;
                let remainder = expert_w - slice * groups;
                for id in selected {
                    for (gi, rank) in self
                        .topo
                        .ranks_hosting_expert(id.expert, n)
                        .into_iter()
                        .enumerate()
                    {
                        let b = slice + if (gi as u64) < remainder { 1 } else { 0 };
                        ranks[rank].expert_weights += b;
                        ranks[rank].items.push(SaveItem {
                            module: format!("{}#w{gi}", expert_module_name(&self.model, id)),
                            part: StatePart::Weights,
                            bytes: b,
                        });
                    }
                }
            }
        }

        // --- Non-expert weights. ---
        let non_expert_modules: Vec<(String, u64)> = self
            .model
            .modules()
            .into_iter()
            .filter(|m| !m.kind.is_expert())
            .map(|m| (m.name, m.weight_bytes))
            .collect();
        match strategy {
            ShardingStrategy::Baseline | ShardingStrategy::EqualExpert => {
                for (name, b) in non_expert_modules {
                    ranks[0].non_expert_weights += b;
                    ranks[0].items.push(SaveItem {
                        module: name,
                        part: StatePart::Weights,
                        bytes: b,
                    });
                }
            }
            ShardingStrategy::FullySharded => {
                // Greedy LPT on non-expert weight load only.
                assign_greedy(&mut ranks, non_expert_modules, |w| w.non_expert_weights);
            }
            ShardingStrategy::FullyShardedAdaptive => {
                // Greedy least-total-load: fills the slack the PEC expert
                // pattern leaves on lightly loaded ranks.
                assign_greedy(&mut ranks, non_expert_modules, |w| w.total());
            }
        }

        CheckpointWorkload { per_rank: ranks }
    }

    /// The ideal per-rank workload of Eq. 8 (bytes).
    pub fn ideal_rank_workload(&self) -> u64 {
        let counts = self.model.param_counts();
        let b = self.model.bytes();
        let dp = self.topo.dp() as u64;
        let ep = self.topo.ep() as u64;
        (counts.non_expert() + counts.expert()) * b.optimizer / ep
            + counts.non_expert() * b.weight / dp
            + counts.expert() * b.weight / ep
    }
}

/// Canonical module name of an expert (`layer<transformer-idx>.expert<e>`).
pub fn expert_module_name(model: &MoeModelConfig, id: &ExpertId) -> String {
    let layer = model.moe_layer_indices()[id.layer];
    format!("layer{layer}.expert{}", id.expert)
}

/// Strips a shard-slice suffix (`#o0`, `#w1`, …) from an item module name,
/// recovering the module it belongs to.
pub fn base_module(item_module: &str) -> &str {
    item_module.split('#').next().unwrap_or(item_module)
}

/// Greedy longest-processing-time assignment: sort modules by descending
/// size, place each on the rank minimising `load_of` after placement.
fn assign_greedy(
    ranks: &mut [RankWorkload],
    mut modules: Vec<(String, u64)>,
    load_of: impl Fn(&RankWorkload) -> u64,
) {
    modules.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    for (name, bytes) in modules {
        let (idx, _) = ranks
            .iter()
            .enumerate()
            .min_by_key(|(i, w)| (load_of(w), *i))
            .expect("at least one rank");
        ranks[idx].non_expert_weights += bytes;
        ranks[idx].items.push(SaveItem {
            module: name,
            part: StatePart::Weights,
            bytes,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use moc_moe::presets;

    fn planner(topo: ParallelTopology) -> ShardingPlanner {
        ShardingPlanner::new(presets::gpt_350m_16e(), topo).unwrap()
    }

    #[test]
    fn full_total_matches_model_checkpoint_size() {
        for topo in [
            ParallelTopology::case1(),
            ParallelTopology::case2(),
            ParallelTopology::case3(),
        ] {
            let p = planner(topo);
            for strategy in ShardingStrategy::ALL {
                let w = p.plan_full(strategy);
                let expected = p.model().full_checkpoint_bytes();
                let total = w.total_bytes();
                // Integer division of shards may shave a few bytes.
                assert!(expected - total < 4096, "{strategy}: {total} vs {expected}");
            }
        }
    }

    #[test]
    fn pec_total_matches_eq6() {
        let p = planner(ParallelTopology::case2());
        let pec = PecConfig::sequential(1, 16, 12);
        let w = p.plan_pec(ShardingStrategy::FullySharded, &pec, 0);
        let expected = p.model().pec_checkpoint_bytes(1);
        assert!(expected - w.total_bytes() < 4096);
    }

    #[test]
    fn baseline_concentrates_non_expert_on_rank0() {
        let p = planner(ParallelTopology::case1());
        let w = p.plan_full(ShardingStrategy::Baseline);
        assert!(w.per_rank[0].non_expert_weights > 0);
        for r in &w.per_rank[1..] {
            assert_eq!(r.non_expert_weights, 0);
        }
        let (rank, _) = w.bottleneck();
        assert_eq!(rank, 0, "rank0 must be the baseline bottleneck");
    }

    #[test]
    fn ee_only_helps_with_multiple_ep_groups() {
        // Case 1/2 have one EP group: EE == Baseline for expert weights.
        for topo in [ParallelTopology::case1(), ParallelTopology::case2()] {
            let p = planner(topo);
            let base = p.plan_full(ShardingStrategy::Baseline);
            let ee = p.plan_full(ShardingStrategy::EqualExpert);
            assert_eq!(base.bottleneck().1, ee.bottleneck().1);
        }
        // Case 3 has two groups: EE halves the expert-weight bottleneck part.
        let p = planner(ParallelTopology::case3());
        let base = p.plan_full(ShardingStrategy::Baseline);
        let ee = p.plan_full(ShardingStrategy::EqualExpert);
        assert!(ee.bottleneck().1 < base.bottleneck().1);
        let base_ew: u64 = base
            .per_rank
            .iter()
            .map(|r| r.expert_weights)
            .max()
            .unwrap();
        let ee_ew: u64 = ee.per_rank.iter().map(|r| r.expert_weights).max().unwrap();
        assert!((ee_ew as f64 / base_ew as f64 - 0.5).abs() < 0.01);
    }

    #[test]
    fn fully_sharded_reduces_bottleneck_12_to_28_percent() {
        // The paper's full-saving reduction band (Section 6.2.1).
        for (topo, lo, hi) in [
            (ParallelTopology::case1(), 0.08, 0.35),
            (ParallelTopology::case2(), 0.08, 0.35),
            (ParallelTopology::case3(), 0.08, 0.35),
        ] {
            let p = planner(topo);
            let base = p.plan_full(ShardingStrategy::Baseline).bottleneck().1 as f64;
            let fs = p.plan_full(ShardingStrategy::FullySharded).bottleneck().1 as f64;
            let reduction = 1.0 - fs / base;
            assert!(
                (lo..hi).contains(&reduction),
                "{}: reduction {reduction}",
                p.topology()
            );
        }
    }

    #[test]
    fn adaptive_beats_equal_under_pec() {
        // With K_pec = 1 the expert workload is imbalanced (Eq. 9);
        // adaptive non-expert sharding must not be worse than equal.
        let p = planner(ParallelTopology::case1());
        let pec = PecConfig::sequential(1, 16, 12);
        for t in 0..4 {
            let en = p.plan_pec(ShardingStrategy::FullySharded, &pec, t);
            let an = p.plan_pec(ShardingStrategy::FullyShardedAdaptive, &pec, t);
            assert!(
                an.bottleneck().1 <= en.bottleneck().1,
                "t={t}: AN {} vs EN {}",
                an.bottleneck().1,
                en.bottleneck().1
            );
        }
    }

    #[test]
    fn pec_shrinks_bottleneck_vs_full() {
        let p = planner(ParallelTopology::case2());
        let pec = PecConfig::sequential(1, 16, 12);
        let full = p.plan_full(ShardingStrategy::FullySharded);
        let partial = p.plan_pec(ShardingStrategy::FullySharded, &pec, 0);
        assert!(partial.bottleneck().1 < full.bottleneck().1);
        assert!(partial.total_bytes() < full.total_bytes());
    }

    #[test]
    fn expert_optimizer_split_over_replicas() {
        // Case 3: expert_dp = 2, so each replica rank saves half an
        // expert's optimizer.
        let p = planner(ParallelTopology::case3());
        let w = p.plan_full(ShardingStrategy::Baseline);
        let per_expert_opt = p.model().param_counts().per_expert * p.model().bytes().optimizer;
        // Rank 1 hosts experts 2..3 of each of 12 layers (24 experts),
        // optimizer halved.
        let expected = 24 * per_expert_opt / 2;
        assert_eq!(w.per_rank[1].expert_optimizer, expected);
        assert_eq!(w.per_rank[9].expert_optimizer, expected);
    }

    #[test]
    fn imbalance_metric() {
        let p = planner(ParallelTopology::case2());
        let base = p.plan_full(ShardingStrategy::Baseline);
        let fs = p.plan_full(ShardingStrategy::FullySharded);
        assert!(base.imbalance() > fs.imbalance());
        assert!(fs.imbalance() >= 1.0);
    }

    #[test]
    fn items_account_for_all_bytes() {
        let p = planner(ParallelTopology::case3());
        let pec = PecConfig::sequential(2, 16, 12);
        let w = p.plan_pec(ShardingStrategy::FullyShardedAdaptive, &pec, 1);
        for r in &w.per_rank {
            let item_sum: u64 = r.items.iter().map(|i| i.bytes).sum();
            assert_eq!(item_sum, r.total());
        }
    }

    #[test]
    fn planner_rejects_indivisible_experts() {
        let model = presets::gpt_350m_16e(); // 16 experts
        let topo = ParallelTopology::dp_ep(1, 6, 6, 6).unwrap();
        assert!(matches!(
            ShardingPlanner::new(model, topo),
            Err(PlanError::ExpertsNotDivisible { .. })
        ));
    }

    #[test]
    fn ideal_workload_eq8_positive_and_below_total() {
        let p = planner(ParallelTopology::case1());
        let ideal = p.ideal_rank_workload();
        assert!(ideal > 0);
        assert!(ideal < p.model().full_checkpoint_bytes());
    }
}
