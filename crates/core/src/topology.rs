//! Hybrid-parallel topology: which rank lives where and owns what.
//!
//! The paper's setting is ZeRO-2 data parallelism combined with expert
//! parallelism (Section 2.2): non-expert layers are replicated across all
//! DP ranks with their optimizer states ZeRO-partitioned; each MoE layer's
//! experts are spread over an EP group of `ep` consecutive ranks; when
//! `dp > ep` there are `dp / ep` EP groups each holding a full replica of
//! the experts (Fig. 6). [`ParallelTopology`] captures that layout plus the
//! physical node mapping and provides the Table-2 experiment cases.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Error constructing a topology.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TopologyError {
    /// A degree field was zero.
    ZeroField(&'static str),
    /// `ep` does not divide `dp`.
    EpDoesNotDivideDp {
        /// Expert-parallel degree.
        ep: usize,
        /// Data-parallel degree.
        dp: usize,
    },
    /// The node grid does not hold `dp · tp · pp` GPUs.
    WorldSizeMismatch {
        /// GPUs available (`nodes · gpus_per_node`).
        gpus: usize,
        /// GPUs required (`dp · tp · pp`).
        world: usize,
    },
}

/// Coordinates of one global rank in the DP × PP × TP grid.
///
/// The global rank order fixes TP as the fastest-varying axis, then PP,
/// then DP: `rank = (dp · pp_degree + pp) · tp_degree + tp`. With that
/// convention the `tp_degree · pp_degree` ranks of one DP index — its
/// *shard group*, which jointly holds one model replica's worth of
/// checkpoint duties — occupy consecutive global ranks, so the physical
/// node mapping of [`ParallelTopology::node_of`] stays consistent between
/// the per-DP-rank and per-global-rank views.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct RankCoord {
    /// Data-parallel index (`0..dp`): which gradient-group member.
    pub dp: usize,
    /// Tensor-parallel index (`0..tp`): which tensor slice.
    pub tp: usize,
    /// Pipeline-parallel index (`0..pp`): which pipeline stage.
    pub pp: usize,
}

impl fmt::Display for RankCoord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(dp={}, tp={}, pp={})", self.dp, self.tp, self.pp)
    }
}

impl fmt::Display for TopologyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TopologyError::ZeroField(name) => write!(f, "field `{name}` must be positive"),
            TopologyError::EpDoesNotDivideDp { ep, dp } => {
                write!(f, "ep degree {ep} must divide dp degree {dp}")
            }
            TopologyError::WorldSizeMismatch { gpus, world } => {
                write!(f, "cluster has {gpus} gpus but parallelism needs {world}")
            }
        }
    }
}

impl std::error::Error for TopologyError {}

/// A hybrid-parallel training topology (DP × TP × PP with EP inside DP).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ParallelTopology {
    nodes: usize,
    gpus_per_node: usize,
    dp: usize,
    tp: usize,
    pp: usize,
    ep: usize,
}

impl ParallelTopology {
    /// Creates a topology.
    ///
    /// # Errors
    ///
    /// Returns [`TopologyError`] if a degree is zero, `ep ∤ dp`, or the
    /// node grid cannot hold `dp·tp·pp` GPUs.
    pub fn new(
        nodes: usize,
        gpus_per_node: usize,
        dp: usize,
        tp: usize,
        pp: usize,
        ep: usize,
    ) -> Result<Self, TopologyError> {
        for (v, name) in [
            (nodes, "nodes"),
            (gpus_per_node, "gpus_per_node"),
            (dp, "dp"),
            (tp, "tp"),
            (pp, "pp"),
            (ep, "ep"),
        ] {
            if v == 0 {
                return Err(TopologyError::ZeroField(name));
            }
        }
        if !dp.is_multiple_of(ep) {
            return Err(TopologyError::EpDoesNotDivideDp { ep, dp });
        }
        let world = dp * tp * pp;
        let gpus = nodes * gpus_per_node;
        if world != gpus {
            return Err(TopologyError::WorldSizeMismatch { gpus, world });
        }
        Ok(Self {
            nodes,
            gpus_per_node,
            dp,
            tp,
            pp,
            ep,
        })
    }

    /// Pure DP + EP topology (`tp = pp = 1`), the paper's main setting.
    pub fn dp_ep(
        nodes: usize,
        gpus_per_node: usize,
        dp: usize,
        ep: usize,
    ) -> Result<Self, TopologyError> {
        Self::new(nodes, gpus_per_node, dp, 1, 1, ep)
    }

    /// Table 2, Case 1: 1 node × 8 GPUs, DP=8, EP=8 (2 experts/GPU for
    /// GPT-350M-16E).
    pub fn case1() -> Self {
        Self::dp_ep(1, 8, 8, 8).expect("case1 is valid")
    }

    /// Table 2, Case 2: 2 nodes × 8 GPUs, DP=16, EP=16 (1 expert/GPU).
    pub fn case2() -> Self {
        Self::dp_ep(2, 8, 16, 16).expect("case2 is valid")
    }

    /// Table 2, Case 3: 2 nodes × 8 GPUs, DP=16, EP=8 (2 EP groups,
    /// 2 experts/GPU).
    pub fn case3() -> Self {
        Self::dp_ep(2, 8, 16, 8).expect("case3 is valid")
    }

    /// Number of physical nodes.
    pub fn nodes(&self) -> usize {
        self.nodes
    }

    /// GPUs per node.
    pub fn gpus_per_node(&self) -> usize {
        self.gpus_per_node
    }

    /// Data-parallel degree (`D_dp`).
    pub fn dp(&self) -> usize {
        self.dp
    }

    /// Tensor-parallel degree.
    pub fn tp(&self) -> usize {
        self.tp
    }

    /// Pipeline-parallel degree.
    pub fn pp(&self) -> usize {
        self.pp
    }

    /// Expert-parallel degree (`D_ep`).
    pub fn ep(&self) -> usize {
        self.ep
    }

    /// Total GPU count (`dp · tp · pp`).
    pub fn world_size(&self) -> usize {
        self.dp * self.tp * self.pp
    }

    /// Number of EP groups (`dp / ep`), the expert replication factor
    /// across which expert states can be checkpoint-sharded (Section 4.1).
    pub fn num_ep_groups(&self) -> usize {
        self.dp / self.ep
    }

    /// Expert data-parallel degree: how many replicas of each expert's
    /// optimizer exist (`dp / ep`); ZeRO partitions expert optimizer
    /// states across this group.
    pub fn expert_dp(&self) -> usize {
        self.dp / self.ep
    }

    /// The EP group a DP rank belongs to.
    pub fn ep_group_of(&self, dp_rank: usize) -> usize {
        assert!(dp_rank < self.dp, "dp rank out of range");
        dp_rank / self.ep
    }

    /// A DP rank's position within its EP group.
    pub fn ep_rank_of(&self, dp_rank: usize) -> usize {
        assert!(dp_rank < self.dp, "dp rank out of range");
        dp_rank % self.ep
    }

    /// Physical node hosting a DP rank (ranks fill nodes in order; with
    /// TP/PP, each DP rank's shard group is collapsed onto its first GPU
    /// for checkpoint accounting).
    pub fn node_of(&self, dp_rank: usize) -> usize {
        assert!(dp_rank < self.dp, "dp rank out of range");
        let gpus_per_dp_rank = self.tp * self.pp;
        (dp_rank * gpus_per_dp_rank) / self.gpus_per_node
    }

    /// Experts of one MoE layer hosted per GPU, for a layer of
    /// `num_experts` experts ("Experts/GPU" of Table 2).
    ///
    /// # Panics
    ///
    /// Panics if `ep` does not divide `num_experts`.
    pub fn experts_per_gpu(&self, num_experts: usize) -> usize {
        assert!(
            num_experts.is_multiple_of(self.ep),
            "expert count {num_experts} must divide evenly over ep {}",
            self.ep
        );
        num_experts / self.ep
    }

    /// The EP rank (within every EP group) hosting expert `expert` of a
    /// layer with `num_experts` experts. Experts are placed in contiguous
    /// blocks, the DeepSpeed-MoE convention.
    pub fn expert_ep_rank(&self, expert: usize, num_experts: usize) -> usize {
        assert!(expert < num_experts, "expert index out of range");
        expert / self.experts_per_gpu(num_experts)
    }

    /// All DP ranks hosting a replica of expert `expert` (one per EP
    /// group).
    pub fn ranks_hosting_expert(&self, expert: usize, num_experts: usize) -> Vec<usize> {
        let ep_rank = self.expert_ep_rank(expert, num_experts);
        (0..self.num_ep_groups())
            .map(|g| g * self.ep + ep_rank)
            .collect()
    }

    /// All DP ranks on a given node.
    pub fn ranks_on_node(&self, node: usize) -> Vec<usize> {
        (0..self.dp).filter(|&r| self.node_of(r) == node).collect()
    }

    /// Coordinates of a global rank (TP fastest, then PP, then DP).
    pub fn coords_of(&self, global_rank: usize) -> RankCoord {
        assert!(
            global_rank < self.world_size(),
            "global rank {global_rank} outside world {}",
            self.world_size()
        );
        RankCoord {
            dp: global_rank / (self.tp * self.pp),
            tp: global_rank % self.tp,
            pp: (global_rank / self.tp) % self.pp,
        }
    }

    /// Global rank of a coordinate.
    pub fn global_rank_of(&self, coord: RankCoord) -> usize {
        assert!(
            coord.dp < self.dp && coord.tp < self.tp && coord.pp < self.pp,
            "coordinate {coord} outside DP={} TP={} PP={}",
            self.dp,
            self.tp,
            self.pp
        );
        (coord.dp * self.pp + coord.pp) * self.tp + coord.tp
    }

    /// Number of DP gradient groups (`tp · pp`): sets of ranks sharing
    /// tensor/pipeline coordinates whose gradients are all-reduced
    /// together.
    pub fn num_dp_groups(&self) -> usize {
        self.tp * self.pp
    }

    /// Number of shard groups (`dp`): each shard group is one DP index's
    /// `tp · pp` ranks, jointly owning one replica's checkpoint duties.
    pub fn num_shard_groups(&self) -> usize {
        self.dp
    }

    /// The DP gradient group of a global rank: the ranks sharing its
    /// `(tp, pp)` coordinates, ordered by DP index (the all-reduce fold
    /// order).
    pub fn dp_group(&self, global_rank: usize) -> Vec<usize> {
        let c = self.coords_of(global_rank);
        (0..self.dp)
            .map(|dp| self.global_rank_of(RankCoord { dp, ..c }))
            .collect()
    }

    /// The TP group of a global rank: the ranks sharing its `(dp, pp)`
    /// coordinates, ordered by TP index (the replica-consistency
    /// exchange ring).
    pub fn tp_group(&self, global_rank: usize) -> Vec<usize> {
        let c = self.coords_of(global_rank);
        (0..self.tp)
            .map(|tp| self.global_rank_of(RankCoord { tp, ..c }))
            .collect()
    }

    /// The PP group of a global rank: the ranks sharing its `(dp, tp)`
    /// coordinates, ordered by pipeline stage (the send/recv relay
    /// chain).
    pub fn pp_group(&self, global_rank: usize) -> Vec<usize> {
        let c = self.coords_of(global_rank);
        (0..self.pp)
            .map(|pp| self.global_rank_of(RankCoord { pp, ..c }))
            .collect()
    }

    /// The shard group of a global rank: all `tp · pp` ranks sharing its
    /// DP index, which jointly own the checkpoint shards of one model
    /// replica and are recovered together when any of them dies.
    pub fn shard_group(&self, global_rank: usize) -> Vec<usize> {
        let c = self.coords_of(global_rank);
        let base = c.dp * self.tp * self.pp;
        (base..base + self.tp * self.pp).collect()
    }

    /// Physical node hosting a *global* rank (ranks fill nodes in order).
    pub fn node_of_global(&self, global_rank: usize) -> usize {
        assert!(
            global_rank < self.world_size(),
            "global rank {global_rank} outside world {}",
            self.world_size()
        );
        global_rank / self.gpus_per_node
    }

    /// All global ranks hosted on a given node.
    pub fn global_ranks_on_node(&self, node: usize) -> Vec<usize> {
        (0..self.world_size())
            .filter(|&r| self.node_of_global(r) == node)
            .collect()
    }

    /// The pipeline stage owning model layer `layer` of `num_layers`:
    /// layers are split into `pp` contiguous blocks, earliest layers on
    /// stage 0.
    ///
    /// # Panics
    ///
    /// Panics if `layer >= num_layers` or `num_layers < pp` (a stage
    /// would own no layer).
    pub fn stage_of_layer(&self, layer: usize, num_layers: usize) -> usize {
        assert!(layer < num_layers, "layer index out of range");
        assert!(
            num_layers >= self.pp,
            "{num_layers} layers cannot fill {} pipeline stages",
            self.pp
        );
        layer * self.pp / num_layers
    }
}

impl fmt::Display for ParallelTopology {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}x{} gpus, DP={} TP={} PP={} EP={}",
            self.nodes, self.gpus_per_node, self.dp, self.tp, self.pp, self.ep
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_cases() {
        let c1 = ParallelTopology::case1();
        assert_eq!(c1.world_size(), 8);
        assert_eq!(c1.num_ep_groups(), 1);
        assert_eq!(c1.experts_per_gpu(16), 2);

        let c2 = ParallelTopology::case2();
        assert_eq!(c2.world_size(), 16);
        assert_eq!(c2.num_ep_groups(), 1);
        assert_eq!(c2.experts_per_gpu(16), 1);

        let c3 = ParallelTopology::case3();
        assert_eq!(c3.world_size(), 16);
        assert_eq!(c3.num_ep_groups(), 2);
        assert_eq!(c3.experts_per_gpu(16), 2);
    }

    #[test]
    fn ep_must_divide_dp() {
        let err = ParallelTopology::dp_ep(1, 8, 8, 3);
        assert_eq!(err, Err(TopologyError::EpDoesNotDivideDp { ep: 3, dp: 8 }));
    }

    #[test]
    fn world_size_must_match_gpus() {
        let err = ParallelTopology::dp_ep(1, 8, 16, 8);
        assert!(matches!(err, Err(TopologyError::WorldSizeMismatch { .. })));
    }

    #[test]
    fn zero_fields_rejected() {
        assert_eq!(
            ParallelTopology::new(0, 8, 8, 1, 1, 8),
            Err(TopologyError::ZeroField("nodes"))
        );
    }

    #[test]
    fn ep_groups_and_ranks() {
        let t = ParallelTopology::case3();
        assert_eq!(t.ep_group_of(0), 0);
        assert_eq!(t.ep_group_of(7), 0);
        assert_eq!(t.ep_group_of(8), 1);
        assert_eq!(t.ep_rank_of(11), 3);
    }

    #[test]
    fn node_mapping_fills_in_order() {
        let t = ParallelTopology::case2();
        assert_eq!(t.node_of(0), 0);
        assert_eq!(t.node_of(7), 0);
        assert_eq!(t.node_of(8), 1);
        assert_eq!(t.ranks_on_node(1), (8..16).collect::<Vec<_>>());
    }

    #[test]
    fn node_mapping_with_tp() {
        // 2 nodes x 8 gpus, dp=4, tp=4: each DP rank spans 4 GPUs.
        let t = ParallelTopology::new(2, 8, 4, 4, 1, 4).unwrap();
        assert_eq!(t.node_of(0), 0);
        assert_eq!(t.node_of(1), 0);
        assert_eq!(t.node_of(2), 1);
        assert_eq!(t.node_of(3), 1);
    }

    #[test]
    fn expert_placement_contiguous_blocks() {
        let t = ParallelTopology::case1(); // ep=8, 16 experts -> 2/gpu
        assert_eq!(t.expert_ep_rank(0, 16), 0);
        assert_eq!(t.expert_ep_rank(1, 16), 0);
        assert_eq!(t.expert_ep_rank(2, 16), 1);
        assert_eq!(t.expert_ep_rank(15, 16), 7);
    }

    #[test]
    fn expert_replicas_one_per_group() {
        let t = ParallelTopology::case3(); // 2 groups of 8
        let hosts = t.ranks_hosting_expert(5, 16); // ep_rank = 2
        assert_eq!(hosts, vec![2, 10]);
        let t1 = ParallelTopology::case1();
        assert_eq!(t1.ranks_hosting_expert(5, 16), vec![2]);
    }

    #[test]
    #[should_panic(expected = "must divide evenly")]
    fn uneven_experts_panic() {
        ParallelTopology::case1().experts_per_gpu(12);
    }

    #[test]
    fn display_format() {
        let t = ParallelTopology::case1();
        assert_eq!(t.to_string(), "1x8 gpus, DP=8 TP=1 PP=1 EP=8");
    }

    #[test]
    fn coords_roundtrip_over_full_grid() {
        let t = ParallelTopology::new(2, 8, 2, 2, 4, 2).unwrap();
        for g in 0..t.world_size() {
            let c = t.coords_of(g);
            assert_eq!(t.global_rank_of(c), g);
        }
        // TP varies fastest: consecutive ranks differ in tp first.
        assert_eq!(
            t.coords_of(0),
            RankCoord {
                dp: 0,
                tp: 0,
                pp: 0
            }
        );
        assert_eq!(
            t.coords_of(1),
            RankCoord {
                dp: 0,
                tp: 1,
                pp: 0
            }
        );
        assert_eq!(
            t.coords_of(2),
            RankCoord {
                dp: 0,
                tp: 0,
                pp: 1
            }
        );
        assert_eq!(
            t.coords_of(8),
            RankCoord {
                dp: 1,
                tp: 0,
                pp: 0
            }
        );
    }

    #[test]
    fn groups_partition_the_world() {
        let t = ParallelTopology::new(3, 8, 3, 2, 4, 3).unwrap();
        let world = t.world_size();
        assert_eq!(t.num_dp_groups() * t.dp(), world);
        assert_eq!(t.num_shard_groups() * t.tp() * t.pp(), world);
        for g in 0..world {
            assert_eq!(t.dp_group(g).len(), t.dp());
            assert_eq!(t.tp_group(g).len(), t.tp());
            assert_eq!(t.pp_group(g).len(), t.pp());
            assert_eq!(t.shard_group(g).len(), t.tp() * t.pp());
            assert!(t.dp_group(g).contains(&g));
            assert!(t.tp_group(g).contains(&g));
            assert!(t.pp_group(g).contains(&g));
            assert!(t.shard_group(g).contains(&g));
        }
    }

    #[test]
    fn dp_group_ordered_by_dp_index() {
        let t = ParallelTopology::new(1, 8, 2, 2, 2, 2).unwrap();
        // Rank 1 = (dp 0, tp 1, pp 0); its DP peer is (dp 1, tp 1, pp 0).
        assert_eq!(t.dp_group(1), vec![1, 5]);
        // Rank 2 = (dp 0, tp 0, pp 1); PP chain is [0, 2] in stage order.
        assert_eq!(t.pp_group(2), vec![0, 2]);
        assert_eq!(t.tp_group(2), vec![2, 3]);
        assert_eq!(t.shard_group(5), vec![4, 5, 6, 7]);
    }

    #[test]
    fn global_node_mapping_matches_dp_mapping() {
        let t = ParallelTopology::new(2, 8, 4, 2, 2, 4).unwrap();
        for d in 0..t.dp() {
            let g = t.global_rank_of(RankCoord {
                dp: d,
                tp: 0,
                pp: 0,
            });
            assert_eq!(t.node_of_global(g), t.node_of(d));
        }
        let all: Vec<usize> = (0..t.nodes())
            .flat_map(|n| t.global_ranks_on_node(n))
            .collect();
        assert_eq!(all, (0..t.world_size()).collect::<Vec<_>>());
    }

    #[test]
    fn stage_of_layer_splits_contiguously() {
        let t = ParallelTopology::new(1, 8, 2, 2, 2, 2).unwrap(); // pp = 2
        assert_eq!(t.stage_of_layer(0, 4), 0);
        assert_eq!(t.stage_of_layer(1, 4), 0);
        assert_eq!(t.stage_of_layer(2, 4), 1);
        assert_eq!(t.stage_of_layer(3, 4), 1);
    }

    #[test]
    #[should_panic(expected = "cannot fill")]
    fn stage_of_layer_rejects_starved_stage() {
        let t = ParallelTopology::new(1, 8, 2, 1, 4, 2).unwrap();
        t.stage_of_layer(0, 2);
    }
}
