//! Proportion of Lost Tokens (PLT) — the accuracy-impact metric of Eq. 7.
//!
//! Recovering from a PEC checkpoint restores `N − K` experts per layer to
//! states *older* than the checkpoint, losing the updates contributed by
//! tokens routed to them since their last save. PLT averages that loss
//! over MoE layers:
//!
//! ```text
//! PLT = (1/N_moe) · Σ_i  [ Σ_j L_{i,j}(I_ckpt, K_pec, F) / (T_i · TopK_i) ]
//! ```
//!
//! Three tools live here: [`PltAccumulator`] (bookkeeping of measured
//! losses), [`analytic_plt`] (closed-form expectation under balanced loads
//! and sequential selection), and [`PltSimulation`] (an event-accurate
//! simulator over a [`LoadModel`] with two-level recovery and node faults,
//! which regenerates Fig. 5 and Fig. 15).

use crate::selection::PecConfig;
use crate::topology::ParallelTopology;
use moc_moe::LoadModel;
use moc_store::FaultEvent;
use serde::{Deserialize, Serialize};

/// Accumulates measured token losses per MoE layer across faults.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PltAccumulator {
    lost: Vec<u64>,
    processed: Vec<u64>,
}

impl PltAccumulator {
    /// Creates an accumulator for `num_moe_layers` layers.
    pub fn new(num_moe_layers: usize) -> Self {
        Self {
            lost: vec![0; num_moe_layers],
            processed: vec![0; num_moe_layers],
        }
    }

    /// Records tokens lost in `layer` by one fault (`L_{i,j}`).
    pub fn record_loss(&mut self, layer: usize, lost_tokens: u64) {
        self.lost[layer] += lost_tokens;
    }

    /// Records tokens processed by `layer` (accumulates `T_i · TopK_i`).
    pub fn record_processed(&mut self, layer: usize, tokens: u64) {
        self.processed[layer] += tokens;
    }

    /// Tokens lost so far in a layer.
    pub fn lost(&self, layer: usize) -> u64 {
        self.lost[layer]
    }

    /// Tokens processed so far in a layer.
    pub fn processed(&self, layer: usize) -> u64 {
        self.processed[layer]
    }

    /// The PLT of Eq. 7: mean over layers of `lost / processed`.
    /// Layers that processed no tokens contribute zero.
    pub fn plt(&self) -> f64 {
        if self.lost.is_empty() {
            return 0.0;
        }
        let sum: f64 = self
            .lost
            .iter()
            .zip(&self.processed)
            .map(|(&l, &p)| if p == 0 { 0.0 } else { l as f64 / p as f64 })
            .sum();
        sum / self.lost.len() as f64
    }
}

/// Closed-form expected PLT under balanced expert loads and sequential
/// selection, storage-only recovery.
///
/// With `K` of `N` experts saved per checkpoint, expert staleness ages at a
/// fault are `{0, I, 2I, …, (⌈N/K⌉−1)·I}` iterations, `K` experts per age
/// bucket. Each expert absorbs `1/N` of a layer's tokens, so one fault
/// loses `I_ckpt · (N/K − 1)/2` iterations' worth of layer tokens:
///
/// `PLT ≈ N_fault · I_ckpt · (N/K − 1) / (2 · I_total)`.
pub fn analytic_plt(
    k: usize,
    num_experts: usize,
    i_ckpt: u64,
    total_iterations: u64,
    num_faults: u64,
) -> f64 {
    assert!(k >= 1 && k <= num_experts, "invalid k");
    assert!(total_iterations > 0, "need a training horizon");
    let buckets = num_experts as f64 / k as f64;
    num_faults as f64 * i_ckpt as f64 * (buckets - 1.0) / (2.0 * total_iterations as f64)
}

/// Configuration of an event-accurate PLT simulation.
#[derive(Debug, Clone)]
pub struct PltSimulation {
    /// Token-load generator (defines layers, experts, tokens/iteration).
    pub load: LoadModel,
    /// Snapshot-level PEC (`K_snapshot` selection).
    pub snapshot_pec: PecConfig,
    /// Experts persisted per layer per checkpoint (`K_persist ≤ K_snapshot`);
    /// persist-PEC takes the first `K_persist` of the snapshot selection.
    pub k_persist: usize,
    /// Iterations between checkpoints (`I_ckpt`).
    pub i_ckpt: u64,
    /// Training horizon in iterations (`I_total`).
    pub total_iterations: u64,
    /// Fault schedule.
    pub faults: Vec<FaultEvent>,
    /// Whether healthy nodes recover experts from in-memory snapshots
    /// (two-level recovery, Section 5.1) instead of persistent storage.
    pub two_level_recovery: bool,
    /// Cluster layout mapping experts to nodes.
    pub topology: ParallelTopology,
}

/// Result of a PLT simulation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PltReport {
    /// Final PLT (Eq. 7).
    pub plt: f64,
    /// PLT contribution of each fault, in schedule order.
    pub per_fault: Vec<f64>,
    /// Total tokens lost across layers and faults.
    pub total_lost_tokens: u64,
    /// Total tokens processed (summed over layers).
    pub total_processed_tokens: u64,
}

impl PltSimulation {
    /// Runs the simulation and reports PLT.
    ///
    /// Checkpoints fire after iterations `I_ckpt, 2·I_ckpt, …`; a fault at
    /// iteration `f` rolls training back to the latest completed
    /// checkpoint `r ≤ f`. Each expert is restored from the freshest
    /// available source — in-memory snapshot if two-level recovery is on
    /// and every node holding a slice of that expert's snapshot is
    /// healthy, otherwise persistent storage — and the tokens it was
    /// routed between its restored version and `r` are counted as lost.
    ///
    /// # Panics
    ///
    /// Panics if the load model and PEC configuration disagree on layer or
    /// expert counts, or `k_persist` exceeds the snapshot `K`.
    pub fn run(&self) -> PltReport {
        let layers = self.load.num_layers();
        let n = self.load.num_experts();
        assert_eq!(self.snapshot_pec.num_moe_layers, layers, "layer arity");
        assert_eq!(self.snapshot_pec.num_experts, n, "expert arity");
        assert!(
            self.k_persist >= 1 && self.k_persist <= self.snapshot_pec.k,
            "k_persist must be in 1..=k_snapshot"
        );
        assert!(self.i_ckpt >= 1, "checkpoint interval must be positive");

        let mut acc = PltAccumulator::new(layers);
        // Last iteration whose state each source holds, per expert.
        let mut snap_ver = vec![vec![0u64; n]; layers];
        let mut persist_ver = vec![vec![0u64; n]; layers];
        // Whether the snapshot of (layer, expert) is still in some node's
        // memory (false right after its host node faulted).
        let mut snap_alive = vec![vec![true; n]; layers];

        let mut faults = self.faults.clone();
        faults.sort_by_key(|f| f.iteration);
        let mut fault_idx = 0;
        let mut per_fault = Vec::with_capacity(faults.len());
        let mut last_ckpt_iter = 0u64;

        for it in 1..=self.total_iterations {
            // Route this iteration's tokens.
            for layer in 0..layers {
                let loads = self.load.loads(it - 1, layer);
                let total: u64 = loads.iter().sum();
                acc.record_processed(layer, total);
            }

            // Checkpoint at the end of every I_ckpt-th iteration.
            if it % self.i_ckpt == 0 {
                let ckpt_index = it / self.i_ckpt - 1;
                for id in self.snapshot_pec.select(ckpt_index) {
                    snap_ver[id.layer][id.expert] = it;
                    snap_alive[id.layer][id.expert] = true;
                }
                // persist-PEC rotates independently of the snapshot
                // window, persisting each selected expert's *latest
                // in-memory snapshot* (which the CPU tier still holds
                // from earlier checkpoints) — Section 5.1.
                let persist_sel =
                    PecConfig::sequential(self.k_persist, n, layers).select(ckpt_index);
                for id in persist_sel {
                    if snap_alive[id.layer][id.expert] {
                        persist_ver[id.layer][id.expert] =
                            persist_ver[id.layer][id.expert].max(snap_ver[id.layer][id.expert]);
                    }
                }
                last_ckpt_iter = it;
            }

            // Fault?
            while fault_idx < faults.len() && faults[fault_idx].iteration == it {
                let fault = faults[fault_idx];
                fault_idx += 1;
                let r = last_ckpt_iter;
                let mut fault_plt_sum = 0.0;
                for layer in 0..layers {
                    let mut lost_layer = 0u64;
                    for expert in 0..n {
                        let memory_ok = self.two_level_recovery
                            && snap_alive[layer][expert]
                            && self.expert_memory_survives(expert, n, fault.node);
                        let restored = if memory_ok {
                            snap_ver[layer][expert]
                        } else {
                            persist_ver[layer][expert]
                        };
                        // Tokens routed in (restored, r] are lost.
                        for past in restored..r {
                            lost_layer += self.load.loads(past, layer)[expert];
                        }
                        // Memory of experts on the dead node is gone until
                        // their next snapshot.
                        if !self.expert_memory_survives(expert, n, fault.node) {
                            snap_alive[layer][expert] = false;
                            snap_ver[layer][expert] = persist_ver[layer][expert];
                        } else if !memory_ok {
                            // Storage-only recovery rewinds even healthy
                            // snapshots' logical state.
                            snap_ver[layer][expert] =
                                snap_ver[layer][expert].min(persist_ver[layer][expert]);
                        }
                    }
                    acc.record_loss(layer, lost_layer);
                    let denom = acc.processed(layer);
                    if denom > 0 {
                        fault_plt_sum += lost_layer as f64 / denom as f64;
                    }
                }
                per_fault.push(fault_plt_sum / layers as f64);
            }
        }

        PltReport {
            plt: acc.plt(),
            per_fault,
            total_lost_tokens: acc.lost.iter().sum(),
            total_processed_tokens: acc.processed.iter().sum(),
        }
    }

    /// Whether every node holding a snapshot slice of `expert` survives a
    /// fault of `dead_node` (expert snapshots are sharded over its replica
    /// ranks, one per EP group).
    fn expert_memory_survives(&self, expert: usize, n: usize, dead_node: usize) -> bool {
        self.topology
            .ranks_hosting_expert(expert, n)
            .into_iter()
            .all(|r| self.topology.node_of(r) != dead_node)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use moc_moe::LoadProfile;

    fn sim(k: usize, i_ckpt: u64, total: u64, faults: Vec<FaultEvent>) -> PltSimulation {
        PltSimulation {
            load: LoadModel::new(2, 8, 800, 1, LoadProfile::Balanced, 0),
            snapshot_pec: PecConfig::sequential(k, 8, 2),
            k_persist: k,
            i_ckpt,
            total_iterations: total,
            faults,
            two_level_recovery: false,
            topology: ParallelTopology::case1(),
        }
    }

    #[test]
    fn accumulator_plt_is_mean_over_layers() {
        let mut acc = PltAccumulator::new(2);
        acc.record_processed(0, 1000);
        acc.record_processed(1, 1000);
        acc.record_loss(0, 100);
        // layer 1 lost nothing.
        assert!((acc.plt() - 0.05).abs() < 1e-12);
    }

    #[test]
    fn accumulator_empty_is_zero() {
        assert_eq!(PltAccumulator::new(0).plt(), 0.0);
        assert_eq!(PltAccumulator::new(3).plt(), 0.0);
    }

    #[test]
    fn no_faults_no_plt() {
        let report = sim(1, 8, 128, vec![]).run();
        assert_eq!(report.plt, 0.0);
        assert_eq!(report.total_lost_tokens, 0);
        assert_eq!(report.total_processed_tokens, 2 * 128 * 800);
    }

    #[test]
    fn full_checkpointing_loses_nothing() {
        let faults = vec![FaultEvent {
            iteration: 64,
            node: 0,
        }];
        let report = sim(8, 8, 128, faults).run();
        assert_eq!(report.plt, 0.0);
    }

    #[test]
    fn pec_loses_tokens_on_fault() {
        let faults = vec![FaultEvent {
            iteration: 64,
            node: 0,
        }];
        let report = sim(1, 8, 128, faults).run();
        assert!(report.plt > 0.0);
        assert_eq!(report.per_fault.len(), 1);
    }

    #[test]
    fn smaller_k_and_larger_interval_increase_plt() {
        // The Fig. 5(a) monotonicity: PLT grows as K shrinks or I_ckpt grows.
        let fault = vec![FaultEvent {
            iteration: 512,
            node: 0,
        }];
        let p_k1 = sim(1, 16, 1024, fault.clone()).run().plt;
        let p_k2 = sim(2, 16, 1024, fault.clone()).run().plt;
        let p_k4 = sim(4, 16, 1024, fault.clone()).run().plt;
        assert!(p_k1 > p_k2 && p_k2 > p_k4, "{p_k1} {p_k2} {p_k4}");
        let p_i8 = sim(2, 8, 1024, fault.clone()).run().plt;
        let p_i32 = sim(2, 32, 1024, fault).run().plt;
        assert!(p_i32 > p_i8, "{p_i32} vs {p_i8}");
    }

    #[test]
    fn simulation_matches_analytic_model() {
        // Balanced loads + sequential selection + fault right after a
        // checkpoint: the simulation should land near the closed form.
        for (k, i_ckpt) in [(1, 16u64), (2, 16), (4, 8)] {
            let total = 1024;
            let faults = vec![FaultEvent {
                iteration: 512,
                node: 0,
            }];
            let measured = sim(k, i_ckpt, total, faults).run().plt;
            let expected = analytic_plt(k, 8, i_ckpt, total, 1);
            let tol = expected * 0.35 + 1e-4;
            assert!(
                (measured - expected).abs() < tol,
                "k={k} I={i_ckpt}: measured {measured}, analytic {expected}"
            );
        }
    }

    #[test]
    fn two_level_recovery_reduces_plt() {
        // K_snapshot = 4, K_persist = 1 (the Fig. 15(a) setting): memory
        // recovery on healthy nodes must beat storage-only recovery.
        let faults = vec![FaultEvent {
            iteration: 512,
            node: 0,
        }];
        let base = PltSimulation {
            load: LoadModel::new(2, 16, 800, 1, LoadProfile::Balanced, 0),
            snapshot_pec: PecConfig::sequential(4, 16, 2),
            k_persist: 1,
            i_ckpt: 16,
            total_iterations: 1024,
            faults,
            two_level_recovery: false,
            topology: ParallelTopology::case2(),
        };
        let storage_only = base.run().plt;
        let two_level = PltSimulation {
            two_level_recovery: true,
            ..base
        }
        .run()
        .plt;
        assert!(
            two_level < storage_only,
            "two-level {two_level} should beat storage {storage_only}"
        );
        assert!(two_level > 0.0, "node-0 experts still lose updates");
    }

    #[test]
    fn analytic_plt_zero_for_full_saving() {
        assert_eq!(analytic_plt(8, 8, 32, 1000, 5), 0.0);
    }

    #[test]
    fn analytic_plt_matches_fig5_scale() {
        // Fig. 5(a) centre cell: K=2, I_ckpt=32 on an 8-expert model with a
        // single midpoint fault gives PLT = 3.75% at I_total = 1280.
        let plt = analytic_plt(2, 8, 32, 1280, 1);
        assert!((plt - 0.0375).abs() < 1e-12, "plt {plt}");
    }

    #[test]
    fn plt_accumulates_over_faults() {
        let one = sim(
            1,
            16,
            1024,
            vec![FaultEvent {
                iteration: 256,
                node: 0,
            }],
        )
        .run()
        .plt;
        let two = sim(
            1,
            16,
            1024,
            vec![
                FaultEvent {
                    iteration: 256,
                    node: 0,
                },
                FaultEvent {
                    iteration: 768,
                    node: 0,
                },
            ],
        )
        .run()
        .plt;
        assert!(two > one * 1.5, "two faults {two} vs one {one}");
    }
}
