//! Failure-domain-aware expert placement types.
//!
//! Lazarus-style elastic recovery treats every expert as an individually
//! placeable unit: a [`PlacementPlan`] assigns each expert of each MoE
//! layer to one *owning* shard group (a DP index, whose `tp · pp` ranks
//! jointly hold the expert's checkpoint duties) plus zero or more
//! *replica* groups chosen on distinct failure domains (physical nodes,
//! via [`ParallelTopology::node_of_global`]). When a node dies, ownership
//! migrates to the expert's first surviving replica — or, when every
//! replica died, to a deterministic surviving fallback — so checkpoint
//! selection and recovery keep following the experts through shrink and
//! expand without a respawn.
//!
//! This module holds the *types* (plan, errors, failure-domain queries);
//! the planner that constructs balanced, domain-spread plans and the
//! shrink/expand rebalance protocol live in the `moc-elastic` crate.

use crate::topology::ParallelTopology;
use moc_moe::ExpertId;
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;
use std::fmt;

/// Error constructing or rebalancing a placement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlacementError {
    /// The replication factor was zero.
    ZeroReplication,
    /// The cluster has fewer failure domains than the requested
    /// replication factor: no plan can spread `replication` replicas of
    /// an expert over distinct domains.
    ReplicationExceedsDomains {
        /// Requested replicas per expert.
        replication: usize,
        /// Distinct failure domains (nodes hosting shard-group leaders).
        domains: usize,
    },
    /// A replica list referenced a shard group outside the topology.
    GroupOutOfRange {
        /// Offending group index.
        group: usize,
        /// Shard groups in the topology.
        groups: usize,
    },
    /// An expert had no replica at all.
    EmptyReplicaList {
        /// The expert without replicas.
        expert: ExpertId,
    },
    /// A shrink was asked for with no surviving shard group.
    NoSurvivors,
}

impl fmt::Display for PlacementError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlacementError::ZeroReplication => {
                write!(f, "replication factor must be at least 1")
            }
            PlacementError::ReplicationExceedsDomains {
                replication,
                domains,
            } => write!(
                f,
                "replication factor {replication} cannot be hosted by {domains} failure domains"
            ),
            PlacementError::GroupOutOfRange { group, groups } => {
                write!(
                    f,
                    "shard group {group} outside topology with {groups} groups"
                )
            }
            PlacementError::EmptyReplicaList { expert } => {
                write!(f, "expert {expert:?} has no replica group")
            }
            PlacementError::NoSurvivors => {
                write!(f, "cannot shrink: no shard group survives")
            }
        }
    }
}

impl std::error::Error for PlacementError {}

/// The failure domain (physical node) of a shard group: the node hosting
/// the group's leader rank (its `tp = pp = 0` member). Groups whose
/// `tp · pp` ranks span several nodes are charged to their leader's node
/// — a node death drags the whole group through recovery anyway, so the
/// leader's domain is the one that matters for replica spreading.
pub fn domain_of_group(topo: &ParallelTopology, group: usize) -> usize {
    assert!(group < topo.num_shard_groups(), "shard group out of range");
    topo.node_of_global(group * topo.tp() * topo.pp())
}

/// Number of distinct failure domains: how many nodes host at least one
/// shard-group leader. This bounds the replication factor a placement
/// can satisfy.
pub fn num_failure_domains(topo: &ParallelTopology) -> usize {
    let domains: BTreeSet<usize> = (0..topo.num_shard_groups())
        .map(|g| domain_of_group(topo, g))
        .collect();
    domains.len()
}

/// A deterministic expert → shard-group placement with replicas.
///
/// `replicas[i]` (indexed by `layer · num_experts + expert`) lists the
/// shard groups hosting the expert's checkpoint duties, the original
/// primary first; `owner[i]` is the group *currently* owning the expert
/// — equal to `replicas[i][0]` until a shrink migrates it.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PlacementPlan {
    replication: usize,
    num_groups: usize,
    num_experts: usize,
    num_moe_layers: usize,
    replicas: Vec<Vec<usize>>,
    owner: Vec<usize>,
}

impl PlacementPlan {
    /// Builds a plan from explicit replica lists (`replicas[layer][e]`
    /// flattened as `layer · num_experts + e`). The first replica of each
    /// expert becomes its owner.
    ///
    /// # Errors
    ///
    /// Returns [`PlacementError`] for empty replica lists or groups
    /// outside `0..num_groups`.
    pub fn from_replicas(
        replication: usize,
        num_groups: usize,
        num_experts: usize,
        num_moe_layers: usize,
        replicas: Vec<Vec<usize>>,
    ) -> Result<Self, PlacementError> {
        assert_eq!(
            replicas.len(),
            num_experts * num_moe_layers,
            "one replica list per expert"
        );
        let mut owner = Vec::with_capacity(replicas.len());
        for (i, list) in replicas.iter().enumerate() {
            let expert = ExpertId::new(i / num_experts.max(1), i % num_experts.max(1));
            let Some(&first) = list.first() else {
                return Err(PlacementError::EmptyReplicaList { expert });
            };
            for &g in list {
                if g >= num_groups {
                    return Err(PlacementError::GroupOutOfRange {
                        group: g,
                        groups: num_groups,
                    });
                }
            }
            owner.push(first);
        }
        Ok(Self {
            replication,
            num_groups,
            num_experts,
            num_moe_layers,
            replicas,
            owner,
        })
    }

    /// The replication factor the plan was built for.
    pub fn replication(&self) -> usize {
        self.replication
    }

    /// Shard groups in the world the plan was built for.
    pub fn num_groups(&self) -> usize {
        self.num_groups
    }

    /// Experts per MoE layer.
    pub fn num_experts(&self) -> usize {
        self.num_experts
    }

    /// MoE layers covered.
    pub fn num_moe_layers(&self) -> usize {
        self.num_moe_layers
    }

    fn index(&self, id: ExpertId) -> usize {
        assert!(
            id.layer < self.num_moe_layers && id.expert < self.num_experts,
            "expert {id:?} outside placement"
        );
        id.layer * self.num_experts + id.expert
    }

    /// The replica groups of an expert, original primary first.
    pub fn replicas_of(&self, id: ExpertId) -> &[usize] {
        &self.replicas[self.index(id)]
    }

    /// The shard group currently owning an expert's checkpoint duties.
    pub fn owner_of(&self, id: ExpertId) -> usize {
        self.owner[self.index(id)]
    }

    /// The expert's original (pre-migration) owner.
    pub fn primary_of(&self, id: ExpertId) -> usize {
        self.replicas[self.index(id)][0]
    }

    /// Whether the expert currently lives away from its original primary.
    pub fn is_migrated(&self, id: ExpertId) -> bool {
        self.owner_of(id) != self.primary_of(id)
    }

    /// Every expert currently owned by `group`, in `(layer, expert)`
    /// order.
    pub fn experts_owned_by(&self, group: usize) -> Vec<ExpertId> {
        (0..self.num_moe_layers)
            .flat_map(|layer| (0..self.num_experts).map(move |e| ExpertId::new(layer, e)))
            .filter(|&id| self.owner_of(id) == group)
            .collect()
    }

    /// Current owner load per group: how many experts each group owns.
    pub fn owner_loads(&self) -> Vec<usize> {
        let mut loads = vec![0usize; self.num_groups];
        for &o in &self.owner {
            loads[o] += 1;
        }
        loads
    }

    /// Original primary load per group.
    pub fn primary_loads(&self) -> Vec<usize> {
        let mut loads = vec![0usize; self.num_groups];
        for list in &self.replicas {
            loads[list[0]] += 1;
        }
        loads
    }

    /// Experts whose current owner differs from their original primary.
    pub fn migrated_count(&self) -> usize {
        (0..self.owner.len())
            .filter(|&i| self.owner[i] != self.replicas[i][0])
            .count()
    }

    /// All expert ids the plan covers, `(layer, expert)` ascending.
    pub fn all_experts(&self) -> impl Iterator<Item = ExpertId> + '_ {
        (0..self.num_moe_layers)
            .flat_map(move |layer| (0..self.num_experts).map(move |e| ExpertId::new(layer, e)))
    }

    /// Re-keys ownership after `dead` groups were lost: every expert
    /// owned by a dead group migrates to its first surviving replica, or
    /// — when every replica died — to the surviving group given by
    /// `fallback(expert)`. Returns the migrated plan and how many experts
    /// moved.
    ///
    /// # Errors
    ///
    /// [`PlacementError::NoSurvivors`] when `dead` covers every group.
    pub fn migrated(
        &self,
        dead: &BTreeSet<usize>,
        mut fallback: impl FnMut(ExpertId) -> usize,
    ) -> Result<(Self, usize), PlacementError> {
        if (0..self.num_groups).all(|g| dead.contains(&g)) {
            return Err(PlacementError::NoSurvivors);
        }
        let mut plan = self.clone();
        let mut moved = 0usize;
        for id in self.all_experts() {
            let i = self.index(id);
            if !dead.contains(&plan.owner[i]) {
                continue;
            }
            let target = plan.replicas[i]
                .iter()
                .copied()
                .find(|g| !dead.contains(g))
                .unwrap_or_else(|| fallback(id));
            assert!(
                !dead.contains(&target) && target < self.num_groups,
                "fallback must name a surviving group"
            );
            plan.owner[i] = target;
            moved += 1;
        }
        Ok((plan, moved))
    }

    /// Restores ownership to the original primary for every expert whose
    /// primary is in `returning` (the expand half of the protocol).
    /// Returns the plan and how many experts moved home.
    pub fn restored(&self, returning: &BTreeSet<usize>) -> (Self, usize) {
        let mut plan = self.clone();
        let mut moved = 0usize;
        for id in self.all_experts() {
            let i = self.index(id);
            let home = plan.replicas[i][0];
            if plan.owner[i] != home && returning.contains(&home) {
                plan.owner[i] = home;
                moved += 1;
            }
        }
        (plan, moved)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plan() -> PlacementPlan {
        // 2 layers × 2 experts over 4 groups, replication 2.
        PlacementPlan::from_replicas(
            2,
            4,
            2,
            2,
            vec![vec![0, 2], vec![1, 3], vec![2, 0], vec![3, 1]],
        )
        .unwrap()
    }

    #[test]
    fn owner_starts_at_primary() {
        let p = plan();
        for id in p.all_experts() {
            assert_eq!(p.owner_of(id), p.primary_of(id));
            assert!(!p.is_migrated(id));
        }
        assert_eq!(p.migrated_count(), 0);
        assert_eq!(p.owner_loads(), vec![1, 1, 1, 1]);
    }

    #[test]
    fn migration_prefers_surviving_replica() {
        let p = plan();
        let dead: BTreeSet<usize> = [0].into_iter().collect();
        let (m, moved) = p.migrated(&dead, |_| 1).unwrap();
        // Expert (0,0) lived on 0 with replica 2: it migrates there.
        assert_eq!(m.owner_of(ExpertId::new(0, 0)), 2);
        assert!(m.is_migrated(ExpertId::new(0, 0)));
        assert_eq!(moved, 1);
        assert_eq!(m.migrated_count(), 1);
    }

    #[test]
    fn migration_falls_back_when_all_replicas_dead() {
        let p = plan();
        let dead: BTreeSet<usize> = [0, 2].into_iter().collect();
        let (m, moved) = p.migrated(&dead, |_| 3).unwrap();
        assert_eq!(m.owner_of(ExpertId::new(0, 0)), 3, "both replicas dead");
        assert_eq!(m.owner_of(ExpertId::new(1, 0)), 3, "replica 0 dead too");
        assert_eq!(moved, 2);
    }

    #[test]
    fn restore_returns_experts_home() {
        let p = plan();
        let dead: BTreeSet<usize> = [0].into_iter().collect();
        let (m, _) = p.migrated(&dead, |_| 1).unwrap();
        let returning: BTreeSet<usize> = [0].into_iter().collect();
        let (r, moved) = m.restored(&returning);
        assert_eq!(moved, 1);
        assert_eq!(r, p, "full expand restores the original plan");
    }

    #[test]
    fn no_survivors_rejected() {
        let p = plan();
        let dead: BTreeSet<usize> = (0..4).collect();
        assert_eq!(p.migrated(&dead, |_| 0), Err(PlacementError::NoSurvivors));
    }

    #[test]
    fn bad_replica_lists_rejected() {
        let err = PlacementPlan::from_replicas(1, 2, 1, 1, vec![vec![5]]);
        assert_eq!(
            err,
            Err(PlacementError::GroupOutOfRange {
                group: 5,
                groups: 2
            })
        );
        let err = PlacementPlan::from_replicas(1, 2, 1, 1, vec![vec![]]);
        assert!(matches!(err, Err(PlacementError::EmptyReplicaList { .. })));
    }

    #[test]
    fn failure_domains_follow_group_leaders() {
        let t = ParallelTopology::dp_ep(2, 4, 8, 8).unwrap();
        assert_eq!(num_failure_domains(&t), 2);
        assert_eq!(domain_of_group(&t, 0), 0);
        assert_eq!(domain_of_group(&t, 4), 1);
        // tp·pp spans half a node: leaders land on every node.
        let g = ParallelTopology::new(2, 4, 2, 2, 2, 2).unwrap();
        assert_eq!(num_failure_domains(&g), 2);
        assert_eq!(domain_of_group(&g, 0), 0);
        assert_eq!(domain_of_group(&g, 1), 1);
    }
}
