//! # moc-core — the Mixture-of-Checkpoint System
//!
//! The paper's primary contribution, reproduced as a library:
//!
//! * [`selection`] — Partial Experts Checkpointing (PEC) with sequential
//!   and load-aware expert selection (Section 3);
//! * [`plt`] — the Proportion of Lost Tokens metric, analytic and
//!   event-accurate (Eq. 7, Fig. 5);
//! * [`dynamic_k`] — the Dynamic-K controller bounding PLT under fault
//!   accumulation (Section 5.3, Fig. 15(b));
//! * [`topology`] — ZeRO-2 DP + EP layouts (Table 2);
//! * [`placement`] — failure-domain-aware expert placement plans, the
//!   substrate of `moc-elastic`'s shrink/expand recovery;
//! * [`sharding`] — baseline / equal-expert / equal / adaptive non-expert
//!   checkpoint sharding with bottleneck-rank analysis (Section 4, Fig. 10);
//! * [`twolevel`] — triple-buffered asynchronous snapshot/persist agents
//!   and the integrated [`CheckpointEngine`] (Section 5, Fig. 8–9);
//! * [`recovery`] — two-level recovery planning (Fig. 8);
//! * [`overhead`] — the closed-form overhead model and adaptive
//!   configuration (Eqs. 3–16).
//!
//! # Examples
//!
//! ```
//! use moc_core::selection::PecConfig;
//!
//! // Fig. 4: 4 MoE layers, 3 experts, K_pec = 1 — rotating interleave.
//! let pec = PecConfig::sequential(1, 3, 4);
//! let first: Vec<usize> = pec.select(0).iter().map(|e| e.expert).collect();
//! assert_eq!(first, vec![0, 1, 2, 0]);
//! ```

#![warn(missing_docs)]

pub mod dynamic_k;
pub mod manifest;
pub mod overhead;
pub mod placement;
pub mod plt;
pub mod recovery;
pub mod selection;
pub mod sharding;
pub mod topology;
pub mod twolevel;

pub use dynamic_k::DynamicK;
pub use manifest::Manifest;
pub use overhead::{AdaptivePecChoice, AdaptivePecInputs, OverheadInputs};
pub use placement::{domain_of_group, num_failure_domains, PlacementError, PlacementPlan};
pub use plt::{analytic_plt, PltAccumulator, PltReport, PltSimulation};
pub use recovery::{RecoveryAction, RecoveryError, RecoveryPlan, RecoverySource};
pub use selection::{PecConfig, SelectionStrategy};
pub use sharding::{
    base_module, expert_module_name, CheckpointWorkload, PlanError, RankWorkload, SaveItem,
    ShardingPlanner, ShardingStrategy,
};
pub use topology::{ParallelTopology, RankCoord, TopologyError};
pub use twolevel::{CheckpointEngine, EngineConfig, StateSource, SyntheticState, TripleBuffer};
