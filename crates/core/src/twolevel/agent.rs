//! Per-node asynchronous checkpoint agents — Section 5.2.
//!
//! "We develop an agent at each node to facilitate the two-level
//! checkpointing management through a triple-buffer mechanism." A
//! [`NodeAgent`] owns two worker threads: a *snapshot* worker that copies
//! shard payloads into the node's CPU-memory store, and a *persist* worker
//! that writes the persist subset to the shared object store. The
//! [`TripleBuffer`] state machine gates admission: when all three buffers
//! are busy, `submit` reports a stall, mirroring the checkpoint stall "S"
//! of Fig. 3.

use crate::twolevel::buffers::{BufferError, SnapshotOutcome, TripleBuffer};
use bytes::Bytes;
use crossbeam::channel::{unbounded, Receiver, Sender};
use moc_store::{NodeId, NodeMemoryStore, ObjectStore, ShardKey};
use parking_lot::{Condvar, Mutex};
use std::sync::Arc;
use std::thread::JoinHandle;

/// One shard to checkpoint: its key, payload, and whether the persist
/// level should also write it (persist-PEC subset membership).
#[derive(Debug, Clone)]
pub struct ShardJob {
    /// Key the shard is stored under (version = checkpoint iteration).
    pub key: ShardKey,
    /// Payload bytes (already serialized model state).
    pub payload: Bytes,
    /// Whether persist-PEC persists this shard to storage.
    pub persist: bool,
}

/// A full checkpoint job for one node.
#[derive(Debug, Clone)]
pub struct CheckpointJob {
    /// Checkpoint version (training iteration).
    pub version: u64,
    /// Shards to snapshot (and optionally persist).
    pub shards: Vec<ShardJob>,
}

#[derive(Debug, Default)]
struct AgentProgress {
    snapshots_done: u64,
    persists_done: u64,
    snapshot_bytes: u64,
    persist_bytes: u64,
    errors: Vec<String>,
}

/// Counters describing an agent's completed work.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct AgentStats {
    /// Snapshot jobs completed.
    pub snapshots_done: u64,
    /// Persist jobs completed.
    pub persists_done: u64,
    /// Bytes copied into CPU memory.
    pub snapshot_bytes: u64,
    /// Bytes written to persistent storage.
    pub persist_bytes: u64,
    /// Errors encountered by workers (store failures).
    pub errors: Vec<String>,
}

struct Inner {
    buffers: Mutex<TripleBuffer>,
    progress: Mutex<AgentProgress>,
    /// Signalled when `pending` drops (waits pair with the `pending` mutex).
    idle: Condvar,
    /// Signalled when a buffer frees up (waits pair with `buffers`).
    buffer_freed: Condvar,
    pending: Mutex<usize>,
}

/// Asynchronous two-level checkpoint agent of one node.
pub struct NodeAgent {
    node: NodeId,
    inner: Arc<Inner>,
    snapshot_tx: Option<Sender<CheckpointJob>>,
    snapshot_worker: Option<JoinHandle<()>>,
    persist_worker: Option<JoinHandle<()>>,
}

impl std::fmt::Debug for NodeAgent {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NodeAgent")
            .field("node", &self.node)
            .finish()
    }
}

impl NodeAgent {
    /// Spawns the agent's workers for `node`, snapshotting into `memory`
    /// and persisting into `store`.
    pub fn spawn(node: NodeId, memory: Arc<NodeMemoryStore>, store: Arc<dyn ObjectStore>) -> Self {
        let inner = Arc::new(Inner {
            buffers: Mutex::new(TripleBuffer::new()),
            progress: Mutex::new(AgentProgress::default()),
            idle: Condvar::new(),
            buffer_freed: Condvar::new(),
            pending: Mutex::new(0),
        });
        let (snapshot_tx, snapshot_rx) = unbounded::<CheckpointJob>();
        let (persist_tx, persist_rx) = unbounded::<(u64, Vec<ShardJob>)>();

        let snap_inner = inner.clone();
        let snap_mem = memory;
        let snapshot_worker = std::thread::Builder::new()
            .name(format!("moc-snapshot-{node}"))
            .spawn(move || snapshot_loop(snapshot_rx, persist_tx, snap_inner, snap_mem))
            .expect("spawn snapshot worker");

        let persist_inner = inner.clone();
        let persist_worker = std::thread::Builder::new()
            .name(format!("moc-persist-{node}"))
            .spawn(move || persist_loop(persist_rx, persist_inner, store))
            .expect("spawn persist worker");

        Self {
            node,
            inner,
            snapshot_tx: Some(snapshot_tx),
            snapshot_worker: Some(snapshot_worker),
            persist_worker: Some(persist_worker),
        }
    }

    /// The node this agent serves.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// Submits an asynchronous checkpoint job.
    ///
    /// Returns `Ok(stalled)` where `stalled` is `true` if the submission
    /// had to wait for a free buffer (a checkpoint stall).
    ///
    /// # Errors
    ///
    /// Returns [`BufferError`] only on internal state-machine violations
    /// (never under correct usage).
    pub fn submit(&self, job: CheckpointJob) -> Result<bool, BufferError> {
        let mut stalled = false;
        {
            let mut buffers = self.inner.buffers.lock();
            while !buffers.can_begin_snapshot() {
                stalled = true;
                // Wait for the persist worker to release a buffer.
                self.inner
                    .buffer_freed
                    .wait_for(&mut buffers, std::time::Duration::from_millis(1));
            }
            buffers.begin_snapshot(job.version)?;
        }
        *self.inner.pending.lock() += 1;
        self.snapshot_tx
            .as_ref()
            .expect("agent not shut down")
            .send(job)
            .expect("snapshot worker alive");
        Ok(stalled)
    }

    /// Blocks until all submitted jobs (snapshot + persist) have finished.
    pub fn wait_idle(&self) {
        let mut pending = self.inner.pending.lock();
        while *pending > 0 {
            self.inner.idle.wait(&mut pending);
        }
    }

    /// Work counters so far.
    pub fn stats(&self) -> AgentStats {
        let p = self.inner.progress.lock();
        AgentStats {
            snapshots_done: p.snapshots_done,
            persists_done: p.persists_done,
            snapshot_bytes: p.snapshot_bytes,
            persist_bytes: p.persist_bytes,
            errors: p.errors.clone(),
        }
    }

    /// The version held by the recovery buffer, if a persist completed.
    pub fn recovery_version(&self) -> Option<u64> {
        let buffers = self.inner.buffers.lock();
        buffers.recovery_buffer().map(|b| buffers.version(b))
    }

    /// Shuts the workers down, waiting for queued jobs to drain.
    pub fn shutdown(mut self) -> AgentStats {
        self.shutdown_in_place();
        self.stats()
    }

    fn shutdown_in_place(&mut self) {
        drop(self.snapshot_tx.take());
        if let Some(h) = self.snapshot_worker.take() {
            let _ = h.join();
        }
        if let Some(h) = self.persist_worker.take() {
            let _ = h.join();
        }
    }
}

impl Drop for NodeAgent {
    fn drop(&mut self) {
        self.shutdown_in_place();
    }
}

fn snapshot_loop(
    rx: Receiver<CheckpointJob>,
    persist_tx: Sender<(u64, Vec<ShardJob>)>,
    inner: Arc<Inner>,
    memory: Arc<NodeMemoryStore>,
) {
    while let Ok(job) = rx.recv() {
        let mut bytes = 0u64;
        for shard in &job.shards {
            memory.put(&shard.key, shard.payload.clone());
            bytes += shard.payload.len() as u64;
        }
        let persist_shards: Vec<ShardJob> = job.shards.into_iter().filter(|s| s.persist).collect();

        {
            let mut buffers = inner.buffers.lock();
            // Find this job's buffer: the one snapshotting at this version.
            let id = (0..3)
                .map(crate::twolevel::buffers::BufferId)
                .find(|&b| {
                    buffers.state(b) == crate::twolevel::buffers::BufferState::Snapshotting
                        && buffers.version(b) == job.version
                })
                .expect("buffer claimed at submit");
            // Either starts persisting immediately or queues in Ready;
            // the single persist worker drains versions in order, so its
            // buffer is guaranteed Persisting by the time it is handled.
            let _outcome: SnapshotOutcome = buffers.finish_snapshot(id).expect("valid transition");
        }
        {
            let mut p = inner.progress.lock();
            p.snapshots_done += 1;
            p.snapshot_bytes += bytes;
        }
        persist_tx
            .send((job.version, persist_shards))
            .expect("persist worker alive");
    }
}

fn persist_loop(
    rx: Receiver<(u64, Vec<ShardJob>)>,
    inner: Arc<Inner>,
    store: Arc<dyn ObjectStore>,
) {
    while let Ok((version, shards)) = rx.recv() {
        let mut bytes = 0u64;
        for shard in &shards {
            match store.put(&shard.key, shard.payload.clone()) {
                Ok(()) => bytes += shard.payload.len() as u64,
                Err(e) => inner.progress.lock().errors.push(e.to_string()),
            }
        }
        {
            let mut buffers = inner.buffers.lock();
            // Versions drain through the single persist worker in order,
            // so this version's buffer is the one Persisting right now
            // (promoted either by its own finish_snapshot or by the
            // previous finish_persist).
            let id = (0..3)
                .map(crate::twolevel::buffers::BufferId)
                .find(|&b| {
                    buffers.version(b) == version
                        && buffers.state(b) == crate::twolevel::buffers::BufferState::Persisting
                })
                .expect("persisting buffer for drained version");
            buffers.finish_persist(id).expect("valid transition");
            inner.buffer_freed.notify_all();
        }
        {
            let mut p = inner.progress.lock();
            p.persists_done += 1;
            p.persist_bytes += bytes;
        }
        {
            let mut pending = inner.pending.lock();
            *pending = pending.saturating_sub(1);
        }
        inner.idle.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use moc_store::{MemoryObjectStore, StatePart};

    fn job(version: u64, n_shards: usize, persist_every: usize) -> CheckpointJob {
        CheckpointJob {
            version,
            shards: (0..n_shards)
                .map(|i| ShardJob {
                    key: ShardKey::new(format!("m{i}"), StatePart::Weights, version),
                    payload: Bytes::from(vec![i as u8; 128]),
                    persist: persist_every != 0 && i % persist_every == 0,
                })
                .collect(),
        }
    }

    #[test]
    fn snapshot_lands_in_memory_persist_in_store() {
        let memory = Arc::new(NodeMemoryStore::new());
        let store: Arc<dyn ObjectStore> = Arc::new(MemoryObjectStore::new());
        let agent = NodeAgent::spawn(NodeId(0), memory.clone(), store.clone());

        agent.submit(job(10, 8, 2)).unwrap();
        agent.wait_idle();

        // All 8 shards snapshotted to memory.
        assert_eq!(memory.len(), 8);
        // Every other shard persisted (indices 0,2,4,6).
        assert_eq!(store.keys().unwrap().len(), 4);
        let stats = agent.shutdown();
        assert_eq!(stats.snapshots_done, 1);
        assert_eq!(stats.persists_done, 1);
        assert_eq!(stats.snapshot_bytes, 8 * 128);
        assert_eq!(stats.persist_bytes, 4 * 128);
        assert!(stats.errors.is_empty());
    }

    #[test]
    fn successive_checkpoints_update_versions() {
        let memory = Arc::new(NodeMemoryStore::new());
        let store: Arc<dyn ObjectStore> = Arc::new(MemoryObjectStore::new());
        let agent = NodeAgent::spawn(NodeId(1), memory.clone(), store.clone());

        for v in [10, 20, 30] {
            agent.submit(job(v, 4, 1)).unwrap();
        }
        agent.wait_idle();

        // Memory keeps only the latest version per slot.
        assert_eq!(memory.version("m0", StatePart::Weights), Some(30));
        // Storage keeps all versions.
        assert_eq!(
            store.latest_version("m0", StatePart::Weights, 25).unwrap(),
            Some(20)
        );
        assert_eq!(agent.recovery_version(), Some(30));
        let stats = agent.shutdown();
        assert_eq!(stats.snapshots_done, 3);
        assert_eq!(stats.persists_done, 3);
    }

    #[test]
    fn many_rapid_submissions_never_lose_jobs() {
        let memory = Arc::new(NodeMemoryStore::new());
        let store: Arc<dyn ObjectStore> = Arc::new(MemoryObjectStore::new());
        let agent = NodeAgent::spawn(NodeId(2), memory, store.clone());
        for v in 1..=20u64 {
            agent.submit(job(v, 2, 1)).unwrap();
        }
        agent.wait_idle();
        let stats = agent.shutdown();
        assert_eq!(stats.snapshots_done, 20);
        assert_eq!(stats.persists_done, 20);
        // Latest version of every module persisted.
        assert_eq!(
            store
                .latest_version("m0", StatePart::Weights, u64::MAX)
                .unwrap(),
            Some(20)
        );
    }

    #[test]
    fn drop_without_shutdown_is_clean() {
        let memory = Arc::new(NodeMemoryStore::new());
        let store: Arc<dyn ObjectStore> = Arc::new(MemoryObjectStore::new());
        let agent = NodeAgent::spawn(NodeId(3), memory, store);
        agent.submit(job(1, 1, 1)).unwrap();
        drop(agent); // must join workers without panicking
    }

    #[test]
    fn empty_persist_set_still_completes() {
        let memory = Arc::new(NodeMemoryStore::new());
        let store: Arc<dyn ObjectStore> = Arc::new(MemoryObjectStore::new());
        let agent = NodeAgent::spawn(NodeId(4), memory, store.clone());
        agent.submit(job(5, 3, 0)).unwrap(); // nothing persisted
        agent.wait_idle();
        assert!(store.is_empty_compat());
        let stats = agent.shutdown();
        assert_eq!(stats.persists_done, 1);
        assert_eq!(stats.persist_bytes, 0);
    }

    trait EmptyCompat {
        fn is_empty_compat(&self) -> bool;
    }
    impl EmptyCompat for Arc<dyn ObjectStore> {
        fn is_empty_compat(&self) -> bool {
            self.keys().unwrap().is_empty()
        }
    }
}
