//! The MoC checkpoint engine: PEC selection × sharding plan × per-node
//! asynchronous agents × two-level recovery, end to end.
//!
//! [`CheckpointEngine`] is the integration point a training loop talks to:
//! call [`CheckpointEngine::checkpoint`] every `I_ckpt` iterations with a
//! [`StateSource`] producing shard payloads, inject faults with
//! [`CheckpointEngine::fault`], and rebuild state with
//! [`CheckpointEngine::recover`].

use crate::recovery::{plan_recovery, RecoveryError, RecoveryPlan};
use crate::selection::PecConfig;
use crate::sharding::{base_module, PlanError, ShardingPlanner, ShardingStrategy};
use crate::topology::ParallelTopology;
use crate::twolevel::agent::{CheckpointJob, NodeAgent, ShardJob};
use bytes::Bytes;
use moc_moe::MoeModelConfig;
use moc_store::{ClusterMemory, NodeId, ObjectStore, ShardKey, StatePart};
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

/// Produces the payload bytes of a shard when the engine checkpoints.
pub trait StateSource {
    /// Returns `len` bytes representing `(module, part)` at `version`.
    fn shard_payload(&self, module: &str, part: StatePart, len: u64, version: u64) -> Bytes;
}

/// A [`StateSource`] emitting deterministic synthetic payloads whose first
/// bytes encode the version — recovery tests can verify which version a
/// restore produced. Payload sizes are divided by `scale` so planet-sized
/// models can exercise the engine cheaply.
#[derive(Debug, Clone)]
pub struct SyntheticState {
    /// Divide every shard length by this factor (min 16 bytes kept).
    pub scale: u64,
}

impl SyntheticState {
    /// Full-size payloads.
    pub fn full() -> Self {
        Self { scale: 1 }
    }

    /// Payloads shrunk by `scale`.
    pub fn scaled(scale: u64) -> Self {
        Self {
            scale: scale.max(1),
        }
    }
}

impl StateSource for SyntheticState {
    fn shard_payload(&self, module: &str, _part: StatePart, len: u64, version: u64) -> Bytes {
        let n = (len / self.scale).max(16) as usize;
        let mut v = vec![0u8; n];
        v[..8].copy_from_slice(&version.to_le_bytes());
        let h = module.bytes().fold(0u8, |a, b| a.wrapping_add(b));
        v[8] = h;
        Bytes::from(v)
    }
}

/// Engine configuration.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Parameter-sharding strategy (Section 4).
    pub strategy: ShardingStrategy,
    /// Snapshot-level PEC (`K_snapshot` selection).
    pub snapshot_pec: PecConfig,
    /// Experts persisted per layer per checkpoint (`K_persist`).
    pub k_persist: usize,
    /// Whether recovery may read healthy nodes' in-memory snapshots.
    pub two_level_recovery: bool,
}

/// Outcome of one checkpoint submission.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckpointReport {
    /// Checkpoint version (iteration).
    pub version: u64,
    /// Bytes snapshotted per node.
    pub node_bytes: Vec<u64>,
    /// Nodes whose agents stalled waiting for a buffer.
    pub stalled_nodes: Vec<usize>,
}

/// The MoC two-level checkpoint engine.
pub struct CheckpointEngine {
    planner: ShardingPlanner,
    config: EngineConfig,
    memory: Arc<ClusterMemory>,
    store: Arc<dyn ObjectStore>,
    agents: Vec<NodeAgent>,
    checkpoint_index: u64,
    healthy: Vec<bool>,
}

impl std::fmt::Debug for CheckpointEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CheckpointEngine")
            .field("model", &self.planner.model().name())
            .field("checkpoint_index", &self.checkpoint_index)
            .finish()
    }
}

impl CheckpointEngine {
    /// Builds an engine for `model` on `topo`, persisting into `store`.
    ///
    /// # Errors
    ///
    /// Returns [`PlanError`] if the model cannot be placed on the topology.
    pub fn new(
        model: MoeModelConfig,
        topo: ParallelTopology,
        store: Arc<dyn ObjectStore>,
        config: EngineConfig,
    ) -> Result<Self, PlanError> {
        let planner = ShardingPlanner::new(model, topo)?;
        let nodes = planner.topology().nodes();
        let memory = Arc::new(ClusterMemory::new(nodes));
        let agents = (0..nodes)
            .map(|n| NodeAgent::spawn(NodeId(n), memory.node_arc(NodeId(n)), store.clone()))
            .collect();
        Ok(Self {
            planner,
            config,
            memory,
            store,
            agents,
            checkpoint_index: 0,
            healthy: vec![true; nodes],
        })
    }

    /// The engine's cluster memory (shared with agents).
    pub fn memory(&self) -> &ClusterMemory {
        &self.memory
    }

    /// The persistent store.
    pub fn store(&self) -> &Arc<dyn ObjectStore> {
        &self.store
    }

    /// The sharding planner in use.
    pub fn planner(&self) -> &ShardingPlanner {
        &self.planner
    }

    /// Number of checkpoints taken.
    pub fn checkpoints_taken(&self) -> u64 {
        self.checkpoint_index
    }

    /// Takes a *full* checkpoint of the state at `iteration`, persisting
    /// every shard. Training must bootstrap with one of these before PEC
    /// checkpoints can guarantee recoverability: an expert that has never
    /// been persisted cannot be restored after its node faults.
    pub fn bootstrap(&mut self, iteration: u64, source: &dyn StateSource) -> CheckpointReport {
        let selection = self.planner.model().expert_ids();
        self.submit_selection(iteration, source, &selection, true)
    }

    /// Submits an asynchronous two-level checkpoint of the state at
    /// `iteration`, pulling payloads from `source`.
    pub fn checkpoint(&mut self, iteration: u64, source: &dyn StateSource) -> CheckpointReport {
        let t = self.checkpoint_index;
        self.checkpoint_index += 1;
        let selection = self.config.snapshot_pec.select(t);
        self.submit_selection(iteration, source, &selection, false)
    }

    fn submit_selection(
        &mut self,
        iteration: u64,
        source: &dyn StateSource,
        selection: &[moc_moe::ExpertId],
        persist_all: bool,
    ) -> CheckpointReport {
        let workload = self.planner.plan_selected(self.config.strategy, selection);

        // persist-PEC: the first k_persist experts of each layer's
        // snapshot selection are persisted; non-expert always persists.
        let persist_experts: BTreeSet<String> = selection
            .iter()
            .enumerate()
            .filter(|(slot, _)| {
                persist_all || slot % self.config.snapshot_pec.k < self.config.k_persist
            })
            .map(|(_, id)| crate::sharding::expert_module_name(self.planner.model(), id))
            .collect();

        let topo = *self.planner.topology();
        let mut per_node: BTreeMap<usize, Vec<ShardJob>> = BTreeMap::new();
        for (rank, rank_load) in workload.per_rank.iter().enumerate() {
            let node = topo.node_of(rank);
            let jobs = per_node.entry(node).or_default();
            for item in &rank_load.items {
                let is_expert_item = base_module(&item.module).contains(".expert");
                let persist = if is_expert_item {
                    persist_experts.contains(base_module(&item.module))
                } else {
                    true
                };
                jobs.push(ShardJob {
                    key: ShardKey::new(item.module.clone(), item.part, iteration),
                    payload: source.shard_payload(&item.module, item.part, item.bytes, iteration),
                    persist,
                });
            }
        }

        let mut node_bytes = vec![0u64; topo.nodes()];
        let mut stalled_nodes = Vec::new();
        for (node, shards) in per_node {
            node_bytes[node] = shards.iter().map(|s| s.payload.len() as u64).sum();
            let stalled = self.agents[node]
                .submit(CheckpointJob {
                    version: iteration,
                    shards,
                })
                .expect("agent accepts jobs");
            if stalled {
                stalled_nodes.push(node);
            }
        }
        CheckpointReport {
            version: iteration,
            node_bytes,
            stalled_nodes,
        }
    }

    /// Blocks until every agent drained its snapshot and persist queues.
    pub fn wait_idle(&self) {
        for agent in &self.agents {
            agent.wait_idle();
        }
    }

    /// Injects a node fault: the node's CPU memory is wiped and it is
    /// marked unhealthy until [`CheckpointEngine::restart_node`].
    pub fn fault(&mut self, node: usize) {
        self.memory.fault(NodeId(node));
        self.healthy[node] = false;
    }

    /// Marks a node healthy again (post-restart).
    pub fn restart_node(&mut self, node: usize) {
        self.healthy[node] = true;
    }

    /// The complete slot inventory a recovery must restore: every shard
    /// name the current strategy ever writes (zero shards, expert slices,
    /// non-expert modules).
    pub fn slot_inventory(&self) -> Vec<(String, StatePart)> {
        let workload = self.planner.plan_full(self.config.strategy);
        let mut slots = BTreeSet::new();
        for rank_load in &workload.per_rank {
            for item in &rank_load.items {
                slots.insert((item.module.clone(), item.part));
            }
        }
        slots.into_iter().collect()
    }

    /// Plans recovery of all slots as of `at_iteration`.
    ///
    /// # Errors
    ///
    /// Returns [`RecoveryError`] if a slot cannot be recovered anywhere.
    pub fn recover(&self, at_iteration: u64) -> Result<RecoveryPlan, RecoveryError> {
        plan_recovery(
            &self.slot_inventory(),
            &self.memory,
            self.store.as_ref(),
            &self.healthy,
            at_iteration,
            self.config.two_level_recovery,
        )
    }

    /// Shuts all agents down, draining queues.
    pub fn shutdown(mut self) {
        self.agents.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recovery::RecoverySource;
    use moc_moe::presets;
    use moc_store::MemoryObjectStore;

    fn engine(k_snapshot: usize, k_persist: usize, two_level: bool) -> CheckpointEngine {
        let model = presets::tiny_lm_16e();
        let topo = ParallelTopology::case2();
        let config = EngineConfig {
            strategy: ShardingStrategy::FullySharded,
            snapshot_pec: PecConfig::sequential(
                k_snapshot,
                model.num_experts(),
                model.num_moe_layers(),
            ),
            k_persist,
            two_level_recovery: two_level,
        };
        CheckpointEngine::new(model, topo, Arc::new(MemoryObjectStore::new()), config).unwrap()
    }

    #[test]
    fn checkpoint_distributes_over_nodes() {
        let mut e = engine(16, 16, true);
        let report = e.checkpoint(10, &SyntheticState::full());
        e.wait_idle();
        assert_eq!(report.version, 10);
        assert_eq!(report.node_bytes.len(), 2);
        assert!(report.node_bytes.iter().all(|&b| b > 0));
        // Memory on both nodes holds snapshots.
        assert!(!e.memory().node(NodeId(0)).is_empty());
        assert!(!e.memory().node(NodeId(1)).is_empty());
        // Full persist: store holds every slot.
        assert_eq!(e.store().keys().unwrap().len(), e.slot_inventory().len());
    }

    #[test]
    fn pec_persists_fewer_expert_shards() {
        let mut full = engine(16, 16, true);
        full.checkpoint(10, &SyntheticState::full());
        full.wait_idle();
        let full_keys = full.store().keys().unwrap().len();

        let mut pec = engine(4, 1, true);
        pec.checkpoint(10, &SyntheticState::full());
        pec.wait_idle();
        let pec_keys = pec.store().keys().unwrap().len();
        assert!(pec_keys < full_keys, "pec {pec_keys} vs full {full_keys}");
    }

    #[test]
    fn recovery_roundtrip_after_fault() {
        let mut e = engine(16, 16, true);
        for (i, iter) in [10u64, 20, 30].into_iter().enumerate() {
            let _ = i;
            e.checkpoint(iter, &SyntheticState::full());
        }
        e.wait_idle();
        e.fault(0);
        let plan = e.recover(35).unwrap();
        assert_eq!(plan.resume_iteration, 30);
        // Every slot restorable; faulted node's slots come from storage.
        for action in &plan.actions {
            let bytes =
                crate::recovery::fetch_action(action, e.memory(), e.store().as_ref()).unwrap();
            let v = u64::from_le_bytes(bytes[..8].try_into().unwrap());
            assert_eq!(v, action.version);
        }
    }

    #[test]
    fn two_level_recovery_uses_memory_for_healthy_nodes() {
        let mut e = engine(4, 1, true);
        e.bootstrap(0, &SyntheticState::full());
        for iter in [10u64, 20, 30, 40] {
            e.checkpoint(iter, &SyntheticState::full());
        }
        e.wait_idle();
        e.fault(0);
        let plan = e.recover(45).unwrap();
        assert!(plan.memory_actions() > 0, "healthy node snapshots used");
        assert!(plan.storage_actions() > 0, "dead node slots from storage");
        // Memory restores can be fresher than the persist level.
        let mem_max = plan
            .actions
            .iter()
            .filter(|a| matches!(a.source, RecoverySource::Memory { .. }))
            .map(|a| a.version)
            .max()
            .unwrap();
        assert_eq!(mem_max, 40);
    }

    #[test]
    fn storage_only_recovery_never_reads_memory() {
        let mut e = engine(4, 1, false);
        e.bootstrap(0, &SyntheticState::full());
        for iter in [10u64, 20] {
            e.checkpoint(iter, &SyntheticState::full());
        }
        e.wait_idle();
        e.fault(1);
        let plan = e.recover(25).unwrap();
        assert_eq!(plan.memory_actions(), 0);
    }

    #[test]
    fn recover_before_any_checkpoint_fails() {
        let e = engine(4, 1, true);
        assert!(e.recover(100).is_err());
    }

    #[test]
    fn restart_node_restores_health() {
        let mut e = engine(4, 4, true);
        e.checkpoint(10, &SyntheticState::full());
        e.wait_idle();
        e.fault(0);
        e.restart_node(0);
        // Node 0 memory is empty but healthy: next checkpoints repopulate.
        e.checkpoint(20, &SyntheticState::full());
        e.wait_idle();
        assert!(!e.memory().node(NodeId(0)).is_empty());
    }

    #[test]
    fn synthetic_payload_encodes_version() {
        let s = SyntheticState::scaled(1024);
        let b = s.shard_payload("m", StatePart::Weights, 1 << 20, 42);
        assert_eq!(u64::from_le_bytes(b[..8].try_into().unwrap()), 42);
        assert_eq!(b.len(), 1024);
    }
}
