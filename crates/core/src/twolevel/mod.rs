//! Two-level checkpointing management — Section 5.
//!
//! * [`buffers`] — the triple-buffer state machine of Fig. 9;
//! * [`agent`] — per-node asynchronous snapshot/persist workers;
//! * [`engine`] — the integrated checkpoint engine (selection × sharding ×
//!   agents × recovery).

pub mod agent;
pub mod buffers;
pub mod engine;

pub use agent::{AgentStats, CheckpointJob, NodeAgent, ShardJob};
pub use buffers::{BufferError, BufferId, BufferState, SnapshotOutcome, TripleBuffer};
pub use engine::{CheckpointEngine, CheckpointReport, EngineConfig, StateSource, SyntheticState};
