//! Triple buffering for asynchronous two-level checkpointing — Fig. 9.
//!
//! Each node agent owns three buffers cycling through statuses:
//!
//! ```text
//! Free ──begin_snapshot──▶ Snapshotting ──finish_snapshot──▶ Ready
//!   ▲                                                          │
//!   │                            (no buffer persisting) ───────┤
//!   │                                                          ▼
//!   └──(demoted when a newer persist completes)── Recovery ◀── Persisting
//! ```
//!
//! Invariants enforced (and property-tested):
//! * at most one buffer is `Persisting` at any time;
//! * at most one buffer is `Recovery` (the latest persisted checkpoint);
//! * a snapshot can only start into a `Free` buffer — if none is free the
//!   caller must stall (the checkpoint stall "S" of Fig. 3).

use serde::{Deserialize, Serialize};
use std::fmt;

/// Index of one of the three buffers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct BufferId(pub usize);

impl fmt::Display for BufferId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b{}", self.0 + 1)
    }
}

/// Lifecycle status of a buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BufferState {
    /// Empty / reusable ("snapshot status" in Fig. 9).
    Free,
    /// A GPU→CPU snapshot is being written into it.
    Snapshotting,
    /// Snapshot complete, waiting for the persist slot.
    Ready,
    /// Being written to persistent storage.
    Persisting,
    /// Holds the latest persisted checkpoint available for recovery.
    Recovery,
}

/// Error from an invalid buffer transition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BufferError {
    /// No `Free` buffer: the snapshot must stall.
    NoFreeBuffer,
    /// The buffer was not in the state the transition requires.
    WrongState {
        /// The buffer concerned.
        buffer: BufferId,
        /// The state it was in.
        actual: BufferState,
        /// The state the transition requires.
        required: BufferState,
    },
}

impl fmt::Display for BufferError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BufferError::NoFreeBuffer => write!(f, "no free buffer: checkpoint stall"),
            BufferError::WrongState {
                buffer,
                actual,
                required,
            } => write!(
                f,
                "buffer {buffer} is {actual:?}, transition requires {required:?}"
            ),
        }
    }
}

impl std::error::Error for BufferError {}

/// What `finish_snapshot` decided about the buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SnapshotOutcome {
    /// The persist slot was free: the buffer moved straight to
    /// `Persisting`; the caller should start persisting it now.
    StartPersist(BufferId),
    /// Another buffer is persisting: this one waits in `Ready`.
    Queued(BufferId),
}

/// The triple-buffer state machine of one node agent.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TripleBuffer {
    states: [BufferState; 3],
    /// Versions (checkpoint iterations) held by each buffer, for recovery
    /// bookkeeping.
    versions: [u64; 3],
}

impl Default for TripleBuffer {
    fn default() -> Self {
        Self::new()
    }
}

impl TripleBuffer {
    /// Creates the machine with all buffers `Free` (Fig. 9's initial
    /// "snapshot status").
    pub fn new() -> Self {
        Self {
            states: [BufferState::Free; 3],
            versions: [0; 3],
        }
    }

    /// Current state of a buffer.
    pub fn state(&self, id: BufferId) -> BufferState {
        self.states[id.0]
    }

    /// The version a buffer holds (meaningful outside `Free`).
    pub fn version(&self, id: BufferId) -> u64 {
        self.versions[id.0]
    }

    /// The buffer holding the latest persisted checkpoint, if any.
    pub fn recovery_buffer(&self) -> Option<BufferId> {
        self.states
            .iter()
            .position(|&s| s == BufferState::Recovery)
            .map(BufferId)
    }

    /// The buffer currently persisting, if any.
    pub fn persisting_buffer(&self) -> Option<BufferId> {
        self.states
            .iter()
            .position(|&s| s == BufferState::Persisting)
            .map(BufferId)
    }

    /// Whether a snapshot could start right now without stalling.
    pub fn can_begin_snapshot(&self) -> bool {
        self.states.contains(&BufferState::Free)
    }

    /// Claims a `Free` buffer for an incoming snapshot of `version`.
    ///
    /// # Errors
    ///
    /// [`BufferError::NoFreeBuffer`] when all buffers are busy — the
    /// training step must stall until one frees up.
    pub fn begin_snapshot(&mut self, version: u64) -> Result<BufferId, BufferError> {
        let idx = self
            .states
            .iter()
            .position(|&s| s == BufferState::Free)
            .ok_or(BufferError::NoFreeBuffer)?;
        self.states[idx] = BufferState::Snapshotting;
        self.versions[idx] = version;
        Ok(BufferId(idx))
    }

    /// Completes the snapshot into `id`. If no buffer is persisting, the
    /// buffer proceeds straight to `Persisting` (Fig. 9: "snapshot finish
    /// & no persist buffer"); otherwise it queues in `Ready`.
    ///
    /// # Errors
    ///
    /// [`BufferError::WrongState`] if the buffer was not `Snapshotting`.
    pub fn finish_snapshot(&mut self, id: BufferId) -> Result<SnapshotOutcome, BufferError> {
        self.expect(id, BufferState::Snapshotting)?;
        if self.persisting_buffer().is_none() {
            self.states[id.0] = BufferState::Persisting;
            Ok(SnapshotOutcome::StartPersist(id))
        } else {
            self.states[id.0] = BufferState::Ready;
            Ok(SnapshotOutcome::Queued(id))
        }
    }

    /// Completes the persist of `id`: the buffer becomes the `Recovery`
    /// buffer (demoting the previous one to `Free`), and the oldest
    /// `Ready` buffer — if any — is promoted to `Persisting` and returned
    /// so the caller can start its persist (Fig. 9: "another persist
    /// finish").
    ///
    /// # Errors
    ///
    /// [`BufferError::WrongState`] if the buffer was not `Persisting`.
    pub fn finish_persist(&mut self, id: BufferId) -> Result<Option<BufferId>, BufferError> {
        self.expect(id, BufferState::Persisting)?;
        if let Some(old) = self.recovery_buffer() {
            self.states[old.0] = BufferState::Free;
        }
        self.states[id.0] = BufferState::Recovery;
        // Promote the oldest Ready buffer (smallest version) next.
        let next = self
            .states
            .iter()
            .enumerate()
            .filter(|(_, &s)| s == BufferState::Ready)
            .min_by_key(|(i, _)| self.versions[*i])
            .map(|(i, _)| BufferId(i));
        if let Some(n) = next {
            self.states[n.0] = BufferState::Persisting;
        }
        Ok(next)
    }

    /// Checks the structural invariants; used by tests.
    pub fn check_invariants(&self) -> Result<(), String> {
        let persisting = self
            .states
            .iter()
            .filter(|&&s| s == BufferState::Persisting)
            .count();
        if persisting > 1 {
            return Err(format!("{persisting} buffers persisting"));
        }
        let recovery = self
            .states
            .iter()
            .filter(|&&s| s == BufferState::Recovery)
            .count();
        if recovery > 1 {
            return Err(format!("{recovery} recovery buffers"));
        }
        Ok(())
    }

    fn expect(&self, id: BufferId, required: BufferState) -> Result<(), BufferError> {
        let actual = self.states[id.0];
        if actual != required {
            return Err(BufferError::WrongState {
                buffer: id,
                actual,
                required,
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn initial_state_all_free() {
        let tb = TripleBuffer::new();
        assert!(tb.can_begin_snapshot());
        assert_eq!(tb.recovery_buffer(), None);
        assert_eq!(tb.persisting_buffer(), None);
    }

    #[test]
    fn fig9_happy_path() {
        let mut tb = TripleBuffer::new();
        // Checkpoint 1: snapshot then immediate persist.
        let b1 = tb.begin_snapshot(10).unwrap();
        assert_eq!(tb.state(b1), BufferState::Snapshotting);
        let out = tb.finish_snapshot(b1).unwrap();
        assert_eq!(out, SnapshotOutcome::StartPersist(b1));
        // Checkpoint 2 snapshots while 1 persists.
        let b2 = tb.begin_snapshot(20).unwrap();
        let out = tb.finish_snapshot(b2).unwrap();
        assert_eq!(out, SnapshotOutcome::Queued(b2));
        // Persist of 1 completes: 1 becomes recovery, 2 starts persisting.
        let next = tb.finish_persist(b1).unwrap();
        assert_eq!(next, Some(b2));
        assert_eq!(tb.recovery_buffer(), Some(b1));
        assert_eq!(tb.version(b1), 10);
        // Persist of 2 completes: 2 is recovery, 1 freed.
        let next = tb.finish_persist(b2).unwrap();
        assert_eq!(next, None);
        assert_eq!(tb.recovery_buffer(), Some(b2));
        assert_eq!(tb.state(b1), BufferState::Free);
        tb.check_invariants().unwrap();
    }

    #[test]
    fn stall_when_no_free_buffer() {
        let mut tb = TripleBuffer::new();
        let b1 = tb.begin_snapshot(1).unwrap();
        tb.finish_snapshot(b1).unwrap(); // persisting
        let b2 = tb.begin_snapshot(2).unwrap();
        tb.finish_snapshot(b2).unwrap(); // ready
        let _b3 = tb.begin_snapshot(3).unwrap(); // snapshotting
        assert!(!tb.can_begin_snapshot());
        assert_eq!(tb.begin_snapshot(4), Err(BufferError::NoFreeBuffer));
    }

    #[test]
    fn slow_persist_queues_in_version_order() {
        let mut tb = TripleBuffer::new();
        let b1 = tb.begin_snapshot(1).unwrap();
        tb.finish_snapshot(b1).unwrap(); // persisting (slow)
        let b2 = tb.begin_snapshot(2).unwrap();
        tb.finish_snapshot(b2).unwrap(); // ready
        let b3 = tb.begin_snapshot(3).unwrap();
        tb.finish_snapshot(b3).unwrap(); // ready
                                         // Persist finishes: the OLDEST ready buffer (b2) goes next.
        let next = tb.finish_persist(b1).unwrap();
        assert_eq!(next, Some(b2));
        let next = tb.finish_persist(b2).unwrap();
        assert_eq!(next, Some(b3));
        tb.check_invariants().unwrap();
    }

    #[test]
    fn wrong_state_transitions_rejected() {
        let mut tb = TripleBuffer::new();
        let err = tb.finish_snapshot(BufferId(0));
        assert!(matches!(err, Err(BufferError::WrongState { .. })));
        let err = tb.finish_persist(BufferId(1));
        assert!(matches!(err, Err(BufferError::WrongState { .. })));
    }

    #[test]
    fn recovery_buffer_always_latest_persisted() {
        let mut tb = TripleBuffer::new();
        for v in 1..=10u64 {
            let b = tb.begin_snapshot(v).unwrap();
            match tb.finish_snapshot(b).unwrap() {
                SnapshotOutcome::StartPersist(p) => {
                    tb.finish_persist(p).unwrap();
                }
                SnapshotOutcome::Queued(_) => unreachable!("sequential use never queues"),
            }
            assert_eq!(tb.version(tb.recovery_buffer().unwrap()), v);
            tb.check_invariants().unwrap();
        }
    }

    #[test]
    fn buffer_id_display() {
        assert_eq!(BufferId(0).to_string(), "b1");
        assert_eq!(BufferId(2).to_string(), "b3");
    }
}
