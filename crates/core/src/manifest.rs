//! Checkpoint manifests: completeness tracking and garbage collection.
//!
//! Under PEC, "a complete recoverable state at iteration `r`" is not a
//! single checkpoint directory: the non-expert state must exist at `r`,
//! while each expert may sit at any version `≤ r` — its latest save. The
//! manifest tracks which shard versions exist, answers "what is the newest
//! recoverable iteration?", and computes which old shards are safe to
//! prune: a shard is garbage once every module it serves has a newer
//! persisted version (pruning must never break the recoverability of the
//! newest complete state).

use moc_store::{ObjectStore, StatePart, StoreError};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// In-memory record of persisted shard versions per `(module, part)`.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Manifest {
    slots: BTreeMap<(String, StatePart), Vec<u64>>,
    /// Iterations at which a checkpoint event completed.
    checkpoints: Vec<u64>,
}

impl Manifest {
    /// Empty manifest.
    pub fn new() -> Self {
        Self::default()
    }

    /// Rebuilds a manifest by scanning an object store.
    ///
    /// # Errors
    ///
    /// Propagates store scan failures.
    pub fn from_store(store: &dyn ObjectStore) -> Result<Self, StoreError> {
        let mut m = Self::new();
        for key in store.keys()? {
            m.record(&key.module, key.part, key.version);
        }
        // Checkpoint events are the distinct versions of any slot.
        let mut versions: Vec<u64> = m.slots.values().flatten().copied().collect();
        versions.sort_unstable();
        versions.dedup();
        m.checkpoints = versions;
        Ok(m)
    }

    /// Records a persisted shard.
    pub fn record(&mut self, module: &str, part: StatePart, version: u64) {
        let v = self.slots.entry((module.to_string(), part)).or_default();
        match v.binary_search(&version) {
            Ok(_) => {}
            Err(pos) => v.insert(pos, version),
        }
    }

    /// Marks a checkpoint event complete at `iteration`.
    pub fn complete_checkpoint(&mut self, iteration: u64) {
        match self.checkpoints.binary_search(&iteration) {
            Ok(_) => {}
            Err(pos) => self.checkpoints.insert(pos, iteration),
        }
    }

    /// All tracked `(module, part)` slots.
    pub fn slot_count(&self) -> usize {
        self.slots.len()
    }

    /// Versions recorded for a slot.
    pub fn versions(&self, module: &str, part: StatePart) -> &[u64] {
        self.slots
            .get(&(module.to_string(), part))
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// Newest version of a slot at or below `bound`.
    pub fn latest(&self, module: &str, part: StatePart, bound: u64) -> Option<u64> {
        self.versions(module, part)
            .iter()
            .copied()
            .take_while(|&v| v <= bound)
            .last()
    }

    /// The newest iteration `r` at which *every* tracked slot has some
    /// version `≤ r` — the newest recoverable state. `None` if any slot
    /// has no version at all.
    pub fn newest_recoverable(&self) -> Option<u64> {
        if self.slots.is_empty() {
            return None;
        }
        let mut bound = u64::MAX;
        for versions in self.slots.values() {
            let newest = *versions.last()?;
            bound = bound.min(newest);
        }
        // Any slot saved every checkpoint (non-expert) pins `r` to its own
        // newest version; experts below it are allowed (that is PEC).
        // The recoverable iteration is the newest checkpoint <= the
        // minimum over slots of (that slot's newest version)? No — the
        // non-expert slots define r; expert slots only need *some*
        // version <= r. r = newest version present across slots that is
        // >= every slot's oldest version. The safe answer: the newest
        // version v such that every slot has a version <= v.
        let min_oldest = self
            .slots
            .values()
            .map(|v| *v.first().expect("nonempty"))
            .max()?;
        let newest_any = self.slots.values().filter_map(|v| v.last()).max()?;
        if min_oldest <= *newest_any {
            Some(*newest_any)
        } else {
            None
        }
    }

    /// Shards safe to delete while keeping every slot recoverable at or
    /// after `keep_from`: all versions strictly older than the slot's
    /// newest version `≤ keep_from` are redundant.
    pub fn prunable(&self, keep_from: u64) -> Vec<(String, StatePart, u64)> {
        let mut out = Vec::new();
        for ((module, part), versions) in &self.slots {
            if let Some(anchor) = versions
                .iter()
                .copied()
                .take_while(|&v| v <= keep_from)
                .last()
            {
                for &v in versions.iter().take_while(|&&v| v < anchor) {
                    out.push((module.clone(), *part, v));
                }
            }
        }
        out
    }

    /// Executes [`Manifest::prunable`] against a store, returning how many
    /// shards were removed, and drops them from the manifest.
    ///
    /// # Errors
    ///
    /// Propagates store failures; the manifest only forgets shards the
    /// store confirmed deleted.
    pub fn gc(&mut self, store: &dyn ObjectStore, keep_from: u64) -> Result<usize, StoreError> {
        let doomed = self.prunable(keep_from);
        let mut removed = 0;
        for (module, part, version) in doomed {
            let n = store.prune(&module, part, version + 1)?;
            removed += n;
            if let Some(v) = self.slots.get_mut(&(module.clone(), part)) {
                v.retain(|&x| x > version);
            }
        }
        Ok(removed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use moc_store::{MemoryObjectStore, ShardKey};

    fn manifest() -> Manifest {
        let mut m = Manifest::new();
        // Non-expert saved at every checkpoint.
        for v in [10, 20, 30] {
            m.record("embedding", StatePart::Weights, v);
        }
        // Expert saved only at 10 (PEC skipped it afterwards).
        m.record("layer1.expert0", StatePart::Weights, 10);
        // Expert saved at 20.
        m.record("layer1.expert1", StatePart::Weights, 20);
        m
    }

    #[test]
    fn latest_respects_bound() {
        let m = manifest();
        assert_eq!(m.latest("embedding", StatePart::Weights, 25), Some(20));
        assert_eq!(m.latest("embedding", StatePart::Weights, 5), None);
        assert_eq!(m.latest("layer1.expert0", StatePart::Weights, 30), Some(10));
    }

    #[test]
    fn newest_recoverable_is_newest_full_cover() {
        let m = manifest();
        // Every slot has some version <= 30: recoverable at 30 (experts
        // recover at their stale versions — PEC semantics).
        assert_eq!(m.newest_recoverable(), Some(30));
        assert_eq!(Manifest::new().newest_recoverable(), None);
    }

    #[test]
    fn prunable_keeps_anchor_versions() {
        let m = manifest();
        let prunable = m.prunable(30);
        // embedding@10 and @20 are redundant (anchor 30); the experts'
        // only versions are their anchors and must survive.
        assert!(prunable.contains(&("embedding".to_string(), StatePart::Weights, 10)));
        assert!(prunable.contains(&("embedding".to_string(), StatePart::Weights, 20)));
        assert!(!prunable
            .iter()
            .any(|(mo, _, _)| mo.starts_with("layer1.expert")));
    }

    #[test]
    fn prunable_with_earlier_keep_point() {
        let m = manifest();
        // Keeping recoverability from iteration 20: embedding@10 is
        // redundant (anchor 20), embedding@30 is newer than the keep
        // point and untouched.
        let prunable = m.prunable(20);
        assert_eq!(
            prunable,
            vec![("embedding".to_string(), StatePart::Weights, 10)]
        );
    }

    #[test]
    fn gc_deletes_only_redundant_shards() {
        let store = MemoryObjectStore::new();
        let mut m = Manifest::new();
        for v in [10u64, 20, 30] {
            let key = ShardKey::new("embedding", StatePart::Weights, v);
            store.put(&key, Bytes::from_static(b"ne")).unwrap();
            m.record("embedding", StatePart::Weights, v);
        }
        let e_key = ShardKey::new("layer1.expert0", StatePart::Weights, 10);
        store.put(&e_key, Bytes::from_static(b"e")).unwrap();
        m.record("layer1.expert0", StatePart::Weights, 10);

        let removed = m.gc(&store, 30).unwrap();
        assert_eq!(removed, 2);
        assert!(store.get(&e_key).unwrap().is_some(), "expert anchor kept");
        assert!(store
            .get(&ShardKey::new("embedding", StatePart::Weights, 30))
            .unwrap()
            .is_some());
        assert!(store
            .get(&ShardKey::new("embedding", StatePart::Weights, 10))
            .unwrap()
            .is_none());
        // Manifest reflects the deletions.
        assert_eq!(m.versions("embedding", StatePart::Weights), &[30]);
    }

    #[test]
    fn from_store_reconstructs() {
        let store = MemoryObjectStore::new();
        for v in [5u64, 15] {
            store
                .put(&ShardKey::new("m", StatePart::Optimizer, v), Bytes::new())
                .unwrap();
        }
        let m = Manifest::from_store(&store).unwrap();
        assert_eq!(m.versions("m", StatePart::Optimizer), &[5, 15]);
        assert_eq!(m.newest_recoverable(), Some(15));
    }

    #[test]
    fn record_is_idempotent_and_sorted() {
        let mut m = Manifest::new();
        m.record("a", StatePart::Weights, 20);
        m.record("a", StatePart::Weights, 10);
        m.record("a", StatePart::Weights, 20);
        assert_eq!(m.versions("a", StatePart::Weights), &[10, 20]);
    }
}
