//! Partial Experts Checkpointing (PEC) expert selection — Section 3.
//!
//! At each checkpoint, PEC saves only `K_pec` of the `N` experts per MoE
//! layer. *Which* experts get saved matters twice over: it determines the
//! update loss on recovery (PLT) and, because experts are spread over EP
//! ranks, it determines the per-rank checkpointing workload (Section 3.2).
//!
//! Two strategies are implemented:
//!
//! * **Sequential** (Fig. 4): at checkpoint `t`, the MoE layer at position
//!   `l` saves experts `{(l + t·K + j) mod N : j < K}` — a static
//!   interleave across layers and EP ranks that balances workload and
//!   guarantees every expert is saved once every `⌈N/K⌉` checkpoints.
//! * **Load-aware**: saves the `K` experts with the most unsaved token
//!   updates, using an [`ExpertLoadTracker`].

use moc_moe::{ExpertId, ExpertLoadTracker};
use serde::{Deserialize, Serialize};

/// PEC expert-selection strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SelectionStrategy {
    /// Save every expert (conventional full checkpointing).
    Full,
    /// Rotating interleaved selection (Fig. 4), the paper's default.
    Sequential,
    /// Save the experts with the highest unsaved update volume.
    LoadAware,
}

/// Configuration of the PEC mechanism for one checkpoint level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct PecConfig {
    /// Experts saved per MoE layer per checkpoint (`K_pec`).
    pub k: usize,
    /// Experts per MoE layer (`N`).
    pub num_experts: usize,
    /// Number of MoE layers (`N_moe`).
    pub num_moe_layers: usize,
    /// Selection strategy.
    pub strategy: SelectionStrategy,
}

impl PecConfig {
    /// Creates a sequential-selection PEC configuration.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0` or `k > num_experts`.
    pub fn sequential(k: usize, num_experts: usize, num_moe_layers: usize) -> Self {
        Self::new(
            k,
            num_experts,
            num_moe_layers,
            SelectionStrategy::Sequential,
        )
    }

    /// Creates a load-aware PEC configuration.
    pub fn load_aware(k: usize, num_experts: usize, num_moe_layers: usize) -> Self {
        Self::new(k, num_experts, num_moe_layers, SelectionStrategy::LoadAware)
    }

    /// Creates a full-saving configuration (`K = N`).
    pub fn full(num_experts: usize, num_moe_layers: usize) -> Self {
        Self::new(
            num_experts,
            num_experts,
            num_moe_layers,
            SelectionStrategy::Full,
        )
    }

    /// Creates a PEC configuration with an explicit strategy.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0` or `k > num_experts`.
    pub fn new(
        k: usize,
        num_experts: usize,
        num_moe_layers: usize,
        strategy: SelectionStrategy,
    ) -> Self {
        assert!(k >= 1, "k must be at least 1");
        assert!(k <= num_experts, "k {k} exceeds expert count {num_experts}");
        Self {
            k,
            num_experts,
            num_moe_layers,
            strategy,
        }
    }

    /// Whether this configuration saves all experts.
    pub fn is_full(&self) -> bool {
        self.k == self.num_experts
    }

    /// Number of experts saved model-wide per checkpoint (`K · N_moe`).
    pub fn experts_per_checkpoint(&self) -> usize {
        self.k * self.num_moe_layers
    }

    /// Checkpoints needed before every expert has been saved at least once
    /// under sequential selection (`⌈N/K⌉`).
    pub fn rotation_period(&self) -> usize {
        self.num_experts.div_ceil(self.k)
    }

    /// Experts selected for the checkpoint with 0-based index
    /// `checkpoint_index`, across all MoE layers.
    ///
    /// For [`SelectionStrategy::LoadAware`] a tracker must be supplied via
    /// [`PecConfig::select_with_tracker`]; this method falls back to
    /// sequential order in that case.
    pub fn select(&self, checkpoint_index: u64) -> Vec<ExpertId> {
        self.select_inner(checkpoint_index, None)
    }

    /// Experts selected at `checkpoint_index`, consulting `tracker` for
    /// load-aware prioritisation.
    pub fn select_with_tracker(
        &self,
        checkpoint_index: u64,
        tracker: &ExpertLoadTracker,
    ) -> Vec<ExpertId> {
        self.select_inner(checkpoint_index, Some(tracker))
    }

    fn select_inner(
        &self,
        checkpoint_index: u64,
        tracker: Option<&ExpertLoadTracker>,
    ) -> Vec<ExpertId> {
        let n = self.num_experts;
        let mut out = Vec::with_capacity(self.experts_per_checkpoint());
        match (self.strategy, tracker) {
            (SelectionStrategy::Full, _) => {
                for layer in 0..self.num_moe_layers {
                    for expert in 0..n {
                        out.push(ExpertId::new(layer, expert));
                    }
                }
            }
            (SelectionStrategy::LoadAware, Some(t)) => {
                assert_eq!(t.num_layers(), self.num_moe_layers, "tracker layer arity");
                assert_eq!(t.num_experts(), n, "tracker expert arity");
                for layer in 0..self.num_moe_layers {
                    for &expert in t.hottest_experts(layer).iter().take(self.k) {
                        out.push(ExpertId::new(layer, expert));
                    }
                }
            }
            (SelectionStrategy::Sequential, _) | (SelectionStrategy::LoadAware, None) => {
                for layer in 0..self.num_moe_layers {
                    let base = layer as u64 + checkpoint_index * self.k as u64;
                    for j in 0..self.k {
                        let expert = ((base + j as u64) % n as u64) as usize;
                        out.push(ExpertId::new(layer, expert));
                    }
                }
            }
        }
        out
    }

    /// How many of the selected experts at `checkpoint_index` live on each
    /// EP rank, for a layer-expert → EP-rank placement function.
    ///
    /// This is the per-rank *expert-save count* used to reason about
    /// workload imbalance (Eq. 9).
    pub fn selection_load_per_ep_rank(
        &self,
        checkpoint_index: u64,
        ep_degree: usize,
        placement: impl Fn(usize) -> usize,
    ) -> Vec<usize> {
        let mut loads = vec![0usize; ep_degree];
        for id in self.select(checkpoint_index) {
            let rank = placement(id.expert);
            assert!(rank < ep_degree, "placement returned out-of-range rank");
            loads[rank] += 1;
        }
        loads
    }

    /// Whether the PEC configuration satisfies the imbalance condition of
    /// Eq. 9 for a topology (`true` means the expert-save workload cannot
    /// divide evenly over the EP ranks / expert replicas).
    pub fn is_imbalanced(&self, ep_degree: usize, dp_degree: usize) -> bool {
        let kn = self.k * self.num_moe_layers;
        if !kn.is_multiple_of(ep_degree) {
            return true;
        }
        let per_rank = kn / ep_degree;
        let replicas = dp_degree / ep_degree;
        replicas > 0 && !per_rank.is_multiple_of(replicas)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure4_sequence() {
        // Fig. 4: MoE layers 1,3,5,7 (positions 0..4), N = 3 ranks with one
        // expert each, K = 1. First checkpoint saves experts (0,1,2,0) per
        // layer position; the next saves (1,2,0,1).
        let pec = PecConfig::sequential(1, 3, 4);
        let t0: Vec<usize> = pec.select(0).iter().map(|e| e.expert).collect();
        assert_eq!(t0, vec![0, 1, 2, 0]);
        let t1: Vec<usize> = pec.select(1).iter().map(|e| e.expert).collect();
        assert_eq!(t1, vec![1, 2, 0, 1]);
    }

    #[test]
    fn sequential_covers_all_experts_in_rotation_period() {
        for (k, n) in [(1, 8), (2, 8), (4, 16), (3, 8), (5, 16)] {
            let pec = PecConfig::sequential(k, n, 3);
            let mut saved = vec![vec![false; n]; 3];
            for t in 0..pec.rotation_period() as u64 {
                for id in pec.select(t) {
                    saved[id.layer][id.expert] = true;
                }
            }
            for layer in &saved {
                assert!(
                    layer.iter().all(|&s| s),
                    "k={k} n={n}: rotation must cover all experts"
                );
            }
        }
    }

    #[test]
    fn sequential_selects_k_per_layer() {
        let pec = PecConfig::sequential(3, 8, 5);
        for t in 0..20 {
            let sel = pec.select(t);
            assert_eq!(sel.len(), 15);
            for layer in 0..5 {
                let count = sel.iter().filter(|e| e.layer == layer).count();
                assert_eq!(count, 3);
            }
        }
    }

    #[test]
    fn full_selects_everything() {
        let pec = PecConfig::full(4, 2);
        let sel = pec.select(9);
        assert_eq!(sel.len(), 8);
        assert!(pec.is_full());
    }

    #[test]
    fn load_aware_picks_hottest() {
        let mut tracker = ExpertLoadTracker::new(2, 4);
        tracker.record(0, &[100, 5, 50, 1]);
        tracker.record(1, &[1, 2, 3, 400]);
        let pec = PecConfig::load_aware(2, 4, 2);
        let sel = pec.select_with_tracker(0, &tracker);
        let layer0: Vec<usize> = sel
            .iter()
            .filter(|e| e.layer == 0)
            .map(|e| e.expert)
            .collect();
        let layer1: Vec<usize> = sel
            .iter()
            .filter(|e| e.layer == 1)
            .map(|e| e.expert)
            .collect();
        assert_eq!(layer0, vec![0, 2]);
        assert_eq!(layer1, vec![3, 2]);
    }

    #[test]
    fn load_aware_without_tracker_falls_back_to_sequential() {
        let la = PecConfig::load_aware(1, 4, 2);
        let seq = PecConfig::sequential(1, 4, 2);
        assert_eq!(la.select(3), seq.select(3));
    }

    #[test]
    fn rotation_period_ceil() {
        assert_eq!(PecConfig::sequential(3, 8, 1).rotation_period(), 3);
        assert_eq!(PecConfig::sequential(4, 8, 1).rotation_period(), 2);
        assert_eq!(PecConfig::sequential(8, 8, 1).rotation_period(), 1);
    }

    #[test]
    fn selection_load_per_rank_balances_over_time() {
        // 4 MoE layers, 8 experts over 8 EP ranks (1 expert each), K=1:
        // each checkpoint touches 4 of 8 ranks (imbalanced, Eq. 9), but a
        // full rotation touches all ranks equally.
        let pec = PecConfig::sequential(1, 8, 4);
        assert!(pec.is_imbalanced(8, 8));
        let mut totals = vec![0usize; 8];
        for t in 0..8 {
            let loads = pec.selection_load_per_ep_rank(t, 8, |e| e);
            assert_eq!(loads.iter().sum::<usize>(), 4);
            for (tot, l) in totals.iter_mut().zip(&loads) {
                *tot += l;
            }
        }
        assert!(totals.iter().all(|&t| t == 4), "totals {totals:?}");
    }

    #[test]
    fn imbalance_condition_eq9() {
        // K·N_moe = 12, D_ep = 8 -> 12 mod 8 != 0: imbalanced (paper's
        // GPT-350M-16E K=1 example).
        let pec = PecConfig::sequential(1, 16, 12);
        assert!(pec.is_imbalanced(8, 8));
        // K·N_moe = 16, D_ep = 16, D_dp = 16: 16 mod 16 == 0 and
        // 1 mod 1 == 0: balanced.
        let pec = PecConfig::sequential(1, 16, 16);
        assert!(!pec.is_imbalanced(16, 16));
        // Second clause: per-rank 2, replicas 2 -> balanced; replicas 4 ->
        // 2 mod 4 != 0 -> imbalanced.
        let pec = PecConfig::sequential(2, 16, 16);
        assert!(!pec.is_imbalanced(16, 32));
        assert!(pec.is_imbalanced(16, 64));
    }

    #[test]
    #[should_panic(expected = "k must be at least 1")]
    fn zero_k_panics() {
        PecConfig::sequential(0, 8, 2);
    }

    #[test]
    #[should_panic(expected = "exceeds expert count")]
    fn oversize_k_panics() {
        PecConfig::sequential(9, 8, 2);
    }
}
