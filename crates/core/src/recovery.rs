//! Two-level recovery planning — Section 5.1 and Fig. 8.
//!
//! After a fault, every module must be restored from the freshest source
//! still holding it: faulted nodes lost their CPU memory and must read
//! persistent storage; healthy nodes can restore from their in-memory
//! snapshots, which may hold *newer* expert states than storage
//! (snapshot-PEC saves more experts than persist-PEC), reducing both
//! restore traffic and PLT.

use moc_store::{ClusterMemory, NodeId, ObjectStore, StatePart, StoreError};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Where a module's freshest recoverable state lives.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RecoverySource {
    /// In the CPU memory of a healthy node.
    Memory {
        /// The node holding the snapshot.
        node: usize,
    },
    /// In persistent storage.
    Storage,
}

/// One restore action of a recovery plan.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RecoveryAction {
    /// Module to restore.
    pub module: String,
    /// State category.
    pub part: StatePart,
    /// Version (iteration) that will be restored.
    pub version: u64,
    /// Where the bytes come from.
    pub source: RecoverySource,
}

/// A complete recovery plan.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RecoveryPlan {
    /// Iteration training resumes from (the recovery baseline `r`).
    pub resume_iteration: u64,
    /// Restore actions, one per requested module slot.
    pub actions: Vec<RecoveryAction>,
}

impl RecoveryPlan {
    /// Actions restored from memory.
    pub fn memory_actions(&self) -> usize {
        self.actions
            .iter()
            .filter(|a| matches!(a.source, RecoverySource::Memory { .. }))
            .count()
    }

    /// Actions restored from storage.
    pub fn storage_actions(&self) -> usize {
        self.actions.len() - self.memory_actions()
    }

    /// Sum over actions of `resume_iteration - version`: the total
    /// staleness recovery could not avoid (drives PLT).
    pub fn total_staleness(&self) -> u64 {
        self.actions
            .iter()
            .map(|a| self.resume_iteration.saturating_sub(a.version))
            .sum()
    }
}

/// Error building a recovery plan.
#[derive(Debug)]
pub enum RecoveryError {
    /// A module has no recoverable state anywhere.
    Unrecoverable {
        /// The module missing from every source.
        module: String,
        /// Its state category.
        part: StatePart,
    },
    /// The object store failed.
    Store(StoreError),
}

impl fmt::Display for RecoveryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RecoveryError::Unrecoverable { module, part } => {
                write!(f, "no recoverable state for {module}@{part}")
            }
            RecoveryError::Store(e) => write!(f, "recovery store failure: {e}"),
        }
    }
}

impl std::error::Error for RecoveryError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RecoveryError::Store(e) => Some(e),
            _ => None,
        }
    }
}

impl From<StoreError> for RecoveryError {
    fn from(e: StoreError) -> Self {
        RecoveryError::Store(e)
    }
}

/// Plans recovery of the given module slots after a fault.
///
/// * `slots` — `(module, part)` pairs that must be restored, with the node
///   that owns each module's snapshot (or `None` if the module is only in
///   storage).
/// * `healthy` — per-node health mask after the fault.
/// * `at_iteration` — upper bound on restorable versions (the iteration
///   the fault struck).
/// * `two_level` — whether in-memory snapshots may serve recovery.
///
/// # Errors
///
/// [`RecoveryError::Unrecoverable`] if neither memory nor storage holds a
/// module, or a store error.
pub fn plan_recovery(
    slots: &[(String, StatePart)],
    memory: &ClusterMemory,
    store: &dyn ObjectStore,
    healthy: &[bool],
    at_iteration: u64,
    two_level: bool,
) -> Result<RecoveryPlan, RecoveryError> {
    let mut actions = Vec::with_capacity(slots.len());
    let mut resume = u64::MAX;
    for (module, part) in slots {
        let storage_version = store.latest_version(module, *part, at_iteration)?;
        let memory_hit = if two_level {
            memory
                .newest_across(module, *part, healthy)
                .filter(|&(_, v)| v <= at_iteration)
        } else {
            None
        };
        let (version, source) = match (memory_hit, storage_version) {
            (Some((node, mv)), Some(sv)) if mv >= sv => {
                (mv, RecoverySource::Memory { node: node.0 })
            }
            (Some((node, mv)), None) => (mv, RecoverySource::Memory { node: node.0 }),
            (_, Some(sv)) => (sv, RecoverySource::Storage),
            (None, None) => {
                return Err(RecoveryError::Unrecoverable {
                    module: module.clone(),
                    part: *part,
                })
            }
        };
        resume = resume.min(version);
        actions.push(RecoveryAction {
            module: module.clone(),
            part: *part,
            version,
            source,
        });
    }
    // Training resumes from the newest iteration at which the *non-expert*
    // state is complete; under PEC the non-expert part is saved at every
    // checkpoint, so the max version across actions is that iteration.
    // Experts restored to older versions are exactly the PLT loss.
    let resume_iteration = actions.iter().map(|a| a.version).max().unwrap_or(0);
    Ok(RecoveryPlan {
        resume_iteration,
        actions,
    })
}

/// Fetches a planned action's payload bytes.
///
/// # Errors
///
/// [`RecoveryError::Unrecoverable`] if the source no longer holds the
/// shard (e.g. pruned between planning and fetching).
pub fn fetch_action(
    action: &RecoveryAction,
    memory: &ClusterMemory,
    store: &dyn ObjectStore,
) -> Result<bytes::Bytes, RecoveryError> {
    match action.source {
        RecoverySource::Memory { node } => memory
            .node(NodeId(node))
            .get(&action.module, action.part)
            .filter(|(v, _)| *v == action.version)
            .map(|(_, b)| b)
            .ok_or_else(|| RecoveryError::Unrecoverable {
                module: action.module.clone(),
                part: action.part,
            }),
        RecoverySource::Storage => {
            let key = moc_store::ShardKey::new(&action.module, action.part, action.version);
            store
                .get(&key)?
                .ok_or_else(|| RecoveryError::Unrecoverable {
                    module: action.module.clone(),
                    part: action.part,
                })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use moc_store::{MemoryObjectStore, ShardKey};

    fn setup() -> (ClusterMemory, MemoryObjectStore) {
        let memory = ClusterMemory::new(2);
        let store = MemoryObjectStore::new();
        // Storage has everything at version 10; node 1 memory has e1 at 20.
        for m in ["ne", "e0", "e1"] {
            store
                .put(
                    &ShardKey::new(m, StatePart::Weights, 10),
                    Bytes::from_static(b"old"),
                )
                .unwrap();
        }
        memory.node(NodeId(0)).put(
            &ShardKey::new("e0", StatePart::Weights, 20),
            Bytes::from_static(b"new0"),
        );
        memory.node(NodeId(1)).put(
            &ShardKey::new("e1", StatePart::Weights, 20),
            Bytes::from_static(b"new1"),
        );
        (memory, store)
    }

    fn slots() -> Vec<(String, StatePart)> {
        ["ne", "e0", "e1"]
            .iter()
            .map(|m| (m.to_string(), StatePart::Weights))
            .collect()
    }

    #[test]
    fn two_level_prefers_memory_on_healthy_nodes() {
        let (memory, store) = setup();
        // Node 0 died.
        let plan = plan_recovery(&slots(), &memory, &store, &[false, true], 25, true).unwrap();
        let by_module: std::collections::HashMap<_, _> = plan
            .actions
            .iter()
            .map(|a| (a.module.as_str(), a))
            .collect();
        // e0's snapshot died with node 0 -> storage at v10.
        assert_eq!(by_module["e0"].source, RecoverySource::Storage);
        assert_eq!(by_module["e0"].version, 10);
        // e1 recovers from node 1 memory at v20.
        assert_eq!(by_module["e1"].source, RecoverySource::Memory { node: 1 });
        assert_eq!(by_module["e1"].version, 20);
        assert_eq!(plan.memory_actions(), 1);
        assert_eq!(plan.storage_actions(), 2);
    }

    #[test]
    fn storage_only_ignores_memory() {
        let (memory, store) = setup();
        let plan = plan_recovery(&slots(), &memory, &store, &[true, true], 25, false).unwrap();
        assert!(plan
            .actions
            .iter()
            .all(|a| a.source == RecoverySource::Storage));
        assert!(plan.total_staleness() == 0); // everything at v10, resume at 10
    }

    #[test]
    fn two_level_reduces_staleness() {
        let (memory, store) = setup();
        let two = plan_recovery(&slots(), &memory, &store, &[false, true], 25, true).unwrap();
        let one = plan_recovery(&slots(), &memory, &store, &[false, true], 25, false).unwrap();
        // With memory, e1 restores at 20 while resume sits at 20: the
        // stale modules are ne and e0 (10 each behind).
        assert_eq!(two.resume_iteration, 20);
        assert_eq!(one.resume_iteration, 10);
        assert!(two.memory_actions() > 0);
        assert_eq!(one.memory_actions(), 0);
    }

    #[test]
    fn at_iteration_bounds_versions() {
        let (memory, store) = setup();
        // A fault at iteration 15 cannot use the v20 snapshots.
        let plan = plan_recovery(&slots(), &memory, &store, &[true, true], 15, true).unwrap();
        assert!(plan.actions.iter().all(|a| a.version <= 15));
    }

    #[test]
    fn unrecoverable_module_errors() {
        let (memory, store) = setup();
        let missing = vec![("ghost".to_string(), StatePart::Optimizer)];
        let err = plan_recovery(&missing, &memory, &store, &[true, true], 99, true);
        assert!(matches!(err, Err(RecoveryError::Unrecoverable { .. })));
    }

    #[test]
    fn fetch_returns_planned_bytes() {
        let (memory, store) = setup();
        let plan = plan_recovery(&slots(), &memory, &store, &[true, true], 25, true).unwrap();
        for action in &plan.actions {
            let bytes = fetch_action(action, &memory, &store).unwrap();
            match action.source {
                RecoverySource::Memory { .. } => {
                    assert!(bytes.starts_with(b"new"));
                }
                RecoverySource::Storage => assert_eq!(&bytes[..], b"old"),
            }
        }
    }

    #[test]
    fn memory_only_module_recovers_from_memory() {
        let memory = ClusterMemory::new(1);
        let store = MemoryObjectStore::new();
        memory.node(NodeId(0)).put(
            &ShardKey::new("only-mem", StatePart::Weights, 5),
            Bytes::from_static(b"m"),
        );
        let plan = plan_recovery(
            &[("only-mem".to_string(), StatePart::Weights)],
            &memory,
            &store,
            &[true],
            10,
            true,
        )
        .unwrap();
        assert_eq!(plan.actions[0].source, RecoverySource::Memory { node: 0 });
    }
}
