//! Dynamic-K: adapting `K_pec` to fault accumulation (Section 5.3).
//!
//! Each fault under PEC adds PLT. With a fixed small `K_pec`, cumulative
//! PLT grows linearly with the fault count and eventually crosses the
//! accuracy-safe threshold (3.75%, Fig. 5). The Dynamic-K strategy
//! recalibrates `K_pec` after every fault recovery: when the PLT spent at
//! the current `K` exhausts that level's share of the budget, `K` doubles
//! (halving the per-fault PLT increment), repeating until all experts are
//! checkpointed.

use serde::{Deserialize, Serialize};

/// The accuracy-safe PLT threshold observed in Fig. 5.
pub const DEFAULT_PLT_BUDGET: f64 = 0.0375;

/// Controller implementing the Dynamic-K strategy.
///
/// The budget is spent geometrically: the controller doubles `K` whenever
/// cumulative PLT exceeds `budget · (1 − 2^{−m})`, where `m` counts the
/// doublings so far. Each doubling halves the per-fault PLT increment, so
/// cumulative PLT approaches — but stays below — the budget until `K`
/// saturates at `N` (after which PLT stops growing entirely).
///
/// # Examples
///
/// ```
/// use moc_core::dynamic_k::DynamicK;
/// let mut ctl = DynamicK::new(1, 8, 0.0375);
/// assert_eq!(ctl.k(), 1);
/// // A large fault burst forces K upward.
/// for _ in 0..4 {
///     ctl.on_fault_recovery(0.01);
/// }
/// assert!(ctl.k() > 1);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DynamicK {
    k: usize,
    num_experts: usize,
    budget: f64,
    cumulative_plt: f64,
    doublings: u32,
    history: Vec<(usize, f64)>,
}

impl DynamicK {
    /// Creates a controller starting at `initial_k` of `num_experts`
    /// experts with the given cumulative PLT budget.
    ///
    /// # Panics
    ///
    /// Panics if `initial_k` is zero or exceeds `num_experts`, or the
    /// budget is not positive.
    pub fn new(initial_k: usize, num_experts: usize, budget: f64) -> Self {
        assert!(
            initial_k >= 1 && initial_k <= num_experts,
            "invalid initial k"
        );
        assert!(budget > 0.0, "budget must be positive");
        Self {
            k: initial_k,
            num_experts,
            budget,
            cumulative_plt: 0.0,
            doublings: 0,
            history: Vec::new(),
        }
    }

    /// Controller with the paper's 3.75% budget.
    pub fn with_default_budget(initial_k: usize, num_experts: usize) -> Self {
        Self::new(initial_k, num_experts, DEFAULT_PLT_BUDGET)
    }

    /// Current `K_pec`.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Cumulative PLT absorbed so far.
    pub fn cumulative_plt(&self) -> f64 {
        self.cumulative_plt
    }

    /// The PLT budget.
    pub fn budget(&self) -> f64 {
        self.budget
    }

    /// `(K at fault time, cumulative PLT after fault)` per fault handled.
    pub fn history(&self) -> &[(usize, f64)] {
        &self.history
    }

    /// Cumulative-PLT level at which the next doubling triggers.
    pub fn next_trigger(&self) -> f64 {
        self.budget * (1.0 - 0.5f64.powi(self.doublings as i32 + 1))
    }

    /// Registers the PLT incurred by one fault recovery and recalibrates
    /// `K`. Returns the (possibly doubled) `K` to use from now on.
    pub fn on_fault_recovery(&mut self, plt_incurred: f64) -> usize {
        assert!(plt_incurred >= 0.0, "plt cannot be negative");
        let k_at_fault = self.k;
        self.cumulative_plt += plt_incurred;
        while self.k < self.num_experts && self.cumulative_plt > self.next_trigger() {
            self.k = (self.k * 2).min(self.num_experts);
            self.doublings += 1;
        }
        self.history.push((k_at_fault, self.cumulative_plt));
        self.k
    }

    /// Whether `K` has saturated at full checkpointing.
    pub fn is_saturated(&self) -> bool {
        self.k == self.num_experts
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plt::analytic_plt;

    #[test]
    fn starts_at_initial_k() {
        let ctl = DynamicK::with_default_budget(1, 16);
        assert_eq!(ctl.k(), 1);
        assert_eq!(ctl.cumulative_plt(), 0.0);
        assert!(!ctl.is_saturated());
    }

    #[test]
    fn doubles_when_budget_share_spent() {
        let mut ctl = DynamicK::new(1, 16, 0.04);
        // First trigger at 0.02.
        assert!((ctl.next_trigger() - 0.02).abs() < 1e-12);
        assert_eq!(ctl.on_fault_recovery(0.019), 1);
        assert_eq!(ctl.on_fault_recovery(0.002), 2);
        // Exactly hitting a trigger does not double (strict comparison).
        // Next trigger at 0.03.
        assert!((ctl.next_trigger() - 0.03).abs() < 1e-12);
    }

    #[test]
    fn saturates_at_n() {
        let mut ctl = DynamicK::new(4, 8, 0.01);
        ctl.on_fault_recovery(1.0);
        assert_eq!(ctl.k(), 8);
        assert!(ctl.is_saturated());
        // Further faults never push K beyond N.
        ctl.on_fault_recovery(1.0);
        assert_eq!(ctl.k(), 8);
    }

    #[test]
    fn history_records_k_at_fault_time() {
        let mut ctl = DynamicK::new(1, 8, 0.02);
        ctl.on_fault_recovery(0.015);
        ctl.on_fault_recovery(0.001);
        let hist = ctl.history();
        assert_eq!(hist.len(), 2);
        assert_eq!(hist[0].0, 1);
        // The doubling happened during the first fault.
        assert_eq!(hist[1].0, 2);
    }

    #[test]
    fn fig15b_shape_dynamic_k_bounds_plt() {
        // Reproduce the Fig. 15(b) mechanism: per-fault PLT at K is
        // proportional to (N/K - 1); with fixed K=1 cumulative PLT grows
        // linearly and bursts the budget, while Dynamic-K stays below it.
        let n = 16;
        let per_fault = |k: usize| analytic_plt(k, n, 2, 2000, 1);
        let mut fixed_total = 0.0;
        let mut ctl = DynamicK::with_default_budget(1, n);
        for _ in 0..32 {
            fixed_total += per_fault(1);
            let k = ctl.k();
            ctl.on_fault_recovery(per_fault(k));
        }
        assert!(
            fixed_total > DEFAULT_PLT_BUDGET,
            "fixed K=1 must burst the budget: {fixed_total}"
        );
        assert!(
            ctl.cumulative_plt() < fixed_total,
            "dynamic {} must stay below fixed {}",
            ctl.cumulative_plt(),
            fixed_total
        );
        assert!(ctl.k() > 1, "K must have been raised");
    }

    #[test]
    #[should_panic(expected = "invalid initial k")]
    fn zero_k_rejected() {
        DynamicK::new(0, 8, 0.03);
    }

    #[test]
    #[should_panic(expected = "budget must be positive")]
    fn zero_budget_rejected() {
        DynamicK::new(1, 8, 0.0);
    }
}
