//! The analytic fault-tolerance overhead model — Eqs. 3–4 and 10–16.
//!
//! Total checkpointing overhead over a training run decomposes into the
//! per-checkpoint saving overhead amortised across `I_total / I_ckpt`
//! checkpoints plus, per fault, a restart cost and the lost progress since
//! the previous checkpoint (≈ `I_ckpt / 2` iterations on average):
//!
//! ```text
//! O_ckpt ≈ O_save · I_total / I_ckpt  +  Σ_faults (O_restart + I_ckpt/2)     (Eq. 4)
//! ```
//!
//! With asynchronous checkpointing, `O_save` collapses to the part of the
//! GPU→CPU snapshot that the next iteration's forward/backward pass cannot
//! hide (Eq. 10). This module provides those closed forms plus the
//! break-even comparison of MoC against full checkpointing (Eq. 14–16),
//! the overhead-minimising checkpoint interval, and the adaptive
//! `(K_snapshot, K_persist)` configuration scheme of Section 5.3.

use serde::{Deserialize, Serialize};

/// Inputs to the overhead model, all in seconds / iterations.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OverheadInputs {
    /// Per-checkpoint saving overhead `O_save`, in seconds of training
    /// time lost.
    pub o_save_sec: f64,
    /// Restart overhead per fault `O_restart`, in seconds.
    pub o_restart_sec: f64,
    /// Checkpoint interval `I_ckpt` in iterations.
    pub i_ckpt: f64,
    /// Total training iterations `I_total`.
    pub i_total: f64,
    /// Duration of one training iteration in seconds (converts lost
    /// iterations into seconds).
    pub iteration_sec: f64,
    /// Constant failure rate λ (faults per iteration, Eq. 11).
    pub lambda: f64,
}

impl OverheadInputs {
    /// Expected number of faults `N_fault ≈ λ · I_total` (Eq. 11).
    pub fn expected_faults(&self) -> f64 {
        self.lambda * self.i_total
    }

    /// Total fault-tolerance overhead `O_ckpt` in seconds (Eq. 4/12/13).
    pub fn total_overhead_sec(&self) -> f64 {
        assert!(self.i_ckpt > 0.0, "checkpoint interval must be positive");
        let saving = self.o_save_sec * self.i_total / self.i_ckpt;
        let per_fault = self.o_restart_sec + 0.5 * self.i_ckpt * self.iteration_sec;
        saving + self.expected_faults() * per_fault
    }

    /// The `I_ckpt`-dependent part of the overhead divided out per
    /// iteration (the objective minimised by [`optimal_interval`]).
    pub fn overhead_per_iteration_sec(&self) -> f64 {
        self.total_overhead_sec() / self.i_total
    }
}

/// Per-checkpoint saving overhead under asynchronous checkpointing
/// (Eq. 10): only the snapshot time exceeding one iteration's
/// forward+backward window stalls training.
pub fn async_save_overhead(t_snapshot_sec: f64, t_fb_sec: f64) -> f64 {
    (t_snapshot_sec - t_fb_sec).max(0.0)
}

/// Overhead-minimising checkpoint interval in iterations.
///
/// Setting `d/dI [O_save·I_total/I + λ·I_total·I·t_iter/2] = 0` gives
/// `I* = sqrt(2·O_save / (λ·t_iter))` — Young's classic interval. The
/// result is clamped to at least `min_interval` (the persist duration
/// bounds how often checkpoints can complete, Section 5.3).
pub fn optimal_interval(
    o_save_sec: f64,
    lambda: f64,
    iteration_sec: f64,
    min_interval: f64,
) -> f64 {
    assert!(lambda > 0.0, "need a positive failure rate");
    assert!(iteration_sec > 0.0, "need a positive iteration time");
    let unconstrained = (2.0 * o_save_sec.max(0.0) / (lambda * iteration_sec)).sqrt();
    unconstrained.max(min_interval)
}

/// Break-even check of Eq. 16: does MoC beat full checkpointing?
///
/// Both sides drop the common `λ·O_restart` term; the comparison is
/// `O_save/I_ckpt + λ·I_ckpt/2` (in per-iteration seconds) for each method.
pub fn moc_beats_full(
    moc_o_save_sec: f64,
    moc_i_ckpt: f64,
    full_o_save_sec: f64,
    full_i_ckpt: f64,
    lambda: f64,
    iteration_sec: f64,
) -> bool {
    let lhs = moc_o_save_sec / moc_i_ckpt + lambda * moc_i_ckpt * iteration_sec / 2.0;
    let rhs = full_o_save_sec / full_i_ckpt + lambda * full_i_ckpt * iteration_sec / 2.0;
    lhs < rhs
}

/// Inputs for choosing `(K_snapshot, K_persist)` adaptively (Section 5.3).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AdaptivePecInputs {
    /// Experts per MoE layer (`N`).
    pub num_experts: usize,
    /// Seconds to snapshot one expert's states per rank-parallel step
    /// (i.e. snapshot time added per unit of `K`, bottleneck rank).
    pub snapshot_sec_per_k: f64,
    /// Seconds to snapshot the non-expert states (paid regardless of `K`).
    pub snapshot_sec_base: f64,
    /// Seconds to persist one expert's states per unit of `K_persist`.
    pub persist_sec_per_k: f64,
    /// Seconds to persist the non-expert states.
    pub persist_sec_base: f64,
    /// Forward+backward window of one iteration, in seconds (`T_F&B`).
    pub t_fb_sec: f64,
}

/// The adaptive configuration chosen for two-level PEC.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AdaptivePecChoice {
    /// Chosen `K_snapshot`.
    pub k_snapshot: usize,
    /// Chosen `K_persist`.
    pub k_persist: usize,
    /// Predicted snapshot duration at `k_snapshot`.
    pub t_snapshot_sec: f64,
    /// Predicted persist duration at `k_persist` — the lower bound on the
    /// checkpoint interval in seconds.
    pub min_interval_sec: f64,
    /// Predicted `O_save` (Eq. 10) at the chosen configuration.
    pub o_save_sec: f64,
}

/// Chooses `(K_snapshot, K_persist)` per the paper's primary strategy:
/// the largest `K_snapshot` whose snapshot still hides inside the next
/// iteration's F&B window (minimising PLT at zero stall), and the given
/// `k_persist` (small — two-level recovery already curbs its PLT cost),
/// clamped to `K_snapshot`.
pub fn choose_adaptive_pec(inputs: &AdaptivePecInputs, k_persist: usize) -> AdaptivePecChoice {
    assert!(inputs.num_experts >= 1, "need experts");
    let snap_time = |k: usize| inputs.snapshot_sec_base + k as f64 * inputs.snapshot_sec_per_k;
    let mut k_snapshot = 1;
    for k in (1..=inputs.num_experts).rev() {
        if snap_time(k) <= inputs.t_fb_sec {
            k_snapshot = k;
            break;
        }
    }
    // Even K=1 may stall; it is still the minimal-stall choice.
    let t_snapshot_sec = snap_time(k_snapshot);
    let k_persist = k_persist.clamp(1, k_snapshot);
    let min_interval_sec = inputs.persist_sec_base + k_persist as f64 * inputs.persist_sec_per_k;
    AdaptivePecChoice {
        k_snapshot,
        k_persist,
        t_snapshot_sec,
        min_interval_sec,
        o_save_sec: async_save_overhead(t_snapshot_sec, inputs.t_fb_sec),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn inputs() -> OverheadInputs {
        OverheadInputs {
            o_save_sec: 2.0,
            o_restart_sec: 60.0,
            i_ckpt: 100.0,
            i_total: 10_000.0,
            iteration_sec: 1.0,
            lambda: 1e-3,
        }
    }

    #[test]
    fn eq4_total_overhead() {
        let i = inputs();
        // saving: 2 * 10000/100 = 200; faults: 10 * (60 + 50) = 1100.
        assert!((i.total_overhead_sec() - 1300.0).abs() < 1e-9);
        assert!((i.expected_faults() - 10.0).abs() < 1e-12);
    }

    #[test]
    fn eq10_async_overhead_clamps_at_zero() {
        assert_eq!(async_save_overhead(3.0, 5.0), 0.0);
        assert!((async_save_overhead(5.0, 3.0) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn optimal_interval_is_youngs_formula() {
        // sqrt(2*2 / (1e-3*1)) = sqrt(4000) ≈ 63.25.
        let i = optimal_interval(2.0, 1e-3, 1.0, 0.0);
        assert!((i - 4000f64.sqrt()).abs() < 1e-9);
    }

    #[test]
    fn optimal_interval_clamped_by_persist() {
        let i = optimal_interval(0.0, 1e-3, 1.0, 25.0);
        assert_eq!(i, 25.0);
    }

    #[test]
    fn smaller_o_save_allows_smaller_interval_and_less_overhead() {
        // Strategy (2) of Section 6.2.5: MoC halves I_ckpt at equal
        // O_save/I_ckpt ratio and wins via smaller lost progress.
        let full = OverheadInputs {
            o_save_sec: 4.0,
            i_ckpt: 200.0,
            ..inputs()
        };
        let moc = OverheadInputs {
            o_save_sec: 0.04,
            i_ckpt: 2.0,
            ..inputs()
        };
        assert!(moc.total_overhead_sec() < full.total_overhead_sec());
    }

    #[test]
    fn eq16_break_even() {
        assert!(moc_beats_full(0.05, 10.0, 4.0, 100.0, 1e-3, 1.0));
        // Same O_save/I ratio, same interval: tie broken by nothing -> not "less".
        assert!(!moc_beats_full(4.0, 100.0, 4.0, 100.0, 1e-3, 1.0));
        // MoC with identical ratio but smaller interval wins on lost time.
        assert!(moc_beats_full(0.4, 10.0, 4.0, 100.0, 1e-3, 1.0));
    }

    #[test]
    fn adaptive_picks_largest_hideable_k() {
        let inputs = AdaptivePecInputs {
            num_experts: 16,
            snapshot_sec_per_k: 0.1,
            snapshot_sec_base: 0.2,
            persist_sec_per_k: 0.5,
            persist_sec_base: 1.0,
            t_fb_sec: 1.0,
        };
        let choice = choose_adaptive_pec(&inputs, 1);
        // 0.2 + k*0.1 <= 1.0 -> k = 8.
        assert_eq!(choice.k_snapshot, 8);
        assert_eq!(choice.k_persist, 1);
        assert_eq!(choice.o_save_sec, 0.0);
        assert!((choice.min_interval_sec - 1.5).abs() < 1e-12);
    }

    #[test]
    fn adaptive_falls_back_to_k1_with_stall() {
        let inputs = AdaptivePecInputs {
            num_experts: 8,
            snapshot_sec_per_k: 1.0,
            snapshot_sec_base: 2.0,
            persist_sec_per_k: 0.5,
            persist_sec_base: 0.5,
            t_fb_sec: 1.0,
        };
        let choice = choose_adaptive_pec(&inputs, 4);
        assert_eq!(choice.k_snapshot, 1);
        // k_persist clamped to k_snapshot.
        assert_eq!(choice.k_persist, 1);
        assert!(choice.o_save_sec > 0.0);
    }

    #[test]
    fn full_k_chosen_when_everything_hides() {
        let inputs = AdaptivePecInputs {
            num_experts: 4,
            snapshot_sec_per_k: 0.01,
            snapshot_sec_base: 0.01,
            persist_sec_per_k: 0.1,
            persist_sec_base: 0.1,
            t_fb_sec: 2.0,
        };
        let choice = choose_adaptive_pec(&inputs, 4);
        assert_eq!(choice.k_snapshot, 4);
        assert_eq!(choice.k_persist, 4);
    }
}
