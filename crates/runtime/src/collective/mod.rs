//! Decentralized gradient collectives.
//!
//! PR 1's runtime exchanged gradients through a coordinator star: every
//! rank shipped its full gradient to the coordinator thread, which summed
//! in rank order and broadcast the result — `O(world · |grad|)` traffic
//! *and* compute serialized on one thread. This module replaces that hot
//! path with a decentralized chunked ring all-reduce executed by the rank
//! threads themselves:
//!
//! * [`mesh`] — [`RingMesh`]: per-rank peer channels forming the ring
//!   topology, rebuilt by the coordinator after every recovery;
//! * [`ring`] — [`ring_all_reduce`]: the chunked reduce + gather legs
//!   with the fixed rank-order combine contract (bitwise identical to the
//!   star sum) and deadline-based abort on peer death;
//! * [`buffers`] — [`ChunkPool`]: preallocated, never-growing chunk
//!   buffers, so steady-state iterations perform zero gradient-buffer
//!   heap allocations;
//! * [`groups`] — [`GroupMesh`]: TP replica-consistency rings and PP
//!   stage-relay chains for mixed-parallelism worlds (`tp · pp > 1`),
//!   with the same deadline-abort discipline as the ring;
//! * [`hier`] — [`hier_all_reduce`]: the two-level topology-aware
//!   variant — members fold onto a same-node leader, leaders pipeline
//!   the running partial along the node chain — reproducing the same
//!   bits while keeping most ranks' traffic intra-node.
//!
//! With TP/PP shard groups, one ring (or one star reduction) runs *per
//! DP gradient group* — the `dp` ranks sharing `(tp, pp)` coordinates —
//! rather than over the flat world.
//!
//! The coordinator star path remains available as [`CollectiveKind::Star`]
//! — both the paper-baseline configuration and the fallback the ring
//! aborts into when a heartbeat death is detected mid-collective.

pub mod buffers;
pub mod groups;
pub mod hier;
pub mod mesh;
pub mod ring;

pub use buffers::{ChunkPool, PooledBuf};
pub use groups::{GroupAbort, GroupEndpoints, GroupMesh, GroupMsg};
pub use hier::{hier_all_reduce, HierEndpoints, HierMesh, HierMsg};
pub use mesh::{Leg, RingEndpoints, RingMesh, RingMsg};
pub use ring::{ring_all_reduce, sequential_sum_reference, RingAbort, RingTimings};

/// Which collective performs the per-iteration gradient exchange.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CollectiveKind {
    /// Coordinator star: gather on the coordinator thread, sum in rank
    /// order, broadcast. Simple, but its coordinator-side cost grows
    /// linearly with world size.
    Star,
    /// Chunked ring all-reduce among the rank threads; per-rank cost is
    /// ~flat in world size. Falls back to [`CollectiveKind::Star`] for a
    /// configured window after a mid-collective fault. While the world
    /// is elastically shrunk, the ring keeps running over the survivors:
    /// the mesh keeps its full DP size and each dead slot is driven by
    /// its adopter with the adopted gradient, preserving the fold order
    /// bitwise.
    Ring,
    /// Two-level hierarchical reduce ([`hier_all_reduce`]): members fold
    /// onto their node leader in DP order, leaders pipeline the running
    /// partial along the node chain, and the result gathers back out —
    /// same bits as the flat ring and the star, but most ranks only talk
    /// to a same-node leader. Shares the ring's star-fallback window; a
    /// degraded (shrunk) run falls back to the survivor ring.
    Hierarchical,
}

impl std::fmt::Display for CollectiveKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CollectiveKind::Star => f.write_str("star"),
            CollectiveKind::Ring => f.write_str("ring"),
            CollectiveKind::Hierarchical => f.write_str("hierarchical"),
        }
    }
}
