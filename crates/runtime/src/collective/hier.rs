//! Two-level hierarchical all-reduce: intra-node fold, inter-node chain.
//!
//! The flat ring ([`super::ring`]) pipelines every chunk through **all**
//! `dp` ranks, so each hop crosses whatever link separates ring
//! neighbours — on a multi-node world most hops are inter-node. The
//! hierarchical reduce exploits the node topology instead: every node's
//! members fold onto a same-node *leader*, and only the leaders talk
//! across nodes. Most ranks touch a single same-node channel twice (one
//! upload, one download) per iteration.
//!
//! # Determinism contract
//!
//! Like the ring, the result must be bitwise identical to the star
//! reference fold `((g₀ + g₁) + g₂) + … + g_{dp−1}` scaled by `1/dp`.
//! Per-node partial sums would change the bracketing, so the reduce leg
//! instead pipelines the **running** partial along the leader chain in
//! node order:
//!
//! * the head leader (slot 0) seeds each chunk with a copy of its own
//!   gradient chunk and folds its node's members in slot order;
//! * each later leader folds its own chunk onto the arriving partial,
//!   then its members in slot order, and forwards;
//! * the tail leader completes the fold, applies the `1/dp` scale, and
//!   starts the gather leg: result chunks travel back up the leader
//!   chain, with every leader downloading copies to its members.
//!
//! The per-slot fold order is exactly `0, 1, …, dp−1` — the same
//! bracketing as the star and the flat ring — because the runtime's
//! `tp`-fastest rank layout makes a DP group's ascending-slot members
//! ascending in global rank, and `node_of_global` is monotone in rank, so
//! every node's slots form one contiguous run in slot order.
//!
//! # Memory
//!
//! Unlike the ring's backpressured `chunks + 2` pool, the hierarchical
//! pool is sized for the worst-case number of simultaneously in-flight
//! chunks (`2 · world · chunks + 2`: every member's uploads plus every
//! member's downloads plus the chain buffer), so no send path ever has to
//! poll for a free buffer and the upload / chain / download pipelines can
//! never deadlock against each other. That trades roughly two gradient
//! copies per participant of bounded, preallocated memory for a
//! backpressure-free hot path; the pool still never grows after
//! mesh-build.
//!
//! # Fault behaviour
//!
//! Identical discipline to the ring: every blocking receive carries a
//! deadline and a dead peer turns the collective into a [`RingAbort`]
//! instead of a hang. The caller reports the abort; the coordinator
//! recovers, rebuilds the mesh and falls back to the star for the
//! configured window.

use super::buffers::{ChunkPool, PooledBuf};
use super::mesh::Leg;
use super::ring::{RingAbort, RingTimings};
use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender};
use std::collections::BTreeMap;
use std::time::{Duration, Instant};

const POOL_MSG: &str = "hier pool sized for worst-case in-flight chunks";

/// One chunk in flight inside the hierarchical collective. Unlike
/// [`super::RingMsg`], messages carry their origin slot: a leader
/// receives uploads, chain partials and gather results interleaved on
/// one channel and demultiplexes by `(leg, from, chunk_index)`.
#[derive(Debug)]
pub struct HierMsg {
    /// Recovery generation the sender was stepping in.
    pub epoch: u64,
    /// Iteration the collective belongs to.
    pub iteration: u64,
    /// Reduce (upload / chain partial) or gather (result) leg.
    pub leg: Leg,
    /// DP slot of the sender.
    pub from: usize,
    /// Chunk index within the flattened gradient.
    pub chunk_index: usize,
    /// The chunk payload, borrowed from the mesh's pool.
    pub buf: PooledBuf,
}

/// A leader's outbound wiring along the chain and into its node run.
#[derive(Clone)]
struct LeaderLinks {
    /// Member slots of this leader's node run (ascending, excluding the
    /// leader itself) with their download channels.
    members: Vec<(usize, Sender<HierMsg>)>,
    /// Previous leader's slot — the chain partial source. `None` at the
    /// chain head (slot 0), which seeds the fold itself.
    prev_leader: Option<usize>,
    /// Next leader's slot and inbox: receives this leader's partials and
    /// sources the gather result. `None` at the chain tail, which
    /// completes the fold and originates the gather leg.
    next_leader: Option<(usize, Sender<HierMsg>)>,
    /// Sender towards the previous leader for the gather return leg
    /// (`None` at the chain head, the gather terminus).
    prev_tx: Option<Sender<HierMsg>>,
}

#[derive(Clone)]
enum HierRole {
    /// Non-leader slot: uploads its chunks to the node leader and waits
    /// for downloaded results.
    Member { leader: Sender<HierMsg> },
    /// First slot of a node run: folds its run and drives the chain.
    Leader(LeaderLinks),
}

/// One slot's view of the hierarchical collective: its inbox, its role
/// wiring, and the shared chunk pool and geometry.
#[derive(Clone)]
pub struct HierEndpoints {
    slot: usize,
    world: usize,
    chunk: usize,
    recv: Receiver<HierMsg>,
    pool: ChunkPool,
    role: HierRole,
}

impl std::fmt::Debug for HierEndpoints {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HierEndpoints")
            .field("slot", &self.slot)
            .field("world", &self.world)
            .field("chunk", &self.chunk)
            .field("leader", &self.is_leader())
            .finish()
    }
}

impl HierEndpoints {
    /// The DP slot these endpoints belong to.
    pub fn slot(&self) -> usize {
        self.slot
    }

    /// Number of slots participating in the collective.
    pub fn world(&self) -> usize {
        self.world
    }

    /// Whether this slot leads its node run.
    pub fn is_leader(&self) -> bool {
        matches!(self.role, HierRole::Leader(_))
    }
}

/// The full two-level mesh for one DP group: a per-slot inbox, the node
/// runs derived from the slot → node map, and the shared chunk pool.
pub struct HierMesh {
    txs: Vec<Sender<HierMsg>>,
    rxs: Vec<Receiver<HierMsg>>,
    /// First slot of each node run, ascending.
    leaders: Vec<usize>,
    /// Leader slot of every slot's run.
    leader_of: Vec<usize>,
    world: usize,
    chunk: usize,
    pool: ChunkPool,
}

impl std::fmt::Debug for HierMesh {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HierMesh")
            .field("world", &self.world)
            .field("chunk", &self.chunk)
            .field("leaders", &self.leaders)
            .field("pool", &self.pool)
            .finish()
    }
}

impl HierMesh {
    /// Builds the mesh for slots exchanging gradients of `grad_len`
    /// elements in chunks of `chunk` elements. `node_of[d]` is the node
    /// hosting slot `d`; every maximal run of consecutive equal node ids
    /// becomes one intra-node group led by its first slot. (The
    /// coordinator derives `node_of` from the topology, where it is
    /// non-decreasing in slot order — see the module docs.)
    ///
    /// # Panics
    ///
    /// Panics if `node_of` is empty or `chunk == 0`.
    pub fn new(node_of: &[usize], grad_len: usize, chunk: usize) -> Self {
        assert!(!node_of.is_empty(), "hier mesh needs at least one slot");
        assert!(chunk > 0, "hier chunk must be positive");
        let world = node_of.len();
        let mut leaders = Vec::new();
        let mut leader_of = Vec::with_capacity(world);
        for (slot, &node) in node_of.iter().enumerate() {
            if slot == 0 || node != node_of[slot - 1] {
                leaders.push(slot);
            }
            leader_of.push(*leaders.last().expect("run started"));
        }
        let chunks = grad_len.div_ceil(chunk).max(1);
        let pool = ChunkPool::new(2 * world * chunks + 2, chunk);
        let (txs, rxs) = (0..world).map(|_| unbounded()).unzip();
        Self {
            txs,
            rxs,
            leaders,
            leader_of,
            world,
            chunk,
            pool,
        }
    }

    /// The endpoints slot `slot` needs to participate.
    pub fn endpoints(&self, slot: usize) -> HierEndpoints {
        assert!(
            slot < self.world,
            "slot {slot} outside world {}",
            self.world
        );
        let role = if self.leader_of[slot] == slot {
            let li = self
                .leaders
                .iter()
                .position(|&l| l == slot)
                .expect("leader indexed");
            let members = (slot + 1..self.world)
                .take_while(|&m| self.leader_of[m] == slot)
                .map(|m| (m, self.txs[m].clone()))
                .collect();
            HierRole::Leader(LeaderLinks {
                members,
                prev_leader: (li > 0).then(|| self.leaders[li - 1]),
                next_leader: self.leaders.get(li + 1).map(|&n| (n, self.txs[n].clone())),
                prev_tx: (li > 0).then(|| self.txs[self.leaders[li - 1]].clone()),
            })
        } else {
            HierRole::Member {
                leader: self.txs[self.leader_of[slot]].clone(),
            }
        };
        HierEndpoints {
            slot,
            world: self.world,
            chunk: self.chunk,
            recv: self.rxs[slot].clone(),
            pool: self.pool.clone(),
            role,
        }
    }

    /// The shared chunk pool (for allocation accounting).
    pub fn pool(&self) -> &ChunkPool {
        &self.pool
    }
}

/// Chunk geometry: element range of chunk `c`.
fn chunk_range(c: usize, chunk: usize, len: usize) -> std::ops::Range<usize> {
    (c * chunk)..((c + 1) * chunk).min(len)
}

/// Demultiplexing receive: returns the buffer for `(leg, from, chunk)`,
/// stashing any other current-collective message that arrives first.
/// Messages from dead epochs/iterations are dropped. The deadline resets
/// on any current-collective progress, matching the ring's discipline.
fn take(
    recv: &Receiver<HierMsg>,
    pending: &mut BTreeMap<(bool, usize, usize), PooledBuf>,
    leg: Leg,
    from: usize,
    chunk: usize,
    stamp: (u64, u64),
    timeout: Duration,
) -> Result<PooledBuf, RingAbort> {
    let (epoch, iteration) = stamp;
    let key = (leg == Leg::Gather, from, chunk);
    let mut deadline = Instant::now() + timeout;
    loop {
        if let Some(buf) = pending.remove(&key) {
            return Ok(buf);
        }
        let remaining = deadline.saturating_duration_since(Instant::now());
        match recv.recv_timeout(remaining) {
            Ok(msg) if msg.epoch == epoch && msg.iteration == iteration => {
                pending.insert((msg.leg == Leg::Gather, msg.from, msg.chunk_index), msg.buf);
                deadline = Instant::now() + timeout;
            }
            Ok(_) => {} // stray from a dead epoch: drop
            Err(RecvTimeoutError::Timeout) | Err(RecvTimeoutError::Disconnected) => {
                return Err(RingAbort { leg, chunk });
            }
        }
    }
}

/// Runs one two-level hierarchical all-reduce over `grad` in place: on
/// success every slot's `grad` holds the slot-order sum of all slots'
/// gradients scaled by `1/world`, bitwise identical to the star and the
/// flat ring (see the module docs for why the bracketing is preserved).
///
/// `timeout` bounds how long the slot waits without making progress
/// before declaring the collective dead.
///
/// # Errors
///
/// Returns [`RingAbort`] when a peer stops responding (died or
/// disconnected) for longer than `timeout`.
pub fn hier_all_reduce(
    ep: &HierEndpoints,
    grad: &mut [f32],
    epoch: u64,
    iteration: u64,
    timeout: Duration,
) -> Result<RingTimings, RingAbort> {
    let inv = 1.0f32 / ep.world as f32;
    if ep.world == 1 || grad.is_empty() {
        // Degenerate world: match the star's scale step exactly.
        for x in grad.iter_mut() {
            *x *= inv;
        }
        return Ok(RingTimings::default());
    }
    let start = Instant::now();
    let mut timings = match &ep.role {
        HierRole::Member { leader } => run_member(ep, grad, leader, epoch, iteration, timeout)?,
        HierRole::Leader(links) => run_leader(ep, grad, links, inv, epoch, iteration, timeout)?,
    };
    timings.wait_secs =
        (start.elapsed().as_secs_f64() - timings.reduce_scatter_secs - timings.all_gather_secs)
            .max(0.0);
    Ok(timings)
}

/// Member slot: upload every chunk to the node leader, then download the
/// results. Downloads arrive in chunk order (the leader emits them in
/// order on one FIFO channel), so no demultiplexing is needed.
fn run_member(
    ep: &HierEndpoints,
    grad: &mut [f32],
    leader: &Sender<HierMsg>,
    epoch: u64,
    iteration: u64,
    timeout: Duration,
) -> Result<RingTimings, RingAbort> {
    let chunks = grad.len().div_ceil(ep.chunk);
    let mut rs_busy = 0.0f64;
    let mut ag_busy = 0.0f64;
    for c in 0..chunks {
        let t = Instant::now();
        let range = chunk_range(c, ep.chunk, grad.len());
        let buf = ep.pool.try_copy(&grad[range]).expect(POOL_MSG);
        let msg = HierMsg {
            epoch,
            iteration,
            leg: Leg::Reduce,
            from: ep.slot,
            chunk_index: c,
            buf,
        };
        if leader.send(msg).is_err() {
            return Err(RingAbort {
                leg: Leg::Reduce,
                chunk: c,
            });
        }
        rs_busy += t.elapsed().as_secs_f64();
    }
    let mut next = 0usize;
    let mut deadline = Instant::now() + timeout;
    while next < chunks {
        let remaining = deadline.saturating_duration_since(Instant::now());
        match ep.recv.recv_timeout(remaining) {
            Ok(msg)
                if msg.epoch == epoch
                    && msg.iteration == iteration
                    && msg.leg == Leg::Gather
                    && msg.chunk_index == next =>
            {
                let t = Instant::now();
                let range = chunk_range(next, ep.chunk, grad.len());
                grad[range].copy_from_slice(&msg.buf);
                ag_busy += t.elapsed().as_secs_f64();
                next += 1;
                deadline = Instant::now() + timeout;
            }
            Ok(_) => {} // stray from a dead epoch: drop
            Err(RecvTimeoutError::Timeout) | Err(RecvTimeoutError::Disconnected) => {
                return Err(RingAbort {
                    leg: Leg::Gather,
                    chunk: next,
                });
            }
        }
    }
    Ok(RingTimings {
        reduce_scatter_secs: rs_busy,
        all_gather_secs: ag_busy,
        wait_secs: 0.0,
    })
}

/// Leader slot: fold the node run onto the running chain partial in slot
/// order, forward (or, at the tail, complete + scale + originate the
/// gather), then relay gather results back up the chain and download
/// them to the run's members.
fn run_leader(
    ep: &HierEndpoints,
    grad: &mut [f32],
    links: &LeaderLinks,
    inv: f32,
    epoch: u64,
    iteration: u64,
    timeout: Duration,
) -> Result<RingTimings, RingAbort> {
    let chunks = grad.len().div_ceil(ep.chunk);
    let mut pending = BTreeMap::new();
    let mut rs_busy = 0.0f64;
    let mut ag_busy = 0.0f64;
    let send = |tx: &Sender<HierMsg>, leg: Leg, c: usize, buf: PooledBuf| {
        tx.send(HierMsg {
            epoch,
            iteration,
            leg,
            from: ep.slot,
            chunk_index: c,
            buf,
        })
        .map_err(|_| RingAbort { leg, chunk: c })
    };
    for c in 0..chunks {
        let range = chunk_range(c, ep.chunk, grad.len());
        let mut partial = match links.prev_leader {
            // Chain head (slot 0): seed the fold with a *copy* of its own
            // chunk — a zero-seeded fold would flip -0.0 to +0.0 and
            // break bit-identity with the star.
            None => {
                let t = Instant::now();
                let buf = ep.pool.try_copy(&grad[range.clone()]).expect(POOL_MSG);
                rs_busy += t.elapsed().as_secs_f64();
                buf
            }
            Some(from) => {
                let mut buf = take(
                    &ep.recv,
                    &mut pending,
                    Leg::Reduce,
                    from,
                    c,
                    (epoch, iteration),
                    timeout,
                )?;
                let t = Instant::now();
                for (p, own) in buf.iter_mut().zip(&grad[range.clone()]) {
                    *p += *own;
                }
                rs_busy += t.elapsed().as_secs_f64();
                buf
            }
        };
        for (m, _) in &links.members {
            let mbuf = take(
                &ep.recv,
                &mut pending,
                Leg::Reduce,
                *m,
                c,
                (epoch, iteration),
                timeout,
            )?;
            let t = Instant::now();
            for (p, x) in partial.iter_mut().zip(mbuf.iter()) {
                *p += *x;
            }
            rs_busy += t.elapsed().as_secs_f64();
        }
        match &links.next_leader {
            Some((_, tx)) => {
                let t = Instant::now();
                send(tx, Leg::Reduce, c, partial)?;
                rs_busy += t.elapsed().as_secs_f64();
            }
            None => {
                // Chain tail: the fold is complete — average, keep the
                // chunk, and originate the gather leg.
                let t = Instant::now();
                for x in partial.iter_mut() {
                    *x *= inv;
                }
                grad[range].copy_from_slice(&partial);
                rs_busy += t.elapsed().as_secs_f64();
                let t = Instant::now();
                for (_, tx) in &links.members {
                    let copy = ep.pool.try_copy(&partial).expect(POOL_MSG);
                    send(tx, Leg::Gather, c, copy)?;
                }
                if let Some(ptx) = &links.prev_tx {
                    send(ptx, Leg::Gather, c, partial)?;
                }
                // With a single-leader chain the partial drops here,
                // returning its buffer to the pool.
                ag_busy += t.elapsed().as_secs_f64();
            }
        }
    }
    if let Some((next_slot, _)) = &links.next_leader {
        for c in 0..chunks {
            let buf = take(
                &ep.recv,
                &mut pending,
                Leg::Gather,
                *next_slot,
                c,
                (epoch, iteration),
                timeout,
            )?;
            let t = Instant::now();
            let range = chunk_range(c, ep.chunk, grad.len());
            grad[range].copy_from_slice(&buf);
            for (_, tx) in &links.members {
                let copy = ep.pool.try_copy(&buf).expect(POOL_MSG);
                send(tx, Leg::Gather, c, copy)?;
            }
            if let Some(ptx) = &links.prev_tx {
                send(ptx, Leg::Gather, c, buf)?;
            }
            // At the chain head the message drops here, returning its
            // buffer to the pool for the next iteration.
            ag_busy += t.elapsed().as_secs_f64();
        }
    }
    Ok(RingTimings {
        reduce_scatter_secs: rs_busy,
        all_gather_secs: ag_busy,
        wait_secs: 0.0,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collective::ring::sequential_sum_reference;

    /// Runs a full hierarchical all-reduce over `grads` on real threads,
    /// returning each slot's resulting gradient.
    fn run_hier(grads: &[Vec<f32>], node_of: &[usize], chunk: usize) -> Vec<Vec<f32>> {
        assert_eq!(grads.len(), node_of.len());
        let mesh = HierMesh::new(node_of, grads[0].len(), chunk);
        let handles: Vec<_> = grads
            .iter()
            .enumerate()
            .map(|(slot, grad)| {
                let ep = mesh.endpoints(slot);
                let mut grad = grad.clone();
                std::thread::spawn(move || {
                    hier_all_reduce(&ep, &mut grad, 0, 1, Duration::from_secs(5)).unwrap();
                    grad
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    }

    fn bits(v: &[f32]) -> Vec<u32> {
        v.iter().map(|x| x.to_bits()).collect()
    }

    fn grads(world: usize, len: usize) -> Vec<Vec<f32>> {
        (0..world)
            .map(|r| {
                (0..len)
                    .map(|i| ((r * len + i) as f32).sin() * 100.0)
                    .collect()
            })
            .collect()
    }

    #[test]
    fn matches_star_fold_bitwise_across_node_shapes_and_chunks() {
        let shapes: [&[usize]; 6] = [
            &[0, 0, 1, 1],       // two nodes, two slots each
            &[0, 0, 0, 0],       // single node: no leader chain
            &[0, 1, 2, 3],       // one slot per node: leaders only
            &[0, 0, 0, 1, 1, 2], // uneven runs
            &[0, 1, 1, 1],       // solo head leader
            &[0, 0, 0, 1],       // solo tail leader
        ];
        for node_of in shapes {
            let grads = grads(node_of.len(), 37);
            let reference = sequential_sum_reference(&grads);
            for chunk in [1, 5, 16, 37, 64] {
                for (slot, out) in run_hier(&grads, node_of, chunk).iter().enumerate() {
                    assert_eq!(
                        bits(out),
                        bits(&reference),
                        "nodes {node_of:?} chunk {chunk} slot {slot}"
                    );
                }
            }
        }
    }

    #[test]
    fn negative_zero_survives_the_fold_identically() {
        let grads = vec![vec![-0.0f32, 1.0], vec![-0.0f32, 2.0], vec![-0.0f32, -3.0]];
        let reference = sequential_sum_reference(&grads);
        assert_eq!(reference[0].to_bits(), (-0.0f32).to_bits());
        for out in run_hier(&grads, &[0, 0, 1], 1) {
            assert_eq!(bits(&out), bits(&reference));
        }
    }

    #[test]
    fn two_leader_chain_wraps_correctly() {
        let grads = vec![vec![1.5f32, -2.0, 3.25], vec![0.5f32, 4.0, -1.25]];
        let reference = sequential_sum_reference(&grads);
        for out in run_hier(&grads, &[0, 1], 2) {
            assert_eq!(bits(&out), bits(&reference));
        }
    }

    #[test]
    fn single_slot_matches_star_scale() {
        let mesh = HierMesh::new(&[0], 4, 4);
        let ep = mesh.endpoints(0);
        let mut grad = vec![1.0f32, -3.0, 0.5, 7.0];
        let reference = sequential_sum_reference(std::slice::from_ref(&grad));
        hier_all_reduce(&ep, &mut grad, 0, 1, Duration::from_secs(1)).unwrap();
        assert_eq!(bits(&grad), bits(&reference));
    }

    #[test]
    fn dead_member_aborts_every_survivor_instead_of_hanging() {
        let node_of = [0usize, 0, 1, 1];
        let mesh = HierMesh::new(&node_of, 64, 8);
        // Slot 2 (a leader) never joins the collective.
        let handles: Vec<_> = [0usize, 1, 3]
            .into_iter()
            .map(|slot| {
                let ep = mesh.endpoints(slot);
                std::thread::spawn(move || {
                    let mut grad = vec![1.0f32; 64];
                    hier_all_reduce(&ep, &mut grad, 0, 1, Duration::from_millis(200))
                })
            })
            .collect();
        for h in handles {
            let result = h.join().unwrap();
            assert!(result.is_err(), "survivors must abort, not hang");
        }
    }

    #[test]
    fn pool_covers_worst_case_in_flight_without_growing() {
        // 8 chunks, 4 slots: all uploads + all downloads + the chain
        // buffer can be simultaneously in flight; the pool must never
        // hand out `None` (the hot path expects it).
        let grads = grads(4, 64);
        let reference = sequential_sum_reference(&grads);
        for out in run_hier(&grads, &[0, 0, 1, 1], 8) {
            assert_eq!(bits(&out), bits(&reference));
        }
        let mesh = HierMesh::new(&[0, 0, 1, 1], 64, 8);
        assert_eq!(mesh.pool().preallocated(), 2 * 4 * 8 + 2);
    }
}
