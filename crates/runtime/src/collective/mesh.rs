//! Ring topology wiring: per-rank peer channels.
//!
//! A [`RingMesh`] owns one directed channel per ring link (`r → (r+1) mod
//! world`) plus the shared [`ChunkPool`]. The coordinator builds a mesh
//! when a run starts (and a fresh one after every recovery, so messages
//! stranded by an aborted collective can never leak into the next epoch)
//! and hands each rank its [`RingEndpoints`]: the sender towards its
//! successor and the receiver from its predecessor. Rank threads then run
//! the collective entirely among themselves — the coordinator never sees
//! gradient bytes in ring mode.

use super::buffers::{ChunkPool, PooledBuf};
use crossbeam::channel::{unbounded, Receiver, Sender};

/// Which leg of the all-reduce a ring message belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Leg {
    /// Reduce leg: the buffer carries a partial rank-order sum.
    Reduce,
    /// Gather leg: the buffer carries a fully reduced, averaged chunk.
    Gather,
}

/// One chunk in flight between ring neighbours.
#[derive(Debug)]
pub struct RingMsg {
    /// Recovery generation the sender was stepping in.
    pub epoch: u64,
    /// Iteration the collective belongs to.
    pub iteration: u64,
    /// Reduce or gather leg.
    pub leg: Leg,
    /// Chunk index within the flattened gradient.
    pub chunk_index: usize,
    /// The chunk payload, borrowed from the mesh's pool.
    pub buf: PooledBuf,
}

/// One rank's view of the ring: its two neighbour channels plus the
/// shared chunk pool and geometry.
#[derive(Clone)]
pub struct RingEndpoints {
    pub(crate) rank: usize,
    pub(crate) world: usize,
    pub(crate) chunk: usize,
    pub(crate) send: Sender<RingMsg>,
    pub(crate) recv: Receiver<RingMsg>,
    pub(crate) pool: ChunkPool,
}

impl std::fmt::Debug for RingEndpoints {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RingEndpoints")
            .field("rank", &self.rank)
            .field("world", &self.world)
            .field("chunk", &self.chunk)
            .finish()
    }
}

impl RingEndpoints {
    /// The rank these endpoints belong to.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Number of ranks on the ring.
    pub fn world(&self) -> usize {
        self.world
    }
}

/// The full ring: one channel per directed link, shared chunk pool.
pub struct RingMesh {
    links: Vec<(Sender<RingMsg>, Receiver<RingMsg>)>,
    world: usize,
    chunk: usize,
    pool: ChunkPool,
}

impl std::fmt::Debug for RingMesh {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RingMesh")
            .field("world", &self.world)
            .field("chunk", &self.chunk)
            .field("pool", &self.pool)
            .finish()
    }
}

impl RingMesh {
    /// Builds the ring for `world` ranks exchanging gradients of
    /// `grad_len` elements in chunks of `chunk` elements.
    ///
    /// The pool is sized so the chunk producer never starves in a
    /// fault-free iteration (`chunks + 2` buffers: every chunk of one
    /// iteration can be in flight at once, with slack), bounding the
    /// collective's memory at roughly one extra gradient copy regardless
    /// of world size.
    ///
    /// # Panics
    ///
    /// Panics if `world == 0` or `chunk == 0`.
    pub fn new(world: usize, grad_len: usize, chunk: usize) -> Self {
        let chunks = grad_len.div_ceil(chunk).max(1);
        Self::with_pool_buffers(world, chunk, chunks + 2)
    }

    /// Builds the ring with an explicit pool size. A pool smaller than
    /// the chunk count forces the source rank onto its backpressure path
    /// (waiting for in-flight buffers to complete their transit) every
    /// iteration; the collective still completes because buffers always
    /// drain at the gather terminus. Exposed for tests and for capping
    /// the collective's memory below one gradient copy.
    ///
    /// # Panics
    ///
    /// Panics if `world`, `chunk`, or `buffers` is zero.
    pub fn with_pool_buffers(world: usize, chunk: usize, buffers: usize) -> Self {
        assert!(world > 0, "ring needs at least one rank");
        assert!(chunk > 0, "ring chunk must be positive");
        assert!(buffers > 0, "ring pool needs at least one buffer");
        let pool = ChunkPool::new(buffers, chunk);
        let links = (0..world).map(|_| unbounded()).collect();
        Self {
            links,
            world,
            chunk,
            pool,
        }
    }

    /// The endpoints rank `rank` needs to participate: sender on the link
    /// towards `(rank + 1) % world`, receiver on the link from
    /// `(rank + world - 1) % world`.
    pub fn endpoints(&self, rank: usize) -> RingEndpoints {
        assert!(
            rank < self.world,
            "rank {rank} outside world {}",
            self.world
        );
        let pred = (rank + self.world - 1) % self.world;
        RingEndpoints {
            rank,
            world: self.world,
            chunk: self.chunk,
            send: self.links[rank].0.clone(),
            recv: self.links[pred].1.clone(),
            pool: self.pool.clone(),
        }
    }

    /// The shared chunk pool (for allocation accounting).
    pub fn pool(&self) -> &ChunkPool {
        &self.pool
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn endpoints_wire_successor_and_predecessor() {
        let mesh = RingMesh::new(3, 10, 4);
        // Rank 0 sends on link 0; rank 1 receives from link 0.
        let e0 = mesh.endpoints(0);
        let e1 = mesh.endpoints(1);
        let buf = mesh.pool().try_get(2).unwrap();
        e0.send
            .send(RingMsg {
                epoch: 0,
                iteration: 1,
                leg: Leg::Reduce,
                chunk_index: 0,
                buf,
            })
            .unwrap();
        let got = e1.recv.try_recv().unwrap();
        assert_eq!(got.chunk_index, 0);
        // Ring wrap: rank 2 sends on link 2; rank 0 receives from link 2.
        let e2 = mesh.endpoints(2);
        let buf = mesh.pool().try_get(2).unwrap();
        e2.send
            .send(RingMsg {
                epoch: 0,
                iteration: 1,
                leg: Leg::Gather,
                chunk_index: 5,
                buf,
            })
            .unwrap();
        assert_eq!(e0.recv.try_recv().unwrap().chunk_index, 5);
    }

    #[test]
    fn pool_sized_for_one_iteration_of_chunks() {
        let mesh = RingMesh::new(4, 100, 8); // 13 chunks
        assert_eq!(mesh.pool().preallocated(), 15);
        // Short gradients still get a working pool.
        let tiny = RingMesh::new(2, 3, 1024);
        assert_eq!(tiny.pool().preallocated(), 3);
    }

    #[test]
    fn dropped_message_returns_buffer_to_pool() {
        let mesh = RingMesh::new(2, 8, 8);
        let before = mesh.pool().available();
        let e0 = mesh.endpoints(0);
        let buf = mesh.pool().try_get(8).unwrap();
        e0.send
            .send(RingMsg {
                epoch: 0,
                iteration: 1,
                leg: Leg::Reduce,
                chunk_index: 0,
                buf,
            })
            .unwrap();
        assert_eq!(mesh.pool().available(), before - 1);
        drop(mesh.endpoints(1).recv.try_recv().unwrap());
        assert_eq!(mesh.pool().available(), before);
    }
}
