//! The chunked ring all-reduce, executed by the rank threads themselves.
//!
//! # Determinism contract
//!
//! The runtime's replicas stay bitwise identical because every rank
//! applies the *same* reduced gradient, and a recovered run reproduces an
//! unfaulted one because the reduction is a pure function of the rank
//! gradients. Float addition is not associative, so both properties pin
//! the reduction to one fixed combine order: the rank-order left fold
//! `((g₀ + g₁) + g₂) + … + g_{w−1}`, scaled by `1/w` — exactly what the
//! coordinator's star path computes.
//!
//! A classical ring reduce-scatter cannot honour that contract: chunk `c`
//! accumulates along a *rotated* path `c+1, …, c`, so each chunk gets a
//! different bracketing and the result diverges from the star sum in the
//! last ulps. Instead, the reduce leg here pipelines every chunk along
//! the ring in rank order — rank 0 emits its chunk, each rank folds its
//! own contribution in sequence, and the last rank completes the fold and
//! applies the `1/w` scale — then the gather leg pipelines the finished
//! chunks around the remaining arc so every rank ends with the full
//! averaged gradient. Chunk `c+1` flows while chunk `c` is still in
//! flight, so per-rank traffic is ~`2·|grad|` **independent of world
//! size** (the decentralized `2·(w−1)/w·|grad|` shape of Eq. 3's comm
//! model), while the star's coordinator thread sums `w·|grad|` elements
//! serially.
//!
//! # Fault behaviour
//!
//! Every blocking receive carries a deadline. A dead peer (or a peer
//! whose channel disconnected) makes the collective return
//! [`RingAbort`] instead of hanging; the caller reports the abort to the
//! coordinator, which detects the failure, recovers, rebuilds the mesh,
//! and falls back to the star collective for the configured window.
//! Aborting never corrupts state: the local gradient buffer is rebuilt
//! from scratch next iteration and an aborted iteration is never applied.

use super::mesh::{Leg, RingEndpoints, RingMsg};
use crossbeam::channel::RecvTimeoutError;
use std::time::{Duration, Instant};

/// Polling slice used while the chunk producer waits for pool buffers or
/// inbound gather chunks, keeping the two conditions interleaved without
/// a `select`.
const POLL_SLICE: Duration = Duration::from_micros(200);

/// Per-leg busy/wait timings of one rank's participation.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct RingTimings {
    /// Seconds actively folding / copying / sending on the reduce leg.
    pub reduce_scatter_secs: f64,
    /// Seconds actively copying / forwarding on the gather leg.
    pub all_gather_secs: f64,
    /// Seconds blocked waiting on peers (exposed, non-overlapped comm).
    pub wait_secs: f64,
}

/// A ring collective that gave up waiting on a peer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RingAbort {
    /// Leg the rank was stalled on.
    pub leg: Leg,
    /// Chunk index the rank was waiting for.
    pub chunk: usize,
}

impl std::fmt::Display for RingAbort {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "ring collective aborted waiting for {:?} chunk {}",
            self.leg, self.chunk
        )
    }
}

/// Runs one chunked ring all-reduce over `grad` in place: on success
/// every rank's `grad` holds the rank-order sum of all ranks' gradients
/// scaled by `1/world`, bitwise identical to the star path.
///
/// `timeout` bounds how long the rank waits without making progress
/// before declaring the collective dead.
///
/// # Errors
///
/// Returns [`RingAbort`] when a peer stops responding (died or
/// disconnected) for longer than `timeout`.
pub fn ring_all_reduce(
    ep: &RingEndpoints,
    grad: &mut [f32],
    epoch: u64,
    iteration: u64,
    timeout: Duration,
) -> Result<RingTimings, RingAbort> {
    let world = ep.world;
    let inv = 1.0f32 / world as f32;
    if world == 1 || grad.is_empty() {
        // Degenerate ring: match the star's scale step exactly.
        for x in grad.iter_mut() {
            *x *= inv;
        }
        return Ok(RingTimings::default());
    }
    let start = Instant::now();
    let mut timings = if ep.rank == 0 {
        run_source(ep, grad, epoch, iteration, timeout)?
    } else {
        run_relay(ep, grad, inv, epoch, iteration, timeout)?
    };
    timings.wait_secs =
        (start.elapsed().as_secs_f64() - timings.reduce_scatter_secs - timings.all_gather_secs)
            .max(0.0);
    Ok(timings)
}

/// Chunk geometry: element range of chunk `c`.
fn chunk_range(c: usize, chunk: usize, len: usize) -> std::ops::Range<usize> {
    (c * chunk)..((c + 1) * chunk).min(len)
}

/// Whether a message belongs to this collective (anything else is a
/// stray from a dead epoch and is dropped).
fn is_current(msg: &RingMsg, epoch: u64, iteration: u64) -> bool {
    msg.epoch == epoch && msg.iteration == iteration
}

/// Rank 0: emits every chunk into the reduce leg (gated on pool buffers)
/// and consumes the gather leg, forwarding when the ring is longer than
/// two ranks. The two duties are interleaved so pool backpressure can
/// never deadlock against unconsumed gather traffic.
fn run_source(
    ep: &RingEndpoints,
    grad: &mut [f32],
    epoch: u64,
    iteration: u64,
    timeout: Duration,
) -> Result<RingTimings, RingAbort> {
    let chunks = grad.len().div_ceil(ep.chunk);
    // With world == 2 this rank is also the gather terminus and must not
    // forward (its successor is the gather source).
    let forward_gather = ep.world > 2;
    let mut sent = 0usize;
    let mut gathered = 0usize;
    let mut rs_busy = 0.0f64;
    let mut ag_busy = 0.0f64;
    let mut deadline = Instant::now() + timeout;
    while sent < chunks || gathered < chunks {
        let mut progressed = false;
        while sent < chunks {
            let range = chunk_range(sent, ep.chunk, grad.len());
            let t = Instant::now();
            let Some(buf) = ep.pool.try_copy(&grad[range]) else {
                break;
            };
            let msg = RingMsg {
                epoch,
                iteration,
                leg: Leg::Reduce,
                chunk_index: sent,
                buf,
            };
            if ep.send.send(msg).is_err() {
                return Err(RingAbort {
                    leg: Leg::Reduce,
                    chunk: sent,
                });
            }
            rs_busy += t.elapsed().as_secs_f64();
            sent += 1;
            progressed = true;
        }
        if gathered < chunks {
            // Once all sends are out we can block for the remaining
            // deadline; while sends are pool-gated, poll in short slices
            // so freed buffers are picked up promptly.
            let now = Instant::now();
            let slice = if sent == chunks {
                deadline.saturating_duration_since(now)
            } else {
                POLL_SLICE.min(deadline.saturating_duration_since(now))
            };
            match ep.recv.recv_timeout(slice) {
                Ok(msg)
                    if is_current(&msg, epoch, iteration)
                        && msg.leg == Leg::Gather
                        && msg.chunk_index == gathered =>
                {
                    let t = Instant::now();
                    let range = chunk_range(gathered, ep.chunk, grad.len());
                    grad[range].copy_from_slice(&msg.buf);
                    if forward_gather && ep.send.send(msg).is_err() {
                        return Err(RingAbort {
                            leg: Leg::Gather,
                            chunk: gathered,
                        });
                    }
                    ag_busy += t.elapsed().as_secs_f64();
                    gathered += 1;
                    progressed = true;
                }
                Ok(_) => {} // stray from a dead epoch: drop
                Err(RecvTimeoutError::Timeout) => {}
                Err(RecvTimeoutError::Disconnected) => {
                    return Err(RingAbort {
                        leg: Leg::Gather,
                        chunk: gathered,
                    });
                }
            }
        }
        if progressed {
            deadline = Instant::now() + timeout;
        } else if Instant::now() >= deadline {
            let (leg, chunk) = if sent < chunks {
                (Leg::Reduce, sent)
            } else {
                (Leg::Gather, gathered)
            };
            return Err(RingAbort { leg, chunk });
        }
    }
    Ok(RingTimings {
        reduce_scatter_secs: rs_busy,
        all_gather_secs: ag_busy,
        wait_secs: 0.0,
    })
}

/// Ranks 1..world: fold the rank's own gradient into each reduce chunk
/// (completing the fold and applying the average at the last rank) and
/// copy/forward gather chunks. Reduce and gather messages interleave on
/// the predecessor channel, so both legs are driven from one receive
/// loop; within each leg, channel FIFO order guarantees chunks arrive in
/// index order.
fn run_relay(
    ep: &RingEndpoints,
    grad: &mut [f32],
    inv: f32,
    epoch: u64,
    iteration: u64,
    timeout: Duration,
) -> Result<RingTimings, RingAbort> {
    let chunks = grad.len().div_ceil(ep.chunk);
    let last = ep.world - 1;
    let gather_terminus = ep.world - 2;
    let mut next_reduce = 0usize;
    // The last rank produces the gather leg instead of consuming it.
    let mut next_gather = if ep.rank == last { chunks } else { 0 };
    let mut rs_busy = 0.0f64;
    let mut ag_busy = 0.0f64;
    let mut deadline = Instant::now() + timeout;
    while next_reduce < chunks || next_gather < chunks {
        let stalled_on = if next_reduce < chunks {
            (Leg::Reduce, next_reduce)
        } else {
            (Leg::Gather, next_gather)
        };
        let remaining = deadline.saturating_duration_since(Instant::now());
        let msg = match ep.recv.recv_timeout(remaining) {
            Ok(msg) => msg,
            Err(RecvTimeoutError::Timeout) | Err(RecvTimeoutError::Disconnected) => {
                return Err(RingAbort {
                    leg: stalled_on.0,
                    chunk: stalled_on.1,
                });
            }
        };
        if !is_current(&msg, epoch, iteration) {
            continue; // stray from a dead epoch: drop
        }
        match msg.leg {
            Leg::Reduce if msg.chunk_index == next_reduce && next_reduce < chunks => {
                let t = Instant::now();
                let mut msg = msg;
                let range = chunk_range(next_reduce, ep.chunk, grad.len());
                for (partial, own) in msg.buf.iter_mut().zip(&grad[range.clone()]) {
                    *partial += *own;
                }
                if ep.rank == last {
                    // Fold complete: average, keep the chunk, start the
                    // gather leg with the same buffer.
                    for x in msg.buf.iter_mut() {
                        *x *= inv;
                    }
                    grad[range].copy_from_slice(&msg.buf);
                    msg.leg = Leg::Gather;
                }
                if ep.send.send(msg).is_err() {
                    return Err(RingAbort {
                        leg: Leg::Reduce,
                        chunk: next_reduce,
                    });
                }
                rs_busy += t.elapsed().as_secs_f64();
                next_reduce += 1;
                deadline = Instant::now() + timeout;
            }
            Leg::Gather if msg.chunk_index == next_gather && next_gather < chunks => {
                let t = Instant::now();
                let range = chunk_range(next_gather, ep.chunk, grad.len());
                grad[range].copy_from_slice(&msg.buf);
                if ep.rank != gather_terminus && ep.send.send(msg).is_err() {
                    return Err(RingAbort {
                        leg: Leg::Gather,
                        chunk: next_gather,
                    });
                }
                // At the terminus the message drops here, returning its
                // buffer to the pool for the next iteration.
                ag_busy += t.elapsed().as_secs_f64();
                next_gather += 1;
                deadline = Instant::now() + timeout;
            }
            _ => {} // stray chunk index: drop
        }
    }
    Ok(RingTimings {
        reduce_scatter_secs: rs_busy,
        all_gather_secs: ag_busy,
        wait_secs: 0.0,
    })
}

/// The star reference reduction: rank-order left fold scaled by
/// `1/world` — the fixed combine order both collectives must reproduce
/// bitwise. The fold is seeded with rank 0's gradient itself (not
/// `0.0 + g₀`, which would flip `-0.0` to `+0.0` and break bit-identity
/// with the ring). Exposed for tests and benchmarks.
pub fn sequential_sum_reference(grads: &[Vec<f32>]) -> Vec<f32> {
    let Some(first) = grads.first() else {
        return Vec::new();
    };
    let mut sum = first.clone();
    for grad in &grads[1..] {
        for (s, x) in sum.iter_mut().zip(grad) {
            *s += *x;
        }
    }
    let inv = 1.0 / grads.len() as f32;
    for s in &mut sum {
        *s *= inv;
    }
    sum
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collective::RingMesh;

    /// Runs a full ring all-reduce over `grads` on real threads,
    /// returning each rank's resulting gradient.
    fn run_ring(grads: &[Vec<f32>], chunk: usize) -> Vec<Vec<f32>> {
        let world = grads.len();
        let mesh = RingMesh::new(world, grads[0].len(), chunk);
        let handles: Vec<_> = grads
            .iter()
            .enumerate()
            .map(|(rank, grad)| {
                let ep = mesh.endpoints(rank);
                let mut grad = grad.clone();
                std::thread::spawn(move || {
                    ring_all_reduce(&ep, &mut grad, 0, 1, Duration::from_secs(5)).unwrap();
                    grad
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    }

    fn bits(v: &[f32]) -> Vec<u32> {
        v.iter().map(|x| x.to_bits()).collect()
    }

    #[test]
    fn matches_star_fold_bitwise_across_chunk_sizes() {
        let grads: Vec<Vec<f32>> = (0..4)
            .map(|r| {
                (0..37)
                    .map(|i| ((r * 37 + i) as f32).sin() * 100.0)
                    .collect()
            })
            .collect();
        let reference = sequential_sum_reference(&grads);
        for chunk in [1, 5, 16, 37, 64] {
            for out in run_ring(&grads, chunk) {
                assert_eq!(bits(&out), bits(&reference), "chunk {chunk}");
            }
        }
    }

    #[test]
    fn negative_zero_survives_the_fold_identically() {
        // The fold must be seeded with g₀ itself: a `0.0 + g₀` seed
        // would turn an all-(-0.0) element into +0.0 on one collective
        // but not the other.
        let grads = vec![vec![-0.0f32, 1.0], vec![-0.0f32, 2.0], vec![-0.0f32, -3.0]];
        let reference = sequential_sum_reference(&grads);
        assert_eq!(reference[0].to_bits(), (-0.0f32).to_bits());
        for out in run_ring(&grads, 1) {
            assert_eq!(bits(&out), bits(&reference));
        }
    }

    #[test]
    fn two_rank_ring_wraps_correctly() {
        let grads = vec![vec![1.5f32, -2.0, 3.25], vec![0.5f32, 4.0, -1.25]];
        let reference = sequential_sum_reference(&grads);
        for out in run_ring(&grads, 2) {
            assert_eq!(bits(&out), bits(&reference));
        }
    }

    #[test]
    fn single_rank_matches_star_scale() {
        let mesh = RingMesh::new(1, 4, 4);
        let ep = mesh.endpoints(0);
        let mut grad = vec![1.0f32, -3.0, 0.5, 7.0];
        let reference = sequential_sum_reference(std::slice::from_ref(&grad));
        ring_all_reduce(&ep, &mut grad, 0, 1, Duration::from_secs(1)).unwrap();
        assert_eq!(bits(&grad), bits(&reference));
    }

    #[test]
    fn dead_peer_aborts_every_survivor_instead_of_hanging() {
        let world = 4;
        let mesh = RingMesh::new(world, 64, 8);
        // Rank 2 never joins the collective (its node died mid-iteration).
        let handles: Vec<_> = [0usize, 1, 3]
            .into_iter()
            .map(|rank| {
                let ep = mesh.endpoints(rank);
                std::thread::spawn(move || {
                    let mut grad = vec![1.0f32; 64];
                    ring_all_reduce(&ep, &mut grad, 0, 1, Duration::from_millis(200))
                })
            })
            .collect();
        for h in handles {
            let result = h.join().unwrap();
            assert!(result.is_err(), "survivors must abort, not hang");
        }
    }

    /// Runs a ring over a deliberately undersized pool so the source
    /// rank's `try_copy` genuinely returns `None` and the interleaved
    /// backpressure path (break out of the send loop, poll gathers to
    /// recycle transit buffers) is exercised.
    fn run_starved_ring(world: usize, len: usize, chunk: usize, buffers: usize) -> Vec<Vec<f32>> {
        let grads: Vec<Vec<f32>> = (0..world)
            .map(|r| {
                (0..len)
                    .map(|i| ((r * len + i) as f32).cos() * 10.0)
                    .collect()
            })
            .collect();
        let reference = sequential_sum_reference(&grads);
        let mesh = RingMesh::with_pool_buffers(world, chunk, buffers);
        let handles: Vec<_> = grads
            .iter()
            .enumerate()
            .map(|(rank, grad)| {
                let ep = mesh.endpoints(rank);
                let mut grad = grad.clone();
                std::thread::spawn(move || {
                    ring_all_reduce(&ep, &mut grad, 0, 1, Duration::from_secs(10)).unwrap();
                    grad
                })
            })
            .collect();
        let outs: Vec<Vec<f32>> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        for out in &outs {
            assert_eq!(bits(out), bits(&reference), "starved ring must still fold");
        }
        outs
    }

    #[test]
    fn pool_backpressure_still_completes() {
        // 8 chunks but a single buffer: only one chunk can ever be in
        // flight, so every send after the first waits for a full transit
        // — with world > 2 the source must keep forwarding gathers while
        // starved, or this deadlocks.
        run_starved_ring(3, 64, 8, 1);
        // Two-rank ring: the source is also the gather terminus, so the
        // recycle happens in its own interleaved loop.
        run_starved_ring(2, 64, 8, 1);
        // Mid-sized pool: pipelining with intermittent starvation.
        run_starved_ring(4, 96, 8, 3);
    }
}
