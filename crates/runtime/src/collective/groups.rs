//! Group wiring for TP replica-consistency exchange and the PP stage
//! relay.
//!
//! With `tp · pp > 1` the world is no longer a flat DP rank list: every
//! global rank sits in a TP group (same `(dp, pp)` coordinates), a PP
//! chain (same `(dp, tp)`), and a DP gradient group (same `(tp, pp)`).
//! The DP groups run the ring/star all-reduce from [`super::ring`]; this
//! module provides the other two group collectives:
//!
//! * **TP consistency ring** — the members of a TP group hold replicas
//!   of the same tensor-sliced state, so each iteration they circulate
//!   their parameter CRCs around a small ring ([`tp_exchange`]) and flag
//!   divergence. This models the invariant a real tensor-parallel group
//!   shares (identical optimizer trajectories over the sharded state)
//!   at the fidelity this runtime emulates (full replicas).
//! * **PP stage relay** — the members of a PP chain relay an activation
//!   token forward stage by stage before reporting and a gradient token
//!   backward after the local backward pass ([`pp_forward_wait`] /
//!   [`pp_forward_send`] / [`pp_backward`]), serializing the stages the
//!   way a real pipeline's dependency structure does.
//!
//! Every blocking receive carries a deadline: a dead group member makes
//! the survivors return [`GroupAbort`] instead of hanging, which the
//! rank surfaces to the coordinator exactly like a ring abort — the
//! failure is *detected* through the group, never shortcut.
//!
//! Like the ring mesh, a [`GroupMesh`] is rebuilt after every recovery,
//! so tokens stranded by an aborted iteration die with their channels.

use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender};
use moc_core::topology::{ParallelTopology, RankCoord};
use std::time::{Duration, Instant};

/// A control token circulating inside a TP ring or PP chain.
#[derive(Debug, Clone, Copy)]
pub struct GroupMsg {
    /// Recovery generation the sender was stepping in.
    pub epoch: u64,
    /// Iteration the token belongs to.
    pub iteration: u64,
    /// Token payload: a parameter CRC (TP) or a stage token (PP).
    pub payload: u64,
}

/// A group collective that gave up waiting on a peer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GroupAbort {
    /// The TP consistency ring stalled (peer dead or disconnected).
    TpRing,
    /// The PP relay stalled waiting for the upstream stage's token.
    PpForward,
    /// The PP relay stalled waiting for the downstream stage's token.
    PpBackward,
}

impl std::fmt::Display for GroupAbort {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GroupAbort::TpRing => f.write_str("tp consistency ring stalled"),
            GroupAbort::PpForward => f.write_str("pp forward relay stalled"),
            GroupAbort::PpBackward => f.write_str("pp backward relay stalled"),
        }
    }
}

/// One rank's endpoints into its TP ring and PP chain. Channels absent
/// when the corresponding degree is 1 (the baseline DP+EP world carries
/// no group traffic at all).
#[derive(Clone)]
pub struct GroupEndpoints {
    /// The rank's grid coordinates.
    pub coord: RankCoord,
    /// TP group size.
    pub tp: usize,
    /// PP chain length.
    pub pp: usize,
    /// Sender towards the next TP ring member.
    pub(crate) tp_send: Option<Sender<GroupMsg>>,
    /// Receiver from the previous TP ring member.
    pub(crate) tp_recv: Option<Receiver<GroupMsg>>,
    /// Forward link to the next pipeline stage (absent on the last).
    pub(crate) fwd_send: Option<Sender<GroupMsg>>,
    /// Forward link from the previous stage (absent on stage 0).
    pub(crate) fwd_recv: Option<Receiver<GroupMsg>>,
    /// Backward link to the previous stage (absent on stage 0).
    pub(crate) bwd_send: Option<Sender<GroupMsg>>,
    /// Backward link from the next stage (absent on the last).
    pub(crate) bwd_recv: Option<Receiver<GroupMsg>>,
}

impl std::fmt::Debug for GroupEndpoints {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GroupEndpoints")
            .field("coord", &self.coord)
            .field("tp", &self.tp)
            .field("pp", &self.pp)
            .finish()
    }
}

/// Receives the next token of `(epoch, iteration)` from `recv`,
/// dropping strays from dead epochs, with an overall deadline.
fn recv_current(
    recv: &Receiver<GroupMsg>,
    epoch: u64,
    iteration: u64,
    deadline: Instant,
) -> Option<GroupMsg> {
    loop {
        let remaining = deadline.saturating_duration_since(Instant::now());
        match recv.recv_timeout(remaining) {
            Ok(msg) if msg.epoch == epoch && msg.iteration == iteration => return Some(msg),
            Ok(_) => continue, // stray from a dead epoch: drop
            Err(RecvTimeoutError::Timeout) | Err(RecvTimeoutError::Disconnected) => return None,
        }
    }
}

impl GroupEndpoints {
    /// Circulates this rank's parameter CRC around the TP ring and
    /// compares it against every peer's: a ring all-gather of `tp - 1`
    /// hops. Returns whether the TP group is bitwise consistent.
    ///
    /// # Errors
    ///
    /// Returns [`GroupAbort::TpRing`] when a TP peer stops responding
    /// for longer than `timeout`.
    pub fn tp_exchange(
        &self,
        crc: u32,
        epoch: u64,
        iteration: u64,
        timeout: Duration,
    ) -> Result<bool, GroupAbort> {
        let (Some(send), Some(recv)) = (&self.tp_send, &self.tp_recv) else {
            return Ok(true); // tp = 1: trivially consistent
        };
        let own = u64::from(crc);
        if send
            .send(GroupMsg {
                epoch,
                iteration,
                payload: own,
            })
            .is_err()
        {
            return Err(GroupAbort::TpRing);
        }
        let mut consistent = true;
        let deadline = Instant::now() + timeout;
        for hop in 1..self.tp {
            let msg = recv_current(recv, epoch, iteration, deadline).ok_or(GroupAbort::TpRing)?;
            if msg.payload != own {
                consistent = false;
            }
            // Forward so every member sees every CRC (a value travels
            // tp - 1 hops in total).
            if hop + 1 < self.tp && send.send(msg).is_err() {
                return Err(GroupAbort::TpRing);
            }
        }
        Ok(consistent)
    }

    /// Waits for the upstream stage's forward (activation) token;
    /// returns immediately on stage 0. Returns the seconds spent
    /// blocked — the rank's pipeline-bubble time for this iteration.
    ///
    /// # Errors
    ///
    /// Returns [`GroupAbort::PpForward`] when the upstream stage stops
    /// responding for longer than `timeout`.
    pub fn pp_forward_wait(
        &self,
        epoch: u64,
        iteration: u64,
        timeout: Duration,
    ) -> Result<f64, GroupAbort> {
        let Some(recv) = &self.fwd_recv else {
            return Ok(0.0);
        };
        let start = Instant::now();
        recv_current(recv, epoch, iteration, start + timeout).ok_or(GroupAbort::PpForward)?;
        Ok(start.elapsed().as_secs_f64())
    }

    /// Hands the forward token to the next stage (no-op on the last).
    ///
    /// # Errors
    ///
    /// Returns [`GroupAbort::PpForward`] if the downstream channel is
    /// gone.
    pub fn pp_forward_send(&self, epoch: u64, iteration: u64) -> Result<(), GroupAbort> {
        if let Some(send) = &self.fwd_send {
            send.send(GroupMsg {
                epoch,
                iteration,
                payload: self.coord.pp as u64,
            })
            .map_err(|_| GroupAbort::PpForward)?;
        }
        Ok(())
    }

    /// Runs the backward leg of the relay: waits for the downstream
    /// stage's gradient token (the last stage starts the leg), then
    /// passes it upstream. Returns the seconds spent blocked.
    ///
    /// # Errors
    ///
    /// Returns [`GroupAbort::PpBackward`] when the downstream stage
    /// stops responding for longer than `timeout`.
    pub fn pp_backward(
        &self,
        epoch: u64,
        iteration: u64,
        timeout: Duration,
    ) -> Result<f64, GroupAbort> {
        let start = Instant::now();
        if let Some(recv) = &self.bwd_recv {
            recv_current(recv, epoch, iteration, start + timeout).ok_or(GroupAbort::PpBackward)?;
        }
        if let Some(send) = &self.bwd_send {
            send.send(GroupMsg {
                epoch,
                iteration,
                payload: self.coord.pp as u64,
            })
            .map_err(|_| GroupAbort::PpBackward)?;
        }
        Ok(start.elapsed().as_secs_f64())
    }
}

/// The full group wiring of one epoch: TP rings and PP chains for every
/// global rank. Rebuilt (like the ring mesh) after every recovery.
pub struct GroupMesh {
    endpoints: Vec<GroupEndpoints>,
}

impl std::fmt::Debug for GroupMesh {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GroupMesh")
            .field("world", &self.endpoints.len())
            .finish()
    }
}

impl GroupMesh {
    /// Builds the TP rings and PP chains of `topo`.
    pub fn new(topo: &ParallelTopology) -> Self {
        let world = topo.world_size();
        let (tp, pp) = (topo.tp(), topo.pp());
        // One channel per directed TP ring link (rank -> next member) and
        // per PP chain link in each direction.
        let mut tp_links: Vec<Option<(Sender<GroupMsg>, Receiver<GroupMsg>)>> =
            (0..world).map(|_| None).collect();
        let mut fwd_links: Vec<Option<(Sender<GroupMsg>, Receiver<GroupMsg>)>> =
            (0..world).map(|_| None).collect();
        let mut bwd_links: Vec<Option<(Sender<GroupMsg>, Receiver<GroupMsg>)>> =
            (0..world).map(|_| None).collect();
        for rank in 0..world {
            let c = topo.coords_of(rank);
            if tp > 1 {
                tp_links[rank] = Some(unbounded());
            }
            if pp > 1 && c.pp + 1 < pp {
                // `fwd_links[rank]` carries rank -> next stage;
                // `bwd_links[rank]` carries next stage -> rank.
                fwd_links[rank] = Some(unbounded());
                bwd_links[rank] = Some(unbounded());
            }
        }
        let endpoints = (0..world)
            .map(|rank| {
                let c = topo.coords_of(rank);
                let tp_pred = topo.global_rank_of(RankCoord {
                    tp: (c.tp + tp - 1) % tp,
                    ..c
                });
                let pp_prev =
                    (c.pp > 0).then(|| topo.global_rank_of(RankCoord { pp: c.pp - 1, ..c }));
                GroupEndpoints {
                    coord: c,
                    tp,
                    pp,
                    tp_send: tp_links[rank].as_ref().map(|(s, _)| s.clone()),
                    tp_recv: tp_links[tp_pred].as_ref().map(|(_, r)| r.clone()),
                    fwd_send: fwd_links[rank].as_ref().map(|(s, _)| s.clone()),
                    fwd_recv: pp_prev
                        .and_then(|p| fwd_links[p].as_ref())
                        .map(|(_, r)| r.clone()),
                    bwd_send: pp_prev
                        .and_then(|p| bwd_links[p].as_ref())
                        .map(|(s, _)| s.clone()),
                    bwd_recv: bwd_links[rank].as_ref().map(|(_, r)| r.clone()),
                }
            })
            .collect();
        Self { endpoints }
    }

    /// The endpoints of one global rank.
    pub fn endpoints(&self, rank: usize) -> GroupEndpoints {
        self.endpoints[rank].clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn topo_222() -> ParallelTopology {
        ParallelTopology::new(1, 8, 2, 2, 2, 2).unwrap()
    }

    /// Drives one full iteration of TP exchange + PP relay on real
    /// threads, returning every rank's consistency verdict.
    fn drive(topo: &ParallelTopology, crcs: Vec<u32>) -> Vec<bool> {
        let mesh = GroupMesh::new(topo);
        let handles: Vec<_> = (0..topo.world_size())
            .map(|rank| {
                let ep = mesh.endpoints(rank);
                let crc = crcs[rank];
                std::thread::spawn(move || {
                    let timeout = Duration::from_secs(5);
                    let consistent = ep.tp_exchange(crc, 0, 1, timeout).unwrap();
                    ep.pp_forward_wait(0, 1, timeout).unwrap();
                    ep.pp_forward_send(0, 1).unwrap();
                    ep.pp_backward(0, 1, timeout).unwrap();
                    consistent
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    }

    #[test]
    fn identical_crcs_are_consistent_everywhere() {
        let topo = topo_222();
        let verdicts = drive(&topo, vec![7; 8]);
        assert!(verdicts.into_iter().all(|c| c));
    }

    #[test]
    fn diverged_tp_member_flags_its_whole_group() {
        let topo = topo_222();
        let mut crcs = vec![7u32; 8];
        crcs[1] = 8; // rank 1 = (dp 0, tp 1, pp 0); TP group {0, 1}
        let verdicts = drive(&topo, crcs);
        assert!(!verdicts[0] && !verdicts[1], "both members must notice");
        assert!(verdicts[2..].iter().all(|&c| c), "other groups untouched");
    }

    #[test]
    fn wider_tp_ring_circulates_every_crc() {
        // tp = 4: divergence three hops away must still be seen.
        let topo = ParallelTopology::new(1, 8, 2, 4, 1, 2).unwrap();
        let mut crcs = vec![3u32; 8];
        crcs[3] = 9; // (dp 0, tp 3)
        let verdicts = drive(&topo, crcs);
        assert!(!verdicts[0..4].iter().any(|&c| c));
        assert!(verdicts[4..8].iter().all(|&c| c));
    }

    #[test]
    fn dead_stage_aborts_both_directions() {
        // pp = 4 chain at (dp 0, tp 0): stage 2 never joins.
        let topo = ParallelTopology::new(1, 8, 2, 1, 4, 2).unwrap();
        let mesh = GroupMesh::new(&topo);
        let timeout = Duration::from_millis(100);
        let handles: Vec<_> = [0usize, 1, 3]
            .into_iter()
            .map(|stage| {
                let ep = mesh.endpoints(topo.global_rank_of(RankCoord {
                    dp: 0,
                    tp: 0,
                    pp: stage,
                }));
                std::thread::spawn(move || {
                    ep.pp_forward_wait(0, 1, timeout)?;
                    ep.pp_forward_send(0, 1)?;
                    ep.pp_backward(0, 1, timeout)?;
                    Ok::<(), GroupAbort>(())
                })
            })
            .collect();
        let results: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        // Stage 3 never gets the forward token; stages 0 and 1 never get
        // the backward token. Nobody hangs.
        assert!(matches!(results[2], Err(GroupAbort::PpForward)));
        assert!(matches!(results[0], Err(GroupAbort::PpBackward)));
        assert!(matches!(results[1], Err(GroupAbort::PpBackward)));
    }

    #[test]
    fn stale_epoch_tokens_are_dropped() {
        let topo = ParallelTopology::new(1, 4, 2, 2, 1, 2).unwrap();
        let mesh = GroupMesh::new(&topo);
        let e0 = mesh.endpoints(0);
        let e1 = mesh.endpoints(1);
        // Rank 1 leaks a token from a dead epoch, then sends the real one.
        e1.tp_send
            .as_ref()
            .unwrap()
            .send(GroupMsg {
                epoch: 0,
                iteration: 9,
                payload: 0xDEAD,
            })
            .unwrap();
        let h =
            std::thread::spawn(move || e1.tp_exchange(5, 1, 2, Duration::from_secs(5)).unwrap());
        assert!(e0.tp_exchange(5, 1, 2, Duration::from_secs(5)).unwrap());
        assert!(h.join().unwrap());
    }

    #[test]
    fn degenerate_degrees_are_noops() {
        let topo = ParallelTopology::dp_ep(1, 4, 4, 4).unwrap();
        let mesh = GroupMesh::new(&topo);
        let ep = mesh.endpoints(2);
        let timeout = Duration::from_millis(10);
        assert!(ep.tp_exchange(1, 0, 1, timeout).unwrap());
        assert_eq!(ep.pp_forward_wait(0, 1, timeout).unwrap(), 0.0);
        ep.pp_forward_send(0, 1).unwrap();
        ep.pp_backward(0, 1, timeout).unwrap();
    }
}
