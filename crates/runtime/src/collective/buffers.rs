//! Reusable chunk buffers for the ring collective.
//!
//! A [`ChunkPool`] is preallocated when a ring mesh is built and **never
//! grows**: [`ChunkPool::try_get`] returns `None` when every buffer is in
//! flight, which backpressures the chunk producer (ring rank 0) instead
//! of allocating. Combined with the per-rank flattened-gradient buffer in
//! `rank.rs`, this makes the steady-state ring iteration perform zero
//! gradient-buffer heap allocations: every byte a ring message carries
//! lives in a buffer allocated once at mesh-build time.
//!
//! Buffers are handed out as [`PooledBuf`] guards that return their
//! storage to the pool on drop — including when a message is discarded
//! because its channel died mid-collective, so an aborted ring never
//! leaks pool capacity.

use std::sync::{Arc, Mutex, PoisonError};

struct Inner {
    free: Mutex<Vec<Vec<f32>>>,
    preallocated: usize,
    capacity_each: usize,
}

impl Inner {
    fn free(&self) -> std::sync::MutexGuard<'_, Vec<Vec<f32>>> {
        self.free.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

/// Fixed-size pool of reusable `f32` chunk buffers.
#[derive(Clone)]
pub struct ChunkPool {
    inner: Arc<Inner>,
}

impl std::fmt::Debug for ChunkPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ChunkPool")
            .field("preallocated", &self.inner.preallocated)
            .field("available", &self.available())
            .finish()
    }
}

impl ChunkPool {
    /// Preallocates `buffers` buffers of `capacity_each` elements. This is
    /// the only place the pool ever allocates.
    pub fn new(buffers: usize, capacity_each: usize) -> Self {
        let free = (0..buffers)
            .map(|_| Vec::with_capacity(capacity_each))
            .collect();
        Self {
            inner: Arc::new(Inner {
                free: Mutex::new(free),
                preallocated: buffers,
                capacity_each,
            }),
        }
    }

    /// Takes a buffer resized (zero-filled) to `len` elements, or `None`
    /// when every buffer is in flight. Never allocates: `len` must not
    /// exceed the per-buffer capacity the pool was built with.
    pub fn try_get(&self, len: usize) -> Option<PooledBuf> {
        assert!(
            len <= self.inner.capacity_each,
            "chunk of {len} elements exceeds pool buffer capacity {}",
            self.inner.capacity_each
        );
        let mut data = self.inner.free().pop()?;
        data.clear();
        data.resize(len, 0.0);
        Some(PooledBuf {
            data,
            pool: Arc::clone(&self.inner),
        })
    }

    /// Takes a buffer holding a copy of `src`, or `None` when every
    /// buffer is in flight. The hot-path variant of [`ChunkPool::try_get`]:
    /// the buffer is filled directly from `src`, skipping the redundant
    /// zero-fill a get-then-overwrite would pay. Never allocates: `src`
    /// must not exceed the per-buffer capacity the pool was built with.
    pub fn try_copy(&self, src: &[f32]) -> Option<PooledBuf> {
        assert!(
            src.len() <= self.inner.capacity_each,
            "chunk of {} elements exceeds pool buffer capacity {}",
            src.len(),
            self.inner.capacity_each
        );
        let mut data = self.inner.free().pop()?;
        data.clear();
        data.extend_from_slice(src);
        Some(PooledBuf {
            data,
            pool: Arc::clone(&self.inner),
        })
    }

    /// Buffers currently available.
    pub fn available(&self) -> usize {
        self.inner.free().len()
    }

    /// Buffers the pool was built with (its total and permanent size).
    pub fn preallocated(&self) -> usize {
        self.inner.preallocated
    }
}

/// A pooled buffer; returns its storage to the pool on drop.
pub struct PooledBuf {
    data: Vec<f32>,
    pool: Arc<Inner>,
}

impl std::fmt::Debug for PooledBuf {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PooledBuf")
            .field("len", &self.data.len())
            .finish()
    }
}

impl std::ops::Deref for PooledBuf {
    type Target = [f32];
    fn deref(&self) -> &[f32] {
        &self.data
    }
}

impl std::ops::DerefMut for PooledBuf {
    fn deref_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }
}

impl Drop for PooledBuf {
    fn drop(&mut self) {
        self.pool.free().push(std::mem::take(&mut self.data));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pool_never_grows_beyond_preallocation() {
        let pool = ChunkPool::new(2, 8);
        assert_eq!(pool.preallocated(), 2);
        let a = pool.try_get(8).unwrap();
        let b = pool.try_get(4).unwrap();
        assert_eq!(a.len(), 8);
        assert_eq!(b.len(), 4);
        assert!(
            pool.try_get(1).is_none(),
            "exhausted pool must not allocate"
        );
        drop(a);
        assert_eq!(pool.available(), 1);
        let c = pool.try_get(3).unwrap();
        assert_eq!(&*c, &[0.0; 3]);
        drop(b);
        drop(c);
        assert_eq!(pool.available(), 2);
    }

    #[test]
    fn buffers_are_zeroed_on_reuse() {
        let pool = ChunkPool::new(1, 4);
        let mut a = pool.try_get(4).unwrap();
        a.copy_from_slice(&[1.0, 2.0, 3.0, 4.0]);
        drop(a);
        let b = pool.try_get(2).unwrap();
        assert_eq!(&*b, &[0.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "exceeds pool buffer capacity")]
    fn oversized_request_panics_instead_of_allocating() {
        let pool = ChunkPool::new(1, 4);
        let _ = pool.try_get(5);
    }

    #[test]
    fn try_copy_fills_from_source_without_growing() {
        let pool = ChunkPool::new(1, 4);
        let src = [1.0f32, -0.0, 3.0];
        let buf = pool.try_copy(&src).unwrap();
        assert_eq!(&*buf, &src);
        assert_eq!(buf[1].to_bits(), (-0.0f32).to_bits());
        assert!(pool.try_copy(&src).is_none(), "pool must not grow");
        drop(buf);
        assert_eq!(pool.available(), 1);
    }
}
