//! Wall-clock metrics of a live run.
//!
//! The analytic models in `moc-cluster` predict per-phase times from
//! hardware constants; the runtime *measures* them. [`MetricsRegistry`]
//! accumulates per-phase wall-clock statistics, stall and recovery
//! counters, and a per-iteration timeline, which [`RunSummary`] exposes
//! alongside training results. [`RunSummary::analytic_projection`] feeds
//! the measured phase means back into `moc-cluster`'s discrete-event
//! simulator so live runs can be compared against the analytic timelines.

use moc_ckpt::EngineStats;
use moc_cluster::events::{simulate, EventSimConfig, EventSimReport};
use moc_cluster::ClusterSpec;
use moc_obs::{LogHistogram, ObsRunReport};
use serde::Serialize;
use std::collections::BTreeMap;
use std::time::Instant;

/// A measured phase of the runtime's iteration loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize)]
pub enum Phase {
    /// Forward + backward over the rank's sub-batch (max across ranks).
    Compute,
    /// Gradient gather + sum on the coordinator (star collective only).
    Reduce,
    /// Ring reduce leg: active fold/copy/send work (median across ranks
    /// — the representative per-rank cost of the decentralized
    /// collective).
    ReduceScatter,
    /// Ring gather leg: active copy/forward work (median across ranks).
    AllGather,
    /// Ring blocking time waiting on peers (max across ranks): the
    /// exposed, non-overlapped part of the collective.
    RingWait,
    /// Cross-rank pipelining in the ring: the sum of every rank's active
    /// leg work minus the slowest rank's collective wall (busy + wait) —
    /// seconds of collective work that ran concurrently with other
    /// ranks' work instead of extending the critical path.
    CommOverlap,
    /// Stall injected into a straggling rank's step.
    StragglerStall,
    /// TP replica-consistency exchange (max across ranks; only recorded
    /// in mixed-parallelism worlds).
    TpSync,
    /// Blocking time in the PP stage relay — the pipeline bubble (max
    /// across ranks; only recorded in mixed-parallelism worlds).
    PpBubble,
    /// Optimizer step: wall time of the broadcast barrier round (star)
    /// or the slowest rank's local load + Adam step (ring).
    Apply,
    /// Shard serialization at checkpoint time (max across ranks).
    CkptSerialize,
    /// Handing shards to the async node agents (includes stall waits).
    CkptSubmit,
    /// Synchronous-mode blocking write of all shards.
    CkptWrite,
    /// Recovery planning (source resolution over memory + storage).
    RecoveryPlan,
    /// Fetching planned shard payloads.
    RecoveryFetch,
    /// Broadcasting and applying restored state on every rank.
    RecoveryRestore,
    /// Elastic shrink rebalance: computing the adoption plan, migrating
    /// expert ownership, and reconfiguring the surviving ranks.
    ShrinkRebalance,
    /// Elastic expand: exporting a survivor's replica, respawning and
    /// seeding the returning ranks, and restoring the home placement.
    ExpandRestore,
}

impl Phase {
    /// Short stable label.
    pub fn label(&self) -> &'static str {
        match self {
            Phase::Compute => "compute",
            Phase::Reduce => "reduce",
            Phase::ReduceScatter => "reduce-scatter",
            Phase::AllGather => "all-gather",
            Phase::RingWait => "ring-wait",
            Phase::CommOverlap => "comm-overlap",
            Phase::StragglerStall => "straggler-stall",
            Phase::TpSync => "tp-sync",
            Phase::PpBubble => "pp-bubble",
            Phase::Apply => "apply",
            Phase::CkptSerialize => "ckpt-serialize",
            Phase::CkptSubmit => "ckpt-submit",
            Phase::CkptWrite => "ckpt-write",
            Phase::RecoveryPlan => "recovery-plan",
            Phase::RecoveryFetch => "recovery-fetch",
            Phase::RecoveryRestore => "recovery-restore",
            Phase::ShrinkRebalance => "shrink-rebalance",
            Phase::ExpandRestore => "expand-restore",
        }
    }
}

/// Accumulated statistics of one phase.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize)]
pub struct PhaseStats {
    /// Number of recorded occurrences.
    pub count: u64,
    /// Total seconds across occurrences.
    pub total_secs: f64,
    /// Longest single occurrence.
    pub max_secs: f64,
    /// Shortest single occurrence (0 when never recorded) — the least
    /// scheduler-disturbed sample, which scaling benchmarks compare.
    pub min_secs: f64,
    /// Log-scale distribution of the samples (p50/p99 queries).
    pub hist: LogHistogram,
}

impl PhaseStats {
    /// Records one occurrence.
    pub fn record(&mut self, secs: f64) {
        if self.count == 0 || secs < self.min_secs {
            self.min_secs = secs;
        }
        self.count += 1;
        self.total_secs += secs;
        if secs > self.max_secs {
            self.max_secs = secs;
        }
        self.hist.record(secs);
    }

    /// Mean seconds per occurrence (0 when never recorded).
    pub fn mean_secs(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.total_secs / self.count as f64
        }
    }

    /// Median seconds (log-bucket estimate, ~9 % resolution).
    pub fn p50_secs(&self) -> f64 {
        self.hist.percentile(0.50)
    }

    /// 99th-percentile seconds (log-bucket estimate).
    pub fn p99_secs(&self) -> f64 {
        self.hist.percentile(0.99)
    }
}

/// One entry of the run timeline.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct TimelineEvent {
    /// Run-relative monotonic seconds at which the event was recorded
    /// (anchored at registry creation — coordinator start), ordering
    /// events across ranks within an iteration.
    pub at_secs: f64,
    /// Iteration the event belongs to.
    pub iteration: u64,
    /// What happened.
    pub kind: EventKind,
}

/// Kinds of timeline events.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub enum EventKind {
    /// A checkpoint was taken; lists nodes whose agents stalled.
    Checkpoint {
        /// Nodes that had to wait for a free buffer.
        stalled_nodes: Vec<usize>,
        /// Wall seconds the checkpoint added to the iteration.
        overhead_secs: f64,
    },
    /// Node kills were injected at the start of this iteration.
    FaultInjected {
        /// Nodes killed.
        nodes: Vec<usize>,
    },
    /// The coordinator detected missing ranks and identified dead nodes.
    FaultDetected {
        /// Nodes declared dead.
        nodes: Vec<usize>,
        /// Seconds from iteration start to detection.
        detect_secs: f64,
    },
    /// Ranks went silent for a heartbeat window and entered the
    /// suspected set; they hold a lease and are re-admitted without
    /// recovery if they reply before `k_misses` windows elapse.
    FaultSuspected {
        /// Ranks newly suspected.
        ranks: Vec<usize>,
        /// Consecutive missed windows so far (1-based).
        misses: u32,
    },
    /// A suspected rank replied within its lease and was re-admitted —
    /// a gray failure tolerated with no recovery.
    SuspicionCleared {
        /// The re-admitted rank.
        rank: usize,
    },
    /// A two-level recovery completed.
    Recovery {
        /// Iteration training resumed from.
        resume_iteration: u64,
        /// Shards restored from healthy nodes' CPU memory.
        memory_hits: usize,
        /// Shards restored from persistent storage.
        storage_hits: usize,
        /// Total wall seconds of the recovery.
        total_secs: f64,
        /// DP indices of the shard groups the dead ranks belonged to —
        /// the groups whose state the recovery targeted.
        shard_groups: Vec<usize>,
        /// Restored shards owned by those shard groups under the
        /// group-keyed checkpoint placement (the rest of the restore is
        /// survivor rollback).
        group_owned_shards: usize,
    },
    /// A validation evaluation.
    Eval {
        /// Validation loss.
        loss: f32,
    },
    /// A ring collective aborted mid-iteration (a peer stopped
    /// responding); the runtime recovers and runs the star fallback for
    /// the advertised window.
    CollectiveAbort {
        /// Ranks that reported aborting their ring collective.
        aborted_ranks: Vec<usize>,
        /// Iterations the run falls back to the star path for.
        fallback_iterations: u64,
    },
    /// A straggler slowdown was injected into a rank's step.
    StragglerInjected {
        /// Rank slowed down.
        rank: usize,
        /// Step-duration multiplier.
        factor: f64,
    },
    /// The health plane scored a rank's step samples as sustained
    /// outliers and walked it out of the healthy state. The detector's
    /// corroboration hook now declares this rank one lease window
    /// sooner should it go silent.
    HealthDegraded {
        /// The degraded rank.
        rank: usize,
        /// Robust z-score of the tipping sample.
        z: f64,
    },
    /// The run shrank elastically onto its surviving ranks: no respawn —
    /// the dead shard groups' batch slices and experts were adopted and
    /// training continued degraded within the same run.
    ElasticShrink {
        /// Shard groups (DP indices) that died.
        dead_groups: Vec<usize>,
        /// Slice adoption pairs `(dead group, adopting group)`.
        adoptions: Vec<(usize, usize)>,
        /// Experts whose ownership migrated to a surviving group.
        experts_migrated: usize,
        /// Wall seconds of the rebalance (plan + reconfigure), excluding
        /// the state recovery it follows.
        shrink_secs: f64,
    },
    /// Replacement ranks rejoined and the world expanded back to the
    /// configured shape.
    ElasticExpand {
        /// Shard groups that returned.
        returning_groups: Vec<usize>,
        /// Experts whose ownership moved back to its home group.
        experts_returned: usize,
        /// Iterations the run spent degraded before this expand.
        degraded_iterations: u64,
        /// Wall seconds of the expand (export + respawn + seed +
        /// reconfigure).
        expand_secs: f64,
    },
}

/// Mutable metric accumulation during a run.
#[derive(Debug)]
pub struct MetricsRegistry {
    start: Instant,
    phases: BTreeMap<Phase, PhaseStats>,
    timeline: Vec<TimelineEvent>,
    /// Checkpoint submissions that stalled waiting for a buffer.
    pub stall_count: u64,
    /// Node kills injected.
    pub faults_injected: u64,
    /// Straggler slowdowns injected.
    pub stragglers_injected: u64,
    /// Ring collectives that aborted on a fault.
    pub ring_aborts: u64,
    /// Gradient chunk buffers preallocated by the collective layer across
    /// all mesh builds (the layer's total heap footprint: steady-state
    /// iterations allocate nothing).
    pub collective_allocs: u64,
    /// Recoveries executed.
    pub recoveries: u64,
    /// Ranks that entered the suspected set (summed over collections).
    pub suspicions: u64,
    /// Suspected ranks that replied within their lease and were
    /// re-admitted without recovery.
    pub suspicions_cleared: u64,
    /// Shard groups dragged through a recovery (summed over recoveries).
    pub shard_groups_recovered: u64,
    /// Elastic shrinks executed (recoveries that continued on the
    /// survivors instead of respawning).
    pub elastic_shrinks: u64,
    /// Elastic expands executed (replacement ranks rejoined).
    pub elastic_expands: u64,
    /// Experts whose ownership migrated across all shrinks.
    pub experts_migrated: u64,
    /// Iterations completed while the world was shrunk.
    pub degraded_iterations: u64,
    /// Degraded iterations that ran on the survivor ring (full-DP-size
    /// ring with dead slots driven by their adopters) rather than the
    /// bounded star fallback.
    pub survivor_ring_iterations: u64,
    /// Iterations that ran on the two-level hierarchical reduce.
    pub hierarchical_iterations: u64,
    /// Step replies whose TP group exchanged mismatching parameter CRCs.
    pub tp_divergences: u64,
    /// Bytes fetched during recoveries.
    pub recovered_bytes: u64,
    /// Recovery shards served from CPU memory.
    pub memory_hits: u64,
    /// Recovery shards served from persistent storage.
    pub storage_hits: u64,
    /// Iterations executed, including re-done work after rollbacks.
    pub iterations_executed: u64,
    /// Checkpoints taken (bootstrap excluded).
    pub checkpoints_taken: u64,
    /// Total wall seconds spent in the iteration loop.
    pub loop_secs: f64,
}

impl Default for MetricsRegistry {
    fn default() -> Self {
        Self::new()
    }
}

impl MetricsRegistry {
    /// Creates an empty registry anchored at now.
    pub fn new() -> Self {
        Self::with_anchor(Instant::now())
    }

    /// Creates an empty registry whose timeline timestamps are relative
    /// to `start` — pass the trace collector's anchor so timeline
    /// events and trace spans share one clock.
    pub fn with_anchor(start: Instant) -> Self {
        Self {
            start,
            phases: BTreeMap::new(),
            timeline: Vec::new(),
            stall_count: 0,
            faults_injected: 0,
            stragglers_injected: 0,
            ring_aborts: 0,
            collective_allocs: 0,
            recoveries: 0,
            suspicions: 0,
            suspicions_cleared: 0,
            shard_groups_recovered: 0,
            elastic_shrinks: 0,
            elastic_expands: 0,
            experts_migrated: 0,
            degraded_iterations: 0,
            survivor_ring_iterations: 0,
            hierarchical_iterations: 0,
            tp_divergences: 0,
            recovered_bytes: 0,
            memory_hits: 0,
            storage_hits: 0,
            iterations_executed: 0,
            checkpoints_taken: 0,
            loop_secs: 0.0,
        }
    }

    /// Records one occurrence of a phase.
    pub fn record(&mut self, phase: Phase, secs: f64) {
        self.phases.entry(phase).or_default().record(secs);
    }

    /// Times a closure into a phase, returning its output.
    pub fn time<T>(&mut self, phase: Phase, f: impl FnOnce() -> T) -> T {
        let start = Instant::now();
        let out = f();
        self.record(phase, start.elapsed().as_secs_f64());
        out
    }

    /// Appends a timeline event, stamped with run-relative seconds.
    pub fn event(&mut self, iteration: u64, kind: EventKind) {
        self.timeline.push(TimelineEvent {
            at_secs: self.start.elapsed().as_secs_f64(),
            iteration,
            kind,
        });
    }

    /// Statistics of one phase.
    pub fn phase(&self, phase: Phase) -> PhaseStats {
        self.phases.get(&phase).copied().unwrap_or_default()
    }

    /// All recorded phases.
    pub fn phases(&self) -> &BTreeMap<Phase, PhaseStats> {
        &self.phases
    }

    /// The timeline so far.
    pub fn timeline(&self) -> &[TimelineEvent] {
        &self.timeline
    }
}

/// Immutable result of a completed run.
#[derive(Debug, Clone, Default, Serialize)]
pub struct RunSummary {
    /// `(iteration, validation loss)` curve.
    pub val_curve: Vec<(u64, f32)>,
    /// Final validation loss.
    pub final_val_loss: f32,
    /// Measured PLT (Eq. 7) across all faults.
    pub plt: f64,
    /// `K_snapshot` in effect at each fault (Dynamic-K trace).
    pub k_trace: Vec<usize>,
    /// Iterations executed including redone work.
    pub iterations_executed: u64,
    /// Checkpoints taken (bootstrap excluded).
    pub checkpoints_taken: u64,
    /// Node kills injected.
    pub faults_injected: u64,
    /// Straggler slowdowns injected.
    pub stragglers_injected: u64,
    /// Ring collectives that aborted on a fault.
    pub ring_aborts: u64,
    /// Gradient chunk buffers preallocated by the collective layer across
    /// all mesh builds; steady-state ring iterations allocate nothing.
    pub collective_allocs: u64,
    /// Recoveries executed.
    pub recoveries: u64,
    /// Ranks that entered the suspected set. A gray failure suspected
    /// and then cleared contributes here but not to `recoveries`.
    pub suspicions: u64,
    /// Suspected ranks re-admitted within their lease — gray failures
    /// tolerated with no recovery.
    pub suspicions_cleared: u64,
    /// Store operations that succeeded only after at least one retry
    /// (transient faults absorbed by the backoff wrapper).
    pub store_retries: u64,
    /// Store operations that exhausted every retry attempt and surfaced
    /// a typed error.
    pub store_retry_exhaustions: u64,
    /// Shard groups dragged through a recovery (summed over recoveries;
    /// equals `recoveries × groups-per-dead-node` for node kills).
    pub shard_groups_recovered: u64,
    /// Elastic shrinks executed: recoveries that continued on the
    /// surviving ranks (no respawn), the dead groups' slices and experts
    /// adopted.
    pub elastic_shrinks: u64,
    /// Elastic expands executed: replacement ranks rejoined and the
    /// world returned to the configured shape.
    pub elastic_expands: u64,
    /// Experts whose checkpoint ownership migrated across all shrinks.
    pub experts_migrated: u64,
    /// Iterations completed while the world was shrunk (the run's
    /// degraded-step count).
    pub degraded_iterations: u64,
    /// Degraded iterations that ran on the survivor ring — the
    /// full-DP-size ring whose dead slots are driven by their adopters.
    /// `degraded_iterations - survivor_ring_iterations` is the time a
    /// shrunk run spent on the bounded star fallback.
    pub survivor_ring_iterations: u64,
    /// Iterations that ran on the two-level hierarchical reduce
    /// (full-shape `CollectiveKind::Hierarchical` steps).
    pub hierarchical_iterations: u64,
    /// Whether every TP group's per-iteration replica-consistency
    /// exchange saw bitwise-identical parameter CRCs (vacuously true
    /// when `tp = 1`).
    pub tp_groups_consistent: bool,
    /// Checkpoint submissions that stalled on buffer exhaustion.
    pub stall_count: u64,
    /// Bytes fetched during recoveries.
    pub recovered_bytes: u64,
    /// Recovery shards served from CPU memory.
    pub memory_hits: u64,
    /// Recovery shards served from persistent storage.
    pub storage_hits: u64,
    /// Bytes held by the persistent store at the end of the run
    /// (including manifests and any orphaned shards).
    pub persisted_bytes: u64,
    /// Aggregated checkpoint-engine counters across all node engines:
    /// full/delta shard mix, stored vs raw bytes, manifest bytes, pool
    /// footprint, and background persist time.
    pub ckpt_engine: EngineStats,
    /// Per-checkpoint `(serialized bytes, serialize seconds)` samples —
    /// the snapshot-tier calibration inputs ([`TierLink::fit`]).
    ///
    /// [`TierLink::fit`]: moc_store::TierLink::fit
    pub snapshot_samples: Vec<(u64, f64)>,
    /// Per-checkpoint `(persisted bytes, blocking write seconds)`
    /// samples — the persist-tier calibration inputs. Only synchronous
    /// checkpoint mode produces these: async persists drain in the
    /// background where per-batch wall time is not attributable to an
    /// iteration.
    pub persist_samples: Vec<(u64, f64)>,
    /// Per-phase wall-clock statistics.
    pub phases: BTreeMap<Phase, PhaseStats>,
    /// Ordered run timeline (checkpoints, faults, recoveries, evals).
    pub timeline: Vec<TimelineEvent>,
    /// Total wall seconds of the iteration loop.
    pub loop_secs: f64,
    /// Checkpoint interval the run used.
    pub i_ckpt: u64,
    /// Final parameters of rank 0, flattened in registration order.
    pub final_params: Vec<f32>,
    /// Whether every rank finished with bitwise-identical parameters.
    pub replicas_consistent: bool,
    /// What observability produced: span counts, flight dumps, and the
    /// trace path (inert when `ObsConfig.enabled` was false).
    pub obs: ObsRunReport,
    /// The health plane's per-rank verdict (`None` when
    /// `ObsConfig.health` was off).
    pub health: Option<moc_obs::HealthReport>,
}

impl RunSummary {
    /// Statistics of one phase.
    pub fn phase(&self, phase: Phase) -> PhaseStats {
        self.phases.get(&phase).copied().unwrap_or_default()
    }

    /// Cumulative injected straggler stall across the run (the
    /// `StragglerStall` phase total).
    pub fn straggler_stall_secs(&self) -> f64 {
        self.phase(Phase::StragglerStall).total_secs
    }

    /// Mean wall seconds a checkpoint added to its iteration:
    /// serialization plus submission (async) or blocking write (sync).
    pub fn checkpoint_overhead_secs(&self) -> f64 {
        if self.checkpoints_taken == 0 {
            return 0.0;
        }
        let total = self.phase(Phase::CkptSerialize).total_secs
            + self.phase(Phase::CkptSubmit).total_secs
            + self.phase(Phase::CkptWrite).total_secs;
        total / self.checkpoints_taken as f64
    }

    /// Mean wall seconds per executed iteration.
    pub fn mean_iteration_secs(&self) -> f64 {
        if self.iterations_executed == 0 {
            0.0
        } else {
            self.loop_secs / self.iterations_executed as f64
        }
    }

    /// The measured phase means expressed as an `moc-cluster` event-sim
    /// configuration: the validation hook tying live wall-clock numbers
    /// back to the analytic models.
    pub fn event_sim_config(&self) -> EventSimConfig {
        // Each iteration runs exactly one collective, so the star and
        // ring phases must be weighted by how often they occurred, not
        // summed as per-occurrence means — a ring run with a star
        // fallback window records both, and charging every simulated
        // iteration both costs would project high. The ring's exposed
        // peer wait is part of the iteration's wall time and is charged
        // here too.
        let exchanges = self.phase(Phase::Compute).count.max(1) as f64;
        let collective_total = self.phase(Phase::Reduce).total_secs
            + self.phase(Phase::ReduceScatter).total_secs
            + self.phase(Phase::AllGather).total_secs
            + self.phase(Phase::RingWait).total_secs
            + self.phase(Phase::TpSync).total_secs
            + self.phase(Phase::PpBubble).total_secs;
        EventSimConfig {
            fb_sec: self.phase(Phase::Compute).mean_secs() + collective_total / exchanges,
            update_sec: self.phase(Phase::Apply).mean_secs(),
            snapshot_sec: self.phase(Phase::CkptSerialize).mean_secs()
                + self.phase(Phase::CkptSubmit).mean_secs(),
            persist_sec: self.phase(Phase::CkptWrite).mean_secs(),
            i_ckpt: self.i_ckpt.max(1),
            iterations: self.iterations_executed,
        }
    }

    /// Replays the measured phase means through `moc-cluster`'s
    /// discrete-event simulator, projecting what the analytic timeline
    /// model predicts for this workload.
    pub fn analytic_projection(&self) -> EventSimReport {
        simulate(&self.event_sim_config())
    }

    /// Calibrates a [`ClusterSpec`] against this run: least-squares fits
    /// of the snapshot and persist tier links from the measured
    /// per-checkpoint `(bytes, seconds)` samples. Tiers without
    /// fittable samples keep `base`'s constants.
    pub fn calibrated_cluster(&self, base: &ClusterSpec) -> ClusterSpec {
        base.calibrated(&self.snapshot_samples, &self.persist_samples)
    }

    /// The analytic projection with the checkpoint tiers replaced by a
    /// (typically [`RunSummary::calibrated_cluster`]-fitted) spec's
    /// predictions for this run's mean checkpoint volumes — the
    /// validation loop tying the analytic model to live measurements.
    pub fn analytic_projection_with(&self, spec: &ClusterSpec) -> EventSimReport {
        let mean = |samples: &[(u64, f64)]| {
            if samples.is_empty() {
                0
            } else {
                samples.iter().map(|&(b, _)| b).sum::<u64>() / samples.len() as u64
            }
        };
        let mut config = self.event_sim_config();
        if !self.snapshot_samples.is_empty() {
            config.snapshot_sec = spec.snapshot_secs(mean(&self.snapshot_samples));
        }
        if !self.persist_samples.is_empty() {
            config.persist_sec = spec.persist_secs(mean(&self.persist_samples));
        }
        simulate(&config)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phase_stats_accumulate() {
        let mut m = MetricsRegistry::new();
        m.record(Phase::Compute, 0.5);
        m.record(Phase::Compute, 1.5);
        let s = m.phase(Phase::Compute);
        assert_eq!(s.count, 2);
        assert!((s.total_secs - 2.0).abs() < 1e-12);
        assert!((s.mean_secs() - 1.0).abs() < 1e-12);
        assert!((s.max_secs - 1.5).abs() < 1e-12);
        assert!((s.min_secs - 0.5).abs() < 1e-12);
        assert_eq!(m.phase(Phase::Apply), PhaseStats::default());
    }

    #[test]
    fn time_measures_closures() {
        let mut m = MetricsRegistry::new();
        let out = m.time(Phase::Reduce, || {
            std::thread::sleep(std::time::Duration::from_millis(2));
            41 + 1
        });
        assert_eq!(out, 42);
        assert!(m.phase(Phase::Reduce).total_secs >= 0.002);
    }

    #[test]
    fn timeline_preserves_order() {
        let mut m = MetricsRegistry::new();
        m.event(1, EventKind::Eval { loss: 5.0 });
        m.event(2, EventKind::FaultInjected { nodes: vec![0] });
        assert_eq!(m.timeline().len(), 2);
        assert_eq!(m.timeline()[0].iteration, 1);
    }

    #[test]
    fn timeline_timestamps_are_run_relative_and_monotonic() {
        let mut m = MetricsRegistry::new();
        m.event(1, EventKind::Eval { loss: 5.0 });
        std::thread::sleep(std::time::Duration::from_millis(2));
        m.event(2, EventKind::FaultInjected { nodes: vec![0] });
        let t = m.timeline();
        assert!(t[0].at_secs >= 0.0);
        assert!(t[1].at_secs >= t[0].at_secs + 0.002);
    }

    #[test]
    fn phase_percentiles_come_from_the_histogram() {
        let mut m = MetricsRegistry::new();
        for i in 0..100u64 {
            m.record(Phase::Compute, 1e-3 + 9e-3 * (i as f64 / 100.0));
        }
        let s = m.phase(Phase::Compute);
        assert_eq!(s.hist.count(), 100);
        assert!(s.p50_secs() > 1e-3 && s.p50_secs() < s.p99_secs());
        assert!(s.p99_secs() <= s.max_secs * 1.1);
    }

    #[test]
    fn phase_labels_are_stable() {
        assert_eq!(Phase::CkptSubmit.label(), "ckpt-submit");
        assert_eq!(Phase::RecoveryRestore.label(), "recovery-restore");
        assert_eq!(Phase::ReduceScatter.label(), "reduce-scatter");
        assert_eq!(Phase::AllGather.label(), "all-gather");
        assert_eq!(Phase::StragglerStall.label(), "straggler-stall");
    }
}
